"""Figure 8 — Effect of row width on bulk load performance.

Paper: datasets of the same total byte size but different average row
widths; wider rows load faster (fewer per-row conversion/serialization
iterations per chunk).  Series logic: :mod:`repro.bench.figures`.
"""

from __future__ import annotations

from conftest import bench_json, bench_scale, emit

from repro.bench import format_series
from repro.bench.figures import fig8_series

SCALE = bench_scale()


def test_fig8_row_width(benchmark, results_dir):
    series = fig8_series(SCALE)
    text = format_series(
        f"Figure 8: effect of row width (constant total "
        f"~{series[0]['total_MB']} MB)",
        series,
        note="expect: wider rows => lower acquisition time")
    emit(results_dir, "fig8_row_width", text)
    bench_json("fig8", {"scale": SCALE, "series": series})

    # Total time must drop with width; the strongest component is the
    # per-row-bound application phase.  (The acquisition-phase delta is
    # real but only a few percent at this scale — too noisy to gate on.)
    assert series[-1]["total_s"] < series[0]["total_s"], \
        "wider rows should load faster at equal volume"
    assert series[-1]["application_s"] < series[0]["application_s"], \
        "per-row application cost must fall with fewer rows"

    benchmark.pedantic(
        fig8_series, args=(SCALE,), kwargs={"widths": (500,)},
        rounds=1, iterations=1)
