"""Figure 9 — Data acquisition scalability with CPU cores.

Paper: wall-clock time as a % of the 2-core baseline, plus speedup
efficiency S = Ts / (Tp * P).  Efficiency stays good through 8 cores
and degrades at 16 because setup/teardown runs regardless of cores.

The machine-level sweep runs on the discrete-event model (substitution
documented in DESIGN.md); series logic: :mod:`repro.bench.figures`.
"""

from __future__ import annotations

from conftest import emit

from repro.bench import format_series
from repro.bench.figures import fig9_params, fig9_series
from repro.sim import simulate_acquisition


def test_fig9_cpu_cores(benchmark, results_dir):
    series = fig9_series()
    text = format_series(
        "Figure 9: acquisition scalability with CPU cores "
        "(discrete-event model, 1 GB load)",
        series,
        note="expect: near-linear scaling to 8 cores, efficiency "
             "degradation at 16 (fixed setup/teardown)")
    emit(results_dir, "fig9_cpu_cores", text)

    effs = [row["speedup_eff_S"] for row in series]
    assert effs[1] > 0.85 and effs[2] > 0.85, \
        "4 and 8 cores should scale with good efficiency"
    assert effs[3] < effs[2], \
        "efficiency must degrade at 16 cores (setup/teardown overhead)"
    assert series[-1]["sim_total_s"] < series[0]["sim_total_s"], \
        "more cores must still be faster in absolute time"

    benchmark.pedantic(
        simulate_acquisition, args=(fig9_params(8),), rounds=1,
        iterations=1)
