"""Eager-apply overlap + zone-map pruning A/B (writes BENCH_apply.json).

PR 5's tentpole: pipeline DML application under the acquisition phase
(``eager_apply``) and push ``__SEQ BETWEEN`` ranges down to a
binary-searched slice of the sorted staging table
(``zone_map_pruning``).  Two claims are gated here:

* **Figure 7 overlap** — at the 4x dataset point, over a
  bandwidth-limited legacy link (the paper's scenario: the acquisition
  phase is bounded by the legacy-side pipe, the application phase by
  the CDW), eager apply + pruning beats the two-phase baseline by
  >= 1.3x wall-clock.  Measured warmed best-of-5, modes interleaved so
  machine noise hits all arms equally.

* **Figure 11 range scans** — with pruning on, total apply time is
  sub-linear in the number of ranged DML statements the adaptive
  splitter issues: each statement touches only its slice, so the
  split cascade costs O(rows touched), not O(ranges x staging rows).
  A small pruned-vs-full A/B documents the absolute gap (the full-scan
  cascade is quadratic and already painful at 1/4 of Figure 11 scale).
"""

from __future__ import annotations

import time

from conftest import bench_json, bench_scale, emit, scaled

from repro.bench.harness import build_stack, run_workload_through_hyperq
from repro.core.config import HyperQConfig
from repro.workloads import make_workload

SCALE = bench_scale()
BASE_ROWS = scaled(12_500)          # Figure 7 base; 4x = 50k rows
LINK_BW = 16 * 1024 * 1024          # constrained legacy link, bytes/s
ROUNDS = 5

MODES = {                           # label -> (eager_apply, pruning)
    "two-phase": (False, False),
    "two-phase+prune": (False, True),
    "eager": (True, False),
    "eager+prune": (True, True),
}


def _run_job(rows, eager, pruning, error_rate=0.0, max_errors=None,
             bw=None):
    config = HyperQConfig(eager_apply=eager, zone_map_pruning=pruning,
                          converters=2, filewriters=2, credits=8)
    workload = make_workload(rows=rows, row_bytes=500, seed=42,
                             error_rate=error_rate)
    with build_stack(config, link_bandwidth_bytes_per_s=bw) as stack:
        start = time.perf_counter()
        metrics = run_workload_through_hyperq(
            stack, workload, sessions=2, max_errors=max_errors)
        wall = time.perf_counter() - start
    return wall, metrics


def test_apply_overlap(benchmark, results_dir):
    # -- Figure 7 A/B matrix: overlap on/off x pruning on/off ------------
    matrix = []
    speedups = {}
    for multiplier in (1, 4):
        rows = BASE_ROWS * multiplier
        _run_job(rows, True, True, bw=LINK_BW)      # warm every path
        best = {label: float("inf") for label in MODES}
        stats = {}
        for _ in range(ROUNDS):                     # interleaved rounds
            for label, (eager, pruning) in MODES.items():
                wall, metrics = _run_job(rows, eager, pruning,
                                         bw=LINK_BW)
                if wall < best[label]:
                    best[label] = wall
                    stats[label] = metrics
        inserted = {m.rows_inserted for m in stats.values()}
        assert len(inserted) == 1, \
            f"modes disagree on rows loaded: {inserted}"
        speedups[multiplier] = best["two-phase"] / best["eager+prune"]
        for label in MODES:
            matrix.append({
                "multiplier": multiplier, "rows": rows, "mode": label,
                "best_s": round(best[label], 4),
                "overlap_s": round(stats[label].overlap_s, 4),
                "apply_s": round(stats[label].application_s, 4),
            })

    # -- Figure 11 leg: apply time vs range count, pruning on ------------
    fig11_rows = scaled(4_000)
    range_scan = []
    for error_rate in (0.01, 0.10):
        point = None
        for _ in range(5):                          # best-of-5 per point
            _, metrics = _run_job(fig11_rows, False, True,
                                  error_rate=error_rate,
                                  max_errors=10**9)
            if point is None or \
                    metrics.application_s < point["apply_s"]:
                point = {"error_rate": error_rate,
                         "ranges": metrics.dml_statements,
                         "apply_s": round(metrics.application_s, 4)}
        range_scan.append(point)
    range_growth = range_scan[1]["ranges"] / range_scan[0]["ranges"]
    apply_growth = range_scan[1]["apply_s"] / range_scan[0]["apply_s"]

    # -- pruned vs full-scan cascade, small scale (full scan is slow) ----
    ab_rows = scaled(1_000)
    pruning_ab = {"rows": ab_rows, "error_rate": 0.02}
    for label, pruning in (("pruned", True), ("full_scan", False)):
        _, metrics = _run_job(ab_rows, False, pruning,
                              error_rate=0.02, max_errors=10**9)
        pruning_ab[label + "_apply_s"] = round(metrics.application_s, 4)

    lines = [f"Apply overlap A/B ({BASE_ROWS} base rows, "
             f"link {LINK_BW // (1024 * 1024)}MB/s, best of {ROUNDS})"]
    for row in matrix:
        lines.append(
            f"  {row['multiplier']}x {row['mode']:<16} "
            f"wall={row['best_s']:.3f}s apply={row['apply_s']:.3f}s "
            f"overlap={row['overlap_s']:.3f}s")
    lines.append(f"  speedup(4x, eager+prune vs two-phase): "
                 f"{speedups[4]:.3f}x")
    lines.append(f"  ranges {range_scan[0]['ranges']} -> "
                 f"{range_scan[1]['ranges']} ({range_growth:.2f}x), "
                 f"apply {range_scan[0]['apply_s']:.3f}s -> "
                 f"{range_scan[1]['apply_s']:.3f}s "
                 f"({apply_growth:.2f}x)")
    lines.append(f"  cascade at {ab_rows} rows: "
                 f"pruned {pruning_ab['pruned_apply_s']:.3f}s vs "
                 f"full {pruning_ab['full_scan_apply_s']:.3f}s")
    emit(results_dir, "apply_overlap", "\n".join(lines))

    bench_json("apply", {
        "scale": SCALE,
        "link_bandwidth_bytes_per_s": LINK_BW,
        "rounds": ROUNDS,
        "fig7_matrix": matrix,
        "speedup_1x": round(speedups[1], 4),
        "speedup_4x": round(speedups[4], 4),
        "fig11_range_scan": range_scan,
        "range_growth": round(range_growth, 4),
        "apply_growth": round(apply_growth, 4),
        "pruning_ab": pruning_ab,
    })

    assert speedups[4] >= 1.3, \
        f"eager apply + pruning should beat two-phase by >=1.3x at " \
        f"the 4x point (got {speedups[4]:.3f}x)"
    assert apply_growth < 0.6 * range_growth, \
        f"apply time must be sub-linear in range count with pruning " \
        f"on ({apply_growth:.2f}x apply vs {range_growth:.2f}x ranges)"
    assert pruning_ab["pruned_apply_s"] < \
        pruning_ab["full_scan_apply_s"] / 3, \
        "range pruning should collapse the full-scan split cascade"

    benchmark.pedantic(
        _run_job, args=(BASE_ROWS, True, True),
        kwargs={"bw": LINK_BW}, rounds=1, iterations=1)
