"""Observability overhead budget on the Fig 7 load path.

Runs the same import workload with observability fully off (metrics
only, the seed default) and fully on (tracing at sample rate 1.0, SLO
engine, flight recorder), interleaved best-of-N to cancel machine
noise, and gates the fully-instrumented run at <5% overhead — the
control plane must be cheap enough to leave on in production.
"""

from __future__ import annotations

import time

from conftest import bench_json, bench_scale, emit, scaled

from repro.bench import format_series
from repro.bench.harness import build_stack, run_workload_through_hyperq
from repro.core.config import HyperQConfig
from repro.workloads.generator import make_workload

#: gate: full observability may cost at most 5% plus a small absolute
#: floor so sub-second runs do not fail on scheduler jitter.
OVERHEAD_LIMIT = 0.05
ABSOLUTE_FLOOR_S = 0.05

SLO_PROFILE = {"slos": [
    {"name": "load-latency", "objective": "latency_p95",
     "pool": "*", "threshold_s": 300.0, "target": 0.99},
    {"name": "load-errors", "objective": "error_rate",
     "pool": "*", "target": 0.99},
]}


def _config(full: bool) -> HyperQConfig:
    if not full:
        return HyperQConfig()
    return HyperQConfig(trace_enabled=True, trace_sample_rate=1.0,
                        slo_profile=SLO_PROFILE,
                        flight_recorder_enabled=True)


def _run_once(workload, full: bool) -> tuple[float, int]:
    with build_stack(config=_config(full)) as stack:
        started = time.perf_counter()
        metrics = run_workload_through_hyperq(stack, workload,
                                              sessions=2)
        elapsed = time.perf_counter() - started
        spans = len(stack.node.obs.tracer.records()) if full else 0
    assert metrics.rows_inserted == workload.rows
    return elapsed, spans


def test_obs_overhead(results_dir):
    workload = make_workload(scaled(12_500))
    attempts = 3
    base_times, full_times, span_counts = [], [], []
    # Interleave A/B attempts so drift (page cache, turbo, noisy
    # neighbours) hits both arms equally; best-of-N per arm.
    for _ in range(attempts):
        base_s, _ = _run_once(workload, full=False)
        full_s, spans = _run_once(workload, full=True)
        base_times.append(base_s)
        full_times.append(full_s)
        span_counts.append(spans)

    t_base = min(base_times)
    t_full = min(full_times)
    overhead_pct = (t_full / t_base - 1.0) * 100

    rows = [
        {"variant": "baseline", "best_s": round(t_base, 4),
         "runs_s": " ".join(f"{t:.3f}" for t in base_times),
         "spans": 0},
        {"variant": "full-obs", "best_s": round(t_full, 4),
         "runs_s": " ".join(f"{t:.3f}" for t in full_times),
         "spans": max(span_counts)},
    ]
    text = format_series(
        f"Observability overhead ({workload.rows} rows, "
        f"best of {attempts})",
        rows,
        note="tracing @1.0 + SLO engine + flight recorder vs metrics "
             f"only; overhead {overhead_pct:+.1f}% "
             f"(budget {OVERHEAD_LIMIT:.0%})")
    emit(results_dir, "obs_overhead", text)

    bench_json("obs", {
        "scale": bench_scale(),
        "rows": workload.rows,
        "attempts": attempts,
        "baseline_best_s": round(t_base, 4),
        "full_best_s": round(t_full, 4),
        "overhead_pct": round(overhead_pct, 2),
        "budget_pct": OVERHEAD_LIMIT * 100,
        "spans_recorded": max(span_counts),
    })

    assert max(span_counts) > 0, "full run must actually trace"
    assert t_full <= t_base * (1.0 + OVERHEAD_LIMIT) + ABSOLUTE_FLOOR_S, (
        f"observability overhead {overhead_pct:.1f}% exceeds "
        f"{OVERHEAD_LIMIT:.0%} budget "
        f"(baseline {t_base:.3f}s, full {t_full:.3f}s)")
