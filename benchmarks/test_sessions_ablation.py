"""Section 9 note — acquisition rate vs. number of parallel sessions.

Paper: "the acquisition rate is the same when using 2, 4, 8, 12, or 16
parallel sessions" — immediate acknowledgments decouple client session
count from node resources.  Series logic: :mod:`repro.bench.figures`.
"""

from __future__ import annotations

from conftest import bench_scale, emit, scaled

from repro.bench import format_series
from repro.bench.figures import sessions_series

SCALE = bench_scale()
ROWS = scaled(10_000)


def test_sessions_ablation(benchmark, results_dir):
    series = sessions_series(SCALE)
    text = format_series(
        f"Session scalability ({ROWS} rows): acquisition rate vs "
        "parallel sessions",
        series,
        note="expect: roughly constant acquisition rate across session "
             "counts (immediate acks decouple sessions from resources)")
    emit(results_dir, "sessions_ablation", text)

    times = [row["acquisition_s"] for row in series]
    assert max(times) < min(times) * 2.0, \
        "acquisition time should not change materially with sessions"

    benchmark.pedantic(
        sessions_series, args=(SCALE,),
        kwargs={"session_counts": (4,)}, rounds=1, iterations=1)
