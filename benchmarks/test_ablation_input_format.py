"""Ablation — wire format of the incoming data (VARTEXT vs BINARY).

Section 4: "the data conversion process can vary from a simple
conversion of binary data formats to a more sophisticated conversion
that includes detecting null values, handling empty strings, and
escaping special characters."  This ablation loads the same logical
dataset encoded both ways and compares conversion-side cost and wire
volume.
"""

from __future__ import annotations

import datetime
import random

from conftest import emit, scaled

from repro.bench import build_stack, format_series
from repro.core import HyperQConfig
from repro.legacy.client import ImportJobSpec, LegacyEtlClient
from repro.legacy.datafmt import BinaryFormat, FormatSpec, VartextFormat
from repro.legacy.types import FieldDef, Layout, parse_type

ROWS = scaled(6_000)

LAYOUT = Layout("L", [
    FieldDef("K", parse_type("varchar(10)")),
    FieldDef("N", parse_type("integer")),
    FieldDef("D", parse_type("date")),
    FieldDef("P", parse_type("varchar(64)")),
])

DDL = ("create table F (K varchar(10) not null, N integer, D date, "
       "P varchar(64), unique (K))")
DML = ("insert into F values (:K, :N, :D, :P)")


def _rows():
    rng = random.Random(1234)
    rows = []
    for i in range(ROWS):
        rows.append((
            f"K{i:07d}",
            rng.randrange(10**6),
            datetime.date(2020 + rng.randrange(5), 1 + rng.randrange(12),
                          1 + rng.randrange(28)),
            "".join(rng.choices("abcdefgh", k=48)),
        ))
    return rows


def _run_point(kind: str):
    rows = _rows()
    if kind == "vartext":
        data = VartextFormat(LAYOUT).encode_records(rows)
        spec = FormatSpec("vartext", "|")
    else:
        data = BinaryFormat(LAYOUT).encode_records(rows)
        spec = FormatSpec("binary")
    with build_stack(config=HyperQConfig(
            converters=4, filewriters=2, credits=32)) as stack:
        client = LegacyEtlClient(stack.node.connect)
        client.logon("h", "u", "p")
        client.execute_sql(DDL)
        client.run_import(ImportJobSpec(
            target_table="F", et_table="F_ET", uv_table="F_UV",
            layout=LAYOUT, apply_sql=DML, data=data,
            format_spec=spec, sessions=4, chunk_bytes=128 * 1024))
        client.logoff()
        metrics = stack.node.completed_jobs[-1]
    return len(data), metrics


def test_ablation_input_format(benchmark, results_dir):
    series = []
    outcomes = {}
    for kind in ("vartext", "binary"):
        wire_bytes, metrics = _run_point(kind)
        outcomes[kind] = metrics
        series.append({
            "format": kind,
            "wire_KiB": wire_bytes // 1024,
            "acquisition_s": metrics.acquisition_s,
            "application_s": metrics.application_s,
            "rows": metrics.rows_inserted,
        })
    text = format_series(
        f"Ablation: input wire format ({ROWS} rows, same logical data)",
        series,
        note="both formats must load identical row counts; costs differ "
             "in the conversion stage")
    emit(results_dir, "ablation_input_format", text)

    assert outcomes["vartext"].rows_inserted == \
        outcomes["binary"].rows_inserted == ROWS

    benchmark.pedantic(_run_point, args=("binary",), rounds=1,
                       iterations=1)
