"""Ablation — intermediate staging-file size threshold (Section 6).

"A small file size allows more data writing parallelism and fast
uploading into the remote storage.  On the other hand, a large number of
files could impact the efficiency of data copying from the storage
account to the CDW staging tables."  We sweep the threshold and report
file counts and phase times; the COPY side of the trade-off shows up in
the blob count the in-cloud COPY has to visit.
"""

from __future__ import annotations

from conftest import emit, scaled

from repro.bench import format_series, run_import_workload
from repro.core import HyperQConfig
from repro.workloads import make_workload

ROWS = scaled(8_000)
THRESHOLDS = (16 * 1024, 128 * 1024, 1024 * 1024, 8 * 1024 * 1024)


def _run_point(threshold: int):
    workload = make_workload(rows=ROWS, row_bytes=300, seed=52)
    config = HyperQConfig(converters=4, filewriters=2, credits=32,
                          file_threshold_bytes=threshold)
    return run_import_workload(
        workload, config=config, sessions=4, chunk_bytes=64 * 1024)


def test_ablation_file_size(benchmark, results_dir):
    series = []
    for threshold in THRESHOLDS:
        metrics = _run_point(threshold)
        series.append({
            "threshold_KiB": threshold // 1024,
            "files": metrics.files_written,
            "acquisition_s": metrics.acquisition_s,
            "total_s": metrics.total_s,
        })
    text = format_series(
        f"Ablation: staging-file size threshold ({ROWS} rows)",
        series,
        note="expect: smaller threshold => many more files; both "
             "extremes cost something")
    emit(results_dir, "ablation_file_size", text)

    assert series[0]["files"] > series[-1]["files"], \
        "smaller thresholds must produce more staging files"

    benchmark.pedantic(
        _run_point, args=(1024 * 1024,), rounds=1, iterations=1)
