"""Ablation — the max_errors / max_retries limits (Section 7).

"For datasets containing multiple errors, using these parameters
prevents the adaptive error handling from spending a lot of time finding
each error.  Instead, it reports ranges of tuples that cannot be
transformed correctly."  We load an error-heavy dataset under different
max_errors budgets and watch time-to-complete fall as the budget
tightens (at the cost of coarser error reporting).
"""

from __future__ import annotations

from conftest import emit, scaled

from repro.bench import format_series, run_import_workload
from repro.core import HyperQConfig
from repro.workloads import make_workload

ROWS = scaled(3_000)
BUDGETS = (1_000_000, 50, 10, 1)


def _run_point(max_errors: int):
    workload = make_workload(rows=ROWS, row_bytes=200, seed=54,
                             error_rate=0.08)
    return run_import_workload(
        workload,
        config=HyperQConfig(converters=4, filewriters=2, credits=32),
        sessions=2, chunk_bytes=64 * 1024,
        max_errors=max_errors)


def test_ablation_max_errors(benchmark, results_dir):
    series = []
    for budget in BUDGETS:
        metrics = _run_point(budget)
        series.append({
            "max_errors": budget,
            "application_s": metrics.application_s,
            "dml_statements": metrics.dml_statements,
            "individual+range_errors":
                metrics.et_errors + metrics.uv_errors,
            "rows_loaded": metrics.rows_inserted,
        })
    text = format_series(
        f"Ablation: max_errors budget on an 8%-error load ({ROWS} rows)",
        series,
        note="expect: tighter budgets => fewer DML statements and lower "
             "application time, coarser error reports")
    emit(results_dir, "ablation_max_errors", text)

    assert series[-1]["dml_statements"] < series[0]["dml_statements"], \
        "a tight budget must cut the number of chunk retries"
    assert series[-1]["application_s"] <= series[0]["application_s"], \
        "a tight budget must not be slower than exhaustive splitting"

    benchmark.pedantic(_run_point, args=(50,), rounds=1, iterations=1)
