"""Figure 7 — Performance with different dataset sizes.

Paper: total job time grows sub-linearly in dataset size; most time is
the data-acquisition phase, then the application phase, and "other"
(startup/teardown) is small and size-independent.  At 4x rows the
acquisition phase grew 340% and the application phase 270%.

The series logic lives in :mod:`repro.bench.figures` (also reachable via
``python -m repro figures``); this benchmark adds the expected-shape
assertions and the timed headline run.  See
``test_fig7_paper_scale_sim.py`` for the sub-linearity cross-check at
the paper's true scale.
"""

from __future__ import annotations

from conftest import bench_scale, emit

from repro.bench import format_series
from repro.bench.figures import fig7_series

SCALE = bench_scale()


def test_fig7_dataset_size(benchmark, results_dir):
    series = fig7_series(SCALE)
    text = format_series(
        f"Figure 7: performance with dataset size "
        f"(base {series[0]['rows']} rows ~= paper's 25M)",
        series,
        note=("expect: acquisition dominates; application next; "
              "'other' flat and small"))
    emit(results_dir, "fig7_dataset_size", text)

    four_x = series[-1]
    assert four_x["acquisition_s"] > four_x["application_s"], \
        "acquisition should dominate the job time"
    assert four_x["other_s"] < four_x["acquisition_s"], \
        "'other' (startup/teardown) should be comparatively small"

    benchmark.pedantic(
        fig7_series, args=(SCALE,), kwargs={"multipliers": (1,)},
        rounds=1, iterations=1)
