"""Figure 7 — Performance with different dataset sizes.

Paper: total job time grows sub-linearly in dataset size; most time is
the data-acquisition phase, then the application phase, and "other"
(startup/teardown) is small and size-independent.  At 4x rows the
acquisition phase grew 340% and the application phase 270%.

Since PR 3 the compiled row codecs cut per-row conversion several-fold,
so in this reproduction the acquisition phase no longer *dominates* the
application phase the way the paper's Figure 7 shows — the optimization
moved the bottleneck, and a ~0.25s acquisition phase is too noisy for
growth-ratio gates at this scale.  This test asserts the stable shape
(time grows with size, startup/teardown stays small); the strict
sub-linearity claim is cross-checked deterministically at the paper's
true scale in ``test_fig7_paper_scale_sim.py``.

The series logic lives in :mod:`repro.bench.figures` (also reachable via
``python -m repro figures``); this benchmark adds the expected-shape
assertions and the timed headline run.  See
``test_fig7_paper_scale_sim.py`` for the sub-linearity cross-check at
the paper's true scale.
"""

from __future__ import annotations

from conftest import bench_json, bench_scale, emit

from repro.bench import format_series
from repro.bench.figures import fig7_series

SCALE = bench_scale()


def test_fig7_dataset_size(benchmark, results_dir):
    series = fig7_series(SCALE)
    text = format_series(
        f"Figure 7: performance with dataset size "
        f"(base {series[0]['rows']} rows ~= paper's 25M)",
        series,
        note=("expect: total grows with rows; 'other' flat and small "
              "(compiled codecs moved the bottleneck to apply)"))
    emit(results_dir, "fig7_dataset_size", text)
    bench_json("fig7", {"scale": SCALE, "series": series})

    totals = [row["total_s"] for row in series]
    assert totals == sorted(totals), \
        "job time must grow with dataset size"
    four_x = series[-1]
    assert four_x["other_s"] < 0.25 * four_x["total_s"], \
        "'other' (startup/teardown) should be comparatively small"

    benchmark.pedantic(
        fig7_series, args=(SCALE,), kwargs={"multipliers": (1,)},
        rounds=1, iterations=1)
