"""Figure 11 — Error handling performance.

Paper: elapsed time vs. error percentage: Hyper-Q (bulk + adaptive
splitting) vs a singleton-insert baseline.  Hyper-Q crushes the
baseline at 0%, jumps 0%->1% when splitting first triggers, degrades
smoothly, and still wins at 10%; the baseline is flat.  Series logic:
:mod:`repro.bench.figures` (which also asserts both systems load
identical rows).
"""

from __future__ import annotations

from conftest import bench_json, bench_scale, emit, scaled

from repro.bench import format_series
from repro.bench.figures import fig11_series
from repro.bench.harness import build_stack, run_workload_through_hyperq
from repro.workloads import make_workload

SCALE = bench_scale()
ROWS = scaled(4_000)


def test_fig11_error_handling(benchmark, results_dir):
    series = fig11_series(SCALE)
    text = format_series(
        f"Figure 11: error handling performance ({ROWS} rows)",
        series,
        note="expect: Hyper-Q much faster at 0%, steep 0%->1% jump, "
             "baseline flat, Hyper-Q still ahead at 10%")
    emit(results_dir, "fig11_error_handling", text)

    t = {row["error_pct"]: row for row in series}
    assert t["0%"]["hyperq_total_s"] < t["0%"]["baseline_total_s"] / 3, \
        "Hyper-Q should crush the baseline with clean data"
    assert t["10%"]["hyperq_total_s"] < t["10%"]["baseline_total_s"], \
        "Hyper-Q should still win at 10% errors"
    if ROWS >= 2_000:  # shape assertions need enough rows to be stable
        assert t["1%"]["hyperq_total_s"] > \
            t["0%"]["hyperq_total_s"] * 1.5, \
            "triggering error handling should cost a visible jump"
        baseline_times = [row["baseline_total_s"] for row in series]
        assert max(baseline_times) < min(baseline_times) * 1.6, \
            "the baseline should be roughly flat in the error rate"

    # The adaptive splitter issues the same-shaped DML over and over with
    # only the __SEQ range changed, so the error-heavy point must run
    # almost entirely out of the prepared-plan cache (PR 3).
    workload = make_workload(rows=ROWS, row_bytes=500, seed=115,
                             error_rate=0.05)
    with build_stack() as stack:
        run_workload_through_hyperq(
            stack, workload, sessions=2, max_errors=10**9)
        hits = stack.node.obs.plan_cache_hits.labels().value
        misses = stack.node.obs.plan_cache_misses.labels().value
    hit_rate = hits / (hits + misses) if hits + misses else 0.0
    assert hit_rate > 0.95, \
        f"error handling should reuse prepared DML plans " \
        f"(hyperq_plan_cache hit rate {hit_rate:.4f})"

    bench_json("fig11", {
        "scale": SCALE, "series": series,
        "plan_cache": {"error_rate": 0.05, "rows": ROWS,
                       "hits": hits, "misses": misses,
                       "hit_rate": round(hit_rate, 4)},
    })

    benchmark.pedantic(
        fig11_series, args=(SCALE,), kwargs={"error_rates": (0.01,)},
        rounds=1, iterations=1)
