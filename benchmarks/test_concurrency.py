"""Gateway concurrency: session burst scaling + idle-session ceiling.

The async, sharded front end exists for exactly two workload shapes a
thread-per-socket server handles badly:

1. **Session bursts.**  Legacy schedulers start ETL windows by firing
   every feed at once.  The burst must clear the kernel accept queue
   and the scheduler without collapsing — the thread-per-socket server
   (with its shipped shallow backlog) visibly flattens at 64 concurrent
   feeds while the reactor keeps scaling.
2. **Idle session piles.**  ETL estates hold thousands of connections
   open between batch windows.  Multiplexed sessions must cost memory,
   not threads.

The benchmark runs identical burst workloads through both front ends
over real localhost sockets and writes ``BENCH_concurrency.json``:
the sessions x throughput curve (1/8/64 both, 256 async-only), the
p95/median per-session fairness ratio, and the idle-session footprint.
"""

from __future__ import annotations

import threading
import time

from conftest import bench_json, emit, scaled

from repro.bench import format_series
from repro.bench.harness import build_stack
from repro.core.config import HyperQConfig
from repro.legacy.client import ImportJobSpec, LegacyEtlClient
from repro.net_tcp import TcpListener
from repro.workloads.generator import make_workload

#: tiny jobs: the burst benchmark stresses the *front end* (accept,
#: framing, scheduling), so per-job work is kept near the protocol
#: floor — each feed is one control + one data session.
ROWS = max(scaled(80) // 25, 40)
ROW_BYTES = 64
CHUNK_BYTES = 4096
SHARDS = 4
IDLE_SESSIONS = 2000

GATES = {
    #: async throughput over threaded at the 64-feed burst.
    "min_speedup_at_64": 2.0,
    #: p95/median per-session completion ratio may grow at most this
    #: much from 8 to 64 concurrent feeds on the async front end (the
    #: honest near-flat gate on a box where absolute latency must rise
    #: with load).
    "max_fairness_growth_8_to_64": 2.0,
    #: resident-set cost per idle multiplexed session (client + server
    #: side of each socket live in this process).
    "max_idle_kb_per_session": 64.0,
}


def _config(async_frontend: bool) -> HyperQConfig:
    return HyperQConfig(
        converters=1, filewriters=1, credits=256,
        metrics_enabled=False, async_frontend=async_frontend,
        gateway_shards=SHARDS)


def _percentile(values: list[float], q: float) -> float:
    ordered = sorted(values)
    return ordered[min(len(ordered) - 1, int(q * len(ordered)))]


def run_burst(async_frontend: bool, sessions: int) -> dict:
    """``sessions`` feeds connect and load simultaneously (reconnect
    storm); returns throughput + per-session completion spread."""
    listener = TcpListener()
    stack = build_stack(config=_config(async_frontend),
                        listener=listener)
    workloads = [
        make_workload(ROWS, row_bytes=ROW_BYTES, seed=3 + i,
                      table=f"PROD.T{i}", name=f"feed{i}")
        for i in range(sessions)]
    try:
        for workload in workloads:
            stack.engine.execute(workload.ddl)
        barrier = threading.Barrier(sessions + 1)
        times: list[float | None] = [None] * sessions
        failures: list[BaseException] = []

        def run_feed(index: int, workload) -> None:
            try:
                barrier.wait()
                started = time.perf_counter()
                client = LegacyEtlClient(listener.connect, timeout=120)
                client.logon("h", "etl", "pw")
                result = client.run_import(ImportJobSpec(
                    target_table=workload.target_table,
                    et_table=workload.et_table,
                    uv_table=workload.uv_table,
                    layout=workload.layout,
                    apply_sql=workload.apply_sql,
                    data=workload.data,
                    sessions=1, chunk_bytes=CHUNK_BYTES))
                client.logoff()
                assert result.rows_inserted == \
                    workload.expected_good_rows
                times[index] = time.perf_counter() - started
            except BaseException as exc:  # pragma: no cover
                failures.append(exc)

        threads = [
            threading.Thread(target=run_feed, args=(i, w), daemon=True)
            for i, w in enumerate(workloads)]
        for thread in threads:
            thread.start()
        barrier.wait()
        wall_started = time.perf_counter()
        for thread in threads:
            thread.join(timeout=300)
        wall_s = time.perf_counter() - wall_started
        assert not failures, failures[0]
        assert all(t is not None for t in times)
        done = [t for t in times if t is not None]
        return {
            "sessions": sessions,
            "wall_s": round(wall_s, 4),
            "jobs_per_s": round(sessions / wall_s, 2),
            "median_s": round(_percentile(done, 0.5), 4),
            "p95_s": round(_percentile(done, 0.95), 4),
        }
    finally:
        stack.node.stop()


def _vm_rss_kb() -> int:
    with open("/proc/self/status", encoding="ascii") as handle:
        for line in handle:
            if line.startswith("VmRSS:"):
                return int(line.split()[1])
    raise RuntimeError("VmRSS not found")  # pragma: no cover


def run_idle() -> dict:
    """Open IDLE_SESSIONS sockets against the async front end and
    measure what they cost: RSS, threads, and whether the node still
    serves work instantly underneath the pile."""
    listener = TcpListener()
    stack = build_stack(config=_config(True), listener=listener)
    idle = []
    try:
        frontend = stack.node.frontend
        threads_before = threading.active_count()
        rss_before = _vm_rss_kb()
        for _ in range(IDLE_SESSIONS):
            idle.append(listener.connect())
        deadline = time.monotonic() + 60
        while frontend.connections_active < IDLE_SESSIONS:
            assert time.monotonic() < deadline, \
                f"only {frontend.connections_active} sessions admitted"
            time.sleep(0.05)
        rss_after = _vm_rss_kb()
        threads_after = threading.active_count()

        # Liveness under the pile: a fresh feed still completes.
        workload = make_workload(ROWS, row_bytes=ROW_BYTES, seed=997,
                                 table="PROD.UNDERPILE")
        stack.engine.execute(workload.ddl)
        started = time.perf_counter()
        client = LegacyEtlClient(listener.connect, timeout=60)
        client.logon("h", "etl", "pw")
        result = client.run_import(ImportJobSpec(
            target_table=workload.target_table,
            et_table=workload.et_table,
            uv_table=workload.uv_table,
            layout=workload.layout,
            apply_sql=workload.apply_sql,
            data=workload.data, sessions=1,
            chunk_bytes=CHUNK_BYTES))
        client.logoff()
        assert result.rows_inserted == workload.expected_good_rows
        load_under_pile_s = time.perf_counter() - started

        delta_kb = max(rss_after - rss_before, 0)
        return {
            "idle_sessions": IDLE_SESSIONS,
            "rss_delta_kb": delta_kb,
            "kb_per_session": round(delta_kb / IDLE_SESSIONS, 2),
            "threads_added": threads_after - threads_before,
            "load_under_pile_s": round(load_under_pile_s, 4),
        }
    finally:
        for endpoint in idle:
            endpoint.close_both()
        stack.node.stop()


def test_concurrency(results_dir):
    curve = {"threaded": [], "async": []}
    for sessions in (1, 8, 64):
        curve["threaded"].append(run_burst(False, sessions))
        curve["async"].append(run_burst(True, sessions))
    curve["async"].append(run_burst(True, 256))
    idle = run_idle()

    by_n = {row["sessions"]: row for row in curve["async"]}
    threaded_by_n = {row["sessions"]: row for row in curve["threaded"]}
    speedup_64 = round(
        by_n[64]["jobs_per_s"] / threaded_by_n[64]["jobs_per_s"], 2)

    def fairness(row: dict) -> float:
        return row["p95_s"] / max(row["median_s"], 1e-9)

    fairness_growth = round(fairness(by_n[64]) / fairness(by_n[8]), 2)

    lines = [format_series(f"{mode} front end, burst arrival", rows)
             for mode, rows in curve.items()]
    lines.append(
        f"speedup@64: {speedup_64}x   "
        f"fairness growth 8->64: {fairness_growth}x\n"
        f"idle: {idle['idle_sessions']} sessions, "
        f"{idle['kb_per_session']} KiB/session, "
        f"+{idle['threads_added']} threads, "
        f"load under pile {idle['load_under_pile_s']}s")
    emit(results_dir, "concurrency", "\n\n".join(lines))

    bench_json("concurrency", {
        "rows_per_feed": ROWS,
        "sessions_curve": curve,
        "speedup_at_64": speedup_64,
        "fairness_p95_over_median": {
            "async_8": round(fairness(by_n[8]), 2),
            "async_64": round(fairness(by_n[64]), 2),
            "growth_8_to_64": fairness_growth,
        },
        "idle": idle,
        "gates": GATES,
    })

    # -- gates (the acceptance criteria of the sharded front end) -----
    assert speedup_64 >= GATES["min_speedup_at_64"], \
        f"async only {speedup_64}x threaded at 64 sessions"
    assert fairness_growth <= GATES["max_fairness_growth_8_to_64"], \
        f"p95/median grew {fairness_growth}x from 8 to 64 sessions"
    assert idle["kb_per_session"] <= GATES["max_idle_kb_per_session"]
    # Scaling shape: async throughput at 64 must not be below its
    # 8-session throughput (near-linear), and it must survive 256.
    assert by_n[64]["jobs_per_s"] >= 0.8 * by_n[8]["jobs_per_s"]
    assert by_n[256]["jobs_per_s"] > 0
