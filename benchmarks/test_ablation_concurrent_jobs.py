"""Ablation — concurrent ETL jobs sharing one CreditManager (Section 5).

"In real-world environments, several ETL acquisitions run concurrently
against a single Hyper-Q node.  To maximize throughput and avoid
overloading the system in such situations, one CreditManager is spawned
per Hyper-Q node, with each CreditManager being shared for all
concurrent ETL jobs on the node."

This ablation runs the same total data volume as 1, 2, and 4 concurrent
jobs on one node and reports aggregate wall time plus the shared pool's
contention counters — demonstrating that the node stays stable (bounded
in-flight work) while concurrency improves wall-clock utilization.
"""

from __future__ import annotations

import threading
import time

from conftest import emit, scaled

from repro.bench import build_stack, format_series
from repro.core import HyperQConfig
from repro.legacy.client import ImportJobSpec, LegacyEtlClient
from repro.workloads import make_workload

TOTAL_ROWS = scaled(8_000)


def _run_point(concurrency: int):
    rows_per_job = TOTAL_ROWS // concurrency
    stack = build_stack(config=HyperQConfig(
        converters=4, filewriters=2, credits=16))
    try:
        workloads = [
            make_workload(rows=rows_per_job, row_bytes=250,
                          seed=500 + i, table=f"C.J{i}")
            for i in range(concurrency)
        ]
        setup = LegacyEtlClient(stack.node.connect)
        setup.logon("h", "u", "p")
        for workload in workloads:
            setup.execute_sql(workload.ddl)
        setup.logoff()

        failures: list[BaseException] = []

        def run_one(workload):
            try:
                client = LegacyEtlClient(stack.node.connect)
                client.logon("h", "u", "p")
                client.run_import(ImportJobSpec(
                    target_table=workload.target_table,
                    et_table=workload.et_table,
                    uv_table=workload.uv_table,
                    layout=workload.layout,
                    apply_sql=workload.apply_sql,
                    data=workload.data, sessions=2,
                    chunk_bytes=64 * 1024))
                client.logoff()
            except BaseException as exc:  # pragma: no cover
                failures.append(exc)

        started = time.perf_counter()
        threads = [threading.Thread(target=run_one, args=(w,))
                   for w in workloads]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        elapsed = time.perf_counter() - started
        assert not failures, failures
        stats = stack.node.stats()
        total_loaded = stats["rows_loaded"]
        credits = stats["credits"]
        stack.node.credits.check_conservation()
    finally:
        stack.close()
    return elapsed, total_loaded, credits


def test_ablation_concurrent_jobs(benchmark, results_dir):
    series = []
    for concurrency in (1, 2, 4):
        elapsed, loaded, credits = _run_point(concurrency)
        series.append({
            "concurrent_jobs": concurrency,
            "wall_s": round(elapsed, 3),
            "rows_loaded": loaded,
            "credit_blocked": credits["blocked_acquires"],
            "credit_min_avail": credits["min_available"],
        })
    text = format_series(
        f"Ablation: concurrent jobs sharing one CreditManager "
        f"({TOTAL_ROWS} total rows)",
        series,
        note="expect: all rows load under every concurrency; the shared "
             "pool bounds in-flight work (min_avail >= 0, conserved)")
    emit(results_dir, "ablation_concurrent_jobs", text)

    assert all(row["rows_loaded"] >= TOTAL_ROWS - 4 * 3
               for row in series)

    benchmark.pedantic(_run_point, args=(2,), rounds=1, iterations=1)
