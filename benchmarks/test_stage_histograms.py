"""Stage-latency histograms — the observability layer's bench surface.

Runs one import workload through a fully instrumented stack and emits
the per-stage latency table (receive/convert/write/upload/copy/apply)
built from the node's ``hyperq_stage_seconds`` histograms — the data
behind the paper's "where does the time go" analysis, now recorded
alongside the figure series on every bench run.
"""

from __future__ import annotations

from conftest import emit, scaled

from repro.bench import format_series
from repro.bench.harness import (
    build_stack, run_workload_through_hyperq, stage_timing_rows,
)
from repro.core.config import HyperQConfig
from repro.workloads.generator import make_workload

PIPELINE_STAGES = {"receive", "convert", "write", "upload", "copy",
                   "apply"}


def test_stage_histograms(results_dir):
    workload = make_workload(scaled(12_500))
    config = HyperQConfig(metrics_enabled=True)
    with build_stack(config=config) as stack:
        metrics = run_workload_through_hyperq(stack, workload,
                                              sessions=2)
        rows = stage_timing_rows(stack.node)

    text = format_series(
        f"Pipeline stage latencies ({workload.rows} rows)",
        rows,
        note="from hyperq_stage_seconds; ms per unit of stage work")
    emit(results_dir, "stage_histograms", text)

    assert {row["stage"] for row in rows} >= PIPELINE_STAGES, \
        "every pipeline stage should have been observed"
    assert metrics.rows_inserted == workload.rows
    for row in rows:
        assert row["count"] > 0
        assert row["p50_ms"] <= row["p99_ms"] <= row["max_ms"]
