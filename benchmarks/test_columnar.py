"""Columnar storage + vectorized execution A/B (PR 8).

Four measurements against the retained row-of-tuples fallback
(``HyperQConfig.columnar=False`` / ``CdwEngine(columnar=False)``),
written together into ``BENCH_columnar.json``:

1. full-table scan and aggregate microbench — gated at >= 2x;
2. COPY INTO of staged CSV bytes — gated at >= 1.3x;
3. the Figure 7 import job end to end (single session, so the
   measurement is the pipeline and not thread-scheduling noise) —
   gated at >= 1.3x on the median of alternating pairs;
4. resident table memory after loading the Figure 7 4x-scale dataset
   (tracemalloc) — gated at >= 30% lower in columnar mode.

The paper's premise is that the virtualized CDW must absorb legacy ETL
at competitive cost; the storage layout is where the reproduction's
interpreter overhead lived, so this file is the PR's headline gate.
"""

from __future__ import annotations

import random
import statistics
import time
import tracemalloc

from conftest import bench_json, emit, scaled

from repro.bench.harness import run_import_workload
from repro.cdw import stagefile
from repro.cdw.cloudstore import CloudStore
from repro.cdw.engine import CdwEngine
from repro.core.config import HyperQConfig
from repro.workloads.generator import make_workload

MICRO_ROWS = scaled(60_000)
FIG7_ROWS = scaled(50_000)          # the Figure 7 4x point


def _micro_engine(columnar: bool, rows: int) -> CdwEngine:
    engine = CdwEngine(store=CloudStore(), columnar=columnar)
    engine.execute(
        "CREATE TABLE T (ID INT, GRP INT, AMT DOUBLE, "
        "NAME NVARCHAR(40), __SEQ BIGINT)")
    rng = random.Random(20230807)
    engine.table("T").append_rows([
        (i, rng.randrange(0, 100), round(rng.uniform(0, 1000), 2),
         f"name{i % 997}", i)
        for i in range(rows)])
    return engine


def _best_of(fn, repeats: int = 3) -> float:
    times = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        times.append(time.perf_counter() - start)
    return min(times)


def _copy_engine(columnar: bool, data: bytes) -> CdwEngine:
    engine = CdwEngine(store=CloudStore(), columnar=columnar)
    engine.store.create_container("stage")
    engine.store.put_blob("stage", "j/p0.csv.gz", data)
    engine.execute(
        "CREATE TABLE C (ID INT, GRP INT, AMT DOUBLE, "
        "NAME NVARCHAR(40))")
    return engine


def _fig7_job(columnar: bool) -> float:
    workload = make_workload(rows=FIG7_ROWS, row_bytes=500, seed=74)
    metrics = run_import_workload(
        workload,
        config=HyperQConfig(converters=1, filewriters=1, credits=32,
                            columnar=columnar),
        sessions=1, chunk_bytes=1 << 20)
    return metrics.total_s


def test_columnar_ab(results_dir):
    # -- 1. scan / aggregate microbench --------------------------------------
    engines = {mode: _micro_engine(mode, MICRO_ROWS)
               for mode in (True, False)}
    scan_sql = "SELECT ID, NAME FROM T WHERE AMT > 500 AND GRP < 50"
    agg_sql = "SELECT GRP, COUNT(*), SUM(AMT) FROM T GROUP BY GRP"
    micro = {}
    for label, sql in (("scan", scan_sql), ("aggregate", agg_sql)):
        col_t = _best_of(lambda: engines[True].query(sql))
        row_t = _best_of(lambda: engines[False].query(sql))
        assert engines[True].query(sql) == engines[False].query(sql)
        micro[label] = {"columnar_s": round(col_t, 4),
                        "row_s": round(row_t, 4),
                        "speedup": round(row_t / col_t, 2)}

    # -- 2. COPY INTO staged bytes -------------------------------------------
    rng = random.Random(7)
    staged = stagefile.compress(stagefile.encode_csv_rows([
        (i, rng.randrange(0, 100), round(rng.uniform(0, 1000), 2),
         f"name{i % 997}")
        for i in range(MICRO_ROWS)]))
    copy = {}
    for mode in (True, False):
        engine = _copy_engine(mode, staged)
        start = time.perf_counter()
        engine.execute("COPY INTO C FROM 'store://stage/j/' FORMAT csv")
        copy["columnar_s" if mode else "row_s"] = round(
            time.perf_counter() - start, 4)
        assert engine.query("SELECT COUNT(*) FROM C") == [(MICRO_ROWS,)]
    copy["speedup"] = round(copy["row_s"] / copy["columnar_s"], 2)

    # -- 3. Figure 7 import job end to end -----------------------------------
    _fig7_job(True)                                 # warm both pipelines
    _fig7_job(False)
    col_runs, row_runs = [], []
    for _ in range(3):                              # alternating pairs
        col_runs.append(_fig7_job(True))
        row_runs.append(_fig7_job(False))
    e2e = {
        "rows": FIG7_ROWS,
        "columnar_s": [round(t, 3) for t in col_runs],
        "row_s": [round(t, 3) for t in row_runs],
        "median_speedup": round(
            statistics.median(row_runs) / statistics.median(col_runs),
            2),
    }

    # -- 4. resident table memory at the Fig 7 4x scale ----------------------
    memory = {}
    for mode in (True, False):
        tracemalloc.start()
        engine = _copy_engine(mode, staged)
        engine.execute("COPY INTO C FROM 'store://stage/j/' FORMAT csv")
        resident, _peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        key = "columnar" if mode else "row"
        memory[f"{key}_resident_bytes"] = resident
        memory[f"{key}_table_bytes"] = \
            engine.table("C").storage_info()["bytes"]
    memory["resident_reduction_%"] = round(
        100 * (1 - memory["columnar_resident_bytes"]
               / memory["row_resident_bytes"]), 1)

    payload = {"rows": MICRO_ROWS, "micro": micro, "copy": copy,
               "fig7_e2e": e2e, "memory": memory}
    bench_json("columnar", payload)
    emit(results_dir, "columnar_ab", "\n".join([
        "Columnar vs row-fallback A/B",
        f"  scan       {micro['scan']['speedup']}x",
        f"  aggregate  {micro['aggregate']['speedup']}x",
        f"  copy       {copy['speedup']}x",
        f"  fig7 e2e   {e2e['median_speedup']}x (median of 3 pairs)",
        f"  resident memory  -{memory['resident_reduction_%']}%",
    ]))

    # -- gates ---------------------------------------------------------------
    assert micro["scan"]["speedup"] >= 2.0, micro
    assert micro["aggregate"]["speedup"] >= 2.0, micro
    assert copy["speedup"] >= 1.3, copy
    assert e2e["median_speedup"] >= 1.3, e2e
    assert memory["resident_reduction_%"] >= 30.0, memory
