"""WLM benchmark — fair-share isolation and graceful degradation.

Two results, persisted to ``BENCH_wlm.json`` at the repo root (plus a
human-readable table under ``benchmarks/results/``):

* scheduler fairness A/B: two equal-weight pools share a 4-credit
  manager; the "hog" pool runs 8 worker threads against the "meek"
  pool's 2.  Under the fair-share arbiter both pools must land within
  1.5x of each other's grant throughput; under the ``fifo`` baseline
  (straight pass-through to the manager) the hog exceeds 3x, because
  arrival rate alone decides who gets credits.
* graceful degradation e2e: 8 concurrent clients target a pool sized
  for 4 (2 slots + 2 queue entries — 2x oversubscribed).  Surplus
  sessions are shed with retryable ``WLM_THROTTLED`` errors, back off
  per the server hint, and retry; every job must finish with the right
  row counts and zero aborts.

CI's wlm-smoke job runs this module and fails on either assertion.
"""

from __future__ import annotations

import threading
import time

from conftest import bench_json, bench_scale, emit, scaled

from repro.bench import build_stack, format_series
from repro.core.config import HyperQConfig
from repro.core.credits import CreditManager
from repro.legacy.client import ImportJobSpec, LegacyEtlClient
from repro.wlm import FairShareCreditArbiter
from repro.workloads import multi_tenant_workloads

SCALE = bench_scale()

CREDITS = 4
HOG_THREADS = 8
MEEK_THREADS = 2
HOLD_S = 0.001
DURATION_S = 1.2

CLIENTS = 8
POOL_SLOTS = 2
POOL_QUEUE = 2
ROWS_PER_CLIENT = scaled(400)

_RESULTS: dict = {"scale": SCALE}


def _grant_rates(policy: str) -> dict[str, int]:
    """Grants per pool after DURATION_S of saturated churn."""
    manager = CreditManager(CREDITS, timeout_s=30)
    arbiter = FairShareCreditArbiter(
        manager, {"hog": 1.0, "meek": 1.0}, policy=policy)
    grants = {"hog": 0, "meek": 0}
    lock = threading.Lock()
    stop = threading.Event()

    def worker(pool: str) -> None:
        while not stop.is_set():
            credit = arbiter.acquire(pool)
            time.sleep(HOLD_S)
            arbiter.release(credit, pool)
            with lock:
                grants[pool] += 1

    threads = [threading.Thread(target=worker, args=("hog",), daemon=True)
               for _ in range(HOG_THREADS)]
    threads += [threading.Thread(target=worker, args=("meek",), daemon=True)
                for _ in range(MEEK_THREADS)]
    for thread in threads:
        thread.start()
    time.sleep(DURATION_S)
    stop.set()
    for thread in threads:
        thread.join(timeout=10)
    manager.check_conservation()
    return grants


def test_fair_share_isolates_equal_weight_pools(results_dir):
    """Fair policy: ratio <= 1.5x; fifo baseline: ratio >= 3x."""
    series = []
    ratios = {}
    for policy in ("fair", "fifo"):
        grants = _grant_rates(policy)
        ratio = grants["hog"] / max(grants["meek"], 1)
        ratios[policy] = ratio
        series.append({
            "policy": policy,
            "hog_grants": grants["hog"],
            "meek_grants": grants["meek"],
            "hog_over_meek": round(ratio, 2),
        })
        _RESULTS.setdefault("scheduler_fairness", {
            "credits": CREDITS, "duration_s": DURATION_S,
            "hold_ms": HOLD_S * 1000,
            "threads": {"hog": HOG_THREADS, "meek": MEEK_THREADS},
            "policies": {},
        })["policies"][policy] = {
            "hog_grants": grants["hog"],
            "meek_grants": grants["meek"],
            "ratio": round(ratio, 3),
        }
    text = format_series(
        f"WLM fair-share A/B ({CREDITS} credits, "
        f"{HOG_THREADS}v{MEEK_THREADS} threads, equal weights)",
        series,
        note="expect: fair within 1.5x, fifo dominated by arrival rate")
    emit(results_dir, "wlm_fairness", text)

    assert ratios["fair"] <= 1.5, \
        f"fair-share pools diverged {ratios['fair']:.2f}x (limit 1.5x)"
    assert ratios["fifo"] >= 3.0, \
        f"fifo baseline ratio {ratios['fifo']:.2f}x should exceed 3x"


def test_graceful_degradation_under_oversubscription(results_dir):
    """2x oversubscription: throttle + retry, zero aborts."""
    profile = {
        "policy": "fair",
        "pools": [{"name": "etl", "weight": 1,
                   "max_concurrency": POOL_SLOTS,
                   "queue_limit": POOL_QUEUE,
                   "queue_timeout_s": 0.25,
                   "retry_after_s": 0.05,
                   "match": {"user": "*"}}],
    }
    tenants = multi_tenant_workloads(
        tenants=1, scripts=CLIENTS, base_rows=ROWS_PER_CLIENT,
        skew=1.0, seed=31, row_bytes=100)
    workloads = tenants[0].workloads
    config = HyperQConfig(credits=8, converters=2, filewriters=2,
                          wlm_profile=profile)
    loaded: dict[str, int] = {}
    failures: list[BaseException] = []
    lock = threading.Lock()

    with build_stack(config=config) as stack:
        for workload in workloads:
            stack.engine.execute(workload.ddl)

        def run_client(workload) -> None:
            try:
                client = LegacyEtlClient(stack.node.connect, timeout=60)
                client.logon("cdw-host", "etl", "secret")
                result = client.run_import(ImportJobSpec(
                    target_table=workload.target_table,
                    et_table=workload.et_table,
                    uv_table=workload.uv_table,
                    layout=workload.layout,
                    apply_sql=workload.apply_sql,
                    data=workload.data,
                    sessions=1,
                    admission_retry_attempts=40,
                    admission_backoff_s=0.05))
                client.logoff()
                with lock:
                    loaded[workload.name] = result.rows_inserted
            except BaseException as exc:  # pragma: no cover
                failures.append(exc)

        started = time.perf_counter()
        threads = [threading.Thread(target=run_client, args=(w,),
                                    daemon=True) for w in workloads]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120)
        wall_s = time.perf_counter() - started

        assert not failures, failures
        for workload in workloads:
            assert loaded[workload.name] == workload.expected_good_rows
        stack.node.credits.check_conservation()
        pool = stack.node.stats()["wlm"]["pools"]["etl"]

    # 8 arrivals into 2 slots + 2 queue entries must shed someone, and
    # every shed session must have recovered via retry (all rows landed).
    assert pool["admitted"] == CLIENTS
    throttled = pool["throttled"] + pool["queue_timeouts"]
    assert throttled >= 1, "2x oversubscription never throttled anyone"
    assert pool["occupied_slots"] == 0
    assert pool["queue_depth"] == 0

    _RESULTS["graceful_degradation"] = {
        "clients": CLIENTS,
        "capacity": {"slots": POOL_SLOTS, "queue": POOL_QUEUE},
        "rows_per_client": ROWS_PER_CLIENT,
        "admitted": pool["admitted"],
        "throttled": pool["throttled"],
        "queue_timeouts": pool["queue_timeouts"],
        "max_admission_wait_s": pool["max_admission_wait_s"],
        "aborted": 0,
        "rows_loaded": sum(loaded.values()),
        "wall_s": round(wall_s, 3),
    }
    series = [{
        "clients": CLIENTS,
        "capacity": POOL_SLOTS + POOL_QUEUE,
        "admitted": pool["admitted"],
        "throttled": pool["throttled"],
        "queue_timeouts": pool["queue_timeouts"],
        "aborted": 0,
        "wall_s": round(wall_s, 3),
    }]
    emit(results_dir, "wlm_degradation", format_series(
        "WLM graceful degradation (2x oversubscribed pool)", series,
        note="expect: throttled >= 1, aborted == 0, all rows loaded"))

    bench_json("wlm", _RESULTS)
