"""Ablation — staging-file compression vs. link bandwidth (Section 6).

"Data compression can improve upload speed if the communication link
between the Hyper-Q server and the CDW is slow."  We run the same job
with and without gzip over a slow simulated link and over a fast one:
compression should pay on the slow link (fewer bytes cross it) and be
roughly neutral-to-negative on the fast link (pure CPU overhead).
"""

from __future__ import annotations

from conftest import emit, scaled

from repro.bench import (
    build_stack, format_series, run_workload_through_hyperq,
)
from repro.core import HyperQConfig
from repro.workloads import make_workload

ROWS = scaled(6_000)
SLOW_LINK = 2e6    # 2 MB/s
FAST_LINK = None   # instantaneous


def _run_point(compression: str | None, bandwidth: float | None):
    workload = make_workload(rows=ROWS, row_bytes=300, seed=53)
    config = HyperQConfig(converters=4, filewriters=2, credits=32,
                          compression=compression,
                          file_threshold_bytes=256 * 1024)
    with build_stack(config=config,
                     link_bandwidth_bytes_per_s=bandwidth) as stack:
        metrics = run_workload_through_hyperq(
            stack, workload, sessions=4, chunk_bytes=64 * 1024)
        uploaded = stack.store.bytes_uploaded
    return metrics, uploaded


def test_ablation_compression(benchmark, results_dir):
    series = []
    results = {}
    for link_name, bandwidth in (("slow", SLOW_LINK), ("fast", FAST_LINK)):
        for compression in (None, "gzip"):
            metrics, uploaded = _run_point(compression, bandwidth)
            key = (link_name, compression or "none")
            results[key] = metrics
            series.append({
                "link": link_name,
                "compression": compression or "none",
                "uploaded_KiB": uploaded // 1024,
                "acquisition_s": metrics.acquisition_s,
                "total_s": metrics.total_s,
            })
    text = format_series(
        f"Ablation: compression x link bandwidth ({ROWS} rows)",
        series,
        note="expect: gzip wins on the slow link (fewer bytes cross it)")
    emit(results_dir, "ablation_compression", text)

    assert results[("slow", "gzip")].acquisition_s \
        < results[("slow", "none")].acquisition_s, \
        "compression must speed up acquisition over a slow link"

    benchmark.pedantic(
        _run_point, args=("gzip", None), rounds=1, iterations=1)
