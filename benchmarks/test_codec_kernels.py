"""Codec kernel microbenchmarks — compiled vs reference (A/B, same process).

Three results in one module, all persisted to ``BENCH_codec.json`` at the
repo root (plus a human-readable table under ``benchmarks/results/``):

* micro: encode/decode rows-per-second for BINARY and VARTEXT, narrow and
  wide layouts, reference interpreters vs the layout-compiled codecs from
  :mod:`repro.legacy.codec`.  The reference classes are the unchanged
  pre-compilation code, so the in-process A/B *is* the before/after.
* e2e: one Figure-7-sized import with compiled codecs disabled
  (``HyperQConfig(compiled_codecs=False)`` + ``datafmt.DEFAULT_COMPILED``
  off) vs the default compiled stack.
* plan cache: DML prepared-plan hit rate on an error-heavy load (the
  Figure 11 shape), read back through ``hyperq_plan_cache_*_total``.

Timing discipline: every measured callable gets a warmup pass, then the
best of ``REPEATS`` runs is kept — cold-start dominates single-shot
numbers and skews the ratios.  CI's perf-smoke job runs this module and
fails if a compiled path comes in slower than its reference.
"""

from __future__ import annotations

import datetime
import random
import time
from decimal import Decimal

import pytest

from conftest import bench_json, bench_scale, emit, scaled

from repro.bench import format_series
from repro.bench.harness import build_stack, run_import_workload, \
    run_workload_through_hyperq
from repro.core.config import HyperQConfig
from repro.legacy import datafmt
from repro.legacy.codec import compile_format
from repro.legacy.datafmt import BinaryFormat, FormatSpec, VartextFormat
from repro.legacy.types import FieldDef, Layout, parse_type
from repro.workloads import make_workload

SCALE = bench_scale()
N_NARROW = scaled(12_000)
N_WIDE = scaled(4_000)
REPEATS = 5

#: Seed-commit numbers (commit 59595d8, before this PR), measured with the
#: same warmed best-of-5 discipline on the reference machine.  They anchor
#: the trajectory in BENCH_codec.json; the per-run "reference" column is
#: the same code re-measured on the current machine, so ratios computed
#: from it stay hardware-independent.
PRE_PR_BASELINE = {
    "commit": "59595d8",
    "micro_rows_per_s": {
        "binary_narrow": {"encode": 274_906, "decode": 244_821},
        "binary_wide": {"encode": 66_026, "decode": 40_403},
        "vartext_narrow": {"encode": 119_371, "decode": 123_415},
        "vartext_wide": {"encode": 56_171, "decode": 36_921},
    },
    "e2e_fig7_1x": {"rows": 12_500, "total_s": 1.985,
                    "acquisition_s": 1.633, "application_s": 0.347},
}

# accumulated by the tests, flushed once per module run
_RESULTS: dict = {"scale": SCALE, "repeats": REPEATS,
                  "baseline_pre_pr": PRE_PR_BASELINE}


@pytest.fixture(scope="module", autouse=True)
def _flush_bench_json():
    """Write BENCH_codec.json after the module's tests have run."""
    yield
    payload = dict(_RESULTS)
    headline = {}
    micro = payload.get("micro")
    if micro and "binary_narrow" in micro:
        headline["binary_narrow_decode_speedup_vs_reference"] = \
            micro["binary_narrow"]["decode"]["speedup"]
    e2e = payload.get("e2e_fig7")
    if e2e and abs(SCALE - 1.0) < 1e-9:
        headline["fig7_1x_speedup_vs_pre_pr"] = round(
            PRE_PR_BASELINE["e2e_fig7_1x"]["total_s"]
            / e2e["compiled"]["total_s"], 2)
    plan = payload.get("plan_cache")
    if plan:
        headline["plan_cache_hit_rate"] = plan["hit_rate"]
    payload["headline"] = headline
    bench_json("codec", payload)


# -- layouts and data ---------------------------------------------------------

def _narrow_layout() -> Layout:
    return Layout("NARROW", [
        FieldDef("ID", parse_type("integer")),
        FieldDef("NAME", parse_type("varchar(24)")),
        FieldDef("AMOUNT", parse_type("float")),
        FieldDef("DAY", parse_type("date")),
    ])


def _wide_layout() -> Layout:
    kinds = ["integer", "varchar(16)", "float", "date", "bigint",
             "smallint", "decimal(12,2)", "timestamp"]
    return Layout("WIDE", [
        FieldDef(f"C{i}", parse_type(kinds[i % len(kinds)]))
        for i in range(16)
    ])


def _rows_for(layout: Layout, count: int, seed: int,
              null_rate: float = 0.05) -> list[tuple]:
    rng = random.Random(seed)
    day0 = datetime.date(2020, 1, 1)
    ts0 = datetime.datetime(2021, 1, 1)
    rows = []
    for _ in range(count):
        row = []
        for fld in layout.fields:
            if rng.random() < null_rate:
                row.append(None)
                continue
            base = fld.type.base
            if base == "INTEGER":
                row.append(rng.randrange(-10**6, 10**6))
            elif base == "BIGINT":
                row.append(rng.randrange(-2**40, 2**40))
            elif base == "SMALLINT":
                row.append(rng.randrange(-30_000, 30_000))
            elif base == "BYTEINT":
                row.append(rng.randrange(-100, 100))
            elif base == "FLOAT":
                row.append(rng.random() * 1e4)
            elif base == "DECIMAL":
                row.append(Decimal(rng.randrange(0, 10**8)) / 100)
            elif base == "DATE":
                row.append(day0 + datetime.timedelta(
                    days=rng.randrange(0, 2000)))
            elif base == "TIMESTAMP":
                row.append(ts0 + datetime.timedelta(
                    seconds=rng.randrange(0, 10**7)))
            else:
                row.append("".join(
                    rng.choice("abcdefgh")
                    for _ in range(rng.randrange(0, 12))))
        rows.append(tuple(row))
    return rows


def _best_of(fn, repeats: int = REPEATS) -> float:
    fn()  # warmup: first call pays allocation/caching costs
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


_CASES = [
    ("binary_narrow", "binary", _narrow_layout, N_NARROW),
    ("binary_wide", "binary", _wide_layout, N_WIDE),
    ("vartext_narrow", "vartext", _narrow_layout, N_NARROW),
    ("vartext_wide", "vartext", _wide_layout, N_WIDE),
]


def test_codec_micro(results_dir):
    table_rows = []
    micro: dict = {}
    for case, kind, layout_fn, count in _CASES:
        layout = layout_fn()
        spec = FormatSpec(kind=kind)
        if kind == "binary":
            reference = BinaryFormat(layout)
        else:
            reference = VartextFormat(layout, delimiter=spec.delimiter)
        compiled = compile_format(spec, layout)
        rows = _rows_for(layout, count, seed=hash(case) % 10_000)
        data = reference.encode_records(rows)
        assert compiled.encode_records(rows) == data
        assert list(compiled.iter_decode(data)) == \
            list(reference.iter_decode(data))

        case_result: dict = {}
        for op, ref_fn, fast_fn in [
            ("encode",
             lambda f=reference: f.encode_records(rows),
             lambda f=compiled: f.encode_records(rows)),
            ("decode",
             lambda f=reference: list(f.iter_decode(data)),
             lambda f=compiled: list(f.iter_decode(data))),
        ]:
            ref_rps = count / _best_of(ref_fn)
            fast_rps = count / _best_of(fast_fn)
            speedup = fast_rps / ref_rps
            case_result[op] = {
                "reference_rows_per_s": round(ref_rps),
                "compiled_rows_per_s": round(fast_rps),
                "speedup": round(speedup, 2),
            }
            table_rows.append({
                "case": case, "op": op, "rows": count,
                "reference_r/s": round(ref_rps),
                "compiled_r/s": round(fast_rps),
                "speedup": f"{speedup:.2f}x",
            })
            assert speedup >= 1.0, \
                f"{case} {op}: compiled path slower than reference " \
                f"({fast_rps:.0f} vs {ref_rps:.0f} rows/s)"
        micro[case] = case_result

    _RESULTS["micro"] = micro
    text = format_series(
        "Codec kernels: compiled vs reference (warmed best-of-"
        f"{REPEATS})", table_rows,
        note="reference = pre-PR interpreters (unchanged in-tree code)")
    emit(results_dir, "codec_kernels", text)

    assert micro["binary_narrow"]["decode"]["speedup"] >= 2.0, \
        "headline: compiled BINARY decode must be >= 2x the reference"


def test_codec_e2e_fig7(results_dir):
    rows = scaled(12_500)
    legs = {}
    for leg, compiled in [("reference", False), ("compiled", True)]:
        saved = datafmt.DEFAULT_COMPILED
        datafmt.DEFAULT_COMPILED = compiled
        try:
            workload = make_workload(rows=rows, row_bytes=500, seed=71)
            metrics = run_import_workload(
                workload,
                config=HyperQConfig(converters=4, filewriters=2,
                                    credits=32, compiled_codecs=compiled),
                sessions=4, chunk_bytes=256 * 1024)
        finally:
            datafmt.DEFAULT_COMPILED = saved
        legs[leg] = {
            "rows": rows,
            "total_s": round(metrics.total_s, 3),
            "acquisition_s": round(metrics.acquisition_s, 3),
            "application_s": round(metrics.application_s, 3),
        }
    speedup = legs["reference"]["total_s"] / legs["compiled"]["total_s"]
    _RESULTS["e2e_fig7"] = {**legs, "speedup": round(speedup, 2)}
    emit(results_dir, "codec_e2e_fig7", format_series(
        f"Figure 7 (1x, {rows} rows): codecs off vs on",
        [{"leg": leg, **vals} for leg, vals in legs.items()],
        note="'reference' runs the whole stack with compiled_codecs=False"))
    assert legs["compiled"]["total_s"] <= \
        legs["reference"]["total_s"] * 1.05, \
        "compiled codecs should not slow the end-to-end import"


def test_plan_cache_hit_rate(results_dir):
    workload = make_workload(rows=scaled(4_000), row_bytes=500, seed=72,
                             error_rate=0.05)
    with build_stack() as stack:
        run_workload_through_hyperq(
            stack, workload, sessions=2, max_errors=10**9)
        stats = stack.node.stats()["plan_cache"]["dml"]
        hits = stack.node.obs.plan_cache_hits.labels().value
        misses = stack.node.obs.plan_cache_misses.labels().value
    assert hits == stats["hits"] and misses == stats["misses"], \
        "hyperq_plan_cache_*_total must mirror the cache's own counters"
    _RESULTS["plan_cache"] = {
        "workload": {"rows": workload.rows, "error_rate": 0.05},
        "hits": stats["hits"], "misses": stats["misses"],
        "evictions": stats["evictions"], "hit_rate": stats["hit_rate"],
    }
    emit(results_dir, "codec_plan_cache", format_series(
        "DML prepared-plan cache on an error-heavy load",
        [_RESULTS["plan_cache"]["workload"] | {
            "hits": stats["hits"], "misses": stats["misses"],
            "hit_rate": stats["hit_rate"]}]))
    assert stats["hit_rate"] > 0.95, \
        "adaptive splitting should hit the prepared-plan cache >95%"
