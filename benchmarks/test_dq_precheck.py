"""DQ precheck vs adaptive apply-time error handling.

One set-oriented precheck pass routes a dirty workload's violators
before APPLY ever runs, so Beta's recursive split cascade (Figure 11)
never triggers: with rules on the job must see ≥5× fewer split retries
and apply in less than half the wall-clock of the rules-off run —
while ending in exactly the same final state (same target rows, same
rejected client row numbers across ET ∪ UV).
"""

from __future__ import annotations

from conftest import bench_json, bench_scale, emit, scaled

from repro.bench import format_series
from repro.bench.harness import build_stack, run_workload_through_hyperq
from repro.core.config import HyperQConfig
from repro.workloads.generator import dirty_workload

SCALE = bench_scale()
ROWS = scaled(6_000)
#: ~1% dirty, apply-visible kinds only (FK orphans apply cleanly, so
#: including them would break the rules-off equivalence baseline).
RATE = 0.01
MIX = {"not_null": 1, "range": 1, "regex": 1, "unique": 1}


def run_once(dirty, rules: bool) -> dict:
    # Guard the kinds this feed can actually violate; the generator's
    # referential rule would add a members + parents pass per job for a
    # violation the mix never injects.
    profile = [r for r in dirty.dq_rules if r["kind"] in MIX]
    config = HyperQConfig(dq_profile=profile if rules else None)
    with build_stack(config=config) as stack:
        for sql in dirty.setup_sql:
            stack.engine.execute(sql)
        # ETL-sized chunks (the paper's intermediate files are MBs):
        # each violating row poisons a wide seq range, so the split
        # cascade re-applies large slices — the cost rules-on avoids.
        metrics = run_workload_through_hyperq(
            stack, dirty.workload, sessions=2, chunk_bytes=256 * 1024)
        w = dirty.workload
        target = sorted(stack.engine.query(
            f"SELECT REC_ID, REC_NAME, AMOUNT, REGION "
            f"FROM {w.target_table}"))
        rejected = {r[0] for r in stack.engine.query(
            f"SELECT SEQNO FROM {w.et_table}")}
        rejected |= {r[0] for r in stack.engine.query(
            f"SELECT SEQNO FROM {w.uv_table}")}
    return {
        "apply_s": metrics.application_s,
        "total_s": metrics.total_s,
        "chunk_retries": metrics.chunk_retries,
        "dml_statements": metrics.dml_statements,
        "dq_routed_rows": metrics.dq_routed_rows,
        "target": target,
        "rejected": rejected,
    }


def best_of(dirty, rules: bool, reps: int = 2) -> dict:
    """Re-run the deterministic job and keep the fastest apply — the
    standard noise damper for wall-clock gates on shared runners."""
    runs = [run_once(dirty, rules) for _ in range(reps)]
    for r in runs[1:]:     # determinism across repetitions
        assert r["target"] == runs[0]["target"]
        assert r["rejected"] == runs[0]["rejected"]
    return min(runs, key=lambda r: r["apply_s"])


def test_dq_precheck_beats_adaptive_splitting(benchmark, results_dir):
    dirty = dirty_workload(ROWS, violation_rate=RATE, seed=47, mix=MIX)
    off = best_of(dirty, rules=False)
    on = best_of(dirty, rules=True)

    series = [{
        "mode": mode,
        "apply_s": round(r["apply_s"], 4),
        "total_s": round(r["total_s"], 4),
        "split_retries": r["chunk_retries"],
        "dml_statements": r["dml_statements"],
        "rejected_rows": len(r["rejected"]),
    } for mode, r in (("rules-off", off), ("rules-on", on))]
    text = format_series(
        f"DQ precheck vs Fig-11 splitting ({ROWS} rows, "
        f"{RATE:.0%} dirty)",
        series,
        note="expect: rules-on avoids the recursive split cascade "
             "(>=5x fewer retries) and halves apply wall-clock, with "
             "identical final state")
    emit(results_dir, "dq_precheck", text)

    # -- equivalence: the precheck must not change the outcome --
    assert on["target"] == off["target"]
    assert on["rejected"] == off["rejected"]
    assert off["rejected"], "the workload must actually be dirty"
    assert on["dq_routed_rows"] == len(on["rejected"])

    # -- the perf gates --
    assert off["chunk_retries"] >= 5 * max(on["chunk_retries"], 1), \
        f"precheck should prevent >=5x the split retries " \
        f"({off['chunk_retries']} vs {on['chunk_retries']})"
    speedup = off["apply_s"] / max(on["apply_s"], 1e-9)
    assert speedup >= 2.0, \
        f"precheck should at least halve apply wall-clock " \
        f"(got {speedup:.2f}x)"

    bench_json("dq", {
        "scale": SCALE, "rows": ROWS, "violation_rate": RATE,
        "series": series,
        "apply_speedup": round(speedup, 3),
        "split_retry_ratio": round(
            off["chunk_retries"] / max(on["chunk_retries"], 1), 2),
    })

    small = dirty_workload(
        max(ROWS // 10, 200), violation_rate=RATE, seed=48, mix=MIX)
    benchmark.pedantic(
        run_once, args=(small, True), rounds=1, iterations=1)
