"""Shared benchmark configuration.

Scales: the paper loads 25-100 million rows on server hardware; the
benchmarks default to a 1/2000 scale (12,500-row base) so the whole suite
runs in a few minutes.  Set ``REPRO_BENCH_SCALE`` to grow or shrink every
real-execution benchmark proportionally (e.g. ``REPRO_BENCH_SCALE=4``).

Every figure benchmark prints its series table and writes it under
``benchmarks/results/`` so the regenerated "figures" survive pytest's
output capture.
"""

from __future__ import annotations

import os

import pytest

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")
REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def bench_scale() -> float:
    return float(os.environ.get("REPRO_BENCH_SCALE", "1"))


def scaled(base_rows: int) -> int:
    return max(int(base_rows * bench_scale()), 100)


@pytest.fixture(scope="session")
def results_dir() -> str:
    os.makedirs(RESULTS_DIR, exist_ok=True)
    return RESULTS_DIR


def emit(results_dir: str, name: str, text: str) -> None:
    """Print a series table and persist it under benchmarks/results/."""
    print("\n" + text)
    path = os.path.join(results_dir, f"{name}.txt")
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(text)


def bench_json(name: str, payload: dict) -> str:
    """Write ``BENCH_<name>.json`` at the repo root (the perf trajectory)."""
    from repro.bench.report import write_bench_json

    return write_bench_json(
        os.path.join(REPO_ROOT, f"BENCH_{name}.json"), payload)
