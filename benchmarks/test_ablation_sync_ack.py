"""Ablation — immediate acknowledgment vs. the synchronous alternative.

Section 5 considers and rejects synchronizing the pipeline ("Hyper-Q
could wait to acknowledge each incoming data chunk until it's been
written to disk.  However, this type of synchronization would delay the
acknowledgment of the chunk and slow data acquisition").

The benefit of the immediate ack is overlap between client transmission
and conversion/writing, so the comparison runs on the discrete-event
model (where transmission time is explicit) *and* sanity-checks that the
real pipeline supports both modes with identical results.
"""

from __future__ import annotations

from conftest import emit, scaled

from repro.bench import format_series, run_import_workload
from repro.core import HyperQConfig
from repro.sim import SimParams, simulate_acquisition
from repro.workloads import make_workload

ROWS = scaled(3_000)


def _sim(synchronous: bool):
    return simulate_acquisition(SimParams(
        rows=2_000_000, row_bytes=500, chunk_bytes=1 << 20,
        sessions=4, cores=8, credits=64,
        convert_cpu_per_byte=4e-8, convert_cpu_per_row=0.0,
        client_bandwidth_per_session=120e6,
        disk_bandwidth=800e6, link_bandwidth=4e9, copy_bandwidth=1e10,
        fixed_setup=2.0, fixed_teardown=2.0,
        synchronous_ack=synchronous))


def _real(synchronous: bool):
    workload = make_workload(rows=ROWS, row_bytes=300, seed=51)
    config = HyperQConfig(converters=4, filewriters=2, credits=32,
                          synchronous_ack=synchronous)
    return run_import_workload(
        workload, config=config, sessions=4, chunk_bytes=64 * 1024)


def test_ablation_sync_ack(benchmark, results_dir):
    async_sim = _sim(False)
    sync_sim = _sim(True)
    async_real = _real(False)
    sync_real = _real(True)
    series = [
        {"mode": "immediate ack (paper)", "substrate": "sim",
         "acquisition_s": round(async_sim.acquisition_time, 2)},
        {"mode": "synchronous ack (rejected)", "substrate": "sim",
         "acquisition_s": round(sync_sim.acquisition_time, 2)},
        {"mode": "immediate ack (paper)", "substrate": "real",
         "acquisition_s": round(async_real.acquisition_s, 3)},
        {"mode": "synchronous ack (rejected)", "substrate": "real",
         "acquisition_s": round(sync_real.acquisition_s, 3)},
    ]
    text = format_series(
        "Ablation: immediate vs synchronous acknowledgment",
        series,
        note="expect: synchronous acks slow data acquisition (overlap "
             "between transmission and conversion is lost)")
    emit(results_dir, "ablation_sync_ack", text)

    assert sync_sim.acquisition_time > async_sim.acquisition_time * 1.2, \
        "synchronizing the pipeline must slow acquisition materially"
    assert async_real.rows_inserted == sync_real.rows_inserted, \
        "both modes must load identical data"

    benchmark.pedantic(_sim, args=(False,), rounds=1, iterations=1)
