"""Figure 10 — Data acquisition scalability with the credit pool size.

Paper: rate flat across a wide credit range; degradation once
per-process context-switch overhead dominates; at one million credits
the node ran out of memory and crashed.  Series logic:
:mod:`repro.bench.figures` (discrete-event model; DESIGN.md documents
the substitution and axis scaling).
"""

from __future__ import annotations

from conftest import emit

from repro.bench import format_series
from repro.bench.figures import fig10_params, fig10_series
from repro.sim import simulate_acquisition


def test_fig10_credits(benchmark, results_dir):
    series = fig10_series()
    text = format_series(
        "Figure 10: acquisition scalability with credit pool size "
        "(discrete-event model, ~4.3 GB load, 8 cores)",
        series,
        note="expect: flat rate over a wide range, context-switch "
             "degradation at large pools, OOM crash at the extreme")
    emit(results_dir, "fig10_credits", text)

    rates = [row["acq_rate_MBps"] for row in series]
    assert abs(rates[0] - rates[2]) / rates[0] < 0.10, \
        "rate should be flat across small credit pools"
    assert rates[4] < rates[0] * 0.8, \
        "very large pools must degrade the rate (context switching)"
    assert series[-1]["outcome"] == "OOM-CRASH", \
        "the million-credit run must exhaust memory"

    benchmark.pedantic(
        simulate_acquisition, args=(fig10_params(256),), rounds=1,
        iterations=1)
