"""Figure 7 cross-check at the paper's actual scale (discrete-event).

The real-execution Figure 7 benchmark reproduces the phase ordering but
not the paper's *sub-linear* growth — our interpreted substrate has no
amortizable fixed costs at laptop scale (see EXPERIMENTS.md).  This
benchmark closes that gap on the acquisition side: the discrete-event
model at 25M-100M rows, where session setup, job setup, and the COPY
tail are fixed costs amortized over minutes-long loads.  The paper
reports 340% acquisition growth at 4x.  Series logic:
:mod:`repro.bench.figures`.
"""

from __future__ import annotations

from conftest import emit

from repro.bench import format_series
from repro.bench.figures import (
    fig7_paper_scale_params, fig7_paper_scale_series,
)
from repro.sim import simulate_acquisition


def test_fig7_paper_scale_sim(benchmark, results_dir):
    series = fig7_paper_scale_series()
    text = format_series(
        "Figure 7 cross-check at paper scale "
        "(discrete-event model, 25M-100M rows)",
        series,
        note="expect: sub-linear acquisition growth (paper: 340% at 4x) "
             "from fixed setup amortization")
    emit(results_dir, "fig7_paper_scale_sim", text)

    growth_4x = series[-1]["acq_growth_%"]
    assert growth_4x < 400, \
        f"acquisition must grow sub-linearly at paper scale " \
        f"(got {growth_4x}%)"
    assert growth_4x > 250, \
        "growth should still be dominated by the data volume"

    benchmark.pedantic(simulate_acquisition,
                       args=(fig7_paper_scale_params(25_000_000),),
                       rounds=1, iterations=1)
