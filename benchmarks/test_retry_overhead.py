"""Retry-path overhead — the resilience layer's bench surface.

Runs the same import workload fault-free and under seeded chaos
profiles with increasing transient-fault rates on the upload/COPY
paths, and records what the absorbed retries cost end to end.  The
interesting claim is the fault-free row: with no faults armed the
injection points and retry wrappers are pure pass-throughs, so the
resilience layer should be visible only when the cloud actually
misbehaves.
"""

from __future__ import annotations

import time

from conftest import emit, scaled

from repro.bench import format_series
from repro.bench.harness import build_stack, run_workload_through_hyperq
from repro.core.config import HyperQConfig
from repro.workloads.generator import make_workload


def chaos_profile(rate: float) -> dict | None:
    if rate == 0.0:
        return None
    return {
        "seed": 7,
        "rules": [
            {"point": "store.upload", "probability": rate},
            {"point": "copy.into", "probability": rate},
        ],
    }


def run_once(workload, rate: float) -> dict:
    config = HyperQConfig(
        file_threshold_bytes=64 * 1024,
        retry_max_attempts=6,
        retry_base_delay_s=0.002,
        retry_max_delay_s=0.05,
        chaos_profile=chaos_profile(rate))
    with build_stack(config=config) as stack:
        started = time.perf_counter()
        metrics = run_workload_through_hyperq(stack, workload,
                                              sessions=2)
        elapsed = time.perf_counter() - started
        stats = stack.node.stats()["resilience"]
    return {
        "fault_rate": rate,
        "elapsed_s": round(elapsed, 4),
        "rows": metrics.rows_inserted,
        "faults_injected": stats["faults_injected"],
        "retry_attempts": stats["retry_attempts"],
        "retry_giveups": stats["retry_giveups"],
    }


def test_retry_overhead(results_dir):
    workload = make_workload(scaled(12_500))
    rows = []
    baseline = None
    for rate in (0.0, 0.05, 0.15, 0.30):
        row = run_once(workload, rate)
        if baseline is None:
            baseline = row["elapsed_s"]
        row["overhead_pct"] = round(
            (row["elapsed_s"] / baseline - 1.0) * 100, 1)
        rows.append(row)

    text = format_series(
        f"Retry-path overhead ({workload.rows} rows)",
        rows,
        note="seeded transient faults on store.upload + copy.into; "
             "overhead vs fault-free run")
    emit(results_dir, "retry_overhead", text)

    for row in rows:
        assert row["rows"] == workload.rows, \
            "retries must not change load results"
        assert row["retry_giveups"] == 0
    assert rows[0]["faults_injected"] == 0
    assert rows[0]["retry_attempts"] == 0
    assert all(row["faults_injected"] > 0 for row in rows[1:])
    assert all(row["retry_attempts"] > 0 for row in rows[1:])
