"""Continuous ingestion steady state: per-batch overhead and drift.

A long feed of micro-batches must stay close to one-shot batch-load
throughput (the protocol replays BEGIN_LOAD → acquire → APPLY per
batch, so the gate bounds the per-cycle overhead) and must not degrade
as the watermark journal accumulates history — compaction at every
commit boundary keeps the journal O(state), so late batches must be as
fast as early ones.
"""

from __future__ import annotations

import time

from conftest import bench_json, bench_scale, emit, scaled

from repro.bench import format_series
from repro.bench.harness import build_stack, run_workload_through_hyperq
from repro.core.config import HyperQConfig
from repro.stream import StreamRunner, StreamSession
from repro.workloads.generator import make_workload
from repro.workloads.streamgen import stream_workload

SCALE = bench_scale()
#: the journal-growth gate needs a long feed; never below 50 batches.
BATCHES = max(int(50 * SCALE), 50)
#: big enough that the per-cycle protocol cost amortizes — the ratio
#: gate measures overhead at ETL-realistic batch sizes, not the fixed
#: floor of a near-empty cycle.
ROWS_PER_BATCH = max(scaled(2_000) // 2, 1_000)
ROW_BYTES = 120


def _p95(values: list[float]) -> float:
    ordered = sorted(values)
    return ordered[min(len(ordered) - 1, int(0.95 * len(ordered)))]


def run_stream() -> dict:
    workload = stream_workload(
        batches=BATCHES, rows_per_batch=ROWS_PER_BATCH, drift=False,
        row_bytes=ROW_BYTES, seed=61, feed="bench_feed")
    with build_stack(config=HyperQConfig(credits=16)) as stack:
        stack.engine.execute(workload.ddl)
        with StreamSession(stack.node.connect, feed="bench_feed",
                           target_table=workload.target_table,
                           sessions=2) as session:
            report = StreamRunner(session, workload).run()
        rows = stack.engine.query(
            f"SELECT COUNT(*) FROM {workload.target_table}")[0][0]
    assert report.committed == BATCHES
    assert rows == workload.rows_total
    return {"report": report, "rows": rows}


def run_oneshot() -> dict:
    workload = make_workload(BATCHES * ROWS_PER_BATCH,
                             row_bytes=ROW_BYTES, seed=61)
    with build_stack(config=HyperQConfig(credits=16)) as stack:
        started = time.perf_counter()
        run_workload_through_hyperq(stack, workload, sessions=2)
        elapsed = time.perf_counter() - started
    return {"rows": workload.rows, "elapsed_s": elapsed,
            "rows_per_s": workload.rows / elapsed}


def test_stream_throughput_and_journal_growth(benchmark, results_dir):
    streams = [run_stream() for _ in range(2)]
    stream = min(streams, key=lambda s: s["report"].elapsed_s)
    oneshots = [run_oneshot() for _ in range(2)]
    oneshot = min(oneshots, key=lambda o: o["elapsed_s"])

    report = stream["report"]
    stream_rps = report.rows_per_second
    first10_p95 = _p95(report.latencies_s[:10])
    last10_p95 = _p95(report.latencies_s[-10:])

    series = [{
        "mode": "stream",
        "batches": BATCHES,
        "rows": stream["rows"],
        "elapsed_s": round(report.elapsed_s, 4),
        "rows_per_s": round(stream_rps, 1),
        "p95_first10_ms": round(first10_p95 * 1000, 3),
        "p95_last10_ms": round(last10_p95 * 1000, 3),
    }, {
        "mode": "one-shot",
        "batches": 1,
        "rows": oneshot["rows"],
        "elapsed_s": round(oneshot["elapsed_s"], 4),
        "rows_per_s": round(oneshot["rows_per_s"], 1),
        "p95_first10_ms": None,
        "p95_last10_ms": None,
    }]
    text = format_series(
        f"Stream steady state ({BATCHES} batches x {ROWS_PER_BATCH} "
        f"rows)",
        series,
        note="expect: micro-batching keeps >=0.7x one-shot "
             "throughput, and last-10 p95 stays within 1.2x first-10 "
             "(journal compaction keeps cycles O(state))")
    emit(results_dir, "stream_steady_state", text)

    # -- gate 1: per-batch protocol overhead is bounded --
    ratio = stream_rps / oneshot["rows_per_s"]
    assert ratio >= 0.7, \
        f"stream throughput fell to {ratio:.2f}x of one-shot " \
        f"({stream_rps:.0f} vs {oneshot['rows_per_s']:.0f} rows/s)"

    # -- gate 2: no degradation across the feed's lifetime --
    degradation = last10_p95 / max(first10_p95, 1e-9)
    assert degradation <= 1.2, \
        f"late batches degraded to {degradation:.2f}x early p95 " \
        f"({last10_p95 * 1000:.2f}ms vs {first10_p95 * 1000:.2f}ms)"

    bench_json("stream", {
        "scale": SCALE,
        "batches": BATCHES,
        "rows_per_batch": ROWS_PER_BATCH,
        "series": series,
        "throughput_ratio": round(ratio, 3),
        "p95_degradation": round(degradation, 3),
        "latency_p50_s": round(report.latency_p(0.50), 6),
        "latency_p95_s": round(report.latency_p(0.95), 6),
    })

    small = stream_workload(batches=5, rows_per_batch=50, drift=False,
                            row_bytes=ROW_BYTES, seed=62,
                            feed="bench_small")

    def one_small_feed():
        with build_stack(config=HyperQConfig(credits=16)) as stack:
            stack.engine.execute(small.ddl)
            with StreamSession(stack.node.connect, feed="bench_small",
                               target_table=small.target_table
                               ) as session:
                StreamRunner(session, small).run()

    benchmark.pedantic(one_small_feed, rounds=1, iterations=1)
