"""Setuptools shim: enables legacy editable installs (`pip install -e .`)
in offline environments that lack the `wheel` package."""
from setuptools import setup

setup()
