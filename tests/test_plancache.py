"""PlanCache unit tests plus its two integration points (PR 3).

The cache itself is a bounded thread-safe LRU with exactly-once
compilation; Beta uses it to turn per-range DML into a rebind of one
prepared template, and the engine uses it to skip re-parsing repeated
statement text.
"""

from __future__ import annotations

import threading

import pytest

from repro.cdw.cloudstore import CloudStore
from repro.cdw.engine import CdwEngine
from repro.core.beta import Beta
from repro.core.config import HyperQConfig
from repro.legacy.types import FieldDef, Layout, parse_type
from repro.plancache import PlanCache
from repro.sqlxc.render import render


class TestPlanCache:
    def test_compiles_once_then_hits(self):
        cache = PlanCache(capacity=4)
        calls = []
        for _ in range(3):
            plan = cache.get_or_compile("k", lambda: calls.append(1) or "P")
            assert plan == "P"
        assert calls == [1]
        assert (cache.hits, cache.misses) == (2, 1)
        assert cache.hit_rate == pytest.approx(2 / 3)

    def test_lru_eviction_order(self):
        cache = PlanCache(capacity=2)
        cache.get_or_compile("a", lambda: "A")
        cache.get_or_compile("b", lambda: "B")
        cache.get_or_compile("a", lambda: "A2")  # refresh a
        cache.get_or_compile("c", lambda: "C")   # evicts b, not a
        assert cache.get_or_compile("a", lambda: "A3") == "A"
        assert cache.get_or_compile("b", lambda: "B2") == "B2"
        assert cache.evictions >= 1

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            PlanCache(capacity=0)

    def test_callbacks_fire_per_outcome(self):
        events = []
        cache = PlanCache(capacity=4,
                          on_hit=lambda: events.append("hit"),
                          on_miss=lambda: events.append("miss"))
        cache.get_or_compile("k", lambda: 1)
        cache.get_or_compile("k", lambda: 1)
        assert events == ["miss", "hit"]

    def test_clear_drops_entries_keeps_counters(self):
        cache = PlanCache()
        cache.get_or_compile("k", lambda: 1)
        cache.clear()
        assert len(cache) == 0
        assert cache.misses == 1
        cache.get_or_compile("k", lambda: 2)
        assert cache.misses == 2

    def test_stats_shape(self):
        cache = PlanCache(capacity=8)
        cache.get_or_compile("k", lambda: 1)
        stats = cache.stats()
        assert stats == {"capacity": 8, "entries": 1, "hits": 0,
                         "misses": 1, "evictions": 0, "hit_rate": 0.0}

    def test_threaded_compile_exactly_once(self):
        cache = PlanCache(capacity=4)
        compiled = []
        barrier = threading.Barrier(8)

        def worker():
            barrier.wait()
            for _ in range(50):
                cache.get_or_compile(
                    "shared", lambda: compiled.append(1) or object())

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(compiled) == 1
        assert cache.hits + cache.misses == 400


LAYOUT = Layout("L", [
    FieldDef("K", parse_type("varchar(10)")),
    FieldDef("V", parse_type("varchar(10)")),
])

INSERT_SQL = "insert into TGT values (:K, :V)"


def make_beta(config=None):
    engine = CdwEngine(store=CloudStore())
    return Beta(engine, config or HyperQConfig())


class TestBetaPreparedDml:
    def test_repeat_prepare_hits_cache(self):
        beta = make_beta()
        beta.prepare_dml(INSERT_SQL, LAYOUT, "STG")
        beta.prepare_dml(INSERT_SQL, LAYOUT, "STG")
        assert beta.plans.stats()["hits"] == 1
        assert beta.plans.stats()["misses"] == 1

    def test_bind_rebinds_only_the_seq_range(self):
        beta = make_beta()
        build, kind = beta.prepare_dml(INSERT_SQL, LAYOUT, "STG")
        assert kind == "insert"
        first = render(build(0, 9))
        second = render(build(700, 799))
        assert "0" in first and "9" in first
        assert "700" in second and "799" in second
        assert first.replace("0", "").replace("9", "") == \
            second.replace("7", "").replace("0", "").replace("9", "")

    def test_distinct_staging_tables_get_distinct_plans(self):
        beta = make_beta()
        beta.prepare_dml(INSERT_SQL, LAYOUT, "HQ_STG_1")
        beta.prepare_dml(INSERT_SQL, LAYOUT, "HQ_STG_2")
        assert beta.plans.stats()["misses"] == 2

    def test_distinct_layouts_get_distinct_plans(self):
        beta = make_beta()
        other = Layout("L2", [
            FieldDef("K", parse_type("varchar(99)")),
            FieldDef("V", parse_type("varchar(10)")),
        ])
        beta.prepare_dml(INSERT_SQL, LAYOUT, "STG")
        beta.prepare_dml(INSERT_SQL, other, "STG")
        assert beta.plans.stats()["misses"] == 2


class TestEngineParseCache:
    def test_repeated_statement_text_parses_once(self):
        engine = CdwEngine(store=CloudStore())
        engine.execute("CREATE TABLE T (A INT)")
        for i in range(3):
            engine.execute("INSERT INTO T VALUES (1)")
        stats = engine.plan_cache.stats()
        assert stats["hits"] == 2
        assert engine.table("T").rows == [(1,), (1,), (1,)]

    def test_distinct_text_misses(self):
        engine = CdwEngine(store=CloudStore())
        engine.execute("CREATE TABLE T (A INT)")
        engine.execute("INSERT INTO T VALUES (1)")
        engine.execute("INSERT INTO T VALUES (2)")
        assert engine.plan_cache.stats()["hits"] == 0
