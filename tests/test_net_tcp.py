"""Real-TCP transport tests: the whole stack over localhost sockets."""

import pytest

from repro.cdw.cloudstore import CloudStore
from repro.cdw.engine import CdwEngine
from repro.core.config import HyperQConfig
from repro.core.gateway import HyperQNode
from repro.errors import TransportClosed
from repro.legacy.script import ScriptInterpreter, parse_script
from repro.legacy.server import LegacyServer
from repro.net_tcp import TcpListener, connect_tcp
from tests.conftest import EXAMPLE_DATA, EXAMPLE_SCRIPT


class TestTcpTransport:
    def test_basic_roundtrip(self):
        listener = TcpListener()
        client = listener.connect()
        server = listener.accept(timeout=2)
        client.send_bytes(b"ping")
        assert server.recv_bytes(timeout=2) == b"ping"
        server.send_bytes(b"pong")
        assert client.recv_bytes(timeout=2) == b"pong"
        client.close_both()
        server.close_both()
        listener.close()

    def test_eof_on_peer_close(self):
        listener = TcpListener()
        client = listener.connect()
        server = listener.accept(timeout=2)
        client.close()
        assert server.recv_bytes(timeout=2) is None
        server.close_both()
        client.close_both()
        listener.close()

    def test_recv_timeout(self):
        listener = TcpListener()
        client = listener.connect()
        server = listener.accept(timeout=2)
        with pytest.raises(TransportClosed):
            server.recv_bytes(timeout=0.05)
        client.close_both()
        server.close_both()
        listener.close()

    def test_accept_timeout(self):
        listener = TcpListener()
        assert listener.accept(timeout=0.05) is None
        listener.close()

    def test_connect_by_address(self):
        listener = TcpListener()
        endpoint = connect_tcp(listener.host, listener.port)
        server = listener.accept(timeout=2)
        endpoint.send_bytes(b"hello")
        assert server.recv_bytes(timeout=2) == b"hello"
        endpoint.close_both()
        server.close_both()
        listener.close()


class TestStackOverTcp:
    def test_hyperq_over_real_sockets(self):
        """The full Example 2.1 job over a localhost TCP socket."""
        store = CloudStore()
        engine = CdwEngine(store=store)
        node = HyperQNode(engine, store,
                          HyperQConfig(converters=2, filewriters=1,
                                       credits=8),
                          listener=TcpListener())
        node.start()
        try:
            interp = ScriptInterpreter(
                node.listener.connect,
                files={"input.txt": EXAMPLE_DATA})
            result = interp.run(parse_script(EXAMPLE_SCRIPT))
            imp = result.last_import
            assert (imp.rows_inserted, imp.et_errors,
                    imp.uv_errors) == (2, 2, 1)
        finally:
            node.stop()

    def test_legacy_server_over_real_sockets(self):
        server = LegacyServer(listener=TcpListener())
        server.start()
        try:
            interp = ScriptInterpreter(
                server.listener.connect,
                files={"input.txt": EXAMPLE_DATA})
            result = interp.run(parse_script(EXAMPLE_SCRIPT))
            assert result.last_import.rows_inserted == 2
        finally:
            server.stop()
