"""Real-TCP transport tests: the whole stack over localhost sockets."""

import socket
import threading
import time

import pytest

from repro.cdw.cloudstore import CloudStore
from repro.cdw.engine import CdwEngine
from repro.core.config import HyperQConfig
from repro.core.gateway import HyperQNode
from repro.errors import TransportClosed
from repro.legacy.protocol import Message, MessageChannel, MessageKind
from repro.legacy.script import ScriptInterpreter, parse_script
from repro.legacy.server import LegacyServer
from repro.net_tcp import TcpListener, connect_tcp
from tests.conftest import EXAMPLE_DATA, EXAMPLE_SCRIPT


class TestTcpTransport:
    def test_basic_roundtrip(self):
        listener = TcpListener()
        client = listener.connect()
        server = listener.accept(timeout=2)
        client.send_bytes(b"ping")
        assert server.recv_bytes(timeout=2) == b"ping"
        server.send_bytes(b"pong")
        assert client.recv_bytes(timeout=2) == b"pong"
        client.close_both()
        server.close_both()
        listener.close()

    def test_eof_on_peer_close(self):
        listener = TcpListener()
        client = listener.connect()
        server = listener.accept(timeout=2)
        client.close()
        assert server.recv_bytes(timeout=2) is None
        server.close_both()
        client.close_both()
        listener.close()

    def test_recv_timeout(self):
        listener = TcpListener()
        client = listener.connect()
        server = listener.accept(timeout=2)
        with pytest.raises(TransportClosed):
            server.recv_bytes(timeout=0.05)
        client.close_both()
        server.close_both()
        listener.close()

    def test_accept_timeout(self):
        listener = TcpListener()
        assert listener.accept(timeout=0.05) is None
        listener.close()

    def test_accept_after_close_returns_none(self):
        listener = TcpListener()
        listener.close()
        assert listener.accept(timeout=0.05) is None
        listener.close()  # idempotent

    def test_close_races_blocked_accept(self):
        """close() from another thread unblocks accept with None."""
        listener = TcpListener()
        results = []

        def _accept():
            results.append(listener.accept(timeout=5))

        thread = threading.Thread(target=_accept)
        thread.start()
        time.sleep(0.1)  # let accept park in the kernel
        listener.close()
        thread.join(timeout=5)
        assert not thread.is_alive()
        assert results == [None]

    def test_peer_disconnect_mid_frame(self):
        """EOF with a partial frame buffered is a hard transport error,
        not a silent end-of-stream (the frame was truncated)."""
        listener = TcpListener()
        client = listener.connect()
        server = listener.accept(timeout=2)
        frame = Message(MessageKind.LOGON, {"user": "etl"}).to_bytes()
        client.send_bytes(frame[:len(frame) - 3])
        client.close_both()
        channel = MessageChannel(server, timeout=2)
        with pytest.raises(TransportClosed, match="mid-frame"):
            channel.recv_or_eof()
        channel.close()
        listener.close()

    def test_sockets_are_tuned(self):
        """TCP_NODELAY is set on both ends of every connection."""
        listener = TcpListener()
        client = listener.connect()
        server = listener.accept(timeout=2)
        for endpoint in (client, server):
            assert endpoint._sock.getsockopt(
                socket.IPPROTO_TCP, socket.TCP_NODELAY) != 0
        client.close_both()
        server.close_both()
        listener.close()

    def test_listener_exposes_bound_socket(self):
        listener = TcpListener(backlog=7)
        assert listener.backlog == 7
        assert listener.socket().getsockname()[1] == listener.port
        listener.close()

    def test_connect_by_address(self):
        listener = TcpListener()
        endpoint = connect_tcp(listener.host, listener.port)
        server = listener.accept(timeout=2)
        endpoint.send_bytes(b"hello")
        assert server.recv_bytes(timeout=2) == b"hello"
        endpoint.close_both()
        server.close_both()
        listener.close()


class TestStackOverTcp:
    def test_hyperq_over_real_sockets(self):
        """The full Example 2.1 job over a localhost TCP socket."""
        store = CloudStore()
        engine = CdwEngine(store=store)
        node = HyperQNode(engine, store,
                          HyperQConfig(converters=2, filewriters=1,
                                       credits=8),
                          listener=TcpListener())
        node.start()
        try:
            interp = ScriptInterpreter(
                node.listener.connect,
                files={"input.txt": EXAMPLE_DATA})
            result = interp.run(parse_script(EXAMPLE_SCRIPT))
            imp = result.last_import
            assert (imp.rows_inserted, imp.et_errors,
                    imp.uv_errors) == (2, 2, 1)
        finally:
            node.stop()

    def test_legacy_server_over_real_sockets(self):
        server = LegacyServer(listener=TcpListener())
        server.start()
        try:
            interp = ScriptInterpreter(
                server.listener.connect,
                files={"input.txt": EXAMPLE_DATA})
            result = interp.run(parse_script(EXAMPLE_SCRIPT))
            assert result.last_import.rows_inserted == 2
        finally:
            server.stop()
