"""Bench harness and report-formatting tests."""

import os

from repro.bench import (
    build_stack, format_series, run_import_workload,
    run_workload_through_hyperq, write_series,
)
from repro.core import HyperQConfig
from repro.workloads import make_workload


class TestHarness:
    def test_run_import_workload_metrics(self):
        workload = make_workload(rows=200, row_bytes=120, seed=1)
        metrics = run_import_workload(workload, sessions=2)
        assert metrics.rows_inserted == 200
        assert metrics.records_converted == 200
        assert metrics.acquisition_s > 0
        assert metrics.total_s >= metrics.acquisition_s

    def test_reusable_stack_multiple_jobs(self):
        with build_stack(config=HyperQConfig(credits=8)) as stack:
            w1 = make_workload(rows=50, seed=2, table="T.A")
            w2 = make_workload(rows=60, seed=3, table="T.B")
            m1 = run_workload_through_hyperq(stack, w1)
            m2 = run_workload_through_hyperq(stack, w2)
            assert m1.rows_inserted == 50
            assert m2.rows_inserted == 60
            assert len(stack.node.completed_jobs) == 2

    def test_metrics_as_row(self):
        workload = make_workload(rows=30, seed=4)
        metrics = run_import_workload(workload)
        row = metrics.as_row()
        assert row["rows_inserted"] == 30
        assert set(row) >= {"total_s", "acquisition_s", "application_s"}


class TestReport:
    def test_format_series_alignment(self):
        text = format_series("My Table", [
            {"a": 1, "b": 0.123456, "c": "x"},
            {"a": 1000, "b": 2.0, "c": None},
        ], note="a note")
        lines = text.strip().split("\n")
        assert lines[0] == "== My Table =="
        assert lines[1] == "a note"
        assert "0.123" in text
        assert "-" in lines[-1]  # None renders as '-'

    def test_format_series_empty(self):
        assert "(no data)" in format_series("Empty", [])

    def test_write_series(self, tmp_path):
        path = os.path.join(str(tmp_path), "sub", "out.txt")
        write_series(path, "content\n")
        with open(path) as handle:
            assert handle.read() == "content\n"
