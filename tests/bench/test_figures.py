"""Tests for the programmatic figure-regeneration API."""

import os

from repro.bench.figures import (
    FIGURES, fig9_series, fig10_series, fig11_series, regenerate_all,
)
from repro.cli import main


class TestSeriesFunctions:
    def test_fig9_shape(self):
        series = fig9_series(cores=(2, 4))
        assert [row["cores"] for row in series] == [2, 4]
        assert series[0]["speedup_eff_S"] == 1.0
        assert series[1]["sim_total_s"] < series[0]["sim_total_s"]

    def test_fig10_small_subset(self):
        series = fig10_series(credit_settings=(16, 64))
        assert all(row["outcome"] == "ok" for row in series)
        assert series[0]["peak_runnable"] <= 16

    def test_fig11_tiny(self):
        series = fig11_series(scale=0.1, error_rates=(0.0,))
        assert series[0]["errors_recorded"] == 0
        assert series[0]["hyperq_total_s"] < \
            series[0]["baseline_total_s"]

    def test_figures_registry_complete(self):
        assert set(FIGURES) == {
            "fig7", "fig7_paper_scale", "fig8", "fig9", "fig10",
            "fig11", "sessions"}


class TestRegenerateAll:
    def test_subset_written(self, tmp_path):
        written = regenerate_all(str(tmp_path), scale=0.05,
                                 only=["fig9"])
        assert set(written) == {"fig9"}
        with open(written["fig9"]) as handle:
            content = handle.read()
        assert "cores" in content
        assert "speedup_eff_S" in content


class TestCliFigures:
    def test_cli_subset(self, tmp_path, capsys):
        code = main(["figures", "--out", str(tmp_path),
                     "--scale", "0.05", "--only", "fig9"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Figure 9" in out
        assert os.path.exists(os.path.join(str(tmp_path), "fig9.txt"))

    def test_cli_unknown_figure(self, tmp_path, capsys):
        code = main(["figures", "--out", str(tmp_path),
                     "--only", "fig99"])
        assert code == 1
        assert "unknown figures" in capsys.readouterr().err
