"""SLO engine: spec validation, burn-rate math, gauges, node wiring."""

import pytest

from repro.bench.harness import build_stack, run_workload_through_hyperq
from repro.core.config import HyperQConfig
from repro.obs.metrics import MetricsRegistry
from repro.obs.slo import OBJECTIVES, SloEngine, SloSpec
from repro.workloads import make_workload


class FakeClock:
    def __init__(self, now=1000.0):
        self.now = now

    def __call__(self):
        return self.now


def spec(**overrides):
    base = dict(name="lat", objective="latency_p95", pool="etl-*",
                threshold_s=10.0, target=0.9, windows_s=(60.0, 300.0))
    base.update(overrides)
    return SloSpec(**base)


class TestSloSpec:
    def test_defaults(self):
        s = SloSpec(name="x", objective="error_rate")
        assert s.pool == "*"
        assert s.windows_s == (60.0, 300.0)

    @pytest.mark.parametrize("overrides", [
        {"name": ""},
        {"objective": "latency_p50"},
        {"target": 0.0},
        {"target": 1.0},
        {"threshold_s": 0.0},
        {"windows_s": ()},
        {"windows_s": (60.0, -1.0)},
    ])
    def test_validation(self, overrides):
        with pytest.raises(ValueError):
            spec(**overrides)

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(ValueError, match="unknown SLO spec keys"):
            SloSpec.from_dict({"name": "x", "objective": "error_rate",
                               "burn_limit": 2})

    def test_from_dict_coerces_windows(self):
        s = SloSpec.from_dict({"name": "x", "objective": "error_rate",
                               "windows_s": [30, 120]})
        assert s.windows_s == (30.0, 120.0)

    def test_objectives_constant(self):
        assert set(OBJECTIVES) == \
            {"latency_p95", "error_rate", "throttle_rate"}


class TestFromProfile:
    def test_none_is_disabled(self):
        engine = SloEngine.from_profile(None)
        assert not engine.enabled
        assert engine.evaluate() == {}
        assert engine.snapshot() == {"enabled": False, "slos": {}}

    def test_dict_profile(self):
        engine = SloEngine.from_profile({"slos": [
            {"name": "a", "objective": "error_rate"}]})
        assert engine.enabled
        assert [s.name for s in engine.specs] == ["a"]

    def test_bare_list_profile(self):
        engine = SloEngine.from_profile(
            [{"name": "a", "objective": "error_rate"}])
        assert engine.enabled

    def test_dict_needs_slos_key(self):
        with pytest.raises(ValueError, match='"slos" key'):
            SloEngine.from_profile({"objectives": []})

    def test_unknown_profile_keys(self):
        with pytest.raises(ValueError, match="unknown SLO profile"):
            SloEngine.from_profile({"slos": [], "alerting": True})

    def test_bad_type(self):
        with pytest.raises(ValueError, match="dict, list, or None"):
            SloEngine.from_profile("slos.json")

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            SloEngine.from_profile([
                {"name": "a", "objective": "error_rate"},
                {"name": "a", "objective": "throttle_rate"}])


class TestBurnRates:
    def test_latency_burn_and_p95(self):
        clock = FakeClock()
        engine = SloEngine([spec()], clock=clock)
        # 10 jobs in pool etl-1, 2 of them over the 10s threshold:
        # bad_fraction 0.2 against a 0.1 budget -> burn 2.0 everywhere.
        for i in range(10):
            engine.record_job("etl-1", 20.0 if i < 2 else 1.0)
        result = engine.evaluate()["lat"]
        assert result["breaching"] is True
        assert result["burn_rates"] == {
            "60": pytest.approx(2.0), "300": pytest.approx(2.0)}
        assert result["good"] == 8
        assert result["bad"] == 2
        assert result["p95_s"] == pytest.approx(20.0)

    def test_pool_glob_filters_feed(self):
        engine = SloEngine([spec()], clock=FakeClock())
        engine.record_job("adhoc", 100.0)   # not an etl-* pool
        engine.record_job("etl-1", 1.0)
        result = engine.evaluate()["lat"]
        assert result["good"] == 1
        assert result["bad"] == 0
        assert not result["breaching"]

    def test_breach_requires_every_window_burning(self):
        clock = FakeClock(now=1000.0)
        engine = SloEngine([spec()], clock=clock)
        # Old slow jobs burn the 300s window...
        engine.record_job("etl-1", 20.0, ok=True)
        clock.now = 1100.0
        # ...but the 60s window has only fast jobs: no breach — a
        # stale slow window alone must not page anyone.
        engine.record_job("etl-1", 1.0)
        result = engine.evaluate()["lat"]
        assert result["burn_rates"]["300"] >= 1.0
        assert result["burn_rates"]["60"] == 0.0
        assert result["breaching"] is False

    def test_empty_window_does_not_breach(self):
        engine = SloEngine([spec()], clock=FakeClock())
        assert engine.evaluate()["lat"]["breaching"] is False

    def test_error_rate_objective(self):
        engine = SloEngine(
            [spec(name="err", objective="error_rate", target=0.5)],
            clock=FakeClock())
        engine.record_job("etl-1", 1.0, ok=False)
        engine.record_job("etl-1", 1.0, ok=True)
        result = engine.evaluate()["err"]
        # bad_fraction 0.5 on a 0.5 budget: burning at exactly 1.0.
        assert result["burn_rates"]["60"] == pytest.approx(1.0)
        assert result["breaching"] is True

    def test_throttle_rate_objective(self):
        engine = SloEngine(
            [spec(name="thr", objective="throttle_rate", pool="*",
                  target=0.9)], clock=FakeClock())
        for _ in range(9):
            engine.record_admission("etl-1", admitted=True)
        engine.record_admission("etl-1", admitted=False)
        result = engine.evaluate()["thr"]
        assert result["burn_rates"]["60"] == pytest.approx(1.0)
        assert result["good"] == 9
        assert result["bad"] == 1

    def test_disabled_engine_ignores_feeds(self):
        engine = SloEngine([], clock=FakeClock())
        engine.record_job("etl-1", 1.0)
        engine.record_admission("etl-1", admitted=False)
        assert engine.evaluate() == {}


class TestGauges:
    def test_gauges_surface_in_registry(self):
        registry = MetricsRegistry()
        engine = SloEngine([spec()], registry=registry,
                           clock=FakeClock())
        for i in range(10):
            engine.record_job("etl-1", 20.0 if i < 2 else 1.0)
        engine.evaluate()
        lines = registry.render_prometheus().splitlines()
        assert 'hyperq_slo_burn_rate{slo="lat",window="60"} 2' in lines
        assert 'hyperq_slo_healthy{slo="lat"} 0' in lines
        assert ('hyperq_slo_latency_p95_seconds{slo="lat"} 20'
                in lines)

    def test_healthy_gauge_recovers(self):
        registry = MetricsRegistry()
        clock = FakeClock()
        engine = SloEngine([spec()], registry=registry, clock=clock)
        engine.record_job("etl-1", 20.0)
        engine.evaluate()
        clock.now += 10_000.0   # both windows drain empty
        engine.evaluate()
        assert 'hyperq_slo_healthy{slo="lat"} 1' in \
            registry.render_prometheus().splitlines()


def test_node_snapshot_and_gauges_end_to_end():
    profile = {"slos": [
        {"name": "load-latency", "objective": "latency_p95",
         "pool": "*", "threshold_s": 30.0, "target": 0.99},
        {"name": "load-errors", "objective": "error_rate",
         "pool": "*", "target": 0.99},
    ]}
    workload = make_workload(rows=60, row_bytes=100, seed=5,
                             table="S.T")
    config = HyperQConfig(converters=1, filewriters=1, credits=4,
                          slo_profile=profile)
    with build_stack(config=config) as stack:
        run_workload_through_hyperq(stack, workload, sessions=1)
        slo = stack.node.stats()["slo"]
        assert slo["enabled"] is True
        latency = slo["slos"]["load-latency"]
        assert latency["good"] == 1
        assert latency["bad"] == 0
        assert latency["breaching"] is False
        assert latency["p95_s"] > 0
        errors = slo["slos"]["load-errors"]
        assert errors["good"] == 1
        text = stack.node.obs.registry.render_prometheus()
        assert "hyperq_slo_burn_rate" in text
        assert ('hyperq_slo_healthy{slo="load-latency"} 1'
                in text.splitlines())


def test_node_without_profile_reports_disabled():
    with build_stack(config=HyperQConfig(
            converters=1, filewriters=1, credits=4)) as stack:
        assert stack.node.stats()["slo"] == {
            "enabled": False, "slos": {}}
