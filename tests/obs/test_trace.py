"""Tracer and Span tests: nesting, cross-thread parenting, export."""

import io
import json
import threading

import pytest

from repro.obs.trace import NULL_SPAN, Tracer


class TestSpanBasics:
    def test_manual_end(self):
        tracer = Tracer(enabled=True)
        span = tracer.span("work", items=3)
        span.set_attribute("extra", "yes")
        span.end()
        [record] = tracer.records()
        assert record["name"] == "work"
        assert record["status"] == "ok"
        assert record["attrs"] == {"items": 3, "extra": "yes"}
        assert record["duration_s"] >= 0.0

    def test_end_idempotent(self):
        tracer = Tracer(enabled=True)
        span = tracer.span("once")
        span.end()
        span.end()
        assert len(tracer.records()) == 1

    def test_context_manager_error_status(self):
        tracer = Tracer(enabled=True)
        with pytest.raises(RuntimeError):
            with tracer.span("doomed"):
                raise RuntimeError("boom")
        [record] = tracer.records()
        assert record["status"] == "error"


class TestNesting:
    def test_same_thread_implicit_parent(self):
        tracer = Tracer(enabled=True)
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                assert inner.parent_id == outer.span_id
                assert inner.trace_id == outer.trace_id
        records = {r["name"]: r for r in tracer.records()}
        assert records["inner"]["parent_id"] == \
            records["outer"]["span_id"]

    def test_explicit_parent_beats_stack(self):
        tracer = Tracer(enabled=True)
        root = tracer.span("root")
        with tracer.span("unrelated"):
            child = tracer.span("child", parent=root)
        assert child.parent_id == root.span_id
        assert child.trace_id == root.trace_id

    def test_null_span_parent_falls_back_to_stack(self):
        tracer = Tracer(enabled=True)
        with tracer.span("outer") as outer:
            child = tracer.span("child", parent=NULL_SPAN)
        assert child.parent_id == outer.span_id

    def test_cross_thread_explicit_parent(self):
        """The pipeline pattern: spans hop threads via queue items."""
        tracer = Tracer(enabled=True)
        root = tracer.span("job")
        results = []

        def worker(parent):
            span = tracer.span("convert", parent=parent)
            span.end()
            results.append(span)

        thread = threading.Thread(target=worker, args=(root,))
        thread.start()
        thread.join()
        root.end()
        assert results[0].parent_id == root.span_id
        assert results[0].trace_id == root.trace_id

    def test_separate_roots_get_separate_traces(self):
        tracer = Tracer(enabled=True)
        a = tracer.span("a")
        b = tracer.span("b")
        assert a.trace_id != b.trace_id


class TestBuffer:
    def test_ring_buffer_drops_oldest(self):
        tracer = Tracer(enabled=True, max_events=3)
        for index in range(5):
            tracer.span(f"s{index}").end()
        names = [r["name"] for r in tracer.records()]
        assert names == ["s2", "s3", "s4"]
        assert tracer.dropped > 0

    def test_buffer_size_validated(self):
        with pytest.raises(ValueError):
            Tracer(enabled=True, max_events=0)

    def test_clear(self):
        tracer = Tracer(enabled=True, max_events=1)
        tracer.span("a").end()
        tracer.span("b").end()
        tracer.clear()
        assert tracer.records() == []
        assert tracer.dropped == 0

    def test_event_is_point_record(self):
        tracer = Tracer(enabled=True)
        parent = tracer.span("apply")
        tracer.event("apply.split", parent=parent, lo=0, hi=10)
        [record] = tracer.spans("apply.split")
        assert record["parent_id"] == parent.span_id
        assert record["attrs"] == {"lo": 0, "hi": 10}

    def test_spans_filter(self):
        tracer = Tracer(enabled=True)
        tracer.span("x").end()
        tracer.span("y").end()
        tracer.span("x").end()
        assert len(tracer.spans("x")) == 2
        assert len(tracer.spans()) == 3


class TestDisabled:
    def test_disabled_returns_null_span(self):
        tracer = Tracer(enabled=False)
        span = tracer.span("ignored")
        assert span is NULL_SPAN
        with span:
            span.set_attribute("k", "v")
        span.end("error")
        tracer.event("also.ignored")
        assert tracer.records() == []


class TestExport:
    def test_export_to_file_object(self):
        tracer = Tracer(enabled=True)
        with tracer.span("root"):
            tracer.span("leaf").end()
        sink = io.StringIO()
        count = tracer.export_jsonl(sink)
        assert count == 2
        lines = [json.loads(line)
                 for line in sink.getvalue().splitlines()]
        by_name = {line["name"]: line for line in lines}
        assert by_name["leaf"]["parent_id"] == \
            by_name["root"]["span_id"]

    def test_export_to_path(self, tmp_path):
        tracer = Tracer(enabled=True)
        tracer.span("solo").end()
        out = tmp_path / "trace.jsonl"
        assert tracer.export_jsonl(out) == 1
        [line] = out.read_text().splitlines()
        assert json.loads(line)["name"] == "solo"
