"""Disabled-observability overhead smoke checks.

Instrumentation points stay in the code when observability is off, so
the null objects must be cheap and a disabled pipeline must not run
measurably slower than an instrumented one.  Bounds are generous —
these are smoke checks against gross regressions, not micro-benchmarks.
"""

import time

from repro.bench.harness import build_stack, run_workload_through_hyperq
from repro.core.config import HyperQConfig
from repro.obs import NULL_OBS
from repro.obs.trace import NULL_SPAN


def _best_of(repeats, func):
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        func()
        best = min(best, time.perf_counter() - started)
    return best


class TestNullObjects:
    def test_null_instruments_are_cheap(self):
        """200k disabled instrumentation points in well under a second."""

        def hammer():
            for _ in range(200_000):
                NULL_OBS.bytes_received.inc(100)

        assert _best_of(3, hammer) < 1.0

    def test_null_span_lifecycle_is_cheap(self):
        def hammer():
            for _ in range(100_000):
                with NULL_OBS.tracer.span("x", chunk_seq=1) as span:
                    span.set_attribute("k", "v")

        assert _best_of(3, hammer) < 1.0

    def test_null_obs_is_fully_disabled(self):
        assert not NULL_OBS.registry.enabled
        assert not NULL_OBS.tracer.enabled
        assert NULL_OBS.tracer.span("anything") is NULL_SPAN
        assert NULL_OBS.registry.collect() == {}


class TestPipelineOverhead:
    def test_disabled_not_slower_than_enabled(self):
        """Observability off must not cost more than observability on.

        Run the same small workload both ways (best of 3) — the
        disabled stack does strictly less work, so allowing a 1.5x
        cushion absorbs scheduler noise while still catching an
        accidentally-expensive disabled path.
        """
        from repro.workloads.generator import make_workload

        def run(config):
            workload = make_workload(2_000)
            with build_stack(config=config) as stack:
                run_workload_through_hyperq(stack, workload,
                                            sessions=2)

        disabled = HyperQConfig(metrics_enabled=False,
                                trace_enabled=False)
        enabled = HyperQConfig(metrics_enabled=True,
                               trace_enabled=True)
        time_disabled = _best_of(3, lambda: run(disabled))
        time_enabled = _best_of(3, lambda: run(enabled))
        assert time_disabled < time_enabled * 1.5 + 0.05
