"""Flight recorder: bounded per-job event logs and post-mortem bundles.

Unit coverage of the recorder's bounds and bundle format, then the
acceptance scenario: a load job that was throttled by WLM, retried a
transient apply fault, split around bad rows, and finally got killed
by the client must leave a post-mortem bundle on disk from which that
whole history can be reconstructed.
"""

import threading

import pytest

from repro.bench.harness import build_stack
from repro.core.config import HyperQConfig
from repro.legacy.client import (
    ImportJobSpec, LegacyEtlClient, _layout_to_wire, split_into_chunks,
)
from repro.legacy.protocol import Message, MessageKind
from repro.obs.flight import FlightRecorder
from repro.workloads import make_workload


class TestFlightRecorderUnit:
    def test_disabled_recorder_is_a_noop(self):
        recorder = FlightRecorder(enabled=False)
        recorder.record("j1", "started")
        recorder.record_node("breaker_transition")
        assert recorder.events("j1") == []
        assert recorder.node_events() == []
        assert recorder.jobs() == []
        assert recorder.dump("j1") is None

    def test_blank_job_id_is_ignored(self):
        recorder = FlightRecorder(enabled=True)
        recorder.record("", "started")
        assert recorder.jobs() == []

    def test_events_keep_order_and_fields(self):
        recorder = FlightRecorder(enabled=True)
        recorder.record("j1", "started", target="T")
        recorder.record("j1", "retry", attempt=1)
        events = recorder.events("j1")
        assert [e["event"] for e in events] == ["started", "retry"]
        assert events[0]["target"] == "T"
        assert events[1]["attempt"] == 1
        assert all(e["ts"] > 0 for e in events)

    def test_per_job_event_bound(self):
        recorder = FlightRecorder(enabled=True, max_events_per_job=4)
        for i in range(10):
            recorder.record("j1", f"e{i}")
        events = recorder.events("j1")
        assert [e["event"] for e in events] == ["e6", "e7", "e8", "e9"]

    def test_job_slots_are_lru_bounded(self):
        recorder = FlightRecorder(enabled=True, max_jobs=2)
        recorder.record("j1", "started")
        recorder.record("j2", "started")
        recorder.record("j1", "still-warm")   # refresh j1
        recorder.record("j3", "started")      # evicts j2, the coldest
        assert sorted(recorder.jobs()) == ["j1", "j3"]
        assert recorder.events("j2") == []

    def test_node_events_are_bounded(self):
        recorder = FlightRecorder(enabled=True, max_events_per_job=3)
        for i in range(5):
            recorder.record_node(f"n{i}")
        assert [e["event"] for e in recorder.node_events()] == \
            ["n2", "n3", "n4"]

    def test_forget(self):
        recorder = FlightRecorder(enabled=True)
        recorder.record("j1", "started")
        recorder.forget("j1")
        assert recorder.events("j1") == []

    def test_bundle_and_dump_roundtrip(self, tmp_path):
        recorder = FlightRecorder(enabled=True,
                                  dump_dir=str(tmp_path))
        recorder.record("j1", "started")
        recorder.record_node("breaker_transition", state="open")
        spans = [{"name": "job", "trace_id": 9}]
        path = recorder.dump("j1", spans=spans,
                             metrics={"job_id": "j1"}, reason="aborted")
        assert path == str(tmp_path / "j1.json")
        bundle = FlightRecorder.load_bundle(path)
        assert bundle["version"] == 1
        assert bundle["job_id"] == "j1"
        assert bundle["reason"] == "aborted"
        assert [e["event"] for e in bundle["events"]] == ["started"]
        assert bundle["node_events"][0]["state"] == "open"
        assert bundle["spans"] == spans
        assert bundle["metrics"] == {"job_id": "j1"}

    def test_dump_without_dir_returns_none(self):
        recorder = FlightRecorder(enabled=True)
        recorder.record("j1", "started")
        assert recorder.dump("j1") is None

    @pytest.mark.parametrize("kwargs", [
        {"max_events_per_job": 0}, {"max_jobs": 0},
    ])
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            FlightRecorder(enabled=True, **kwargs)


WLM_PROFILE = {
    "policy": "fair",
    "pools": [
        {"name": "etl", "weight": 1, "max_concurrency": 1,
         "queue_limit": 1, "queue_timeout_s": 0.05,
         "retry_after_s": 0.02, "match": {"tenant": "*"}},
    ],
}


def test_killed_job_bundle_reconstructs_history(tmp_path):
    """Throttle + transient retry + splits + abort, all in one bundle."""
    workload = make_workload(rows=300, row_bytes=120, seed=77,
                             error_rate=0.08, table="F.T")
    config = HyperQConfig(
        converters=2, filewriters=2, credits=8,
        trace_enabled=True,
        wlm_profile=WLM_PROFILE,
        # one guaranteed transient fault on the first APPLY attempt
        chaos_profile=[{"point": "dml.apply", "at_call": 1}],
        retry_base_delay_s=0.001, retry_max_delay_s=0.01,
        flight_dump_dir=str(tmp_path))
    job_id = "killme000001"
    with build_stack(config=config) as stack:
        node = stack.node
        # Occupy the pool's only slot so the job's admission is
        # throttled first; free it shortly after.
        ticket = node.wlm.admit("etl", "occupier")
        releaser = threading.Timer(0.4, node.wlm.release, (ticket,))
        releaser.start()

        client = LegacyEtlClient(node.connect, timeout=30)
        client.logon("h", "u", "p")
        client.execute_sql(workload.ddl)
        spec = ImportJobSpec(
            target_table=workload.target_table,
            et_table=workload.et_table,
            uv_table=workload.uv_table,
            layout=workload.layout,
            apply_sql=workload.apply_sql,
            data=workload.data)
        control = client._require_control()
        try:
            client._request_admitted(
                control,
                Message(MessageKind.BEGIN_LOAD, {
                    "job_id": job_id,
                    "target": spec.target_table,
                    "et_table": spec.et_table,
                    "uv_table": spec.uv_table,
                    "layout": _layout_to_wire(spec.layout),
                    "format": spec.format_spec.to_wire(),
                    "sessions": 2,
                    "apply_sql": spec.apply_sql,
                    "tenant": "tenant-0",
                }),
                MessageKind.BEGIN_LOAD_OK, 40, 0.05)
        finally:
            releaser.join()
        chunks = split_into_chunks(spec.data, spec.format_spec, 4096)
        client._pump_data(job_id, 2, chunks)
        control.request(
            Message(MessageKind.APPLY_DML,
                    {"job_id": job_id, "sql": spec.apply_sql}),
            MessageKind.APPLY_RESULT)
        # The client gives up on the job after a successful apply but
        # before END_LOAD — the gateway sees a mid-load kill.
        control.request(
            Message(MessageKind.END_LOAD,
                    {"job_id": job_id, "abort": True}),
            MessageKind.END_LOAD_OK)
        client.logoff()

    bundle = FlightRecorder.load_bundle(
        str(tmp_path / f"{job_id}.json"))
    assert bundle["job_id"] == job_id
    assert bundle["reason"] == "aborted"

    events = [e["event"] for e in bundle["events"]]
    # The whole story, in order: shed by WLM, admitted, started,
    # transient apply fault retried, bad rows split around, killed.
    assert "wlm_throttled" in events
    assert "wlm_admitted" in events
    assert "started" in events
    assert "retry" in events
    assert "apply_started" in events
    assert "apply_split" in events
    assert "apply_finished" in events
    assert events[-1] == "aborted"
    assert events.index("wlm_throttled") < events.index("wlm_admitted")
    assert events.index("wlm_admitted") < events.index("started")
    assert events.index("apply_started") < events.index("apply_split")

    [retry] = [e for e in bundle["events"] if e["event"] == "retry"]
    assert retry["target"] == "dml.apply"
    assert retry["attempt"] == 1
    [throttled] = [e for e in bundle["events"]
                   if e["event"] == "wlm_throttled"][:1]
    assert throttled["pool"] == "etl"
    assert throttled["retry_after_s"] >= 0

    # Spans and a metrics snapshot ride along in the bundle.
    span_names = {s["name"] for s in bundle["spans"]}
    assert {"job", "copy", "apply"} <= span_names
    assert bundle["metrics"]["job_id"] == job_id
    assert bundle["metrics"]["rows_inserted"] > 0


def test_completed_job_leaves_no_bundle(tmp_path):
    workload = make_workload(rows=50, row_bytes=100, seed=5,
                             table="F.OK")
    config = HyperQConfig(converters=1, filewriters=1, credits=4,
                          flight_dump_dir=str(tmp_path))
    with build_stack(config=config) as stack:
        from repro.bench.harness import run_workload_through_hyperq
        run_workload_through_hyperq(stack, workload, sessions=1)
    assert list(tmp_path.iterdir()) == []
