"""Cross-process trace propagation: contexts, stores, critical path.

Unit-level coverage of the pieces that stitch client-side and
gateway-side spans into one end-to-end trace: the traceparent
serialization on :class:`SpanContext`, the protocol metadata plumbing
on :class:`Message`, remote-parented span creation, root sampling, the
JSONL :class:`TraceStore`, and the critical-path analyzer.  The real
over-TCP acceptance test lives in ``test_e2e_trace_tcp.py``.
"""

import json
import os
import random

import pytest

from repro.legacy.protocol import TRACEPARENT_KEY, Message, MessageKind
from repro.obs.critical_path import analyze
from repro.obs.trace import NULL_SPAN, SpanContext, Tracer
from repro.obs.tracestore import TraceStore


class TestSpanContext:
    def test_roundtrip(self):
        ctx = SpanContext(trace_id=0xABCDEF, span_id=0x123, sampled=True)
        header = ctx.to_traceparent()
        assert header == f"00-{0xABCDEF:032x}-{0x123:016x}-01"
        parsed = SpanContext.from_traceparent(header)
        assert parsed.trace_id == ctx.trace_id
        assert parsed.span_id == ctx.span_id
        assert parsed.sampled is True

    def test_unsampled_flag_roundtrip(self):
        ctx = SpanContext(trace_id=7, span_id=9, sampled=False)
        parsed = SpanContext.from_traceparent(ctx.to_traceparent())
        assert parsed.sampled is False

    @pytest.mark.parametrize("header", [
        None,
        12345,
        "",
        "garbage",
        "01-" + "a" * 32 + "-" + "b" * 16 + "-01",   # bad version
        "00-" + "a" * 31 + "-" + "b" * 16 + "-01",   # short trace id
        "00-" + "a" * 32 + "-" + "b" * 15 + "-01",   # short span id
        "00-" + "a" * 32 + "-" + "b" * 16 + "-001",  # long flags
        "00-" + "g" * 32 + "-" + "b" * 16 + "-01",   # non-hex
        "00-" + "0" * 32 + "-" + "b" * 16 + "-01",   # zero trace id
        "00-" + "a" * 32 + "-" + "0" * 16 + "-01",   # zero span id
        "00-" + "a" * 32 + "-" + "b" * 16,           # missing flags
    ])
    def test_malformed_headers_yield_none(self, header):
        assert SpanContext.from_traceparent(header) is None


class TestMessagePlumbing:
    def test_set_and_read_context(self):
        tracer = Tracer(enabled=True)
        span = tracer.span("client.job")
        message = Message(MessageKind.BEGIN_LOAD, {"job_id": "j1"})
        assert message.set_trace_context(span) is message
        ctx = message.trace_context()
        assert ctx.trace_id == span.trace_id
        assert ctx.span_id == span.span_id
        span.end()

    def test_null_span_is_a_noop(self):
        message = Message(MessageKind.BEGIN_LOAD, {})
        message.set_trace_context(NULL_SPAN)
        assert TRACEPARENT_KEY not in message.meta
        assert message.trace_context() is None

    def test_accepts_bare_context(self):
        ctx = SpanContext(trace_id=5, span_id=6)
        message = Message(MessageKind.APPLY_DML, {})
        message.set_trace_context(ctx)
        assert message.trace_context().trace_id == 5

    def test_survives_wire_roundtrip(self):
        from repro.legacy.protocol import Coalescer
        message = Message(MessageKind.BEGIN_LOAD, {"job_id": "j1"})
        message.set_trace_context(SpanContext(trace_id=5, span_id=6))
        [decoded] = list(Coalescer().feed(message.to_bytes()))
        assert decoded.trace_context().span_id == 6


class TestRemoteParenting:
    def test_context_parent_continues_trace(self):
        tracer = Tracer(enabled=True)
        remote = SpanContext(trace_id=0xFEED, span_id=0xBEEF)
        span = tracer.span("job", parent=remote)
        span.end()
        [record] = tracer.records()
        assert record["trace_id"] == 0xFEED
        assert record["parent_id"] == 0xBEEF

    def test_unsampled_context_disables_subtree(self):
        tracer = Tracer(enabled=True)
        remote = SpanContext(trace_id=1, span_id=2, sampled=False)
        assert tracer.span("job", parent=remote) is NULL_SPAN
        assert tracer.records() == []

    def test_no_context_starts_local_root(self):
        tracer = Tracer(enabled=True)
        span = tracer.span("job", parent=None)
        span.end()
        [record] = tracer.records()
        assert record["parent_id"] is None

    def test_sample_rate_drops_new_roots_only(self):
        tracer = Tracer(enabled=True, sample_rate=0.0,
                        rng=random.Random(1))
        assert tracer.span("job") is NULL_SPAN
        # Continuations of a remote trace bypass root sampling: the
        # sampling decision was made (and propagated) at the root.
        remote = SpanContext(trace_id=3, span_id=4)
        continued = tracer.span("job", parent=remote)
        assert continued is not NULL_SPAN
        continued.end()
        assert len(tracer.records()) == 1

    def test_sink_and_drop_callbacks(self):
        seen, drops = [], []
        tracer = Tracer(enabled=True, max_events=2,
                        sink=seen.append, on_drop=lambda: drops.append(1))
        for i in range(4):
            tracer.span(f"s{i}").end()
        assert len(seen) == 4          # the sink sees every record
        assert len(tracer.records()) == 2
        assert tracer.dropped == 2
        assert len(drops) == 2


class TestDropAccounting:
    def test_drops_counted_and_warned_once(self, caplog):
        from repro.obs import Observability
        obs = Observability(trace_enabled=True, trace_buffer_events=2)
        with caplog.at_level("WARNING", logger="repro.obs"):
            for i in range(6):
                obs.tracer.span(f"s{i}").end()
        assert obs.tracer.dropped == 4
        assert obs.trace_dropped_spans.samples()[0]["value"] == 4.0
        # The warning fires exactly once, not once per eviction.
        warnings = [r for r in caplog.records
                    if "ring buffer full" in r.getMessage()]
        assert len(warnings) == 1
        text = obs.registry.render_prometheus()
        assert "hyperq_trace_dropped_spans_total 4" in text


class TestTraceStore:
    def _span_record(self, trace_id, span_id, name="x", **attrs):
        return {"trace_id": trace_id, "span_id": span_id,
                "parent_id": None, "name": name, "start_ts": 0.0,
                "duration_s": 0.0, "status": "ok", "attrs": attrs}

    def test_write_and_read_back(self, tmp_path):
        store = TraceStore(str(tmp_path))
        for i in range(5):
            store.write(self._span_record(1, i + 1))
        assert len(store.records()) == 5
        store.close()

    def test_rotation_and_pruning(self, tmp_path):
        store = TraceStore(str(tmp_path), segment_max_spans=4,
                           max_segments=2)
        for i in range(20):
            store.write(self._span_record(1, i + 1))
        store.flush()
        assert len(store.segments()) <= 2
        # Only the newest spans survive the bounded retention.
        kept = [r["span_id"] for r in store.records()]
        assert kept == sorted(kept)
        assert max(kept) == 20
        assert len(kept) <= 8
        store.close()

    def test_resumes_segment_numbering(self, tmp_path):
        store = TraceStore(str(tmp_path), segment_max_spans=2)
        for i in range(5):
            store.write(self._span_record(1, i + 1))
        store.close()
        reopened = TraceStore(str(tmp_path), segment_max_spans=2)
        reopened.write(self._span_record(2, 100))
        reopened.flush()
        names = [os.path.basename(p) for p in reopened.segments()]
        assert names == sorted(names)
        assert 100 in [r["span_id"] for r in reopened.records()]
        reopened.close()

    def test_query_by_trace_and_job(self, tmp_path):
        store = TraceStore(str(tmp_path))
        store.write(self._span_record(10, 1, name="job", job_id="jA"))
        store.write(self._span_record(10, 2, name="copy"))
        store.write(self._span_record(20, 3, name="job", job_id="jB"))
        by_trace = store.query(trace_id=10)
        assert {r["span_id"] for r in by_trace} == {1, 2}
        # job query pulls every span of the job's whole trace, even the
        # spans that do not themselves carry the job_id attribute.
        by_job = store.query(job_id="jA")
        assert {r["span_id"] for r in by_job} == {1, 2}
        assert store.query(job_id="nope") == []
        store.close()

    def test_sink_integration_with_tracer(self, tmp_path):
        store = TraceStore(str(tmp_path))
        tracer = Tracer(enabled=True, sink=store.write)
        with tracer.span("job", job_id="j1"):
            pass
        store.flush()
        assert [r["name"] for r in store.records()] == ["job"]
        store.close()

    def test_jsonl_lines_are_valid(self, tmp_path):
        store = TraceStore(str(tmp_path))
        store.write(self._span_record(1, 1))
        store.flush()
        [segment] = store.segments()
        with open(segment, "r", encoding="utf-8") as handle:
            for line in handle:
                assert json.loads(line)["trace_id"] == 1
        store.close()


class TestCriticalPath:
    def _record(self, name, span_id, parent_id, start, duration,
                **attrs):
        return {"trace_id": 1, "span_id": span_id,
                "parent_id": parent_id, "name": name,
                "start_ts": start, "duration_s": duration,
                "status": "ok", "attrs": attrs}

    def test_stage_attribution(self):
        records = [
            self._record("wlm.admit", 1, 99, 0.0, 1.0, job_id="j1"),
            self._record("job", 2, 99, 1.0, 10.0, job_id="j1"),
            # two overlapping acquisition spans count once
            self._record("receive", 3, 2, 1.0, 4.0),
            self._record("convert", 4, 3, 2.0, 4.0),
            self._record("copy", 5, 2, 6.0, 2.0),
            self._record("apply", 6, 2, 8.0, 3.0),
        ]
        [job] = analyze(records)
        assert job["job_id"] == "j1"
        assert job["stages"]["acquisition"] == pytest.approx(5.0)
        assert job["stages"]["copy"] == pytest.approx(2.0)
        assert job["stages"]["apply"] == pytest.approx(3.0)
        # admission wait preceded the job span but is still attributed
        assert job["stages"]["admission_wait"] == pytest.approx(1.0)
        assert job["other_s"] == pytest.approx(0.0)
        assert job["critical_stage"] == "acquisition"

    def test_other_residue(self):
        records = [
            self._record("job", 1, None, 0.0, 10.0, job_id="j1"),
            self._record("apply", 2, 1, 0.0, 4.0),
        ]
        [job] = analyze(records)
        assert job["other_s"] == pytest.approx(6.0)
        assert job["critical_stage"] == "apply"

    def test_clamps_to_job_window(self):
        records = [
            self._record("job", 1, None, 5.0, 5.0, job_id="j1"),
            # an upload span reported beyond the job's end is clamped
            self._record("upload", 2, 1, 9.0, 10.0),
        ]
        [job] = analyze(records)
        assert job["stages"]["acquisition"] == pytest.approx(1.0)

    def test_no_job_spans(self):
        assert analyze([self._record("copy", 1, None, 0.0, 1.0)]) == []
