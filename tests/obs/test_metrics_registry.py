"""MetricsRegistry, instrument, and exposition tests."""

import threading

import pytest

from repro.obs.metrics import (
    Counter, Gauge, Histogram, MetricsRegistry, NULL_REGISTRY,
)


class TestCounter:
    def test_inc(self):
        counter = Counter()
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            Counter().inc(-1)

    def test_thread_safety(self):
        counter = Counter()

        def bump():
            for _ in range(10_000):
                counter.inc()

        threads = [threading.Thread(target=bump) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert counter.value == 40_000


class TestGauge:
    def test_set_inc_dec(self):
        gauge = Gauge()
        gauge.set(10)
        gauge.inc(2)
        gauge.dec(5)
        assert gauge.value == 7.0


class TestHistogram:
    def test_count_sum_min_max(self):
        hist = Histogram()
        for value in (1.0, 3.0, 2.0):
            hist.observe(value)
        sample = hist.sample()
        assert sample["count"] == 3
        assert sample["sum"] == 6.0
        assert sample["min"] == 1.0
        assert sample["max"] == 3.0

    def test_percentiles_ordered(self):
        hist = Histogram()
        for value in range(100):
            hist.observe(float(value))
        assert hist.percentile(0.5) <= hist.percentile(0.95) \
            <= hist.percentile(0.99)
        assert hist.percentile(0.0) == 0.0
        assert hist.percentile(1.0) == 99.0

    def test_percentile_empty(self):
        assert Histogram().percentile(0.5) == 0.0

    def test_percentile_out_of_range(self):
        with pytest.raises(ValueError):
            Histogram().percentile(1.5)

    def test_reservoir_bounded(self):
        hist = Histogram(reservoir=16)
        for value in range(1000):
            hist.observe(float(value))
        assert hist.count == 1000          # exact count survives eviction
        assert len(hist._samples) == 16    # reservoir stays bounded
        assert hist.percentile(0.5) >= 984  # quantiles track recent values

    def test_timer(self):
        hist = Histogram()
        with hist.time():
            pass
        assert hist.count == 1
        assert hist.sample()["sum"] >= 0.0

    def test_mean(self):
        hist = Histogram()
        assert hist.mean == 0.0
        hist.observe(2.0)
        hist.observe(4.0)
        assert hist.mean == 3.0


class TestFamilies:
    def test_labeled_children_distinct(self):
        registry = MetricsRegistry()
        family = registry.counter("x_total", "", ("stage",))
        family.labels(stage="a").inc()
        family.labels(stage="a").inc()
        family.labels(stage="b").inc(5)
        samples = {s["labels"]["stage"]: s["value"]
                   for s in family.samples()}
        assert samples == {"a": 2.0, "b": 5.0}

    def test_wrong_labels_rejected(self):
        registry = MetricsRegistry()
        family = registry.counter("y_total", "", ("stage",))
        with pytest.raises(ValueError):
            family.labels(phase="a")
        with pytest.raises(ValueError):
            family.inc()  # labeled family needs .labels(...)

    def test_unlabeled_convenience(self):
        registry = MetricsRegistry()
        family = registry.counter("z_total")
        family.inc(3)
        assert family.samples()[0]["value"] == 3.0

    def test_reregistration_same_family(self):
        registry = MetricsRegistry()
        first = registry.counter("shared_total", "", ("k",))
        second = registry.counter("shared_total", "", ("k",))
        assert first is second

    def test_reregistration_conflict(self):
        registry = MetricsRegistry()
        registry.counter("conflict_total")
        with pytest.raises(ValueError):
            registry.gauge("conflict_total")
        with pytest.raises(ValueError):
            registry.counter("conflict_total", "", ("new_label",))


class TestRegistry:
    def test_collect_shape(self):
        registry = MetricsRegistry()
        registry.counter("a_total", "help a").inc()
        registry.histogram("b_seconds").observe(0.5)
        collected = registry.collect()
        assert collected["a_total"]["type"] == "counter"
        assert collected["a_total"]["help"] == "help a"
        assert collected["b_seconds"]["samples"][0]["count"] == 1

    def test_render_prometheus(self):
        registry = MetricsRegistry()
        registry.counter("req_total", "requests", ("kind",)) \
            .labels(kind="data").inc(7)
        registry.histogram("lat_seconds").observe(0.25)
        text = registry.render_prometheus()
        assert "# HELP req_total requests" in text
        assert "# TYPE req_total counter" in text
        assert 'req_total{kind="data"} 7' in text
        assert "lat_seconds_count 1" in text
        assert "lat_seconds_sum 0.25" in text
        assert 'lat_seconds{quantile="0.5"} 0.25' in text

    def test_render_escapes_label_values(self):
        registry = MetricsRegistry()
        registry.counter("esc_total", "", ("q",)) \
            .labels(q='a"b\nc').inc()
        text = registry.render_prometheus()
        assert r'q="a\"b\nc"' in text

    def test_empty_render(self):
        assert MetricsRegistry().render_prometheus() == ""


class TestDisabledRegistry:
    def test_null_instruments(self):
        registry = MetricsRegistry(enabled=False)
        family = registry.counter("off_total", "", ("k",))
        family.labels(k="x").inc()      # all no-ops
        family.inc()
        registry.gauge("g").set(5)
        with registry.histogram("h").time():
            pass
        assert registry.collect() == {}
        assert registry.render_prometheus() == ""

    def test_shared_null_registry(self):
        assert not NULL_REGISTRY.enabled
        assert NULL_REGISTRY.collect() == {}
