"""MetricsRegistry, instrument, and exposition tests."""

import threading

import pytest

from repro.obs.metrics import (
    Counter, Gauge, Histogram, MetricsRegistry, NULL_REGISTRY,
    parse_exposition,
)


class TestCounter:
    def test_inc(self):
        counter = Counter()
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            Counter().inc(-1)

    def test_thread_safety(self):
        counter = Counter()

        def bump():
            for _ in range(10_000):
                counter.inc()

        threads = [threading.Thread(target=bump) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert counter.value == 40_000


class TestGauge:
    def test_set_inc_dec(self):
        gauge = Gauge()
        gauge.set(10)
        gauge.inc(2)
        gauge.dec(5)
        assert gauge.value == 7.0


class TestHistogram:
    def test_count_sum_min_max(self):
        hist = Histogram()
        for value in (1.0, 3.0, 2.0):
            hist.observe(value)
        sample = hist.sample()
        assert sample["count"] == 3
        assert sample["sum"] == 6.0
        assert sample["min"] == 1.0
        assert sample["max"] == 3.0

    def test_percentiles_ordered(self):
        hist = Histogram()
        for value in range(100):
            hist.observe(float(value))
        assert hist.percentile(0.5) <= hist.percentile(0.95) \
            <= hist.percentile(0.99)
        assert hist.percentile(0.0) == 0.0
        assert hist.percentile(1.0) == 99.0

    def test_percentile_empty(self):
        assert Histogram().percentile(0.5) == 0.0

    def test_percentile_out_of_range(self):
        with pytest.raises(ValueError):
            Histogram().percentile(1.5)

    def test_reservoir_bounded(self):
        hist = Histogram(reservoir=16)
        for value in range(1000):
            hist.observe(float(value))
        assert hist.count == 1000          # exact count survives eviction
        assert len(hist._samples) == 16    # reservoir stays bounded
        assert hist.percentile(0.5) >= 984  # quantiles track recent values

    def test_timer(self):
        hist = Histogram()
        with hist.time():
            pass
        assert hist.count == 1
        assert hist.sample()["sum"] >= 0.0

    def test_mean(self):
        hist = Histogram()
        assert hist.mean == 0.0
        hist.observe(2.0)
        hist.observe(4.0)
        assert hist.mean == 3.0


class TestExemplars:
    def test_worst_traced_observation_wins(self):
        hist = Histogram()
        hist.observe(1.0, trace_id=0xA)
        hist.observe(5.0, trace_id=0xB)
        hist.observe(2.0, trace_id=0xC)   # smaller: does not displace
        exemplar = hist.sample()["exemplar"]
        assert exemplar == {"value": 5.0, "trace_id": 0xB}

    def test_untraced_observations_leave_no_exemplar(self):
        hist = Histogram()
        hist.observe(9.0)
        assert "exemplar" not in hist.sample()

    def test_stale_exemplar_displaced(self):
        hist = Histogram(reservoir=8)
        hist.observe(100.0, trace_id=0xA)
        # A reservoir's worth of untraced samples makes 0xA stale; the
        # next traced sample takes over even though it is smaller.
        for _ in range(10):
            hist.observe(1.0)
        hist.observe(2.0, trace_id=0xB)
        assert hist.sample()["exemplar"]["trace_id"] == 0xB

    def test_timer_span_feeds_exemplar(self):
        class FakeSpan:
            trace_id = 0xD

        hist = Histogram()
        with hist.time(span=FakeSpan()):
            pass
        assert hist.sample()["exemplar"]["trace_id"] == 0xD

    def test_exemplar_in_collect_but_not_exposition(self):
        registry = MetricsRegistry()
        registry.histogram("ex_seconds").observe(1.0, trace_id=0xE)
        collected = registry.collect()
        assert collected["ex_seconds"]["samples"][0]["exemplar"] == \
            {"value": 1.0, "trace_id": 0xE}
        assert "exemplar" not in registry.render_prometheus()


class TestFamilies:
    def test_labeled_children_distinct(self):
        registry = MetricsRegistry()
        family = registry.counter("x_total", "", ("stage",))
        family.labels(stage="a").inc()
        family.labels(stage="a").inc()
        family.labels(stage="b").inc(5)
        samples = {s["labels"]["stage"]: s["value"]
                   for s in family.samples()}
        assert samples == {"a": 2.0, "b": 5.0}

    def test_wrong_labels_rejected(self):
        registry = MetricsRegistry()
        family = registry.counter("y_total", "", ("stage",))
        with pytest.raises(ValueError):
            family.labels(phase="a")
        with pytest.raises(ValueError):
            family.inc()  # labeled family needs .labels(...)

    def test_unlabeled_convenience(self):
        registry = MetricsRegistry()
        family = registry.counter("z_total")
        family.inc(3)
        assert family.samples()[0]["value"] == 3.0

    def test_reregistration_same_family(self):
        registry = MetricsRegistry()
        first = registry.counter("shared_total", "", ("k",))
        second = registry.counter("shared_total", "", ("k",))
        assert first is second

    def test_reregistration_conflict(self):
        registry = MetricsRegistry()
        registry.counter("conflict_total")
        with pytest.raises(ValueError):
            registry.gauge("conflict_total")
        with pytest.raises(ValueError):
            registry.counter("conflict_total", "", ("new_label",))


class TestRegistry:
    def test_collect_shape(self):
        registry = MetricsRegistry()
        registry.counter("a_total", "help a").inc()
        registry.histogram("b_seconds").observe(0.5)
        collected = registry.collect()
        assert collected["a_total"]["type"] == "counter"
        assert collected["a_total"]["help"] == "help a"
        assert collected["b_seconds"]["samples"][0]["count"] == 1

    def test_render_prometheus(self):
        registry = MetricsRegistry()
        registry.counter("req_total", "requests", ("kind",)) \
            .labels(kind="data").inc(7)
        registry.histogram("lat_seconds").observe(0.25)
        text = registry.render_prometheus()
        assert "# HELP req_total requests" in text
        assert "# TYPE req_total counter" in text
        assert 'req_total{kind="data"} 7' in text
        assert "lat_seconds_count 1" in text
        assert "lat_seconds_sum 0.25" in text
        assert 'lat_seconds{quantile="0.5"} 0.25' in text

    def test_render_escapes_label_values(self):
        registry = MetricsRegistry()
        registry.counter("esc_total", "", ("q",)) \
            .labels(q='a"b\nc').inc()
        text = registry.render_prometheus()
        assert r'q="a\"b\nc"' in text

    def test_empty_render(self):
        assert MetricsRegistry().render_prometheus() == ""


class TestConcurrentFamilies:
    def test_concurrent_labeled_counter_updates(self):
        """Racing threads on one family: no lost counts, no dup children."""
        registry = MetricsRegistry()
        family = registry.counter("race_total", "", ("worker",))
        per_thread, threads_per_label = 2_000, 4

        def bump(label):
            for _ in range(per_thread):
                family.labels(worker=label).inc()

        threads = [threading.Thread(target=bump, args=(label,))
                   for label in ("a", "b")
                   for _ in range(threads_per_label)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        samples = {s["labels"]["worker"]: s["value"]
                   for s in family.samples()}
        expected = float(per_thread * threads_per_label)
        assert samples == {"a": expected, "b": expected}
        assert len(family.samples()) == 2

    def test_concurrent_histogram_observations(self):
        registry = MetricsRegistry()
        family = registry.histogram("race_seconds", "", ("stage",))

        def observe(stage):
            for i in range(1_000):
                family.labels(stage=stage).observe(float(i))

        threads = [threading.Thread(target=observe, args=(stage,))
                   for stage in ("x", "y") for _ in range(3)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        counts = {s["labels"]["stage"]: s["count"]
                  for s in family.samples()}
        assert counts == {"x": 3_000, "y": 3_000}


class TestParseExposition:
    def test_roundtrip_of_rendered_registry(self):
        registry = MetricsRegistry()
        registry.counter("req_total", "requests", ("kind",)) \
            .labels(kind="data").inc(7)
        registry.gauge("depth", "queue depth").set(3)
        registry.histogram("lat_seconds", "latency").observe(0.25)
        parsed = parse_exposition(registry.render_prometheus())
        assert parsed["req_total"]["type"] == "counter"
        assert parsed["req_total"]["help"] == "requests"
        assert parsed["req_total"]["samples"] == [
            {"name": "req_total", "labels": {"kind": "data"},
             "value": 7.0}]
        assert parsed["depth"]["samples"][0]["value"] == 3.0
        hist = parsed["lat_seconds"]
        assert hist["type"] == "histogram"
        by_name = {(s["name"], s["labels"].get("quantile")): s["value"]
                   for s in hist["samples"]}
        assert by_name[("lat_seconds_count", None)] == 1.0
        assert by_name[("lat_seconds_sum", None)] == 0.25
        assert by_name[("lat_seconds", "0.5")] == 0.25

    def test_roundtrips_escaped_labels(self):
        registry = MetricsRegistry()
        registry.counter("esc_total", "", ("q",)) \
            .labels(q='a"b\nc').inc()
        parsed = parse_exposition(registry.render_prometheus())
        [series] = parsed["esc_total"]["samples"]
        assert series["labels"] == {"q": 'a"b\nc'}

    @pytest.mark.parametrize("text", [
        "no_type_decl 1\n",                          # sample before TYPE
        "# TYPE x counter\nx one\n",                 # non-numeric value
        "# TYPE x counter\n9bad 1\n",                # bad metric name
        "# TYPE x histogram\nx 1\n",                 # bare histogram line
        "# TYPE x counter\nx 1\nx 2\n",              # duplicate series
        "# TYPE x wibble\n",                         # unknown type
        "what even is this\n",                       # unknown line shape
        '# TYPE x counter\nx{k="v} 1\n',             # unterminated label
    ])
    def test_rejects_malformed(self, text):
        with pytest.raises(ValueError):
            parse_exposition(text)

    def test_empty_text(self):
        assert parse_exposition("") == {}


class TestDisabledRegistry:
    def test_null_instruments(self):
        registry = MetricsRegistry(enabled=False)
        family = registry.counter("off_total", "", ("k",))
        family.labels(k="x").inc()      # all no-ops
        family.inc()
        registry.gauge("g").set(5)
        with registry.histogram("h").time():
            pass
        assert registry.collect() == {}
        assert registry.render_prometheus() == ""

    def test_shared_null_registry(self):
        assert not NULL_REGISTRY.enabled
        assert NULL_REGISTRY.collect() == {}
