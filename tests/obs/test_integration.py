"""End-to-end observability: one traced job through the full stack.

The acceptance bar for the observability layer: a load job yields at
least one span per pipeline stage with correct parent/child nesting,
and the registry's counters reconcile with the node's own JobMetrics.
"""

import pytest

from repro.bench.harness import (
    build_stack, run_workload_through_hyperq, stage_timing_rows,
)
from repro.core.config import HyperQConfig
from repro.workloads.generator import make_workload

STAGES = ("receive", "convert", "write", "upload", "copy", "apply")


@pytest.fixture(scope="module")
def traced_run():
    """One instrumented job shared by every assertion in the module."""
    workload = make_workload(3_000)
    config = HyperQConfig(metrics_enabled=True, trace_enabled=True)
    with build_stack(config=config) as stack:
        metrics = run_workload_through_hyperq(stack, workload,
                                              sessions=2)
        yield stack, workload, metrics, stack.node.obs.tracer.records()


def _counter_total(collected, name):
    family = collected.get(name, {"samples": []})
    return sum(sample["value"] for sample in family["samples"])


class TestSpans:
    def test_every_stage_traced(self, traced_run):
        _, _, _, records = traced_run
        names = {record["name"] for record in records}
        for stage in STAGES:
            assert stage in names, f"no span for stage {stage!r}"
        assert "job" in names
        assert "credit.acquire" in names

    def test_single_trace_tree(self, traced_run):
        _, _, _, records = traced_run
        trace_ids = {record["trace_id"] for record in records}
        assert len(trace_ids) == 1, "one job => one trace"

    def test_parent_child_nesting(self, traced_run):
        _, _, _, records = traced_run
        by_id = {record["span_id"]: record for record in records}
        [job] = [r for r in records if r["name"] == "job"]
        assert job["parent_id"] is None

        def parents_of(name):
            return {by_id[r["parent_id"]]["name"]
                    for r in records if r["name"] == name}

        assert parents_of("receive") == {"job"}
        assert parents_of("credit.acquire") == {"receive"}
        assert parents_of("convert") == {"receive"}
        assert parents_of("write") == {"convert"}
        assert parents_of("upload") == {"job"}
        assert parents_of("copy") == {"job"}
        assert parents_of("apply") == {"job"}

    def test_chunk_spans_cover_every_chunk(self, traced_run):
        _, _, metrics, records = traced_run
        receives = [r for r in records if r["name"] == "receive"]
        assert len(receives) == metrics.chunks_received
        assert {r["attrs"]["chunk_seq"] for r in receives} == \
            set(range(metrics.chunks_received))

    def test_spans_all_ok(self, traced_run):
        _, _, _, records = traced_run
        assert all(record["status"] == "ok" for record in records)


class TestReconciliation:
    """Registry counters must agree with the node's JobMetrics."""

    def test_acquisition_counters(self, traced_run):
        stack, _, metrics, _ = traced_run
        collected = stack.node.obs.registry.collect()
        pairs = [
            ("hyperq_chunks_received_total", metrics.chunks_received),
            ("hyperq_bytes_received_total", metrics.bytes_received),
            ("hyperq_records_converted_total",
             metrics.records_converted),
            ("hyperq_bytes_staged_total", metrics.bytes_staged),
            ("hyperq_files_written_total", metrics.files_written),
            ("hyperq_bytes_uploaded_total", metrics.bytes_uploaded),
            ("hyperq_copy_rows_total", metrics.copy_rows),
        ]
        for name, expected in pairs:
            assert _counter_total(collected, name) == expected, name

    def test_application_counters(self, traced_run):
        stack, workload, metrics, _ = traced_run
        collected = stack.node.obs.registry.collect()
        rows = {s["labels"]["op"]: s["value"]
                for s in collected["hyperq_rows_applied_total"]
                ["samples"]}
        assert rows.get("insert", 0) == metrics.rows_inserted \
            == workload.rows
        assert _counter_total(
            collected, "hyperq_apply_statements_total") == \
            metrics.dml_statements

    def test_stage_histogram_counts(self, traced_run):
        stack, _, metrics, _ = traced_run
        rows = {row["stage"]: row
                for row in stage_timing_rows(stack.node)}
        assert set(rows) >= set(STAGES)
        assert rows["receive"]["count"] == metrics.chunks_received
        assert rows["write"]["count"] == metrics.chunks_received
        assert rows["upload"]["count"] == metrics.files_written
        assert rows["copy"]["count"] == 1
        assert rows["apply"]["count"] == 1

    def test_credit_conservation_after_job(self, traced_run):
        stack, _, _, _ = traced_run
        stack.node.credits.check_conservation()


class TestExporters:
    def test_stats_payload(self, traced_run):
        stack, _, _, records = traced_run
        stats = stack.node.stats()
        assert "hyperq_chunks_received_total" in stats["metrics"]
        assert stats["trace"]["enabled"] is True
        assert stats["trace"]["buffered_spans"] == len(records)

    def test_render_prometheus(self, traced_run):
        stack, _, metrics, _ = traced_run
        text = stack.node.render_prometheus()
        assert (f"hyperq_chunks_received_total "
                f"{metrics.chunks_received}") in text
        assert 'hyperq_stage_seconds_count{stage="apply"} 1' in text
        assert "# TYPE hyperq_stage_seconds histogram" in text
