"""End-to-end distributed trace over a real TCP transport.

The acceptance test of the cross-process propagation story: a legacy
client with its own tracer drives a load job through a Hyper-Q node
over real sockets, and the union of client-side and gateway-side span
records must form ONE trace — a single trace_id from the client's
BEGIN_LOAD through the gateway's COPY and Beta apply, with every
parent link resolvable and no orphan roots on the gateway side.
"""

from repro.cdw.cloudstore import CloudStore
from repro.cdw.engine import CdwEngine
from repro.core.config import HyperQConfig
from repro.core.gateway import HyperQNode
from repro.legacy.client import ImportJobSpec, LegacyEtlClient
from repro.net_tcp import TcpListener
from repro.obs.trace import Tracer
from repro.workloads.generator import make_workload

WLM_PROFILE = {
    "policy": "fair",
    "pools": [
        {"name": "etl", "weight": 1, "max_concurrency": 2,
         "queue_limit": 4, "queue_timeout_s": 10.0,
         "match": {"tenant": "*"}},
    ],
}


def _run_traced_import(config):
    workload = make_workload(rows=200, row_bytes=120, seed=11)
    store = CloudStore()
    engine = CdwEngine(store=store)
    engine.execute(workload.ddl)
    listener = TcpListener()
    node = HyperQNode(engine, store, config, listener=listener).start()
    client_tracer = Tracer(enabled=True)
    try:
        client = LegacyEtlClient(listener.connect, timeout=60,
                                 tracer=client_tracer)
        client.logon("h", "u", "pw")
        result = client.run_import(ImportJobSpec(
            target_table=workload.target_table,
            et_table=workload.et_table,
            uv_table=workload.uv_table,
            layout=workload.layout,
            apply_sql=workload.apply_sql,
            data=workload.data,
            sessions=2,
            tenant="tenant-0",
            admission_retry_attempts=10,
            admission_backoff_s=0.05))
        client.logoff()
        assert result.rows_inserted == workload.expected_good_rows
        gateway_records = node.obs.tracer.records()
    finally:
        node.stop()
    return client_tracer.records(), gateway_records


def _assert_single_connected_trace(client_records, gateway_records):
    union = client_records + gateway_records
    assert union
    # One trace end to end: the client's root trace id is the only
    # trace id anywhere, on either side of the socket.
    trace_ids = {record["trace_id"] for record in union}
    assert len(trace_ids) == 1, trace_ids

    roots = [record for record in union
             if record["parent_id"] is None]
    assert [root["name"] for root in roots] == ["client.job"]
    # Every root the gateway produced is parented into the client's
    # trace — remote context propagation, not orphan local roots.
    assert all(record["parent_id"] is not None
               for record in gateway_records)

    # Every parent link resolves inside the union: the chain from any
    # span walks back to the client root with no dangling hops.
    by_id = {record["span_id"]: record for record in union}
    root_id = roots[0]["span_id"]
    for record in union:
        hops = 0
        cursor = record
        while cursor["parent_id"] is not None:
            assert cursor["parent_id"] in by_id, (
                record["name"], cursor["parent_id"])
            cursor = by_id[cursor["parent_id"]]
            hops += 1
            assert hops < 100
        assert cursor["span_id"] == root_id

    names = {record["name"] for record in union}
    # The full pipeline appears in the one trace: client job span,
    # gateway job span, acquisition, COPY and Beta apply.
    for expected in ("client.job", "job", "receive", "copy", "apply"):
        assert expected in names, expected


def test_single_trace_across_tcp():
    client_records, gateway_records = _run_traced_import(
        HyperQConfig(credits=4, converters=2, filewriters=2,
                     trace_enabled=True))
    _assert_single_connected_trace(client_records, gateway_records)


def test_single_trace_across_tcp_with_wlm():
    """Admission spans join the same trace instead of starting one."""
    client_records, gateway_records = _run_traced_import(
        HyperQConfig(credits=4, converters=2, filewriters=2,
                     trace_enabled=True, wlm_profile=WLM_PROFILE))
    _assert_single_connected_trace(client_records, gateway_records)
    names = {record["name"] for record in gateway_records}
    assert "wlm.admit" in names


def test_gateway_traces_locally_when_client_untraced():
    """No client tracer -> the gateway starts its own local root."""
    workload = make_workload(rows=50, row_bytes=120, seed=3)
    store = CloudStore()
    engine = CdwEngine(store=store)
    engine.execute(workload.ddl)
    listener = TcpListener()
    config = HyperQConfig(credits=4, converters=2, filewriters=2,
                          trace_enabled=True)
    node = HyperQNode(engine, store, config, listener=listener).start()
    try:
        client = LegacyEtlClient(listener.connect, timeout=60)
        client.logon("h", "u", "pw")
        client.run_import(ImportJobSpec(
            target_table=workload.target_table,
            et_table=workload.et_table,
            uv_table=workload.uv_table,
            layout=workload.layout,
            apply_sql=workload.apply_sql,
            data=workload.data,
            sessions=1))
        client.logoff()
        records = node.obs.tracer.records()
    finally:
        node.stop()
    [job] = [r for r in records if r["name"] == "job"]
    assert job["parent_id"] is None
