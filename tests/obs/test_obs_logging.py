"""Structured-logging tests: logger naming, JSON shape, idempotence."""

import io
import json
import logging

import pytest

from repro.obs.logging import (
    ROOT_LOGGER_NAME, configure_logging, get_logger,
)


@pytest.fixture(autouse=True)
def _reset_repro_logging():
    """Leave the repro logger tree as the test found it."""
    root = logging.getLogger(ROOT_LOGGER_NAME)
    saved = (list(root.handlers), root.level, root.propagate)
    yield
    root.handlers[:] = saved[0]
    root.setLevel(saved[1])
    root.propagate = saved[2]


class TestGetLogger:
    def test_prefixes_component(self):
        assert get_logger("gateway").name == "repro.gateway"

    def test_idempotent_prefix(self):
        assert get_logger("repro.pipeline").name == "repro.pipeline"
        assert get_logger("repro").name == "repro"


class TestConfigureLogging:
    def test_json_output_with_extras(self):
        stream = io.StringIO()
        configure_logging("INFO", json_output=True, stream=stream)
        get_logger("gateway").info("job started",
                                   extra={"job_id": "j1", "chunks": 4})
        payload = json.loads(stream.getvalue())
        assert payload["level"] == "INFO"
        assert payload["logger"] == "repro.gateway"
        assert payload["message"] == "job started"
        assert payload["job_id"] == "j1"
        assert payload["chunks"] == 4
        assert isinstance(payload["ts"], float)

    def test_json_output_exception(self):
        stream = io.StringIO()
        configure_logging("INFO", json_output=True, stream=stream)
        try:
            raise ValueError("bad")
        except ValueError:
            get_logger("x").exception("it failed")
        payload = json.loads(stream.getvalue())
        assert "ValueError: bad" in payload["exc"]

    def test_text_output_shows_extras(self):
        stream = io.StringIO()
        configure_logging("INFO", json_output=False, stream=stream)
        get_logger("credits").warning("stalled",
                                      extra={"pool_size": 8})
        line = stream.getvalue()
        assert "repro.credits" in line
        assert "stalled" in line
        assert "pool_size=8" in line

    def test_reconfigure_does_not_stack_handlers(self):
        configure_logging("INFO", stream=io.StringIO())
        configure_logging("DEBUG", stream=io.StringIO())
        root = logging.getLogger(ROOT_LOGGER_NAME)
        tagged = [h for h in root.handlers
                  if getattr(h, "_repro_handler", False)]
        assert len(tagged) == 1
        assert root.level == logging.DEBUG

    def test_level_filtering(self):
        stream = io.StringIO()
        configure_logging("WARNING", stream=stream)
        get_logger("quiet").info("not shown")
        get_logger("quiet").warning("shown")
        assert "not shown" not in stream.getvalue()
        assert "shown" in stream.getvalue()

    def test_unknown_level_rejected(self):
        with pytest.raises(ValueError):
            configure_logging("LOUD")


class TestTraceCorrelation:
    def test_record_inside_span_carries_trace_ids(self):
        from repro.obs.trace import Tracer

        stream = io.StringIO()
        configure_logging("INFO", json_output=True, stream=stream)
        tracer = Tracer(enabled=True)
        with tracer.span("job") as span:
            get_logger("gateway").info("working")
        payload = json.loads(stream.getvalue())
        assert payload["trace_id"] == span.trace_id
        assert payload["span_id"] == span.span_id

    def test_innermost_span_wins(self):
        from repro.obs.trace import Tracer

        stream = io.StringIO()
        configure_logging("INFO", json_output=True, stream=stream)
        tracer = Tracer(enabled=True)
        with tracer.span("outer"):
            with tracer.span("inner") as inner:
                get_logger("gateway").info("deep")
        payload = json.loads(stream.getvalue())
        assert payload["span_id"] == inner.span_id

    def test_explicit_extra_wins_over_implicit(self):
        from repro.obs.trace import Tracer

        stream = io.StringIO()
        configure_logging("INFO", json_output=True, stream=stream)
        tracer = Tracer(enabled=True)
        with tracer.span("job"):
            get_logger("gateway").info(
                "handoff", extra={"trace_id": "explicit"})
        payload = json.loads(stream.getvalue())
        assert payload["trace_id"] == "explicit"

    def test_no_span_no_fields(self):
        stream = io.StringIO()
        configure_logging("INFO", json_output=True, stream=stream)
        get_logger("gateway").info("idle")
        payload = json.loads(stream.getvalue())
        assert "trace_id" not in payload
        assert "span_id" not in payload

    def test_text_output_carries_trace_id(self):
        from repro.obs.trace import Tracer

        stream = io.StringIO()
        configure_logging("INFO", json_output=False, stream=stream)
        tracer = Tracer(enabled=True)
        with tracer.span("job") as span:
            get_logger("gateway").info("working")
        assert f"trace_id={span.trace_id}" in stream.getvalue()
