"""DML tests: set-oriented semantics, atomicity, uniqueness, MERGE."""

import datetime

import pytest

from repro.cdw.engine import CdwEngine
from repro.errors import BulkExecutionError, CatalogError


@pytest.fixture
def db():
    engine = CdwEngine()
    engine.execute("CREATE TABLE t (K INT NOT NULL, V NVARCHAR(10), "
                   "D DATE, UNIQUE (K))")
    return engine


class TestInsert:
    def test_values(self, db):
        result = db.execute(
            "INSERT INTO t VALUES (1, 'a', DATE '2020-01-01')")
        assert result.rows_inserted == 1

    def test_column_list_fills_nulls(self, db):
        db.execute("INSERT INTO t (K) VALUES (1)")
        assert db.query("SELECT V, D FROM t") == [(None, None)]

    def test_insert_select(self, db):
        db.execute("CREATE TABLE src (K INT, V NVARCHAR(10))")
        db.execute("INSERT INTO src VALUES (1, 'x'), (2, 'y')")
        result = db.execute(
            "INSERT INTO t (K, V) SELECT K, V FROM src")
        assert result.rows_inserted == 2

    def test_coercion_applies(self, db):
        db.execute("INSERT INTO t VALUES (1, 'a', '2020-01-02')")
        assert db.query("SELECT D FROM t") == \
            [(datetime.date(2020, 1, 2),)]

    def test_not_null_violation_aborts(self, db):
        with pytest.raises(BulkExecutionError):
            db.execute("INSERT INTO t VALUES (NULL, 'a', NULL)")

    def test_conversion_error_aborts_whole_statement(self, db):
        """Set-oriented semantics: one bad row, nothing applied."""
        with pytest.raises(BulkExecutionError) as info:
            db.execute(
                "INSERT INTO t VALUES (1, 'a', '2020-01-01'), "
                "(2, 'b', 'garbage'), (3, 'c', '2020-01-03')")
        assert info.value.kind == "conversion"
        assert db.query("SELECT COUNT(*) FROM t") == [(0,)]

    def test_unique_violation_aborts_whole_statement(self, db):
        db.execute("INSERT INTO t VALUES (1, 'a', NULL)")
        with pytest.raises(BulkExecutionError) as info:
            db.execute("INSERT INTO t VALUES (2, 'b', NULL), "
                       "(1, 'dup', NULL)")
        assert info.value.kind == "uniqueness"
        assert db.query("SELECT COUNT(*) FROM t") == [(1,)]

    def test_duplicate_within_batch_detected(self, db):
        with pytest.raises(BulkExecutionError):
            db.execute("INSERT INTO t VALUES (5, 'a', NULL), "
                       "(5, 'b', NULL)")

    def test_null_keys_do_not_collide(self, db):
        db.execute("CREATE TABLE u (K INT, UNIQUE (K))")
        db.execute("INSERT INTO u VALUES (NULL), (NULL)")
        assert db.query("SELECT COUNT(*) FROM u") == [(2,)]

    def test_no_native_unique_mode(self):
        engine = CdwEngine(native_unique=False)
        engine.execute("CREATE TABLE t (K INT, UNIQUE (K))")
        engine.execute("INSERT INTO t VALUES (1), (1)")
        assert engine.query("SELECT COUNT(*) FROM t") == [(2,)]


class TestUpdate:
    def test_basic(self, db):
        db.execute("INSERT INTO t VALUES (1, 'a', NULL), (2, 'b', NULL)")
        result = db.execute("UPDATE t SET V = 'z' WHERE K = 1")
        assert result.rows_updated == 1
        assert db.query("SELECT V FROM t ORDER BY K") == [("z",), ("b",)]

    def test_update_expression_uses_old_row(self, db):
        db.execute("CREATE TABLE n (A INT)")
        db.execute("INSERT INTO n VALUES (1), (2)")
        db.execute("UPDATE n SET A = A + 10")
        assert db.query("SELECT A FROM n ORDER BY A") == [(11,), (12,)]

    def test_update_from_source(self, db):
        db.execute("INSERT INTO t VALUES (1, 'a', NULL), (2, 'b', NULL)")
        db.execute("CREATE TABLE s (K INT, V NVARCHAR(10))")
        db.execute("INSERT INTO s VALUES (2, 'patched')")
        result = db.execute(
            "UPDATE t SET V = s.V FROM s WHERE t.K = s.K")
        assert result.rows_updated == 1
        assert db.query("SELECT V FROM t WHERE K = 2") == [("patched",)]

    def test_update_atomic_on_conversion_error(self, db):
        db.execute("INSERT INTO t VALUES (1, 'a', NULL), (2, 'b', NULL)")
        with pytest.raises(BulkExecutionError):
            db.execute("UPDATE t SET D = 'garbage'")
        assert db.query("SELECT D FROM t") == [(None,), (None,)]

    def test_update_unique_violation_rolls_back(self, db):
        db.execute("INSERT INTO t VALUES (1, 'a', NULL), (2, 'b', NULL)")
        with pytest.raises(BulkExecutionError):
            db.execute("UPDATE t SET K = 9")
        assert db.query("SELECT K FROM t ORDER BY K") == [(1,), (2,)]


class TestDelete:
    def test_where(self, db):
        db.execute("INSERT INTO t VALUES (1, 'a', NULL), (2, 'b', NULL)")
        result = db.execute("DELETE FROM t WHERE K = 1")
        assert result.rows_deleted == 1
        assert db.query("SELECT K FROM t") == [(2,)]

    def test_delete_all(self, db):
        db.execute("INSERT INTO t VALUES (1, 'a', NULL)")
        assert db.execute("DELETE FROM t").rows_deleted == 1

    def test_delete_using(self, db):
        db.execute("INSERT INTO t VALUES (1, 'a', NULL), (2, 'b', NULL)")
        db.execute("CREATE TABLE doomed (K INT)")
        db.execute("INSERT INTO doomed VALUES (2)")
        result = db.execute(
            "DELETE FROM t USING doomed d WHERE t.K = d.K")
        assert result.rows_deleted == 1
        assert db.query("SELECT K FROM t") == [(1,)]


class TestMerge:
    def _setup(self, db):
        db.execute("INSERT INTO t VALUES (1, 'a', NULL), (2, 'b', NULL)")
        db.execute("CREATE TABLE s (K INT, V NVARCHAR(10))")
        db.execute(
            "INSERT INTO s VALUES (2, 'updated'), (3, 'inserted')")

    def test_update_and_insert(self, db):
        self._setup(db)
        result = db.execute(
            "MERGE INTO t USING s ON t.K = s.K "
            "WHEN MATCHED THEN UPDATE SET V = s.V "
            "WHEN NOT MATCHED THEN INSERT (K, V) VALUES (s.K, s.V)")
        assert (result.rows_updated, result.rows_inserted) == (1, 1)
        assert db.query("SELECT K, V FROM t ORDER BY K") == [
            (1, "a"), (2, "updated"), (3, "inserted")]

    def test_sequential_source_semantics(self, db):
        """Later source rows see earlier rows' effects (legacy
        tuple-at-a-time upsert behaviour)."""
        db.execute("CREATE TABLE s2 (K INT, V NVARCHAR(10))")
        db.execute("INSERT INTO s2 VALUES (7, 'first'), (7, 'second')")
        db.execute(
            "MERGE INTO t USING s2 ON t.K = s2.K "
            "WHEN MATCHED THEN UPDATE SET V = s2.V "
            "WHEN NOT MATCHED THEN INSERT (K, V) VALUES (s2.K, s2.V)")
        assert db.query("SELECT V FROM t WHERE K = 7") == [("second",)]

    def test_matched_delete(self, db):
        self._setup(db)
        result = db.execute(
            "MERGE INTO t USING s ON t.K = s.K "
            "WHEN MATCHED THEN DELETE")
        assert result.rows_deleted == 1
        assert db.query("SELECT K FROM t ORDER BY K") == [(1,)]

    def test_conditional_clauses(self, db):
        self._setup(db)
        db.execute(
            "MERGE INTO t USING s ON t.K = s.K "
            "WHEN MATCHED AND s.V = 'nope' THEN UPDATE SET V = s.V "
            "WHEN NOT MATCHED AND s.V = 'inserted' THEN INSERT (K, V) "
            "VALUES (s.K, s.V)")
        assert db.query("SELECT V FROM t WHERE K = 2") == [("b",)]
        assert db.query("SELECT V FROM t WHERE K = 3") == [("inserted",)]

    def test_merge_with_select_source(self, db):
        self._setup(db)
        db.execute(
            "MERGE INTO t USING (SELECT K, V FROM s WHERE K = 3) AS src "
            "ON t.K = src.K "
            "WHEN NOT MATCHED THEN INSERT (K, V) VALUES (src.K, src.V)")
        assert db.query("SELECT V FROM t WHERE K = 3") == [("inserted",)]

    def test_non_equi_on_falls_back_to_loop(self, db):
        self._setup(db)
        result = db.execute(
            "MERGE INTO t USING s ON t.K < s.K "
            "WHEN MATCHED THEN UPDATE SET V = 'lt'")
        assert result.rows_updated >= 1

    def test_merge_atomicity_on_error(self, db):
        self._setup(db)
        with pytest.raises(BulkExecutionError):
            db.execute(
                "MERGE INTO t USING s ON t.K = s.K "
                "WHEN MATCHED THEN UPDATE SET D = 'garbage'")
        assert db.query("SELECT V FROM t WHERE K = 2") == [("b",)]


class TestDdlAndCatalog:
    def test_drop_and_recreate(self, db):
        db.execute("DROP TABLE t")
        with pytest.raises(CatalogError):
            db.query("SELECT * FROM t")
        db.execute("CREATE TABLE t (A INT)")

    def test_drop_if_exists(self, db):
        db.execute("DROP TABLE IF EXISTS never_existed")

    def test_create_duplicate_raises(self, db):
        with pytest.raises(CatalogError):
            db.execute("CREATE TABLE t (A INT)")

    def test_create_if_not_exists(self, db):
        db.execute("CREATE TABLE IF NOT EXISTS t (A INT)")

    def test_statement_counts(self, db):
        db.execute("INSERT INTO t VALUES (1, 'a', NULL)")
        assert db.statement_counts["Insert"] == 1
        assert db.statement_counts["CreateTable"] == 1
