"""Tests for the scalar expression evaluator."""

import datetime
from decimal import Decimal

import pytest

from repro.cdw.expressions import RowContext, evaluate, is_true
from repro.errors import ExpressionError
from repro.sqlxc.parser import parse_expression


def ev(sql: str, dialect: str = "cdw", **columns):
    ctx = RowContext()
    if columns:
        names = list(columns)
        ctx.bind("t", names, tuple(columns[c] for c in names))
    return evaluate(parse_expression(sql, dialect), ctx)


class TestArithmetic:
    def test_basics(self):
        assert ev("1 + 2 * 3") == 7
        assert ev("10 - 4") == 6
        assert ev("2 * 2.5") == Decimal("5.0")

    def test_integer_division_truncates(self):
        assert ev("7 / 2") == 3
        assert ev("-7 / 2") == -3  # truncation toward zero

    def test_float_division(self):
        assert ev("7.0 / 2") == Decimal("3.5")

    def test_division_by_zero_raises(self):
        with pytest.raises(ExpressionError):
            ev("1 / 0")

    def test_modulo(self):
        assert ev("7 % 3") == 1

    def test_null_propagates(self):
        assert ev("1 + NULL") is None
        assert ev("NULL * 2") is None

    def test_unary_minus(self):
        assert ev("-(2 + 3)") == -5

    def test_non_numeric_operand_raises(self):
        with pytest.raises(ExpressionError):
            ev("'a' + 1")


class TestComparisons:
    def test_basic(self):
        assert ev("1 < 2") is True
        assert ev("2 <= 2") is True
        assert ev("3 <> 4") is True
        assert ev("3 = 3") is True

    def test_null_is_unknown(self):
        assert ev("1 = NULL") is None
        assert ev("NULL <> NULL") is None

    def test_char_padding_ignored(self):
        assert ev("'ab  ' = 'ab'") is True

    def test_decimal_vs_float(self):
        assert ev("1.5 = a", a=1.5) is True

    def test_date_vs_timestamp(self):
        ctx_value = datetime.datetime(2020, 1, 2, 0, 0)
        assert ev("d = DATE '2020-01-02'", d=ctx_value) is True

    def test_incomparable_types_raise(self):
        with pytest.raises(ExpressionError):
            ev("a < 1", a="text")


class TestLogic:
    def test_three_valued_and(self):
        assert ev("TRUE AND NULL") is None
        assert ev("FALSE AND NULL") is False
        assert ev("NULL AND FALSE") is False

    def test_three_valued_or(self):
        assert ev("TRUE OR NULL") is True
        assert ev("NULL OR FALSE") is None

    def test_not_null(self):
        assert ev("NOT NULL") is None

    def test_is_true_filter(self):
        assert is_true(True)
        assert not is_true(None)
        assert not is_true(False)


class TestPredicates:
    def test_is_null(self):
        assert ev("a IS NULL", a=None) is True
        assert ev("a IS NOT NULL", a=None) is False

    def test_between(self):
        assert ev("5 BETWEEN 1 AND 10") is True
        assert ev("5 NOT BETWEEN 1 AND 10") is False
        assert ev("NULL BETWEEN 1 AND 2") is None

    def test_like(self):
        assert ev("'hello' LIKE 'h%'") is True
        assert ev("'hello' LIKE 'h_llo'") is True
        assert ev("'hello' NOT LIKE 'x%'") is True
        assert ev("'h.x' LIKE 'h.x'") is True
        assert ev("'hax' LIKE 'h.x'") is False  # dot is literal

    def test_in_list(self):
        assert ev("2 IN (1, 2, 3)") is True
        assert ev("9 IN (1, 2, 3)") is False
        assert ev("9 IN (1, NULL)") is None  # unknown, not false
        assert ev("2 NOT IN (1, 3)") is True


class TestStrings:
    def test_concat(self):
        assert ev("'a' || 'b' || 'c'") == "abc"
        assert ev("'a' || NULL") is None

    def test_concat_coerces(self):
        assert ev("'v=' || 5") == "v=5"

    def test_trim_family(self):
        assert ev("TRIM('  x  ')") == "x"
        assert ev("LTRIM('  x')") == "x"
        assert ev("RTRIM('x  ')") == "x"

    def test_case_functions(self):
        assert ev("UPPER('ab')") == "AB"
        assert ev("LOWER('AB')") == "ab"

    def test_length(self):
        assert ev("LENGTH('abc')") == 3

    def test_substr(self):
        assert ev("SUBSTR('hello', 2, 3)") == "ell"
        assert ev("SUBSTR('hello', 2)") == "ello"
        assert ev("SUBSTRING('hello' FROM 2 FOR 3)") == "ell"

    def test_strpos(self):
        assert ev("STRPOS('hello', 'll')") == 3
        assert ev("STRPOS('hello', 'z')") == 0


class TestNullFunctions:
    def test_coalesce(self):
        assert ev("COALESCE(NULL, NULL, 3)") == 3
        assert ev("COALESCE(NULL, NULL)") is None

    def test_nullif(self):
        assert ev("NULLIF(1, 1)") is None
        assert ev("NULLIF(1, 2)") == 1

    def test_zeroifnull_legacy(self):
        assert ev("ZEROIFNULL(a)", dialect="legacy", a=None) == 0

    def test_nullifzero_legacy(self):
        assert ev("NULLIFZERO(a)", dialect="legacy", a=0) is None


class TestConversions:
    def test_cast_basic(self):
        assert ev("CAST('42' AS INT)") == 42

    def test_cast_null(self):
        assert ev("CAST(NULL AS INT)") is None

    def test_format_cast_legacy(self):
        value = ev("CAST('12/31/1999' AS DATE FORMAT 'MM/DD/YYYY')",
                   dialect="legacy")
        assert value == datetime.date(1999, 12, 31)

    def test_to_date_with_format(self):
        assert ev("TO_DATE('31.12.1999', 'DD.MM.YYYY')") == \
            datetime.date(1999, 12, 31)

    def test_to_date_default_format(self):
        assert ev("TO_DATE('2020-01-02')") == datetime.date(2020, 1, 2)

    def test_cast_failure_attributes_column(self):
        with pytest.raises(ExpressionError) as info:
            ev("CAST(d AS DATE)", d="junk")
        assert info.value.field == "d"

    def test_to_date_failure_attributes_column(self):
        with pytest.raises(ExpressionError) as info:
            ev("TO_DATE(d, 'YYYY-MM-DD')", d="junk")
        assert info.value.field == "d"


class TestCase:
    def test_searched(self):
        assert ev("CASE WHEN a > 1 THEN 'big' ELSE 'small' END", a=5) \
            == "big"

    def test_no_match_no_else(self):
        assert ev("CASE WHEN a > 1 THEN 'big' END", a=0) is None


class TestContext:
    def test_qualified_resolution(self):
        ctx = RowContext()
        ctx.bind("a", ["X"], (1,))
        ctx.bind("b", ["X"], (2,))
        assert evaluate(parse_expression("a.X"), ctx) == 1
        assert evaluate(parse_expression("b.X"), ctx) == 2

    def test_ambiguous_unqualified_raises(self):
        ctx = RowContext()
        ctx.bind("a", ["X"], (1,))
        ctx.bind("b", ["X"], (2,))
        with pytest.raises(ExpressionError):
            evaluate(parse_expression("X"), ctx)

    def test_parent_lookup(self):
        outer = RowContext()
        outer.bind("o", ["Y"], (9,))
        inner = RowContext(parent=outer)
        inner.bind("i", ["X"], (1,))
        assert evaluate(parse_expression("Y"), inner) == 9

    def test_unknown_column_raises(self):
        with pytest.raises(ExpressionError):
            ev("nope")

    def test_unknown_function_raises(self):
        with pytest.raises(ExpressionError):
            ev("FROBNICATE(1)")

    def test_unbound_host_param_raises(self):
        with pytest.raises(ExpressionError):
            ev(":X", dialect="legacy")
