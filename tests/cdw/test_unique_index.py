"""Incremental uniqueness checking must agree with the full rescan.

Eager apply turns one big APPLY into many small ranged statements; a
full ``check_unique`` rescan per statement is quadratic across them, so
the engine's insert paths use :meth:`CdwTable.check_unique_append`
against a cached key index.  These tests pin the invalidation
discipline: any mutation that can *free* a key (UPDATE, DELETE, MERGE,
Beta's emulation rollback) drops the index, so a freed key is
insertable again and a stale index never causes a false verdict.
"""

import pytest

from repro.cdw.cloudstore import CloudStore
from repro.cdw.engine import CdwEngine
from repro.errors import BulkExecutionError


def make_engine() -> CdwEngine:
    engine = CdwEngine(store=CloudStore(), native_unique=True)
    engine.execute(
        "CREATE TABLE T (K INT, V NVARCHAR, UNIQUE (K))")
    return engine


def insert(engine, k, v="x"):
    engine.execute(f"INSERT INTO T VALUES ({k}, '{v}')")


class TestCheckUniqueAppend:
    def test_duplicate_against_existing_rows_rejected(self):
        engine = make_engine()
        insert(engine, 1)
        insert(engine, 2)
        with pytest.raises(BulkExecutionError, match="uniqueness"):
            insert(engine, 1)
        assert engine.query("SELECT COUNT(*) FROM T") == [(2,)]

    def test_duplicate_within_one_statement_rejected(self):
        engine = make_engine()
        with pytest.raises(BulkExecutionError, match="uniqueness"):
            engine.execute(
                "INSERT INTO T SELECT K, V FROM "
                "(SELECT 7 AS K, 'a' AS V UNION ALL "
                "SELECT 7 AS K, 'b' AS V) S")

    def test_failed_statement_leaves_key_insertable(self):
        """A rejected batch must not leak its keys into the index."""
        engine = make_engine()
        insert(engine, 1)
        with pytest.raises(BulkExecutionError):
            engine.execute(
                "INSERT INTO T SELECT K, V FROM "
                "(SELECT 9 AS K, 'a' AS V UNION ALL "
                "SELECT 1 AS K, 'dup' AS V) S")
        insert(engine, 9)  # 9 was staged in the failed batch
        assert engine.query("SELECT COUNT(*) FROM T") == [(2,)]

    def test_delete_frees_the_key(self):
        engine = make_engine()
        for k in (1, 2, 3):
            insert(engine, k)
        engine.execute("DELETE FROM T WHERE K = 2")
        insert(engine, 2)
        assert sorted(engine.query("SELECT K FROM T")) == \
            [(1,), (2,), (3,)]

    def test_update_frees_the_old_key(self):
        engine = make_engine()
        insert(engine, 1)
        insert(engine, 2)
        engine.execute("UPDATE T SET K = 10 WHERE K = 1")
        insert(engine, 1)  # old value free again
        with pytest.raises(BulkExecutionError, match="uniqueness"):
            insert(engine, 10)  # new value taken

    def test_merge_respects_index_invalidation(self):
        engine = make_engine()
        insert(engine, 1)
        engine.execute("CREATE TABLE S (K INT, V NVARCHAR)")
        engine.execute("INSERT INTO S VALUES (1, 'upd')")
        engine.execute(
            "MERGE INTO T USING S ON T.K = S.K "
            "WHEN MATCHED THEN UPDATE SET V = S.V")
        with pytest.raises(BulkExecutionError, match="uniqueness"):
            insert(engine, 1)

    def test_rollback_truncation_frees_keys(self):
        """Beta's emulation rollback path: rows appended then dropped
        via truncate_rows must release their keys."""
        engine = make_engine()
        insert(engine, 1)
        table = engine.table("T")
        table.append_rows([table.coerce_row((5, "tmp"))])
        table.truncate_rows(1)
        insert(engine, 5)
        assert sorted(engine.query("SELECT K FROM T")) == [(1,), (5,)]

    def test_null_keys_do_not_participate(self):
        engine = make_engine()
        engine.execute("INSERT INTO T VALUES (NULL, 'a')")
        engine.execute("INSERT INTO T VALUES (NULL, 'b')")
        assert engine.query("SELECT COUNT(*) FROM T") == [(2,)]

    def test_matches_full_check_oracle(self):
        """Randomized agreement: incremental verdicts equal a fresh
        full-rescan check_unique on the same would-be contents."""
        import random
        rng = random.Random(4242)
        engine = make_engine()
        table = engine.table("T")
        for step in range(300):
            k = rng.randrange(0, 60)
            candidate = table.coerce_row((k, f"v{step}"))
            def full_verdict():
                try:
                    table.check_unique(table.rows + [candidate])
                    return True
                except BulkExecutionError:
                    return False
            ok = full_verdict()
            if rng.random() < 0.15 and table.rows:
                # interleave key-freeing mutations
                victim = rng.choice(table.rows)[0]
                engine.execute(f"DELETE FROM T WHERE K = {victim}")
                ok = full_verdict()
            try:
                insert(engine, k, f"v{step}")
                assert ok, f"step {step}: full check would reject {k}"
            except BulkExecutionError:
                assert not ok, \
                    f"step {step}: full check would accept {k}"


class TestViolationMessageNamesKey:
    """Uniqueness errors must name the first violating key value so a
    failed APPLY is debuggable from the error table alone."""

    def test_single_column_key_value_in_message(self):
        engine = make_engine()
        insert(engine, 123)
        with pytest.raises(BulkExecutionError,
                           match=r"T\(K\): key 123"):
            insert(engine, 123)

    def test_composite_key_value_in_message(self):
        engine = CdwEngine(store=CloudStore(), native_unique=True)
        engine.execute(
            "CREATE TABLE C (A INT, B NVARCHAR, UNIQUE (A, B))")
        engine.execute("INSERT INTO C VALUES (1, 'x')")
        with pytest.raises(BulkExecutionError,
                           match=r"key \(1, 'x'\)"):
            engine.execute("INSERT INTO C VALUES (1, 'x')")

    def test_long_key_repr_is_bounded(self):
        engine = CdwEngine(store=CloudStore(), native_unique=True)
        engine.execute(
            "CREATE TABLE L (K NVARCHAR, UNIQUE (K))")
        big = "z" * 500
        engine.execute(f"INSERT INTO L VALUES ('{big}')")
        try:
            engine.execute(f"INSERT INTO L VALUES ('{big}')")
        except BulkExecutionError as exc:
            message = str(exc)
            assert "..." in message
            assert len(message) < 200
        else:  # pragma: no cover - must raise
            raise AssertionError("duplicate accepted")
