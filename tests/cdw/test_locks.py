"""RWLock / LockManager semantics and the engine's lock granularity.

PR 5 splits the engine's one global RLock into a catalog lock plus
per-table reader/writer locks.  These tests pin the lock semantics the
engine now depends on (reentrancy, writer preference, refused upgrades)
and the satellite guarantee: reads — monitoring SELECTs, export
fetches — do not wait behind a bulk write on an unrelated table.
"""

import threading
import time

import pytest

from repro.cdw.cloudstore import CloudStore
from repro.cdw.engine import CdwEngine
from repro.cdw.locks import LockManager, RWLock


def run_in_thread(fn, timeout_s=5.0):
    """Run fn in a thread; returns (finished, result)."""
    box = []
    thread = threading.Thread(target=lambda: box.append(fn()),
                              daemon=True)
    thread.start()
    thread.join(timeout=timeout_s)
    return (not thread.is_alive(),
            box[0] if box else None, thread)


class TestRWLock:
    def test_concurrent_readers(self):
        lock = RWLock()
        lock.acquire_read()
        finished, _, _ = run_in_thread(
            lambda: lock.read().__enter__() or True)
        assert finished
        lock.release_read()

    def test_writer_excludes_readers_and_writers(self):
        lock = RWLock()
        lock.acquire_write()
        for acquire in (lock.acquire_read, lock.acquire_write):
            finished, _, thread = run_in_thread(acquire, timeout_s=0.1)
            assert not finished
        lock.release_write()
        time.sleep(0.1)

    def test_write_reentrancy(self):
        lock = RWLock()
        with lock.write():
            with lock.write():
                with lock.read():  # write holder may read
                    pass
        # fully released: another thread can take it
        finished, _, _ = run_in_thread(
            lambda: lock.write().__enter__() or True)
        assert finished

    def test_read_reentrancy_beats_writer_preference(self):
        """A thread already reading is granted further reads even with
        a writer queued — otherwise reentrant readers deadlock."""
        lock = RWLock()
        lock.acquire_read()
        # park a writer so _writers_waiting > 0
        writer = threading.Thread(
            target=lambda: (lock.acquire_write(),
                            lock.release_write()),
            daemon=True)
        writer.start()
        time.sleep(0.05)
        lock.acquire_read()  # must not block
        lock.release_read()
        lock.release_read()
        writer.join(timeout=5)
        assert not writer.is_alive()

    def test_writer_preference_blocks_new_readers(self):
        lock = RWLock()
        lock.acquire_read()
        writer = threading.Thread(
            target=lambda: (lock.acquire_write(),
                            lock.release_write()),
            daemon=True)
        writer.start()
        time.sleep(0.05)
        finished, _, _ = run_in_thread(lock.acquire_read,
                                       timeout_s=0.1)
        assert not finished  # queued behind the waiting writer
        lock.release_read()
        writer.join(timeout=5)
        assert not writer.is_alive()

    def test_read_to_write_upgrade_refused(self):
        lock = RWLock()
        with lock.read():
            with pytest.raises(RuntimeError, match="upgrade"):
                lock.acquire_write()

    def test_foreign_release_refused(self):
        lock = RWLock()
        with pytest.raises(RuntimeError):
            lock.release_read()
        lock.acquire_write()
        finished, result, _ = run_in_thread(
            lambda: pytest.raises(RuntimeError, lock.release_write))
        assert finished
        lock.release_write()


class TestLockManager:
    def test_statement_orders_and_releases(self):
        locks = LockManager()
        with locks.statement({"b"}, {"a"}):
            assert locks.table_lock("A")._writer is not None
            assert locks.table_lock("B")._readers
        assert locks.table_lock("A")._writer is None
        assert not locks.table_lock("B")._readers

    def test_write_subsumes_read_for_same_table(self):
        locks = LockManager()
        with locks.statement({"t"}, {"t"}):
            assert locks.table_lock("T")._writer is not None
            assert not locks.table_lock("T")._readers

    def test_ddl_excludes_statements(self):
        locks = LockManager()
        ddl = locks.ddl()
        ddl.__enter__()
        finished, _, _ = run_in_thread(
            lambda: locks.statement(set(), {"t"}).__enter__(),
            timeout_s=0.1)
        assert not finished
        ddl.__exit__(None, None, None)


class TestEngineLockGranularity:
    def _engine(self):
        engine = CdwEngine(store=CloudStore())
        engine.execute("CREATE TABLE A (X INT)")
        engine.execute("CREATE TABLE B (X INT)")
        engine.execute("INSERT INTO B VALUES (1)")
        return engine

    def test_reads_bypass_bulk_write_on_other_table(self):
        """The satellite fix: a long COPY/INSERT holding table A's
        write lock must not stall a SELECT against table B."""
        engine = self._engine()
        lock = engine.locks.table_lock("A")
        lock.acquire_write()  # stand-in for an in-flight bulk write
        try:
            finished, result, _ = run_in_thread(
                lambda: engine.query("SELECT * FROM B"))
            assert finished and result == [(1,)]
            # ... while a write against A does wait:
            blocked, _, thread = run_in_thread(
                lambda: engine.execute("INSERT INTO A VALUES (1)"),
                timeout_s=0.1)
            assert not blocked
        finally:
            lock.release_write()
        thread.join(timeout=5)
        assert not thread.is_alive()
        assert engine.query("SELECT COUNT(*) FROM A") == [(1,)]

    def test_concurrent_readers_on_one_table(self):
        engine = self._engine()
        lock = engine.locks.table_lock("B")
        lock.acquire_read()
        try:
            finished, result, _ = run_in_thread(
                lambda: engine.query("SELECT COUNT(*) FROM B"))
            assert finished and result == [(1,)]
        finally:
            lock.release_read()
