"""SELECT pipeline tests: joins, aggregation, ordering, subqueries."""

import pytest

from repro.cdw.engine import CdwEngine
from repro.errors import CatalogError, CdwError


@pytest.fixture
def db():
    engine = CdwEngine()
    engine.execute("CREATE TABLE emp (ID INT, NAME NVARCHAR(20), "
                   "DEPT NVARCHAR(10), SALARY INT)")
    engine.execute(
        "INSERT INTO emp VALUES "
        "(1, 'ann', 'eng', 100), (2, 'bob', 'eng', 80), "
        "(3, 'cat', 'ops', 90), (4, 'dan', 'ops', NULL), "
        "(5, 'eve', 'hr', 70)")
    engine.execute("CREATE TABLE dept (DEPT NVARCHAR(10), LOC NVARCHAR(10))")
    engine.execute(
        "INSERT INTO dept VALUES ('eng', 'sf'), ('ops', 'nyc')")
    return engine


class TestProjection:
    def test_star(self, db):
        rows = db.query("SELECT * FROM emp ORDER BY ID")
        assert len(rows) == 5 and len(rows[0]) == 4

    def test_expressions_and_aliases(self, db):
        result = db.execute(
            "SELECT NAME, SALARY * 2 AS double_pay FROM emp "
            "WHERE ID = 1")
        assert result.columns == ["NAME", "double_pay"]
        assert result.rows == [("ann", 200)]

    def test_select_without_from(self, db):
        assert db.query("SELECT 1 + 1") == [(2,)]

    def test_unknown_table_raises(self, db):
        with pytest.raises(CatalogError):
            db.query("SELECT * FROM nope")


class TestFiltering:
    def test_where(self, db):
        rows = db.query("SELECT NAME FROM emp WHERE SALARY > 85 "
                        "ORDER BY NAME")
        assert rows == [("ann",), ("cat",)]

    def test_null_never_matches(self, db):
        rows = db.query("SELECT NAME FROM emp WHERE SALARY > 0")
        assert ("dan",) not in rows

    def test_is_null(self, db):
        assert db.query(
            "SELECT NAME FROM emp WHERE SALARY IS NULL") == [("dan",)]


class TestOrdering:
    def test_order_by_column(self, db):
        rows = db.query("SELECT NAME FROM emp ORDER BY SALARY DESC")
        # NULL sorts first ascending, so last row descending is dan.
        assert rows[0] == ("ann",)

    def test_order_by_position(self, db):
        rows = db.query("SELECT NAME, SALARY FROM emp ORDER BY 2 DESC")
        assert rows[0] == ("ann", 100)

    def test_order_by_alias(self, db):
        rows = db.query(
            "SELECT NAME, SALARY AS s FROM emp WHERE SALARY IS NOT NULL "
            "ORDER BY s")
        assert rows[0] == ("eve", 70)

    def test_limit(self, db):
        assert len(db.query("SELECT * FROM emp LIMIT 2")) == 2

    def test_multi_key_order(self, db):
        rows = db.query("SELECT DEPT, NAME FROM emp ORDER BY DEPT, NAME")
        assert rows[0] == ("eng", "ann")
        assert rows[-1] == ("ops", "dan")


class TestDistinct:
    def test_distinct(self, db):
        rows = db.query("SELECT DISTINCT DEPT FROM emp ORDER BY DEPT")
        assert rows == [("eng",), ("hr",), ("ops",)]


class TestJoins:
    def test_inner_join(self, db):
        rows = db.query(
            "SELECT e.NAME, d.LOC FROM emp e JOIN dept d "
            "ON e.DEPT = d.DEPT ORDER BY e.NAME")
        assert ("ann", "sf") in rows
        assert all(name != "eve" for name, _ in rows)  # hr has no dept row

    def test_left_join_null_extends(self, db):
        rows = db.query(
            "SELECT e.NAME, d.LOC FROM emp e LEFT JOIN dept d "
            "ON e.DEPT = d.DEPT WHERE d.LOC IS NULL")
        assert rows == [("eve", None)]

    def test_cross_join(self, db):
        rows = db.query("SELECT e.ID, d.DEPT FROM emp e CROSS JOIN dept d")
        assert len(rows) == 10

    def test_right_join_unsupported(self, db):
        with pytest.raises(CdwError):
            db.query("SELECT * FROM emp e RIGHT JOIN dept d "
                     "ON e.DEPT = d.DEPT")


class TestAggregation:
    def test_count_star_and_column(self, db):
        assert db.query("SELECT COUNT(*), COUNT(SALARY) FROM emp") == \
            [(5, 4)]

    def test_sum_avg_min_max(self, db):
        (row,) = db.query(
            "SELECT SUM(SALARY), AVG(SALARY), MIN(SALARY), MAX(SALARY) "
            "FROM emp")
        assert row == (340, 85.0, 70, 100)

    def test_aggregate_over_empty_is_null(self, db):
        assert db.query(
            "SELECT SUM(SALARY) FROM emp WHERE ID > 99") == [(None,)]

    def test_count_over_empty_is_zero(self, db):
        assert db.query(
            "SELECT COUNT(*) FROM emp WHERE ID > 99") == [(0,)]

    def test_group_by(self, db):
        rows = db.query(
            "SELECT DEPT, COUNT(*) FROM emp GROUP BY DEPT ORDER BY 1")
        assert rows == [("eng", 2), ("hr", 1), ("ops", 2)]

    def test_having(self, db):
        rows = db.query(
            "SELECT DEPT FROM emp GROUP BY DEPT HAVING COUNT(*) > 1 "
            "ORDER BY 1")
        assert rows == [("eng",), ("ops",)]

    def test_count_distinct(self, db):
        assert db.query("SELECT COUNT(DISTINCT DEPT) FROM emp") == [(3,)]

    def test_aggregate_in_expression(self, db):
        assert db.query("SELECT MAX(SALARY) - MIN(SALARY) FROM emp") == \
            [(30,)]


class TestSubqueries:
    def test_in_subquery(self, db):
        rows = db.query(
            "SELECT NAME FROM emp WHERE DEPT IN "
            "(SELECT DEPT FROM dept WHERE LOC = 'sf')")
        assert rows == [("ann",), ("bob",)]

    def test_scalar_subquery(self, db):
        rows = db.query(
            "SELECT NAME FROM emp WHERE SALARY = "
            "(SELECT MAX(SALARY) FROM emp)")
        assert rows == [("ann",)]

    def test_correlated_exists(self, db):
        rows = db.query(
            "SELECT d.DEPT FROM dept d WHERE EXISTS "
            "(SELECT 1 FROM emp e WHERE e.DEPT = d.DEPT "
            "AND e.SALARY > 95)")
        assert rows == [("eng",)]


class TestSortedSlicePushdown:
    def test_between_slice_matches_full_scan(self, db):
        engine = CdwEngine()
        engine.execute("CREATE TABLE s (K BIGINT, V INT)")
        table = engine.table("s")
        table.rows = [(i, i * 10) for i in range(1000)]
        sql = "SELECT COUNT(*), SUM(V) FROM s WHERE K BETWEEN 100 AND 199"
        unsliced = engine.query(sql)
        table.sorted_by = "K"
        sliced = engine.query(sql)
        assert sliced == unsliced == [(100, 149500)]

    def test_residual_predicate_still_applies(self):
        engine = CdwEngine()
        engine.execute("CREATE TABLE s (K BIGINT, V INT)")
        table = engine.table("s")
        table.rows = [(i, i % 2) for i in range(100)]
        table.sorted_by = "K"
        rows = engine.query(
            "SELECT COUNT(*) FROM s WHERE K BETWEEN 0 AND 49 AND V = 1")
        assert rows == [(25,)]
