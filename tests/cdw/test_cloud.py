"""Tests for the cloud store, bulk loader, and COPY INTO."""

import os

import pytest

from repro.cdw import stagefile
from repro.cdw.bulkloader import CloudBulkLoader
from repro.cdw.cloudstore import CloudStore
from repro.cdw.engine import CdwEngine
from repro.errors import BulkExecutionError, StorageError


class TestCloudStore:
    def test_put_get(self):
        store = CloudStore()
        store.create_container("c")
        store.put_blob("c", "a/b.csv", b"data")
        assert store.get_blob("c", "a/b.csv") == b"data"

    def test_missing_container_raises(self):
        store = CloudStore()
        with pytest.raises(StorageError):
            store.put_blob("nope", "x", b"")
        with pytest.raises(StorageError):
            store.get_blob("nope", "x")

    def test_missing_blob_raises(self):
        store = CloudStore()
        store.create_container("c")
        with pytest.raises(StorageError):
            store.get_blob("c", "missing")

    def test_list_prefix_sorted(self):
        store = CloudStore()
        store.create_container("c")
        for name in ("j1/b", "j1/a", "j2/z"):
            store.put_blob("c", name, b"")
        assert store.list_blobs("c", "j1/") == ["j1/a", "j1/b"]

    def test_delete_prefix(self):
        store = CloudStore()
        store.create_container("c")
        store.put_blob("c", "j1/a", b"")
        store.put_blob("c", "j2/b", b"")
        assert store.delete_prefix("c", "j1/") == 1
        assert store.list_blobs("c") == ["j2/b"]

    def test_url_parsing(self):
        assert CloudStore.parse_url("store://cont/pre/fix") == \
            ("cont", "pre/fix")
        assert CloudStore.make_url("c", "p/") == "store://c/p/"
        with pytest.raises(StorageError):
            CloudStore.parse_url("s3://bucket/x")
        with pytest.raises(StorageError):
            CloudStore.parse_url("store://")

    def test_upload_accounting(self):
        store = CloudStore()
        store.create_container("c")
        store.put_blob("c", "a", b"12345")
        assert store.bytes_uploaded == 5
        assert store.upload_count == 1

    def test_bandwidth_delay(self):
        import time
        store = CloudStore(bandwidth_bytes_per_s=10_000)
        store.create_container("c")
        started = time.perf_counter()
        store.put_blob("c", "a", b"x" * 1000)  # 0.1s at 10 KB/s
        assert time.perf_counter() - started >= 0.08


class TestBulkLoader:
    def test_upload_file(self, tmp_path):
        path = tmp_path / "part.csv"
        path.write_bytes(b"row1\nrow2\n")
        store = CloudStore()
        store.create_container("c")
        loader = CloudBulkLoader(store)
        report = loader.upload_file(str(path), "c", "job/")
        assert report.files == 1
        assert store.get_blob("c", "job/part.csv") == b"row1\nrow2\n"

    def test_upload_with_compression(self, tmp_path):
        path = tmp_path / "part.csv"
        path.write_bytes(b"abc" * 1000)
        store = CloudStore()
        store.create_container("c")
        loader = CloudBulkLoader(store, compression="gzip")
        report = loader.upload_file(str(path), "c", "job/")
        assert report.uploaded_bytes < report.raw_bytes
        assert report.compression_ratio > 1
        fetched = loader.fetch_decoded("c", "job/part.csv.gz")
        assert fetched == b"abc" * 1000

    def test_upload_directory(self, tmp_path):
        for i in range(3):
            (tmp_path / f"f{i}.csv").write_bytes(b"x" * (i + 1))
        os.makedirs(tmp_path / "subdir")  # directories are skipped
        store = CloudStore()
        store.create_container("c")
        report = CloudBulkLoader(store).upload_directory(
            str(tmp_path), "c", "d/")
        assert report.files == 3
        assert report.raw_bytes == 6

    def test_upload_directory_visits_files_in_sorted_order(
            self, tmp_path):
        """Blob manifests must not depend on os.listdir ordering."""
        for name in ("b.csv", "part-2.csv", "a.csv", "part-10.csv"):
            (tmp_path / name).write_bytes(b"x")
        store = CloudStore()
        store.create_container("c")
        puts = []
        original = store.put_blob

        def recording_put(container, blob, data):
            puts.append(blob)
            return original(container, blob, data)

        store.put_blob = recording_put
        CloudBulkLoader(store).upload_directory(str(tmp_path), "c", "d/")
        assert puts == ["d/a.csv", "d/b.csv", "d/part-10.csv",
                        "d/part-2.csv"]

    def test_unknown_compression_rejected(self):
        with pytest.raises(StorageError):
            CloudBulkLoader(CloudStore(), compression="zstd")


class TestCopyInto:
    def _engine_with_blobs(self, blobs, gzip_names=()):
        store = CloudStore()
        store.create_container("stage")
        for name, rows in blobs.items():
            data = stagefile.encode_csv_rows(rows)
            if name in gzip_names:
                data = stagefile.compress(data)
                name += ".gz"
            store.put_blob("stage", name, data)
        engine = CdwEngine(store=store)
        engine.execute("CREATE TABLE t (K INT, V NVARCHAR(10))")
        return engine

    def test_copy_multiple_blobs(self):
        engine = self._engine_with_blobs({
            "j/p0.csv": [("1", "a")],
            "j/p1.csv": [("2", "b"), ("3", None)],
        })
        result = engine.execute(
            "COPY INTO t FROM 'store://stage/j/' FORMAT csv")
        assert result.rows_inserted == 3
        assert engine.query("SELECT K, V FROM t ORDER BY K") == \
            [(1, "a"), (2, "b"), (3, None)]

    def test_copy_gzip_blob(self):
        engine = self._engine_with_blobs(
            {"j/p0.csv": [("1", "a")]}, gzip_names={"j/p0.csv"})
        result = engine.execute(
            "COPY INTO t FROM 'store://stage/j/' FORMAT csv")
        assert result.rows_inserted == 1

    def test_copy_bad_row_aborts_everything(self):
        engine = self._engine_with_blobs({
            "j/p0.csv": [("1", "a"), ("junk-int", "b")],
        })
        with pytest.raises(BulkExecutionError):
            engine.execute("COPY INTO t FROM 'store://stage/j/'")
        assert engine.query("SELECT COUNT(*) FROM t") == [(0,)]

    def test_copy_without_store_raises(self):
        engine = CdwEngine()
        engine.execute("CREATE TABLE t (K INT)")
        from repro.errors import CdwError
        with pytest.raises(CdwError):
            engine.execute("COPY INTO t FROM 'store://stage/j/'")


class TestParallelUploadDirectory:
    """upload_directory on a worker pool: same observable surfaces as
    the old sorted sequential walk."""

    def _populate(self, tmp_path, count=12):
        for i in range(count):
            (tmp_path / f"part-{i:02d}.csv").write_bytes(
                b"x" * (i + 1))

    def _manifest_and_report(self, tmp_path, workers):
        store = CloudStore()
        store.create_container("c")
        report = CloudBulkLoader(store).upload_directory(
            str(tmp_path), "c", "d/", workers=workers)
        blobs = store.list_blobs("c", "d/")
        contents = {b: store.get_blob("c", b) for b in blobs}
        return report, blobs, contents

    def test_parallel_matches_sequential(self, tmp_path):
        self._populate(tmp_path)
        seq_report, seq_blobs, seq_data = self._manifest_and_report(
            tmp_path, workers=1)
        par_report, par_blobs, par_data = self._manifest_and_report(
            tmp_path, workers=4)
        assert par_blobs == seq_blobs
        assert par_data == seq_data
        assert par_report == seq_report
        assert par_report.files == 12

    def test_pool_actually_runs_concurrently(self, tmp_path):
        import threading
        self._populate(tmp_path, count=8)
        store = CloudStore()
        store.create_container("c")
        seen = set()
        original = store.put_blob
        # Hold the first upload at a barrier until a second worker
        # arrives — otherwise one fast thread can drain the whole
        # queue before the pool spins up a second one.
        rendezvous = threading.Barrier(2)
        met = threading.Event()

        def recording_put(container, blob, data):
            seen.add(threading.current_thread().name)
            if not met.is_set():
                try:
                    rendezvous.wait(timeout=5)
                    met.set()
                except threading.BrokenBarrierError:
                    pass  # single-threaded pool; the assert will fail
            return original(container, blob, data)

        store.put_blob = recording_put
        CloudBulkLoader(store, upload_workers=4).upload_directory(
            str(tmp_path), "c", "d/")
        assert len(seen) > 1  # more than one worker thread uploaded

    def test_worker_count_validation(self):
        with pytest.raises(StorageError):
            CloudBulkLoader(CloudStore(), upload_workers=0)
