"""Tests for the CDW CSV staging-file format."""

import datetime
from decimal import Decimal

import pytest
from hypothesis import given, strategies as st

from repro.cdw import stagefile
from repro.errors import DataFormatError


def roundtrip(rows, delimiter=","):
    data = stagefile.encode_csv_rows(rows, delimiter)
    return list(stagefile.decode_csv_rows(data, delimiter))


class TestEncoding:
    def test_simple(self):
        assert stagefile.encode_csv_row(("a", "b")) == "a,b\n"

    def test_null_marker(self):
        assert stagefile.encode_csv_row((None, "x")) == "\\N,x\n"

    def test_empty_string_distinct_from_null(self):
        row = stagefile.encode_csv_row(("", None))
        assert row == '"",\\N\n'
        (decoded,) = roundtrip([("", None)])
        assert decoded == ("", None)

    def test_literal_null_marker_quoted(self):
        (decoded,) = roundtrip([("\\N",)])
        assert decoded == ("\\N",)

    def test_delimiter_and_quote_escaping(self):
        rows = [('a,b', 'say "hi"', 'line\nbreak')]
        assert roundtrip(rows) == rows

    def test_typed_values_render(self):
        encoded = stagefile.encode_csv_row(
            (1, 2.5, Decimal("3.14"), datetime.date(2020, 1, 2), True))
        assert encoded == "1,2.5,3.14,2020-01-02,true\n"

    def test_unserializable_raises(self):
        with pytest.raises(DataFormatError):
            stagefile.encode_csv_row((object(),))

    def test_custom_delimiter(self):
        rows = [("a|b", "c")]
        assert roundtrip(rows, delimiter="|") == rows


class TestDecoding:
    def test_crlf_tolerated(self):
        rows = list(stagefile.decode_csv_rows(b"a,b\r\nc,d\r\n"))
        assert rows == [("a", "b"), ("c", "d")]

    def test_unterminated_quote_raises(self):
        with pytest.raises(DataFormatError):
            list(stagefile.decode_csv_rows(b'"unterminated'))

    def test_empty_input(self):
        assert list(stagefile.decode_csv_rows(b"")) == []


class TestCompression:
    def test_roundtrip(self):
        data = b"some staging bytes" * 100
        assert stagefile.decompress(stagefile.compress(data)) == data

    def test_compress_is_deterministic(self):
        data = b"abc" * 50
        assert stagefile.compress(data) == stagefile.compress(data)

    def test_corrupt_raises(self):
        with pytest.raises(DataFormatError):
            stagefile.decompress(b"not gzip")


_field = st.one_of(
    st.none(),
    st.text(alphabet=st.characters(codec="utf-8",
                                   blacklist_categories=("Cs",)),
            max_size=30))


@given(st.lists(st.tuples(_field, _field, _field), max_size=25))
def test_csv_roundtrip_property(rows):
    """NULL vs empty vs arbitrary text all survive the staging format."""
    assert roundtrip(rows) == rows


KERNEL_VALUES = [
    None, "", "plain", "\\N", 'quo"te', "del,imiter", "nl\nine",
    " padded ", True, False, 0, -17, 2**40, 1.5, -0.0, float("inf"),
    Decimal("12.34"), Decimal("-0.5"),
    datetime.date(2020, 1, 2), datetime.datetime(2020, 1, 2, 3, 4, 5),
    datetime.datetime(2020, 1, 2, 3, 4, 5, 678901),
]


class IntSub(int):
    """An int subclass: must take the reference fallback path."""


class TestCsvKernel:
    """CsvKernel.render_row must match encode_csv_row byte for byte."""

    @pytest.mark.parametrize(
        "delimiter", [",", "|", ";", "\t", "~", "5", "e", "-"])
    def test_matches_reference_for_all_value_types(self, delimiter):
        kernel = stagefile.CsvKernel(delimiter)
        for i in range(0, len(KERNEL_VALUES), 3):
            row = tuple(KERNEL_VALUES[i:i + 3])
            assert kernel.render_row(row) == \
                stagefile.encode_csv_row(row, delimiter)

    @pytest.mark.parametrize("delimiter", [",", "5", "-"])
    def test_seq_column_matches_reference(self, delimiter):
        kernel = stagefile.CsvKernel(delimiter)
        for seq in (0, 5, 12345):
            assert kernel.render_row(("a", None), seq) == \
                stagefile.encode_csv_row(("a", None, seq), delimiter)

    def test_subclass_values_take_reference_path(self):
        kernel = stagefile.CsvKernel(",")
        row = (IntSub(7), "x")
        assert kernel.render_row(row) == stagefile.encode_csv_row(row)

    def test_unserializable_raises_like_reference(self):
        kernel = stagefile.CsvKernel(",")
        with pytest.raises(DataFormatError):
            kernel.render_row((object(),))


class TestStreamingEncode:
    def test_bytes_unchanged_regression(self):
        """encode_csv_rows streams into one buffer now (PR 3); the bytes
        must be exactly the old per-row concatenation."""
        rows = [("a", "b"), (None, ""), ('q"uote', "x,y"), ("\\N", None)]
        expected = b"".join(
            stagefile.encode_csv_row(row).encode("utf-8") for row in rows)
        assert stagefile.encode_csv_rows(rows) == expected
        assert stagefile.encode_csv_rows(rows) == \
            b'a,b\n\\N,""\n"q""uote","x,y"\n"\\N",\\N\n'

    def test_empty_rows(self):
        assert stagefile.encode_csv_rows([]) == b""


@given(st.text(alphabet='abc,\n\r|\\N', max_size=60))
def test_decode_fast_path_matches_slow_path(text):
    """Differential test for the quote-free decode fast path.

    Prefixing a quoted row forces the character-loop slow path over the
    same remaining input; both parses must agree row for row.
    """
    data = text.encode("utf-8")
    fast = list(stagefile.decode_csv_rows(data))
    slow = list(stagefile.decode_csv_rows(b'"q"\n' + data))
    assert slow[0] == ("q",)
    assert slow[1:] == fast
