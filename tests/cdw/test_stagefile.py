"""Tests for the CDW CSV staging-file format."""

import datetime
from decimal import Decimal

import pytest
from hypothesis import given, strategies as st

from repro.cdw import stagefile
from repro.errors import DataFormatError


def roundtrip(rows, delimiter=","):
    data = stagefile.encode_csv_rows(rows, delimiter)
    return list(stagefile.decode_csv_rows(data, delimiter))


class TestEncoding:
    def test_simple(self):
        assert stagefile.encode_csv_row(("a", "b")) == "a,b\n"

    def test_null_marker(self):
        assert stagefile.encode_csv_row((None, "x")) == "\\N,x\n"

    def test_empty_string_distinct_from_null(self):
        row = stagefile.encode_csv_row(("", None))
        assert row == '"",\\N\n'
        (decoded,) = roundtrip([("", None)])
        assert decoded == ("", None)

    def test_literal_null_marker_quoted(self):
        (decoded,) = roundtrip([("\\N",)])
        assert decoded == ("\\N",)

    def test_delimiter_and_quote_escaping(self):
        rows = [('a,b', 'say "hi"', 'line\nbreak')]
        assert roundtrip(rows) == rows

    def test_typed_values_render(self):
        encoded = stagefile.encode_csv_row(
            (1, 2.5, Decimal("3.14"), datetime.date(2020, 1, 2), True))
        assert encoded == "1,2.5,3.14,2020-01-02,true\n"

    def test_unserializable_raises(self):
        with pytest.raises(DataFormatError):
            stagefile.encode_csv_row((object(),))

    def test_custom_delimiter(self):
        rows = [("a|b", "c")]
        assert roundtrip(rows, delimiter="|") == rows


class TestDecoding:
    def test_crlf_tolerated(self):
        rows = list(stagefile.decode_csv_rows(b"a,b\r\nc,d\r\n"))
        assert rows == [("a", "b"), ("c", "d")]

    def test_unterminated_quote_raises(self):
        with pytest.raises(DataFormatError):
            list(stagefile.decode_csv_rows(b'"unterminated'))

    def test_empty_input(self):
        assert list(stagefile.decode_csv_rows(b"")) == []


class TestCompression:
    def test_roundtrip(self):
        data = b"some staging bytes" * 100
        assert stagefile.decompress(stagefile.compress(data)) == data

    def test_compress_is_deterministic(self):
        data = b"abc" * 50
        assert stagefile.compress(data) == stagefile.compress(data)

    def test_corrupt_raises(self):
        with pytest.raises(DataFormatError):
            stagefile.decompress(b"not gzip")


_field = st.one_of(
    st.none(),
    st.text(alphabet=st.characters(codec="utf-8",
                                   blacklist_categories=("Cs",)),
            max_size=30))


@given(st.lists(st.tuples(_field, _field, _field), max_size=25))
def test_csv_roundtrip_property(rows):
    """NULL vs empty vs arbitrary text all survive the staging format."""
    assert roundtrip(rows) == rows
