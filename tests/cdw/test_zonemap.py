"""__SEQ zone-map pruning: sliced scans must equal the full-scan oracle.

The engine pushes ``__SEQ BETWEEN lo AND hi`` down to a binary-searched
slice of a staging table kept physically sorted on ``__SEQ``
(:meth:`CdwTable.set_sorted` / :meth:`seq_slice`).  The property under
test: for *any* range — including ranges emptied by adaptive skips and
after out-of-order inserts — a pruned SELECT/UPDATE/DELETE touches
exactly the rows the unpruned full scan would.
"""

import random

import pytest

from repro.cdw.cloudstore import CloudStore
from repro.cdw.engine import CdwEngine
from repro.errors import CatalogError


def make_engine(pruning: bool = True) -> CdwEngine:
    return CdwEngine(store=CloudStore(), zone_map_pruning=pruning)


def seed_staging(engine, seqs):
    engine.execute("CREATE TABLE STG (V NVARCHAR, __SEQ BIGINT)")
    table = engine.table("STG")
    table.append_rows([(f"v{s}", s) for s in seqs])
    table.set_sorted("__SEQ")
    return table


class TestSeqSlice:
    def test_slice_matches_oracle_for_random_ranges(self):
        rng = random.Random(20230325)
        seqs = sorted(rng.sample(range(10_000), 600))
        engine = make_engine()
        table = seed_staging(engine, seqs)
        for _ in range(200):
            lo = rng.randrange(-100, 10_100)
            hi = lo + rng.randrange(0, 2_000)
            start, stop = table.seq_slice(lo, hi)
            got = [r[1] for r in table.rows[start:stop]]
            assert got == [s for s in seqs if lo <= s <= hi]

    def test_empty_ranges_from_adaptive_skips(self):
        """Ranges the adaptive handler emptied (every seq rejected or
        already applied) slice to nothing, in O(log n)."""
        engine = make_engine()
        table = seed_staging(engine, [0, 1, 2, 50, 51, 52])
        for lo, hi in ((3, 49), (53, 10_000), (-10, -1)):
            start, stop = table.seq_slice(lo, hi)
            assert start == stop

    def test_out_of_order_appends_keep_slices_correct(self):
        """Eager copies land blob-by-blob out of __SEQ order; the zone
        map must re-establish sortedness before slicing."""
        rng = random.Random(7)
        engine = make_engine()
        table = seed_staging(engine, [])
        batches = [list(range(b * 100, b * 100 + 100))
                   for b in range(8)]
        rng.shuffle(batches)
        for batch in batches:
            table.append_rows([(f"v{s}", s) for s in batch])
        all_seqs = sorted(s for b in batches for s in b)
        for _ in range(50):
            lo = rng.randrange(0, 800)
            hi = lo + rng.randrange(0, 300)
            start, stop = table.seq_slice(lo, hi)
            assert [r[1] for r in table.rows[start:stop]] == \
                [s for s in all_seqs if lo <= s <= hi]

    def test_seq_slice_requires_armed_zone_map(self):
        engine = make_engine()
        engine.execute("CREATE TABLE T (A INT)")
        with pytest.raises(CatalogError):
            engine.table("T").seq_slice(0, 10)


class TestPrunedStatements:
    """End-to-end: engine statements with BETWEEN on the sort column
    return/affect the same rows with pruning on and off."""

    STATEMENTS = [
        "SELECT V FROM STG WHERE __SEQ BETWEEN {lo} AND {hi}",
        "SELECT COUNT(*) FROM STG WHERE __SEQ BETWEEN {lo} AND {hi} "
        "AND V <> 'v3'",
    ]

    def _seed(self, engine, rng):
        seqs = sorted(rng.sample(range(2_000), 300))
        seed_staging(engine, seqs)
        return seqs

    def test_select_matches_unpruned_engine(self):
        rng = random.Random(99)
        pruned, full = make_engine(True), make_engine(False)
        self._seed(pruned, random.Random(1))
        self._seed(full, random.Random(1))
        skipped = []
        pruned.on_scan_pruned = skipped.append
        for _ in range(40):
            lo = rng.randrange(0, 2_000)
            hi = lo + rng.randrange(0, 700)
            for template in self.STATEMENTS:
                sql = template.format(lo=lo, hi=hi)
                assert sorted(pruned.query(sql)) == \
                    sorted(full.query(sql)), sql
        assert sum(skipped) > 0  # pruning actually engaged

    def test_dml_matches_unpruned_engine(self):
        for sql in (
                "DELETE FROM STG WHERE __SEQ BETWEEN 500 AND 899",
                "UPDATE STG SET V = 'hit' "
                "WHERE __SEQ BETWEEN 200 AND 450",
        ):
            pruned, full = make_engine(True), make_engine(False)
            self._seed(pruned, random.Random(5))
            self._seed(full, random.Random(5))
            pruned.execute(sql)
            full.execute(sql)
            assert sorted(pruned.query("SELECT * FROM STG")) == \
                sorted(full.query("SELECT * FROM STG")), sql

    def test_update_of_sort_column_disarms_zone_map(self):
        engine = make_engine()
        table = seed_staging(engine, list(range(10)))
        engine.execute("UPDATE STG SET __SEQ = 99 WHERE __SEQ = 0")
        assert table.sorted_by is None
        # Correctness survives: full scans take over.
        assert engine.query(
            "SELECT COUNT(*) FROM STG WHERE __SEQ BETWEEN 90 AND 100"
        ) == [(1,)]

    def test_merge_into_zone_mapped_table_disarms_it(self):
        engine = make_engine()
        table = seed_staging(engine, [1, 2, 3])
        engine.execute("CREATE TABLE SRC (V NVARCHAR, __SEQ BIGINT)")
        engine.table("SRC").append_rows([("new", 0)])
        engine.execute(
            "MERGE INTO STG USING SRC ON STG.__SEQ = SRC.__SEQ "
            "WHEN NOT MATCHED THEN INSERT VALUES (SRC.V, SRC.__SEQ)")
        assert table.sorted_by is None


class TestTruncateKeepsZoneMap:
    """Beta's emulation rollback truncates the staging suffix; the
    zone map must stay armed so the eager ranges appended afterwards
    still slice correctly (PR 8 satellite)."""

    def test_truncate_then_append_slices_match_oracle(self):
        engine = make_engine()
        table = seed_staging(engine, list(range(500)))
        assert table.sorted_by == "__SEQ"

        table.truncate_rows(300)            # rollback to seq < 300
        assert table.sorted_by == "__SEQ", \
            "suffix truncation cannot disturb the sort order"

        # eager ranges re-land after the rollback point
        table.append_rows([(f"r{s}", s) for s in range(300, 420)])
        assert table.sorted_by == "__SEQ"
        live = list(range(420))
        for lo, hi in ((0, 99), (250, 350), (280, 10_000),
                       (419, 419), (420, 500), (-5, -1)):
            start, stop = table.seq_slice(lo, hi)
            got = [r[1] for r in table.rows[start:stop]]
            assert got == [s for s in live if lo <= s <= hi], (lo, hi)

    def test_truncated_range_queries_through_engine(self):
        engine = make_engine()
        table = seed_staging(engine, list(range(100)))
        table.truncate_rows(40)
        table.append_rows([(f"r{s}", s) for s in range(40, 70)])
        assert engine.query(
            "SELECT COUNT(*) FROM STG WHERE __SEQ BETWEEN 30 AND 80"
        ) == [(40,)]
