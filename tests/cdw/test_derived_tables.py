"""Derived-table (subquery in FROM) tests."""

import pytest

from repro.cdw.engine import CdwEngine
from repro.sqlxc import parse_statement, render


@pytest.fixture
def db():
    engine = CdwEngine()
    engine.execute("CREATE TABLE s (REGION NVARCHAR(8), AMT INT)")
    engine.execute(
        "INSERT INTO s VALUES ('n', 10), ('n', 20), ('s', 5), ('s', 7)")
    return engine


class TestDerivedTables:
    def test_basic(self, db):
        rows = db.query(
            "SELECT t.REGION, t.TOTAL FROM "
            "(SELECT REGION, SUM(AMT) AS TOTAL FROM s GROUP BY REGION) "
            "AS t ORDER BY t.REGION")
        assert rows == [("n", 30), ("s", 12)]

    def test_where_over_derived(self, db):
        rows = db.query(
            "SELECT t.REGION FROM "
            "(SELECT REGION, SUM(AMT) AS TOTAL FROM s GROUP BY REGION) "
            "AS t WHERE t.TOTAL > 20")
        assert rows == [("n",)]

    def test_join_table_with_derived(self, db):
        db.execute("CREATE TABLE names (REGION NVARCHAR(8), "
                   "FULL_NAME NVARCHAR(16))")
        db.execute("INSERT INTO names VALUES ('n', 'north'), "
                   "('s', 'south')")
        rows = db.query(
            "SELECT names.FULL_NAME, t.TOTAL FROM names JOIN "
            "(SELECT REGION, SUM(AMT) AS TOTAL FROM s GROUP BY REGION) "
            "AS t ON names.REGION = t.REGION ORDER BY 1")
        assert rows == [("north", 30), ("south", 12)]

    def test_star_over_derived(self, db):
        rows = db.query(
            "SELECT * FROM (SELECT REGION FROM s WHERE AMT > 8) AS x")
        assert sorted(rows) == [("n",), ("n",)]

    def test_nested_derived(self, db):
        rows = db.query(
            "SELECT y.R FROM (SELECT x.REGION AS R FROM "
            "(SELECT REGION FROM s) AS x) AS y WHERE y.R = 's' LIMIT 1")
        assert rows == [("s",)]

    def test_derived_from_union(self, db):
        rows = db.query(
            "SELECT COUNT(*) FROM "
            "(SELECT REGION FROM s UNION SELECT 'x') AS u")
        assert rows == [(3,)]

    def test_render_roundtrip(self):
        sql = ("SELECT t.A FROM (SELECT A FROM b WHERE (A > 1)) AS t "
               "LIMIT 3")
        first = render(parse_statement(sql, "cdw"), "cdw")
        second = render(parse_statement(first, "cdw"), "cdw")
        assert first == second

    def test_legacy_dialect_supported(self, db):
        from repro.sqlxc import transpile
        out = transpile(
            "sel t.TOTAL from (sel SUM(AMT) as TOTAL from s) t")
        assert "(SELECT SUM(AMT) AS TOTAL FROM s) AS t" in out
