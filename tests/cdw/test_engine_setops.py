"""Set operations, EXTRACT, and CREATE TABLE AS tests."""

import datetime

import pytest

from repro.cdw.engine import CdwEngine
from repro.errors import CdwError


@pytest.fixture
def db():
    engine = CdwEngine()
    engine.execute("CREATE TABLE a (X INT)")
    engine.execute("INSERT INTO a VALUES (1), (2), (3), (3)")
    engine.execute("CREATE TABLE b (X INT)")
    engine.execute("INSERT INTO b VALUES (3), (4)")
    return engine


class TestSetOps:
    def test_union_dedupes(self, db):
        rows = db.query("SELECT X FROM a UNION SELECT X FROM b")
        assert sorted(rows) == [(1,), (2,), (3,), (4,)]

    def test_union_all_keeps_duplicates(self, db):
        rows = db.query("SELECT X FROM a UNION ALL SELECT X FROM b")
        assert len(rows) == 6

    def test_except(self, db):
        rows = db.query("SELECT X FROM a EXCEPT SELECT X FROM b")
        assert sorted(rows) == [(1,), (2,)]

    def test_intersect(self, db):
        rows = db.query("SELECT X FROM a INTERSECT SELECT X FROM b")
        assert rows == [(3,)]

    def test_chained_set_ops(self, db):
        rows = db.query(
            "SELECT X FROM a UNION SELECT X FROM b "
            "EXCEPT SELECT 4")
        assert sorted(rows) == [(1,), (2,), (3,)]

    def test_arity_mismatch_raises(self, db):
        with pytest.raises(CdwError):
            db.query("SELECT X FROM a UNION SELECT X, X FROM b")

    def test_insert_from_union(self, db):
        db.execute("CREATE TABLE c (X INT)")
        result = db.execute(
            "INSERT INTO c SELECT X FROM a UNION SELECT X FROM b")
        assert result.rows_inserted == 4

    def test_in_subquery_with_union(self, db):
        rows = db.query(
            "SELECT X FROM a WHERE X IN "
            "(SELECT X FROM b UNION SELECT 1)")
        assert sorted(set(rows)) == [(1,), (3,)]

    def test_render_roundtrip(self, db):
        from repro.sqlxc import parse_statement, render
        sql = "SELECT X FROM a UNION ALL SELECT X FROM b"
        first = render(parse_statement(sql, "cdw"), "cdw")
        second = render(parse_statement(first, "cdw"), "cdw")
        assert first == second


class TestExtract:
    def test_date_parts(self, db):
        (row,) = db.query(
            "SELECT EXTRACT(YEAR FROM DATE '2020-03-04'), "
            "EXTRACT(MONTH FROM DATE '2020-03-04'), "
            "EXTRACT(DAY FROM DATE '2020-03-04')")
        assert row == (2020, 3, 4)

    def test_timestamp_parts(self, db):
        (row,) = db.query(
            "SELECT EXTRACT(HOUR FROM TIMESTAMP '2020-01-01 13:14:15')")
        assert row == (13,)

    def test_null_propagates(self, db):
        db.execute("CREATE TABLE d (D DATE)")
        db.execute("INSERT INTO d VALUES (NULL)")
        assert db.query("SELECT EXTRACT(YEAR FROM D) FROM d") == \
            [(None,)]

    def test_render_roundtrip(self):
        from repro.sqlxc import parse_statement, render
        sql = "SELECT EXTRACT(YEAR FROM D) FROM t"
        first = render(parse_statement(sql, "cdw"), "cdw")
        assert "EXTRACT(YEAR FROM D)" in first


class TestCreateTableAs:
    def test_types_inferred(self, db):
        db.execute(
            "CREATE TABLE summary AS SELECT X, X * 1.5 AS scaled, "
            "'tag' AS label FROM a")
        table = db.table("summary")
        assert table.column("X").ctype.base == "BIGINT"
        assert table.column("scaled").ctype.base == "DECIMAL"
        assert table.column("label").ctype.base == "NVARCHAR"
        assert len(table.rows) == 4

    def test_date_column_inferred(self, db):
        db.execute("CREATE TABLE dd AS SELECT DATE '2020-01-01' AS d")
        assert db.table("dd").column("d").ctype.base == "DATE"
        assert db.query("SELECT d FROM dd") == \
            [(datetime.date(2020, 1, 1),)]

    def test_from_union(self, db):
        db.execute("CREATE TABLE u AS "
                   "SELECT X FROM a UNION SELECT X FROM b")
        assert len(db.table("u").rows) == 4

    def test_if_not_exists_noop(self, db):
        db.execute("CREATE TABLE t2 AS SELECT X FROM a")
        result = db.execute(
            "CREATE TABLE IF NOT EXISTS t2 AS SELECT X FROM b")
        assert result.rows_inserted == 0
        assert len(db.table("t2").rows) == 4

    def test_legacy_transpile(self):
        from repro.sqlxc import transpile
        out = transpile("create table s as sel X from a")
        assert out == "CREATE TABLE s AS SELECT X FROM a"
