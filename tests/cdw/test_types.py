"""Tests for the CDW type system and coercion."""

import datetime
from decimal import Decimal

import pytest

from repro.cdw.types import CdwType, cdw_type_from_legacy, cdw_type_from_node
from repro.errors import ExpressionError, TypeError_
from repro.legacy.types import parse_type
from repro.sqlxc import nodes as n


class TestConstruction:
    def test_unknown_base_rejected(self):
        with pytest.raises(TypeError_):
            CdwType("BLOB")

    def test_render(self):
        assert CdwType("NVARCHAR", 10).render() == "NVARCHAR(10)"
        assert CdwType("DECIMAL", 10, 2).render() == "DECIMAL(10,2)"
        assert CdwType("NVARCHAR").render() == "NVARCHAR"
        assert CdwType("BIGINT", 10).render() == "BIGINT"

    def test_from_legacy(self):
        assert cdw_type_from_legacy(parse_type("unicode(7)")) == \
            CdwType("NVARCHAR", 7)
        assert cdw_type_from_legacy(parse_type("float")) == \
            CdwType("DOUBLE")

    def test_from_node_both_dialects(self):
        legacy = n.TypeName("INTEGER", dialect="legacy")
        assert cdw_type_from_node(legacy).base == "INT"
        cdw = n.TypeName("INT", dialect="cdw")
        assert cdw_type_from_node(cdw).base == "INT"


class TestCharacterCoercion:
    def test_varchar_accepts_str(self):
        assert CdwType("VARCHAR", 5).coerce("abc") == "abc"

    def test_varchar_overflow_raises(self):
        with pytest.raises(ExpressionError):
            CdwType("VARCHAR", 3).coerce("abcd")

    def test_char_pads(self):
        assert CdwType("CHAR", 4).coerce("ab") == "ab  "

    def test_numbers_stringify(self):
        assert CdwType("NVARCHAR").coerce(42) == "42"

    def test_date_stringifies_iso(self):
        assert CdwType("NVARCHAR").coerce(
            datetime.date(2020, 1, 2)) == "2020-01-02"

    def test_null_passthrough(self):
        assert CdwType("VARCHAR", 1).coerce(None) is None


class TestIntegerCoercion:
    def test_from_string(self):
        assert CdwType("INT").coerce(" 42 ") == 42

    def test_bad_string_raises(self):
        with pytest.raises(ExpressionError):
            CdwType("INT").coerce("abc")

    def test_range_check(self):
        with pytest.raises(ExpressionError):
            CdwType("SMALLINT").coerce(40000)
        assert CdwType("BIGINT").coerce(2**62) == 2**62

    def test_non_integral_float_raises(self):
        with pytest.raises(ExpressionError):
            CdwType("INT").coerce(1.5)

    def test_integral_float_ok(self):
        assert CdwType("INT").coerce(3.0) == 3

    def test_bool_becomes_int(self):
        assert CdwType("INT").coerce(True) == 1


class TestDecimalCoercion:
    def test_scale_quantization(self):
        assert CdwType("DECIMAL", 10, 2).coerce("1.5") == \
            Decimal("1.50")

    def test_precision_overflow_raises(self):
        with pytest.raises(ExpressionError):
            CdwType("DECIMAL", 4, 2).coerce("123.45")

    def test_bad_string_raises(self):
        with pytest.raises(ExpressionError):
            CdwType("DECIMAL", 10, 2).coerce("1.2.3")

    def test_float_input(self):
        assert CdwType("DECIMAL", 10, 2).coerce(0.1) == Decimal("0.10")


class TestTemporalCoercion:
    def test_date_from_string(self):
        assert CdwType("DATE").coerce("2020-02-03") == \
            datetime.date(2020, 2, 3)

    def test_date_from_timestamp(self):
        ts = datetime.datetime(2020, 1, 2, 3, 4)
        assert CdwType("DATE").coerce(ts) == datetime.date(2020, 1, 2)

    def test_bad_date_raises(self):
        with pytest.raises(ExpressionError):
            CdwType("DATE").coerce("yesterday")

    def test_timestamp_from_date(self):
        value = CdwType("TIMESTAMP").coerce(datetime.date(2020, 1, 2))
        assert value == datetime.datetime(2020, 1, 2)

    def test_timestamp_from_string(self):
        assert CdwType("TIMESTAMP").coerce("2020-01-02 03:04:05").hour == 3


class TestOtherCoercion:
    def test_double_from_string(self):
        assert CdwType("DOUBLE").coerce("1.5") == 1.5

    def test_double_bad_string_raises(self):
        with pytest.raises(ExpressionError):
            CdwType("DOUBLE").coerce("one point five")

    def test_boolean_variants(self):
        t = CdwType("BOOLEAN")
        assert t.coerce("true") is True
        assert t.coerce("F") is False
        assert t.coerce(1) is True
        with pytest.raises(ExpressionError):
            t.coerce("maybe")

    def test_field_attribution(self):
        with pytest.raises(ExpressionError) as info:
            CdwType("DATE").coerce("junk", field="D")
        assert info.value.field == "D"
