"""ALTER TABLE execution on the CDW engine (row and columnar modes)."""

import pytest

from repro.cdw.cloudstore import CloudStore
from repro.cdw.engine import CdwEngine
from repro.errors import CatalogError


@pytest.fixture(params=[True, False], ids=["columnar", "rows"])
def any_engine(request):
    return CdwEngine(store=CloudStore(), columnar=request.param)


def _seed(engine):
    engine.execute("CREATE TABLE T (A VARCHAR(5), B INT)")
    engine.execute("INSERT INTO T VALUES ('x', 1)")
    engine.execute("INSERT INTO T VALUES ('y', 2)")


def test_add_column_backfills_null(any_engine):
    _seed(any_engine)
    any_engine.execute("ALTER TABLE T ADD COLUMN C VARCHAR(8)")
    assert [c.name for c in any_engine.table("T").columns] == \
        ["A", "B", "C"]
    rows = sorted(any_engine.query("SELECT A, B, C FROM T"))
    assert rows == [("x", 1, None), ("y", 2, None)]
    # new column is writable
    any_engine.execute("INSERT INTO T VALUES ('z', 3, 'r')")
    assert sorted(any_engine.query("SELECT A, C FROM T"))[-1] == \
        ("z", "r")


def test_add_column_if_not_exists_is_idempotent(any_engine):
    _seed(any_engine)
    any_engine.execute("ALTER TABLE T ADD COLUMN IF NOT EXISTS C INT")
    # replay-safe: the second ALTER is a no-op, not an error
    any_engine.execute("ALTER TABLE T ADD COLUMN IF NOT EXISTS C INT")
    assert [c.name for c in any_engine.table("T").columns] == \
        ["A", "B", "C"]


def test_add_duplicate_column_without_guard_fails(any_engine):
    _seed(any_engine)
    with pytest.raises(CatalogError):
        any_engine.execute("ALTER TABLE T ADD COLUMN A INT")


def test_rename_column_preserves_data(any_engine):
    _seed(any_engine)
    any_engine.execute("ALTER TABLE T RENAME COLUMN A TO A2")
    assert [c.name for c in any_engine.table("T").columns] == \
        ["A2", "B"]
    assert sorted(any_engine.query("SELECT A2, B FROM T")) == \
        [("x", 1), ("y", 2)]


def test_rename_unknown_column_fails(any_engine):
    _seed(any_engine)
    with pytest.raises(CatalogError):
        any_engine.execute("ALTER TABLE T RENAME COLUMN Z TO Y")
