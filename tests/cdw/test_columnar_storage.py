"""Unit tests for the typed column-vector storage layer (PR 8).

:mod:`repro.cdw.columns` backs every columnar :class:`CdwTable`; these
tests pin the storage contracts the engine paths rely on — round-trip
fidelity (including NULLs and non-ASCII text), graceful degradation to
object storage when a value does not fit the typed buffer, and the
truncate/take mutations that implement rollback and vectorized DELETE.
"""

from decimal import Decimal

import pytest

from repro.cdw.columns import ColumnStore, column_for_type
from repro.cdw.table import ColumnSpec
from repro.cdw.types import CdwType

SPECS = [
    ColumnSpec("I", CdwType("INT")),
    ColumnSpec("D", CdwType("DOUBLE")),
    ColumnSpec("B", CdwType("BOOLEAN")),
    ColumnSpec("S", CdwType("NVARCHAR", 40)),
]

ROWS = [
    (1, 1.5, True, "alpha"),
    (None, None, None, None),
    (-7, -0.25, False, ""),
    (2 ** 40, 3e300, True, "naïve — ünïcode"),
]


def make_store(rows=ROWS):
    return ColumnStore.from_rows(SPECS, rows)


class TestRoundTrip:
    def test_tuples_and_rows_match_input(self):
        store = make_store()
        assert store.tuples(0, len(store)) == ROWS
        assert [store.row(i) for i in range(len(store))] == ROWS
        assert store.row(-1) == ROWS[-1]

    def test_column_list_slices(self):
        store = make_store()
        assert store.column_list(3, 1, 3) == [None, ""]
        assert store.column_list(0) == [1, None, -7, 2 ** 40]

    def test_columnwise_append_equals_rowwise(self):
        rowwise = make_store()
        colwise = ColumnStore(list(SPECS))
        colwise.extend_columns(
            [[r[i] for r in ROWS] for i in range(len(SPECS))])
        assert colwise.tuples(0, 4) == rowwise.tuples(0, 4)


class TestDegradation:
    def test_out_of_range_int_degrades_not_raises(self):
        store = make_store()
        store.append_row((2 ** 70, 0.0, True, "x"))
        assert store.row(4)[0] == 2 ** 70
        assert store.column_list(0) == [1, None, -7, 2 ** 40, 2 ** 70]

    def test_wrong_type_degrades(self):
        # Decimal in a DOUBLE column: the engine stores whatever a
        # coercion produced; the store must keep it verbatim.
        store = make_store()
        store.append_row((0, Decimal("1.25"), False, "y"))
        assert store.row(4)[1] == Decimal("1.25")

    def test_columnwise_degradation_keeps_prior_rows(self):
        store = make_store()
        store.extend_columns([[2 ** 80, 3], [0.5, 1.5],
                              [True, False], ["a", "b"]])
        assert len(store) == 6
        assert store.column_list(0) == \
            [1, None, -7, 2 ** 40, 2 ** 80, 3]


class TestMutation:
    def test_truncate_drops_suffix(self):
        store = make_store()
        store.truncate(2)
        assert store.tuples(0, len(store)) == ROWS[:2]
        store.append_row(ROWS[3])
        assert store.row(2) == ROWS[3]

    def test_take_reorders_and_filters(self):
        store = make_store()
        taken = store.take([3, 1, 0])
        assert taken.tuples(0, 3) == [ROWS[3], ROWS[1], ROWS[0]]
        # the original is untouched
        assert store.tuples(0, 4) == ROWS

    def test_text_blob_truncate_then_append(self):
        col = column_for_type("NVARCHAR")
        for v in ("aa", None, "bbbb"):
            col.append(v)
        col.truncate(1)
        col.append("cc")
        assert col.to_list(0, 2) == ["aa", "cc"]
        assert col[1] == "cc"


class TestFootprint:
    def test_nbytes_is_buffer_sized(self):
        store = ColumnStore(list(SPECS))
        store.extend_rows([(i, float(i), True, "v%04d" % i)
                           for i in range(1000)])
        # 8B int + 8B double + ~1B bool + ~13B text (5 UTF-8 bytes +
        # 8B offset) + 4 validity bytes ≈ 34B/row — far under the
        # several-hundred-byte tuple-of-objects footprint.
        assert store.nbytes() < 60 * 1000

    def test_null_count(self):
        store = make_store()
        assert store.cols[0].null_count() == 1
        assert store.cols[3].null_count() == 1


def test_unknown_base_falls_back_to_object_column():
    col = column_for_type("DECIMAL")
    col.append(Decimal("7.25"))
    col.append(None)
    assert col.to_list(0, 2) == [Decimal("7.25"), None]
