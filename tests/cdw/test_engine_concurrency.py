"""Engine thread-safety soak: concurrent DML + queries stay consistent.

The gateway runs Beta, COPY, and ad-hoc SQL from different threads
against one engine; the engine serializes statements with a lock.  This
soak hammers one engine from many threads and checks the final state is
exactly the sum of the applied operations.
"""

import threading

from repro.cdw.engine import CdwEngine
from repro.errors import BulkExecutionError

WORKERS = 6
OPS_PER_WORKER = 60


def test_concurrent_inserts_and_queries():
    engine = CdwEngine()
    engine.execute("CREATE TABLE T (W INT, I INT, UNIQUE (W, I))")
    errors: list[BaseException] = []

    def worker(worker_no: int):
        try:
            for i in range(OPS_PER_WORKER):
                engine.execute(
                    f"INSERT INTO T VALUES ({worker_no}, {i})")
                if i % 10 == 0:
                    count = engine.query(
                        f"SELECT COUNT(*) FROM T WHERE W = {worker_no}"
                    )[0][0]
                    assert count == i + 1
        except BaseException as exc:  # pragma: no cover
            errors.append(exc)

    threads = [threading.Thread(target=worker, args=(w,))
               for w in range(WORKERS)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert not errors
    assert engine.query("SELECT COUNT(*) FROM T") == \
        [(WORKERS * OPS_PER_WORKER,)]


def test_concurrent_unique_contention():
    """Many threads race to insert the same keys; exactly one wins per
    key and every loser gets a clean uniqueness abort."""
    engine = CdwEngine()
    engine.execute("CREATE TABLE K (V INT, UNIQUE (V))")
    wins = []
    losses = []
    lock = threading.Lock()

    def worker():
        for value in range(30):
            try:
                engine.execute(f"INSERT INTO K VALUES ({value})")
                with lock:
                    wins.append(value)
            except BulkExecutionError as exc:
                assert exc.kind == "uniqueness"
                with lock:
                    losses.append(value)

    threads = [threading.Thread(target=worker) for _ in range(5)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert sorted(wins) == list(range(30))
    assert len(losses) == 4 * 30
    assert engine.query("SELECT COUNT(*) FROM K") == [(30,)]
