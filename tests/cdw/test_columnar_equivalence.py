"""Columnar engine vs row-fallback engine: observational equivalence.

PR 8's contract is that columnar storage + vectorized execution is a
pure performance change: for every statement the columnar engine must
produce exactly the rows, counts, table states, *and errors* the
row-of-tuples interpreter produces.  These tests drive randomized
statement streams (NULL-heavy data, zone map armed and disarmed)
through one engine of each kind and diff everything observable.
"""

import random

import pytest

from repro.cdw.cloudstore import CloudStore
from repro.cdw.engine import CdwEngine

DDL = (
    "CREATE TABLE T (ID INT, GRP INT, AMT DOUBLE, "
    "NAME NVARCHAR(20), FLAG BOOLEAN, __SEQ BIGINT)",
    "CREATE TABLE SRC (ID INT, GRP INT, AMT DOUBLE, "
    "NAME NVARCHAR(20), FLAG BOOLEAN, __SEQ BIGINT)",
)

NUM_COLS = ("ID", "GRP", "AMT", "__SEQ")
CMP_OPS = ("=", "<>", "<", "<=", ">", ">=")


def _random_rows(rng, count, seq_base=0):
    """NULL-heavy rows: every nullable column is None ~25% of the time."""
    def maybe(value):
        return None if rng.random() < 0.25 else value
    return [
        (maybe(rng.randrange(0, 200)),
         maybe(rng.randrange(0, 12)),
         maybe(round(rng.uniform(-50, 50), 2)),
         maybe(f"n{rng.randrange(0, 40)}"),
         maybe(rng.random() < 0.5),
         seq_base + i)
        for i in range(count)
    ]


def make_pair(seed, rows=250, arm_zone_map=False):
    """One columnar and one row-mode engine with identical contents."""
    engines = []
    for columnar in (True, False):
        engine = CdwEngine(store=CloudStore(), columnar=columnar)
        for ddl in DDL:
            engine.execute(ddl)
        rng = random.Random(seed)
        engine.table("T").append_rows(_random_rows(rng, rows))
        engine.table("SRC").append_rows(
            _random_rows(rng, rows // 3, seq_base=rows))
        if arm_zone_map:
            engine.table("T").set_sorted("__SEQ")
        engines.append(engine)
    return engines


def _predicate(rng, depth=0):
    """A random WHERE-clause fragment in the supported dialect."""
    roll = rng.random()
    if depth < 2 and roll < 0.25:
        left = _predicate(rng, depth + 1)
        right = _predicate(rng, depth + 1)
        junction = rng.choice(("AND", "OR"))
        text = f"({left} {junction} {right})"
        return f"NOT {text}" if rng.random() < 0.2 else text
    col = rng.choice(NUM_COLS)
    choice = rng.randrange(9)
    if choice == 0:
        return f"{col} {rng.choice(CMP_OPS)} {rng.randrange(-5, 205)}"
    if choice == 1:
        lo = rng.randrange(-5, 200)
        maybe_not = "NOT " if rng.random() < 0.3 else ""
        return f"{col} {maybe_not}BETWEEN {lo} AND " \
               f"{lo + rng.randrange(0, 60)}"
    if choice == 2:
        items = ", ".join(str(rng.randrange(0, 15)) for _ in range(3))
        if rng.random() < 0.3:
            items += ", NULL"
        maybe_not = "NOT " if rng.random() < 0.3 else ""
        return f"GRP {maybe_not}IN ({items})"
    if choice == 3:
        return f"NAME LIKE 'n{rng.randrange(0, 4)}%'"
    if choice == 4:
        col = rng.choice(("GRP", "AMT", "NAME", "FLAG"))
        maybe_not = "NOT " if rng.random() < 0.5 else ""
        return f"{col} IS {maybe_not}NULL"
    if choice == 5:
        return f"AMT * 2 > GRP + {rng.randrange(0, 20)}"
    if choice == 6:
        return ("CASE WHEN GRP > 5 THEN 1 WHEN GRP IS NULL THEN 2 "
                "ELSE 0 END = %d" % rng.randrange(0, 3))
    if choice == 7:
        return f"SUBSTR(NAME, 1, 2) = 'n{rng.randrange(0, 4)}'"
    # CAST of a DOUBLE to INT errors on non-integral values: both
    # engines must raise the same statement error for it.
    return f"CAST(AMT AS INT) = {rng.randrange(0, 50)}"


def _select(rng):
    roll = rng.random()
    where = f" WHERE {_predicate(rng)}" if rng.random() < 0.8 else ""
    if roll < 0.35:
        agg = rng.choice((
            "COUNT(*)", "COUNT(GRP)", "COUNT(DISTINCT GRP)",
            "SUM(AMT)", "MIN(ID)", "MAX(NAME)", "AVG(AMT)"))
        if rng.random() < 0.5:
            return (f"SELECT GRP, {agg} FROM T{where} "
                    f"GROUP BY GRP ORDER BY GRP")
        return f"SELECT {agg} FROM T{where}"
    items = "ID, NAME, AMT * 2, COALESCE(GRP, -1)"
    order = " ORDER BY __SEQ" if rng.random() < 0.5 else ""
    limit = f" LIMIT {rng.randrange(1, 40)}" \
        if rng.random() < 0.3 else ""
    distinct = "DISTINCT " if rng.random() < 0.15 and order == "" else ""
    return f"SELECT {distinct}{items} FROM T{where}{order}{limit}"


def _dml(rng):
    roll = rng.randrange(5)
    if roll == 0:
        return f"DELETE FROM T WHERE {_predicate(rng)}"
    if roll == 1:
        return ("UPDATE T SET AMT = COALESCE(AMT, 0) + 1, "
                f"NAME = 'u{rng.randrange(0, 9)}' "
                f"WHERE {_predicate(rng)}")
    if roll == 2:
        seq = 100_000 + rng.randrange(0, 100_000)
        return ("INSERT INTO T SELECT ID, GRP, AMT, NAME, FLAG, "
                f"__SEQ + {seq} FROM SRC WHERE {_predicate(rng)}")
    if roll == 3:
        return (f"INSERT INTO T VALUES ({rng.randrange(0, 99)}, NULL, "
                f"{rng.randrange(0, 9)}.5, 'ins', TRUE, "
                f"{500_000 + rng.randrange(0, 100_000)})")
    return ("MERGE INTO T USING SRC ON T.ID = SRC.ID "
            "WHEN MATCHED THEN UPDATE SET AMT = SRC.AMT "
            "WHEN NOT MATCHED THEN INSERT VALUES (SRC.ID, SRC.GRP, "
            "SRC.AMT, SRC.NAME, SRC.FLAG, SRC.__SEQ + "
            f"{900_000 + rng.randrange(0, 100_000)})")


def _outcome(engine, sql):
    """(tag, payload) for one execution — errors are part of the
    observable behaviour and must match across engines."""
    try:
        result = engine.execute(sql)
    except Exception as exc:  # noqa: BLE001 - diffing error identity
        return type(exc).__name__, str(exc)
    if result.kind == "rows":
        return "rows", result.rows
    return "count", (result.rows_inserted, result.rows_updated,
                     result.rows_deleted)


def _assert_equivalent(engines, sql):
    columnar, rowwise = (_outcome(e, sql) for e in engines)
    assert columnar == rowwise, f"divergence on: {sql}"
    state = [sorted(e.query("SELECT * FROM T"), key=repr)
             for e in engines]
    assert state[0] == state[1], f"table state diverged after: {sql}"


@pytest.mark.parametrize("seed", [11, 23, 37])
@pytest.mark.parametrize("armed", [False, True],
                         ids=["zone-map-off", "zone-map-armed"])
def test_random_statement_streams_agree(seed, armed):
    engines = make_pair(seed, arm_zone_map=armed)
    rng = random.Random(seed * 7 + int(armed))
    for step in range(120):
        sql = _select(rng) if rng.random() < 0.6 else _dml(rng)
        _assert_equivalent(engines, sql)


def test_seq_range_scans_agree_while_zone_map_armed():
    """The eager-apply shape: __SEQ BETWEEN conjunct + residual."""
    engines = make_pair(99, arm_zone_map=True)
    rng = random.Random(99)
    for _ in range(60):
        lo = rng.randrange(0, 260)
        hi = lo + rng.randrange(0, 120)
        residual = _predicate(rng)
        for sql in (
                f"SELECT ID, NAME FROM T WHERE __SEQ BETWEEN {lo} "
                f"AND {hi} AND {residual}",
                f"DELETE FROM T WHERE __SEQ BETWEEN {lo} AND {hi} "
                f"AND {residual}",
        ):
            _assert_equivalent(engines, sql)


def test_copy_into_agrees():
    """Staged bytes land identically through both COPY paths."""
    from repro.cdw import stagefile

    engines = make_pair(5, rows=0)
    rng = random.Random(5)
    rows = _random_rows(rng, 400)
    data = stagefile.compress(stagefile.encode_csv_rows(rows))
    for index, engine in enumerate(engines):
        engine.store.create_container("stage")
        engine.store.put_blob("stage", f"j{index}/p0.csv.gz", data)
        engine.execute(
            f"COPY INTO T FROM 'store://stage/j{index}/' FORMAT csv")
    state = [sorted(e.query("SELECT * FROM T"), key=repr)
             for e in engines]
    assert state[0] == state[1]
    assert len(state[0]) == 400
