"""Tests for the shared value model and legacy date formats."""

import datetime

import pytest
from hypothesis import given, strategies as st

from repro import values
from repro.errors import ExpressionError


class TestDateFormatTokens:
    def test_iso_format(self):
        assert values.date_format_tokens("YYYY-MM-DD") == \
            ("YYYY", "-", "MM", "-", "DD")

    def test_two_digit_year(self):
        assert values.date_format_tokens("YY/MM/DD") == \
            ("YY", "/", "MM", "/", "DD")

    def test_month_name(self):
        assert values.date_format_tokens("DDMMMYYYY") == \
            ("DD", "MMM", "YYYY")

    def test_lowercase_format(self):
        assert values.date_format_tokens("yyyy-mm-dd") == \
            ("YYYY", "-", "MM", "-", "DD")


class TestParseDate:
    def test_iso(self):
        assert values.parse_date("2012-01-01") == \
            datetime.date(2012, 1, 1)

    def test_leading_trailing_space(self):
        assert values.parse_date("  2012-01-01 ") == \
            datetime.date(2012, 1, 1)

    def test_us_format(self):
        assert values.parse_date("12/31/1999", "MM/DD/YYYY") == \
            datetime.date(1999, 12, 31)

    def test_month_abbreviation(self):
        assert values.parse_date("01Feb2020", "DDMMMYYYY") == \
            datetime.date(2020, 2, 1)

    def test_two_digit_year_window(self):
        assert values.parse_date("49/01/01", "YY/MM/DD").year == 2049
        assert values.parse_date("50/01/01", "YY/MM/DD").year == 1950

    def test_garbage_raises(self):
        with pytest.raises(ExpressionError):
            values.parse_date("xxxx")

    def test_bad_day_raises(self):
        with pytest.raises(ExpressionError):
            values.parse_date("2012-02-31")

    def test_bad_month_name_raises(self):
        with pytest.raises(ExpressionError):
            values.parse_date("01Xxx2020", "DDMMMYYYY")

    def test_field_attribution(self):
        with pytest.raises(ExpressionError) as info:
            values.parse_date("junk", field="JOIN_DATE")
        assert info.value.field == "JOIN_DATE"

    def test_format_without_year_rejected(self):
        with pytest.raises(ExpressionError):
            values.parse_date("01-02", "MM-DD")


class TestFormatDate:
    def test_iso(self):
        assert values.format_date(datetime.date(2012, 1, 2)) == \
            "2012-01-02"

    def test_short_year(self):
        assert values.format_date(
            datetime.date(2012, 12, 1), "YY/MM/DD") == "12/12/01"

    def test_month_name(self):
        assert values.format_date(
            datetime.date(2020, 2, 1), "DDMMMYYYY") == "01Feb2020"


@given(st.dates(min_value=datetime.date(1900, 1, 1),
                max_value=datetime.date(2199, 12, 31)),
       st.sampled_from(["YYYY-MM-DD", "MM/DD/YYYY", "DDMMMYYYY",
                        "YYYYMMDD", "DD.MM.YYYY"]))
def test_date_roundtrip_property(date, fmt):
    """format_date and parse_date are inverses for 4-digit-year formats."""
    assert values.parse_date(values.format_date(date, fmt), fmt) == date


class TestTimestamps:
    def test_basic(self):
        ts = values.parse_timestamp("2020-01-02 03:04:05")
        assert ts == datetime.datetime(2020, 1, 2, 3, 4, 5)

    def test_fractional_seconds(self):
        ts = values.parse_timestamp("2020-01-02 03:04:05.5")
        assert ts.microsecond == 500_000

    def test_t_separator(self):
        assert values.parse_timestamp("2020-01-02T03:04:05").hour == 3

    def test_garbage_raises(self):
        with pytest.raises(ExpressionError):
            values.parse_timestamp("not a timestamp")

    def test_bad_components_raise(self):
        with pytest.raises(ExpressionError):
            values.parse_timestamp("2020-13-02 03:04:05")


class TestParseDecimal:
    def test_basic(self):
        assert values.parse_decimal("12.50") == values.Decimal("12.50")

    def test_garbage_raises(self):
        with pytest.raises(ExpressionError):
            values.parse_decimal("12.5.0")
