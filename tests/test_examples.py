"""Smoke tests: every example script runs cleanly end to end."""

import os
import runpy
import sys

import pytest

EXAMPLES_DIR = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "examples")

EXAMPLES = [
    "quickstart.py",
    "retail_nightly_batch.py",
    "export_roundtrip.py",
    "sql_crosscompile_demo.py",
    "workload_analysis.py",
    "error_handling_demo.py",
    "bi_reporting.py",
]


@pytest.mark.parametrize("example", EXAMPLES)
def test_example_runs(example, capsys, monkeypatch):
    path = os.path.join(EXAMPLES_DIR, example)
    monkeypatch.chdir(EXAMPLES_DIR)
    # examples import nothing from each other; run as __main__
    runpy.run_path(path, run_name="__main__")
    out = capsys.readouterr().out
    assert out.strip(), f"{example} produced no output"


def test_quickstart_reproduces_figures(capsys, monkeypatch):
    monkeypatch.chdir(EXAMPLES_DIR)
    runpy.run_path(os.path.join(EXAMPLES_DIR, "quickstart.py"),
                   run_name="__main__")
    out = capsys.readouterr().out
    assert "123 | Smith | 2012-01-01" in out
    assert "row numbers: (4, 5)" in out


def test_export_roundtrip_is_exact(capsys, monkeypatch):
    monkeypatch.chdir(EXAMPLES_DIR)
    runpy.run_path(os.path.join(EXAMPLES_DIR, "export_roundtrip.py"),
                   run_name="__main__")
    assert "identical to source: True" in capsys.readouterr().out


def test_retail_batch_meets_sla(capsys, monkeypatch):
    monkeypatch.chdir(EXAMPLES_DIR)
    runpy.run_path(
        os.path.join(EXAMPLES_DIR, "retail_nightly_batch.py"),
        run_name="__main__")
    assert "SLA MET" in capsys.readouterr().out
