"""Tests for the dot-command scripting language (lexer + parser)."""

import pytest

from repro.errors import ScriptError
from repro.legacy.script import (
    BeginExportCmd, BeginImportCmd, DmlDecl, EndExportCmd, EndLoadCmd,
    ExportCmd, ImportCmd, LogoffCmd, LogonCmd, SetCmd, SqlCmd,
    parse_script,
)
from repro.legacy.script.lexer import split_statements, split_words


class TestLexer:
    def test_split_statements_basic(self):
        statements = split_statements(".logon a/b,c;\nselect 1;")
        assert [s.text for s in statements] == \
            [".logon a/b,c", "select 1"]

    def test_line_numbers(self):
        statements = split_statements("\n\n.logoff;")
        assert statements[0].line == 3

    def test_semicolon_inside_string(self):
        statements = split_statements("select ';' ;")
        assert len(statements) == 1
        assert statements[0].text == "select ';'"

    def test_line_comment_stripped(self):
        statements = split_statements("-- comment\n.logoff;")
        assert statements[0].text == ".logoff"

    def test_block_comment_stripped(self):
        statements = split_statements("/* multi\nline */ .logoff;")
        assert statements[0].text == ".logoff"

    def test_unterminated_statement_raises(self):
        with pytest.raises(ScriptError):
            split_statements(".logoff")

    def test_unterminated_string_raises(self):
        with pytest.raises(ScriptError):
            split_statements("select 'oops;")

    def test_unterminated_block_comment_raises(self):
        with pytest.raises(ScriptError):
            split_statements("/* forever")

    def test_split_words_quotes(self):
        words = split_words(".import infile 'my file.txt' format vartext '|'")
        assert "'my file.txt'" in words
        assert "'|'" in words

    def test_split_words_glues_type_parens(self):
        assert split_words(".field A varchar(5)")[-1] == "varchar(5)"
        assert split_words(".field A varchar (5)")[-1] == "varchar(5)"


class TestParser:
    def test_example_21_structure(self):
        from tests.conftest import EXAMPLE_SCRIPT
        script = parse_script(EXAMPLE_SCRIPT)
        kinds = [type(c).__name__ for c in script.commands]
        assert kinds == [
            "LogonCmd", "SqlCmd", "LayoutDecl", "BeginImportCmd",
            "DmlDecl", "ImportCmd", "EndLoadCmd", "LogoffCmd",
        ]
        layout = script.layout("CustLayout")
        assert layout.field_names == ["CUST_ID", "CUST_NAME", "JOIN_DATE"]
        dml = script.dml("InsApply")
        assert "insert into PROD.CUSTOMER" in dml.sql

    def test_logon_parsing(self):
        script = parse_script(".logon host/user,pass;")
        cmd = script.commands[0]
        assert isinstance(cmd, LogonCmd)
        assert (cmd.host, cmd.user, cmd.password) == \
            ("host", "user", "pass")

    def test_malformed_logon_raises(self):
        with pytest.raises(ScriptError):
            parse_script(".logon justhost;")

    def test_begin_import_sessions(self):
        script = parse_script(
            ".begin import tables T errortables E U sessions 7;")
        cmd = script.commands[0]
        assert isinstance(cmd, BeginImportCmd)
        assert cmd.sessions == 7

    def test_begin_import_missing_errortables_raises(self):
        with pytest.raises(ScriptError):
            parse_script(".begin import tables T;")

    def test_dml_without_sql_raises(self):
        with pytest.raises(ScriptError):
            parse_script(".dml label X;")

    def test_dml_followed_by_dot_command_raises(self):
        with pytest.raises(ScriptError):
            parse_script(".dml label X;\n.logoff;")

    def test_duplicate_dml_label_raises(self):
        with pytest.raises(ScriptError):
            parse_script(
                ".dml label X;\nselect 1;\n.dml label x;\nselect 2;")

    def test_duplicate_layout_raises(self):
        with pytest.raises(ScriptError):
            parse_script(".layout L;\n.layout L;")

    def test_field_outside_layout_raises(self):
        with pytest.raises(ScriptError):
            parse_script(".field A varchar(5);")

    def test_import_options_any_order(self):
        script = parse_script(
            ".layout L;\n.field A varchar(2);\n"
            ".import apply D layout L infile f.txt format vartext ';';")
        cmd = script.commands[-1]
        assert isinstance(cmd, ImportCmd)
        assert cmd.infile == "f.txt"
        assert cmd.format_spec.delimiter == ";"
        assert cmd.apply_label == "D"

    def test_import_binary_format(self):
        script = parse_script(
            ".import infile f format binary layout L apply D;")
        assert script.commands[0].format_spec.kind == "binary"

    def test_export_block(self):
        script = parse_script(
            ".begin export sessions 3;\n"
            ".export outfile out.txt format vartext '|';\n"
            "select A from T;\n"
            ".end export;")
        begin, export, end = script.commands
        assert isinstance(begin, BeginExportCmd) and begin.sessions == 3
        assert isinstance(export, ExportCmd)
        assert export.select_sql == "select A from T"
        assert isinstance(end, EndExportCmd)

    def test_export_without_select_raises(self):
        with pytest.raises(ScriptError):
            parse_script(".export outfile o.txt;\n.end export;")

    def test_set_command(self):
        script = parse_script(".set max_errors 5;")
        cmd = script.commands[0]
        assert isinstance(cmd, SetCmd)
        assert (cmd.name, cmd.value) == ("max_errors", "5")

    def test_bare_sql_is_sqlcmd(self):
        script = parse_script("create table T (a int);")
        assert isinstance(script.commands[0], SqlCmd)

    def test_unknown_command_raises(self):
        with pytest.raises(ScriptError):
            parse_script(".frobnicate;")

    def test_unknown_layout_lookup_raises(self):
        script = parse_script(".logoff;")
        with pytest.raises(ScriptError):
            script.layout("nope")

    def test_end_load_and_logoff(self):
        script = parse_script(".end load;\n.logoff;")
        assert isinstance(script.commands[0], EndLoadCmd)
        assert isinstance(script.commands[1], LogoffCmd)

    def test_dml_registered_in_index(self):
        script = parse_script(".dml label Up;\nupdate T set a = 1;")
        assert isinstance(script.dml("UP"), DmlDecl)
