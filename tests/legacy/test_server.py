"""Reference legacy server tests — the Figure 5 ground truth."""

import datetime

import pytest

from repro.errors import ProtocolError
from repro.legacy.client import (
    ExportJobSpec, ImportJobSpec, LegacyEtlClient,
)
from repro.legacy.script import ScriptInterpreter, parse_script
from repro.legacy.types import FieldDef, Layout, parse_type
from tests.conftest import EXAMPLE_DATA, EXAMPLE_SCRIPT


class TestExample71:
    """Figure 5: exact error-table and target-table contents."""

    @pytest.fixture(autouse=True)
    def _run(self, legacy_server):
        self.server = legacy_server
        interp = ScriptInterpreter(
            legacy_server.connect, files={"input.txt": EXAMPLE_DATA})
        self.result = interp.run(parse_script(EXAMPLE_SCRIPT))

    def test_job_counts(self):
        imp = self.result.last_import
        assert imp.rows_inserted == 2
        assert imp.et_errors == 2
        assert imp.uv_errors == 1

    def test_target_table_figure_5d(self):
        rows = self.server.engine.query(
            "SELECT * FROM PROD.CUSTOMER ORDER BY CUST_ID")
        assert rows == [
            ("123", "Smith", datetime.date(2012, 1, 1)),
            ("157", "Jones", datetime.date(2012, 12, 1)),
        ]

    def test_et_table_figure_5b(self):
        rows = self.server.engine.query(
            "SELECT SEQNO, ERRCODE, ERRFIELD FROM PROD.CUSTOMER_ET "
            "ORDER BY SEQNO")
        assert rows == [
            (2, 2666, "JOIN_DATE"),
            (3, 2666, "JOIN_DATE"),
        ]

    def test_uv_table_figure_5c(self):
        rows = self.server.engine.query("SELECT * FROM PROD.CUSTOMER_UV")
        assert rows == [
            ("123", "Jones", datetime.date(2012, 12, 1), 4, 2794),
        ]


class TestAdHocSql:
    def test_result_set_roundtrip(self, legacy_server):
        client = LegacyEtlClient(legacy_server.connect)
        client.logon("h", "u", "p")
        client.execute_sql("create table T (A integer, B varchar(5))")
        client.execute_sql("insert into T values (1, 'x')")
        result = client.execute_sql("select A, B from T")
        assert result.rows == [(1, "x")]
        assert result.columns[0][0] == "A"
        client.logoff()

    def test_error_response_raises(self, legacy_server):
        client = LegacyEtlClient(legacy_server.connect)
        client.logon("h", "u", "p")
        with pytest.raises(ProtocolError):
            client.execute_sql("select * from NO_SUCH_TABLE")
        client.logoff()

    def test_statement_without_logon_raises(self, legacy_server):
        client = LegacyEtlClient(legacy_server.connect)
        with pytest.raises(ProtocolError):
            client.execute_sql("select 1")


class TestExport:
    def test_export_ordered_chunks(self, legacy_server):
        client = LegacyEtlClient(legacy_server.connect)
        client.logon("h", "u", "p")
        client.execute_sql("create table T (A integer)")
        for i in range(10):
            client.execute_sql(f"insert into T values ({i})")
        legacy_server.chunk_rows = 3  # force multiple chunks
        result = client.run_export(ExportJobSpec(
            "select A from T order by A", sessions=3))
        client.logoff()
        lines = result.data.decode().strip().split("\n")
        assert lines == [str(i) for i in range(10)]
        assert result.rows_exported == 10
        assert result.chunks_fetched == 4  # ceil(10 / 3)

    def test_export_empty_result(self, legacy_server):
        client = LegacyEtlClient(legacy_server.connect)
        client.logon("h", "u", "p")
        client.execute_sql("create table E (A integer)")
        result = client.run_export(ExportJobSpec("select A from E"))
        client.logoff()
        assert result.rows_exported == 0
        assert result.data == b""


class TestImportViaClientApi:
    def test_binary_format_import(self, legacy_server):
        client = LegacyEtlClient(legacy_server.connect)
        client.logon("h", "u", "p")
        client.execute_sql("create table B (K integer, V varchar(10))")
        layout = Layout("L", [
            FieldDef("K", parse_type("integer")),
            FieldDef("V", parse_type("varchar(10)")),
        ])
        from repro.legacy.datafmt import BinaryFormat, FormatSpec
        fmt = BinaryFormat(layout)
        data = fmt.encode_records([(1, "one"), (2, None), (3, "three")])
        result = client.run_import(ImportJobSpec(
            target_table="B", et_table="B_ET", uv_table="B_UV",
            layout=layout, apply_sql="insert into B values (:K, :V)",
            data=data, format_spec=FormatSpec("binary"), sessions=2,
            chunk_bytes=16))
        client.logoff()
        assert result.rows_inserted == 3
        assert legacy_server.engine.query(
            "SELECT * FROM B ORDER BY K") == \
            [(1, "one"), (2, None), (3, "three")]

    def test_field_count_error_recorded(self, legacy_server):
        client = LegacyEtlClient(legacy_server.connect)
        client.logon("h", "u", "p")
        client.execute_sql("create table C (A varchar(5), B varchar(5))")
        layout = Layout("L", [
            FieldDef("A", parse_type("varchar(5)")),
            FieldDef("B", parse_type("varchar(5)")),
        ])
        result = client.run_import(ImportJobSpec(
            target_table="C", et_table="C_ET", uv_table="C_UV",
            layout=layout, apply_sql="insert into C values (:A, :B)",
            data=b"a|b\nonlyone\nc|d\n", sessions=1))
        client.logoff()
        assert result.rows_inserted == 2
        assert result.et_errors == 1
        et = legacy_server.engine.query(
            "SELECT SEQNO, ERRCODE FROM C_ET")
        assert et == [(2, 2673)]
