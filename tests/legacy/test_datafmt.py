"""Tests for the legacy VARTEXT and BINARY record encodings."""

import datetime
from decimal import Decimal

import pytest
from hypothesis import given, strategies as st

from repro.errors import DataFormatError
from repro.legacy.datafmt import (
    LEGACY_FIELD_COUNT_ERROR, BinaryFormat, FormatSpec, VartextFormat,
    make_format,
)
from repro.legacy.types import FieldDef, Layout, parse_type


def text_layout(n: int = 3) -> Layout:
    return Layout("T", [
        FieldDef(f"F{i}", parse_type("varchar(100)")) for i in range(n)
    ])


TYPED_LAYOUT = Layout("Typed", [
    FieldDef("S", parse_type("varchar(20)")),
    FieldDef("I", parse_type("integer")),
    FieldDef("B", parse_type("bigint")),
    FieldDef("SM", parse_type("smallint")),
    FieldDef("BY", parse_type("byteint")),
    FieldDef("F", parse_type("float")),
    FieldDef("DEC", parse_type("decimal(10,2)")),
    FieldDef("D", parse_type("date")),
    FieldDef("TS", parse_type("timestamp")),
])

TYPED_ROW = ("hello", 42, 2**40, -3, 7, 1.5, Decimal("12.34"),
             datetime.date(2012, 1, 2),
             datetime.datetime(2020, 3, 4, 5, 6, 7))


class TestFormatSpec:
    def test_wire_roundtrip(self):
        spec = FormatSpec("vartext", ";")
        assert FormatSpec.from_wire(spec.to_wire()) == spec

    def test_binary_default_delimiter(self):
        assert FormatSpec.from_wire("binary:").delimiter == "|"

    def test_make_format_dispatch(self):
        layout = text_layout()
        assert isinstance(
            make_format(FormatSpec("vartext"), layout), VartextFormat)
        assert isinstance(
            make_format(FormatSpec("binary"), layout), BinaryFormat)

    def test_make_format_unknown(self):
        with pytest.raises(DataFormatError):
            make_format(FormatSpec("parquet"), text_layout())


class TestVartext:
    def test_roundtrip_simple(self):
        fmt = VartextFormat(text_layout())
        rows = [("a", "b", "c"), ("d", "e", "f")]
        assert fmt.decode_records(fmt.encode_records(rows)) == rows

    def test_empty_field_is_null(self):
        fmt = VartextFormat(text_layout())
        decoded = fmt.decode_records(b"a||c\n")
        assert decoded == [("a", None, "c")]

    def test_null_encodes_as_empty(self):
        fmt = VartextFormat(text_layout())
        assert fmt.encode_record(("a", None, "c")) == b"a||c\n"

    def test_delimiter_escaping(self):
        fmt = VartextFormat(text_layout())
        rows = [("a|b", "c\\d", "e\nf")]
        assert fmt.decode_records(fmt.encode_records(rows)) == rows

    def test_custom_delimiter(self):
        fmt = VartextFormat(text_layout(), delimiter=";")
        assert fmt.decode_records(b"a;b;c\n") == [("a", "b", "c")]

    def test_invalid_delimiter_rejected(self):
        with pytest.raises(DataFormatError):
            VartextFormat(text_layout(), delimiter="\\")
        with pytest.raises(DataFormatError):
            VartextFormat(text_layout(), delimiter="||")

    def test_wrong_field_count_is_lenient_error(self):
        fmt = VartextFormat(text_layout())
        items = list(fmt.iter_decode(b"a|b\nx|y|z\n"))
        assert isinstance(items[0], DataFormatError)
        assert items[0].code == LEGACY_FIELD_COUNT_ERROR
        assert items[1] == ("x", "y", "z")

    def test_strict_decode_raises(self):
        fmt = VartextFormat(text_layout())
        with pytest.raises(DataFormatError):
            fmt.decode_records(b"a|b\n")

    def test_encode_wrong_arity_raises(self):
        fmt = VartextFormat(text_layout())
        with pytest.raises(DataFormatError):
            fmt.encode_record(("a", "b"))

    def test_typed_values_render(self):
        fmt = VartextFormat(Layout("L", [
            FieldDef("D", parse_type("date")),
            FieldDef("N", parse_type("integer")),
        ]))
        encoded = fmt.encode_record((datetime.date(2020, 1, 2), 7))
        assert encoded == b"2020-01-02|7\n"


class TestBinary:
    def test_roundtrip_typed(self):
        fmt = BinaryFormat(TYPED_LAYOUT)
        assert fmt.decode_records(fmt.encode_record(TYPED_ROW)) == \
            [TYPED_ROW]

    def test_nulls_via_bitmap(self):
        fmt = BinaryFormat(TYPED_LAYOUT)
        row = tuple([None] * len(TYPED_LAYOUT.fields))
        assert fmt.decode_records(fmt.encode_record(row)) == [row]

    def test_mixed_nulls(self):
        fmt = BinaryFormat(TYPED_LAYOUT)
        row = ("x", None, 1, None, 2, None, None,
               datetime.date(1999, 12, 31), None)
        assert fmt.decode_records(fmt.encode_record(row)) == [row]

    def test_multiple_records(self):
        fmt = BinaryFormat(TYPED_LAYOUT)
        data = fmt.encode_records([TYPED_ROW, TYPED_ROW])
        assert len(fmt.decode_records(data)) == 2

    def test_truncated_record_is_error(self):
        fmt = BinaryFormat(TYPED_LAYOUT)
        data = fmt.encode_record(TYPED_ROW)
        items = list(fmt.iter_decode(data[:-3]))
        assert any(isinstance(i, DataFormatError) for i in items)

    def test_unencodable_value_raises(self):
        fmt = BinaryFormat(TYPED_LAYOUT)
        bad = ("x",) + TYPED_ROW[1:]
        with pytest.raises(DataFormatError):
            fmt.encode_record(bad[:1] + ("not-an-int",) + bad[2:])

    def test_date_epoch_encoding(self):
        # Legacy (year-1900)*10000 + month*100 + day packing.
        fmt = BinaryFormat(Layout("L", [FieldDef("D", parse_type("date"))]))
        encoded = fmt.encode_record((datetime.date(2012, 1, 2),))
        import struct
        (body_len,) = struct.unpack_from("<H", encoded, 0)
        (packed,) = struct.unpack_from("<i", encoded, 2 + 1)
        assert packed == (2012 - 1900) * 10000 + 100 + 2
        assert body_len == 5  # 1 bitmap byte + 4 date bytes


# -- property-based round trips -------------------------------------------

_text_field = st.one_of(
    st.none(),
    st.text(
        alphabet=st.characters(
            codec="utf-8",
            blacklist_categories=("Cs",)),
        min_size=1, max_size=40),
)


@given(st.lists(st.tuples(_text_field, _text_field, _text_field),
                max_size=20))
def test_vartext_roundtrip_property(rows):
    """Any non-empty text (or NULL) survives vartext encode/decode."""
    fmt = VartextFormat(text_layout())
    assert fmt.decode_records(fmt.encode_records(rows)) == rows


@given(st.lists(
    st.tuples(
        st.one_of(st.none(), st.text(max_size=20)),
        st.one_of(st.none(), st.integers(-2**31, 2**31 - 1)),
        st.one_of(st.none(), st.dates(min_value=datetime.date(1900, 1, 1),
                                      max_value=datetime.date(2150, 1, 1))),
    ),
    max_size=20))
def test_binary_roundtrip_property(rows):
    fmt = BinaryFormat(Layout("L", [
        FieldDef("S", parse_type("varchar(50)")),
        FieldDef("I", parse_type("integer")),
        FieldDef("D", parse_type("date")),
    ]))
    assert fmt.decode_records(fmt.encode_records(rows)) == rows
