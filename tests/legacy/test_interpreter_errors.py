"""Interpreter state-machine error handling."""

import pytest

from repro.errors import ScriptError
from repro.legacy.script import ScriptInterpreter, parse_script
from repro.legacy.server import LegacyServer


def run(source, files=None):
    server = LegacyServer().start()
    try:
        interp = ScriptInterpreter(server.connect, files=files or {})
        return interp.run(parse_script(source))
    finally:
        server.stop()


class TestInterpreterErrors:
    def test_import_outside_block(self):
        with pytest.raises(ScriptError, match="outside"):
            run(".logon h/u,p;\n.layout L;\n.field A varchar(2);\n"
                ".import infile f format vartext '|' layout L apply D;")

    def test_end_load_without_import(self):
        with pytest.raises(ScriptError, match="complete import"):
            run(".logon h/u,p;\n"
                ".begin import tables T errortables E U;\n.end load;")

    def test_nested_begin_blocks(self):
        with pytest.raises(ScriptError, match="nested"):
            run(".logon h/u,p;\n"
                ".begin import tables T errortables E U;\n"
                ".begin export;\n.end export;")

    def test_unterminated_block(self):
        with pytest.raises(ScriptError, match="never ended"):
            run(".logon h/u,p;\n"
                ".begin import tables T errortables E U;")

    def test_export_outside_block(self):
        with pytest.raises(ScriptError, match="outside"):
            run(".logon h/u,p;\n"
                ".export outfile o.txt format vartext '|';\nselect 1;")

    def test_missing_input_file(self):
        source = """
.logon h/u,p;
create table T (A varchar(2));
.layout L;
.field A varchar(2);
.begin import tables T errortables T_ET T_UV;
.dml label D;
insert into T values (:A);
.import infile nope.txt format vartext '|' layout L apply D;
.end load;
"""
        with pytest.raises(FileNotFoundError):
            run(source)

    def test_undefined_layout_reference(self):
        source = """
.logon h/u,p;
create table T (A varchar(2));
.begin import tables T errortables T_ET T_UV;
.dml label D;
insert into T values (:A);
.import infile f.txt format vartext '|' layout GHOST apply D;
.end load;
"""
        with pytest.raises(ScriptError, match="undefined layout"):
            run(source, files={"f.txt": b"a\n"})

    def test_settings_tracked(self):
        server = LegacyServer().start()
        try:
            interp = ScriptInterpreter(server.connect)
            interp.run(parse_script(
                ".logon h/u,p;\n.set max_errors 3;\n.logoff;"))
            assert interp.settings == {"max_errors": "3"}
        finally:
            server.stop()
