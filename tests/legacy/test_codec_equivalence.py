"""Property tests: compiled codecs are byte-identical to the reference.

The compiled codecs (:mod:`repro.legacy.codec`) are only allowed to be
*faster* than the reference interpreters in :mod:`repro.legacy.datafmt` —
every observable behaviour must match: encoded bytes, decoded values,
in-stream :class:`DataFormatError` items (message, field, code) and
raised exceptions (type and message), including on corrupted input.

The random-layout/random-rows generators deliberately produce the nasty
cases: NULLs, empty strings, payloads containing the delimiter, quotes,
backslashes and newlines, wrong-typed values, and bit-flipped or
truncated byte streams.
"""

from __future__ import annotations

import datetime
import random
from decimal import Decimal

import pytest
from hypothesis import given, settings, strategies as st

from repro.legacy.codec import (
    CompiledBinaryFormat, CompiledVartextFormat, compile_format,
)
from repro.legacy.datafmt import (
    BinaryFormat, FormatSpec, VartextFormat, make_format,
)
from repro.legacy.types import FieldDef, Layout, parse_type

TYPE_POOL = [
    "integer", "smallint", "byteint", "bigint", "float", "date",
    "timestamp", "decimal(10,2)", "varchar(20)", "char(8)", "unicode(12)",
]

#: Text values chosen to stress escaping, quoting and UTF-8 handling.
NASTY_TEXT = [
    "", " ", "plain", "with|pipe", "with,comma", 'with"quote',
    "back\\slash", "new\nline", "cr\rreturn", "tab\there", "ünïcødé",
    "\\n literal", "|", "\\", '"', "ends with space ", "\N{SNOWMAN}",
]

#: Wrong-typed values mixed in to exercise the encode error paths.
MISFIT_VALUES = [object(), b"bytes", ["list"], 3 + 4j]


def _layout_from(seed: int, size: int) -> Layout:
    rng = random.Random(seed)
    return Layout(f"L{seed}", [
        FieldDef(f"F{i}", parse_type(rng.choice(TYPE_POOL)))
        for i in range(size)
    ])


def _value_for(rng: random.Random, base: str):
    roll = rng.random()
    if roll < 0.15:
        return None
    if roll < 0.22:  # wrong-typed value: both sides must fail identically
        return rng.choice(MISFIT_VALUES + NASTY_TEXT)
    if base in ("BYTEINT",):
        return rng.randrange(-128, 128)
    if base == "SMALLINT":
        return rng.randrange(-2**15, 2**15)
    if base == "INTEGER":
        return rng.randrange(-2**31, 2**31)
    if base == "BIGINT":
        return rng.randrange(-2**63, 2**63)
    if base == "FLOAT":
        return rng.choice([rng.random() * 1e6, -0.0, 1e300, float("inf")])
    if base == "DECIMAL":
        return Decimal(rng.randrange(-10**9, 10**9)) / 100
    if base == "DATE":
        return datetime.date(rng.randrange(1900, 2100),
                             rng.randrange(1, 13), rng.randrange(1, 29))
    if base == "TIMESTAMP":
        return datetime.datetime(2020, 1, 1) + datetime.timedelta(
            seconds=rng.randrange(0, 10**8),
            microseconds=rng.choice([0, rng.randrange(10**6)]))
    return rng.choice(NASTY_TEXT)


def _rows_for(layout: Layout, rng: random.Random, count: int) -> list[tuple]:
    rows = []
    for _ in range(count):
        row = tuple(
            _value_for(rng, f.type.base) for f in layout.fields)
        if rng.random() < 0.05:  # wrong arity: field-count error path
            row = row + ("extra",) if rng.random() < 0.5 else row[:-1]
        rows.append(row)
    return rows


def _encode_outcome(fmt, row):
    try:
        return ("ok", fmt.encode_record(row))
    except Exception as exc:
        return ("raise", type(exc).__name__, str(exc))


def _decode_outcomes(fmt, data: bytes) -> list:
    out: list = []
    try:
        for item in fmt.iter_decode(data):
            if isinstance(item, Exception):
                out.append(("err", type(item).__name__, str(item),
                            getattr(item, "field", None),
                            getattr(item, "code", None)))
            else:
                # repr, not the tuple itself: corrupted FLOAT bytes can
                # decode to NaN, which never compares equal to itself.
                out.append(("row", repr(item)))
    except Exception as exc:
        out.append(("raise", type(exc).__name__, str(exc)))
    return out


def _pair(kind: str, layout: Layout, delimiter: str = "|"):
    spec = FormatSpec(kind=kind, delimiter=delimiter)
    if kind == "binary":
        return BinaryFormat(layout), compile_format(spec, layout)
    return VartextFormat(layout, delimiter), compile_format(spec, layout)


@settings(max_examples=120, deadline=None)
@given(seed=st.integers(0, 10**9), size=st.integers(1, 9),
       kind=st.sampled_from(["binary", "vartext"]))
def test_encode_equivalence(seed, size, kind):
    layout = _layout_from(seed, size)
    rng = random.Random(seed ^ 0xBEEF)
    reference, compiled = _pair(kind, layout)
    for row in _rows_for(layout, rng, 12):
        assert _encode_outcome(compiled, row) == \
            _encode_outcome(reference, row)


@settings(max_examples=120, deadline=None)
@given(seed=st.integers(0, 10**9), size=st.integers(1, 9),
       kind=st.sampled_from(["binary", "vartext"]))
def test_decode_equivalence_clean_and_corrupted(seed, size, kind):
    layout = _layout_from(seed, size)
    rng = random.Random(seed ^ 0xF00D)
    reference, compiled = _pair(kind, layout)
    chunks = []
    for row in _rows_for(layout, rng, 10):
        outcome = _encode_outcome(reference, row)
        if outcome[0] == "ok":
            chunks.append(outcome[1])
    data = b"".join(chunks)
    assert _decode_outcomes(compiled, data) == \
        _decode_outcomes(reference, data)
    assert compiled.count_records(data) == reference.count_records(data)

    if data:  # corrupted stream: flip one byte, then truncate
        flipped = bytearray(data)
        pos = rng.randrange(len(flipped))
        flipped[pos] ^= 1 << rng.randrange(8)
        flipped = bytes(flipped)
        assert _decode_outcomes(compiled, flipped) == \
            _decode_outcomes(reference, flipped)
        cut = data[:rng.randrange(len(data))]
        assert _decode_outcomes(compiled, cut) == \
            _decode_outcomes(reference, cut)


@settings(max_examples=60, deadline=None)
@given(seed=st.integers(0, 10**9), size=st.integers(1, 6),
       delimiter=st.sampled_from(["|", ",", ";", "\t", "~"]))
def test_vartext_delimiters_equivalence(seed, size, delimiter):
    layout = _layout_from(seed, size)
    rng = random.Random(seed ^ 0xD1CE)
    reference, compiled = _pair("vartext", layout, delimiter)
    rows = _rows_for(layout, rng, 8)
    encodable = []
    for row in rows:
        outcome = _encode_outcome(reference, row)
        assert outcome == _encode_outcome(compiled, row)
        if outcome[0] == "ok":
            encodable.append(row)
    data = reference.encode_records(encodable)
    assert compiled.encode_records(encodable) == data
    assert _decode_outcomes(compiled, data) == \
        _decode_outcomes(reference, data)


class TestExplicitErrorCases:
    """The DataFormatError paths the ISSUE calls out, one by one."""

    LAYOUT = Layout("E", [
        FieldDef("N", parse_type("integer")),
        FieldDef("T", parse_type("varchar(10)")),
        FieldDef("D", parse_type("decimal(8,2)")),
    ])

    @pytest.mark.parametrize("kind", ["binary", "vartext"])
    def test_field_count_error_identical(self, kind):
        reference, compiled = _pair(kind, self.LAYOUT)
        short = (1, "x")
        assert _encode_outcome(compiled, short) == \
            _encode_outcome(reference, short)
        assert _encode_outcome(compiled, short)[0] == "raise"

    def test_vartext_field_count_in_stream(self):
        reference, compiled = _pair("vartext", self.LAYOUT)
        data = b"1|x\n1|x|2.5|extra\n2|y|3.5\n"
        ref = _decode_outcomes(reference, data)
        assert _decode_outcomes(compiled, data) == ref
        kinds = [item[0] for item in ref]
        assert kinds == ["err", "err", "row"]

    def test_binary_truncated_header_and_body(self):
        reference, compiled = _pair("binary", self.LAYOUT)
        good = reference.encode_record((7, "ok", Decimal("1.25")))
        for cut in (good[:1], good[:3], good[:-1], good + b"\x05"):
            assert _decode_outcomes(compiled, cut) == \
                _decode_outcomes(reference, cut)

    def test_binary_char_length_overrun(self):
        reference, compiled = _pair("binary", self.LAYOUT)
        body = bytes([0]) + b"\x01\x00\x00\x00" + b"\xff\x00" + b"hi"
        data = len(body).to_bytes(2, "little") + body
        assert _decode_outcomes(compiled, data) == \
            _decode_outcomes(reference, data)

    def test_binary_bad_decimal_raises_identically(self):
        reference, compiled = _pair("binary", self.LAYOUT)
        bad = b"oops"
        body = (bytes([0b010]) + b"\x01\x00\x00\x00"
                + len(bad).to_bytes(2, "little") + bad)
        data = len(body).to_bytes(2, "little") + body
        ref = _decode_outcomes(reference, data)
        assert _decode_outcomes(compiled, data) == ref
        assert ref[0][0] == "raise", \
            "bad DECIMAL text raises (ExpressionError), not an error item"

    def test_binary_invalid_date_epoch(self):
        reference, compiled = _pair(
            "binary", Layout("D", [FieldDef("D", parse_type("date"))]))
        for epoch in (0, -1, 999999, 11345):  # month/day out of range
            body = bytes([0]) + epoch.to_bytes(4, "little", signed=True)
            data = len(body).to_bytes(2, "little") + body
            assert _decode_outcomes(compiled, data) == \
                _decode_outcomes(reference, data)

    def test_vartext_invalid_utf8_raises_identically(self):
        reference, compiled = _pair("vartext", self.LAYOUT)
        data = b"1|\xff\xfe|2.5\n"
        assert _decode_outcomes(compiled, data) == \
            _decode_outcomes(reference, data)


class TestMakeFormatSelection:
    LAYOUT = Layout("S", [FieldDef("A", parse_type("integer"))])

    def test_default_is_compiled(self):
        fmt = make_format(FormatSpec(kind="binary"), self.LAYOUT)
        assert isinstance(fmt, CompiledBinaryFormat)
        fmt = make_format(FormatSpec(kind="vartext"), self.LAYOUT)
        assert isinstance(fmt, CompiledVartextFormat)

    def test_compiled_false_gives_reference(self):
        fmt = make_format(FormatSpec(kind="binary"), self.LAYOUT,
                          compiled=False)
        assert type(fmt) is BinaryFormat
        fmt = make_format(FormatSpec(kind="vartext"), self.LAYOUT,
                          compiled=False)
        assert type(fmt) is VartextFormat

    def test_compiled_is_subclass_of_reference(self):
        assert issubclass(CompiledBinaryFormat, BinaryFormat)
        assert issubclass(CompiledVartextFormat, VartextFormat)
