"""Tests for the legacy type system and layouts."""

import datetime
from decimal import Decimal

import pytest

from repro.errors import ScriptError
from repro.legacy.types import FieldDef, Layout, LegacyType, parse_type


class TestParseType:
    def test_varchar_with_length(self):
        t = parse_type("varchar(50)")
        assert t == LegacyType("VARCHAR", 50)

    def test_spaces_tolerated(self):
        assert parse_type(" decimal ( 10 , 2 ) ") == \
            LegacyType("DECIMAL", 10, 2)

    def test_aliases(self):
        assert parse_type("int").base == "INTEGER"
        assert parse_type("numeric(5)").base == "DECIMAL"
        assert parse_type("double").base == "FLOAT"
        assert parse_type("character(3)").base == "CHAR"

    def test_bare_types(self):
        for name in ("date", "timestamp", "bigint", "byteint", "float"):
            assert parse_type(name).length is None

    def test_unknown_type_raises(self):
        with pytest.raises(ScriptError):
            parse_type("blob(10)")

    def test_garbage_raises(self):
        with pytest.raises(ScriptError):
            parse_type("varchar(")


class TestLegacyType:
    def test_render(self):
        assert parse_type("varchar(5)").render() == "VARCHAR(5)"
        assert parse_type("decimal(10,2)").render() == "DECIMAL(10,2)"
        assert parse_type("decimal(10)").render() == "DECIMAL(10,0)"
        assert parse_type("date").render() == "DATE"

    def test_predicates(self):
        assert parse_type("unicode(5)").is_character
        assert parse_type("byteint").is_integer
        assert not parse_type("float").is_integer

    def test_python_type(self):
        assert parse_type("varchar(5)").python_type() is str
        assert parse_type("integer").python_type() is int
        assert parse_type("decimal(4,1)").python_type() is Decimal
        assert parse_type("date").python_type() is datetime.date


class TestLayout:
    def _layout(self):
        return Layout("L", [
            FieldDef("A", parse_type("varchar(5)")),
            FieldDef("B", parse_type("integer")),
        ])

    def test_field_names_and_arity(self):
        layout = self._layout()
        assert layout.field_names == ["A", "B"]
        assert layout.arity == 2

    def test_index_of_case_insensitive(self):
        assert self._layout().index_of("b") == 1

    def test_index_of_unknown_raises(self):
        with pytest.raises(ScriptError):
            self._layout().index_of("ZZZ")

    def test_duplicate_field_rejected(self):
        with pytest.raises(ScriptError):
            Layout("L", [
                FieldDef("A", parse_type("integer")),
                FieldDef("a", parse_type("integer")),
            ])
