"""Result-layout inference tests (export/result-set typing)."""

import datetime
from decimal import Decimal

from repro.legacy.infer import infer_legacy_type, infer_result_layout


class TestInferLegacyType:
    def test_all_null_column(self):
        assert infer_legacy_type([None, None]).base == "VARCHAR"

    def test_integers(self):
        assert infer_legacy_type([1, None, 3]).base == "BIGINT"

    def test_floats_absorb_ints(self):
        assert infer_legacy_type([1, 2.5]).base == "FLOAT"

    def test_decimals(self):
        assert infer_legacy_type([Decimal("1.5"), 2]).base == "DECIMAL"

    def test_dates(self):
        assert infer_legacy_type(
            [datetime.date(2020, 1, 1), None]).base == "DATE"

    def test_timestamps(self):
        assert infer_legacy_type(
            [datetime.datetime(2020, 1, 1, 2)]).base == "TIMESTAMP"

    def test_date_and_timestamp_mix_is_text(self):
        inferred = infer_legacy_type(
            [datetime.date(2020, 1, 1),
             datetime.datetime(2020, 1, 1, 2)])
        assert inferred.base == "VARCHAR"

    def test_strings_sized_to_longest(self):
        inferred = infer_legacy_type(["ab", "abcd", None])
        assert (inferred.base, inferred.length) == ("VARCHAR", 4)


class TestInferResultLayout:
    def test_per_column_types(self):
        layout = infer_result_layout(
            ["N", "S", "D"],
            [(1, "x", datetime.date(2020, 1, 1)),
             (2, "yy", None)])
        assert [f.type.base for f in layout.fields] == \
            ["BIGINT", "VARCHAR", "DATE"]
        assert layout.field_names == ["N", "S", "D"]

    def test_empty_result(self):
        layout = infer_result_layout(["A"], [])
        assert layout.fields[0].type.base == "VARCHAR"
