"""Tests for frame encoding and the Coalescer."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import ProtocolError, TransportClosed
from repro.legacy.protocol import (
    Coalescer, Message, MessageChannel, MessageKind,
)
from repro.net import pipe


def sample_messages():
    return [
        Message(MessageKind.LOGON, {"user": "u", "password": "p"}),
        Message(MessageKind.DATA, {"seq": 3}, body=b"\x00\x01payload"),
        Message(MessageKind.DATA_ACK, {"seq": 3}),
        Message(MessageKind.ERROR, {"code": 42, "message": "boom"}),
    ]


class TestFraming:
    def test_roundtrip_single(self):
        coalescer = Coalescer()
        for message in sample_messages():
            out = list(coalescer.feed(message.to_bytes()))
            assert len(out) == 1
            assert out[0].kind == message.kind
            assert out[0].meta == message.meta
            assert out[0].body == message.body

    def test_byte_at_a_time_reassembly(self):
        coalescer = Coalescer()
        message = Message(MessageKind.DATA, {"seq": 1}, body=b"x" * 100)
        raw = message.to_bytes()
        collected = []
        for i in range(len(raw)):
            collected.extend(coalescer.feed(raw[i:i + 1]))
        assert len(collected) == 1
        assert collected[0].body == b"x" * 100
        assert coalescer.pending_bytes == 0

    def test_multiple_frames_in_one_chunk(self):
        coalescer = Coalescer()
        raw = b"".join(m.to_bytes() for m in sample_messages())
        out = list(coalescer.feed(raw))
        assert [m.kind for m in out] == \
            [m.kind for m in sample_messages()]

    def test_bytes_seen_accounting(self):
        coalescer = Coalescer()
        raw = sample_messages()[1].to_bytes()
        list(coalescer.feed(raw))
        assert coalescer.bytes_seen == len(raw)

    def test_bad_magic_raises(self):
        coalescer = Coalescer()
        with pytest.raises(ProtocolError):
            list(coalescer.feed(b"\xff" * 12))

    def test_unknown_kind_raises(self):
        raw = bytearray(Message(MessageKind.LOGON).to_bytes())
        raw[2] = 0xEE  # corrupt the kind field
        with pytest.raises(ProtocolError):
            list(Coalescer().feed(bytes(raw)))

    def test_empty_meta_allowed(self):
        message = Message(MessageKind.LOGOFF)
        out = list(Coalescer().feed(message.to_bytes()))
        assert out[0].meta == {}


class TestExpect:
    def test_expect_matching(self):
        msg = Message(MessageKind.LOGON_OK)
        assert msg.expect(MessageKind.LOGON_OK) is msg

    def test_expect_mismatch_raises(self):
        with pytest.raises(ProtocolError):
            Message(MessageKind.LOGON_OK).expect(MessageKind.DATA_ACK)

    def test_expect_surfaces_peer_error(self):
        error = Message(MessageKind.ERROR,
                        {"code": 7, "message": "nope"})
        with pytest.raises(ProtocolError, match="nope"):
            error.expect(MessageKind.LOGON_OK)


class TestMessageChannel:
    def test_request_response(self):
        client_end, server_end = pipe(mtu=5)
        client = MessageChannel(client_end, timeout=5)
        server = MessageChannel(server_end, timeout=5)

        import threading

        def serve():
            request = server.recv()
            server.send(Message(MessageKind.LOGON_OK,
                                {"echo": request.meta}))

        thread = threading.Thread(target=serve)
        thread.start()
        response = client.request(
            Message(MessageKind.LOGON, {"user": "x"}),
            MessageKind.LOGON_OK)
        thread.join()
        assert response.meta["echo"] == {"user": "x"}

    def test_recv_or_eof(self):
        client_end, server_end = pipe()
        server = MessageChannel(server_end, timeout=1)
        client_end.close()
        assert server.recv_or_eof() is None

    def test_eof_mid_frame_raises(self):
        client_end, server_end = pipe()
        server = MessageChannel(server_end, timeout=1)
        raw = Message(MessageKind.LOGON).to_bytes()
        client_end.send_bytes(raw[:4])
        client_end.close()
        with pytest.raises(TransportClosed):
            server.recv_or_eof()


@given(st.lists(
    st.tuples(
        st.sampled_from(list(MessageKind)),
        st.dictionaries(st.text(max_size=8),
                        st.one_of(st.integers(), st.text(max_size=12)),
                        max_size=4),
        st.binary(max_size=200)),
    min_size=1, max_size=10),
    st.integers(min_value=1, max_value=17))
def test_coalescer_roundtrip_property(specs, mtu):
    """Any message sequence survives arbitrary re-chunking."""
    messages = [Message(kind, meta, body) for kind, meta, body in specs]
    raw = b"".join(m.to_bytes() for m in messages)
    coalescer = Coalescer()
    out = []
    for start in range(0, len(raw), mtu):
        out.extend(coalescer.feed(raw[start:start + mtu]))
    assert len(out) == len(messages)
    for got, want in zip(out, messages):
        assert got.kind == want.kind
        assert got.meta == want.meta
        assert got.body == want.body
