"""CLI tests (driving main() in-process)."""

import os

import pytest

from repro.cli import main
from tests.conftest import EXAMPLE_DATA, EXAMPLE_SCRIPT


@pytest.fixture
def script_dir(tmp_path):
    (tmp_path / "job.etl").write_text(EXAMPLE_SCRIPT)
    (tmp_path / "input.txt").write_bytes(EXAMPLE_DATA)
    return tmp_path


class TestRunScript:
    def test_hyperq_backend(self, script_dir, capsys):
        code = main(["run-script", str(script_dir / "job.etl")])
        assert code == 0
        out = capsys.readouterr().out
        assert "2 inserted" in out
        assert "2 ET errors" in out
        assert "1 UV errors" in out

    def test_legacy_backend(self, script_dir, capsys):
        code = main(["run-script", str(script_dir / "job.etl"),
                     "--backend", "legacy"])
        assert code == 0
        assert "2 inserted" in capsys.readouterr().out

    def test_show_tables(self, script_dir, capsys):
        code = main(["run-script", str(script_dir / "job.etl"),
                     "--show-tables"])
        assert code == 0
        out = capsys.readouterr().out
        assert "PROD.CUSTOMER" in out
        assert "Smith" in out

    def test_export_writes_output_file(self, tmp_path, capsys):
        script = EXAMPLE_SCRIPT.replace(
            ".logoff;",
            ".begin export;\n.export outfile out.txt format vartext "
            "'|';\nselect CUST_ID from PROD.CUSTOMER;\n.end export;\n"
            ".logoff;")
        (tmp_path / "job.etl").write_text(script)
        (tmp_path / "input.txt").write_bytes(EXAMPLE_DATA)
        code = main(["run-script", str(tmp_path / "job.etl")])
        assert code == 0
        assert (tmp_path / "out.txt").exists()

    def test_missing_script_errors(self, capsys):
        assert main(["run-script", "/no/such/script.etl"]) == 1


class TestStatsCommand:
    def test_prometheus_output(self, capsys):
        code = main(["stats", "--rows", "500", "--format", "prom"])
        assert code == 0
        out = capsys.readouterr().out
        assert "# TYPE hyperq_chunks_received_total counter" in out
        assert "hyperq_jobs_total{event=\"completed\"} 1" in out

    def test_json_output(self, capsys):
        import json

        code = main(["stats", "--rows", "500", "--format", "json"])
        assert code == 0
        stats = json.loads(capsys.readouterr().out)
        assert "hyperq_stage_seconds" in stats["metrics"]
        assert stats["completed_jobs"] == 1

    def test_script_input(self, script_dir, capsys):
        code = main(["stats", "--script",
                     str(script_dir / "job.etl")])
        assert code == 0
        assert "hyperq_bytes_received_total 94" in \
            capsys.readouterr().out

    def test_bad_log_level_errors(self, capsys):
        code = main(["stats", "--rows", "100", "--log-level", "LOUD"])
        assert code == 1
        assert "unknown log level" in capsys.readouterr().err


class TestWlmProfileFlag:
    @pytest.fixture
    def profile_path(self, tmp_path):
        import json

        path = tmp_path / "wlm.json"
        path.write_text(json.dumps({
            "policy": "fair",
            "pools": [{"name": "etl", "weight": 2,
                       "max_concurrency": 2,
                       "match": {"user": "*"}}],
        }))
        return str(path)

    def test_stats_json_reports_pools(self, profile_path, capsys):
        import json

        code = main(["stats", "--rows", "200", "--format", "json",
                     "--wlm-profile", profile_path])
        assert code == 0
        stats = json.loads(capsys.readouterr().out)
        assert stats["wlm"]["enabled"] is True
        assert stats["wlm"]["policy"] == "fair"
        assert stats["wlm"]["pools"]["etl"]["admitted"] == 1
        assert stats["wlm"]["pools"]["etl"]["occupied_slots"] == 0

    def test_stats_prometheus_reports_wlm_series(self, profile_path,
                                                 capsys):
        code = main(["stats", "--rows", "200", "--format", "prom",
                     "--wlm-profile", profile_path])
        assert code == 0
        out = capsys.readouterr().out
        assert "# TYPE hyperq_wlm_admitted_total counter" in out
        assert 'hyperq_wlm_admitted_total{pool="etl"} 1' in out

    def test_disabled_without_flag(self, capsys):
        import json

        code = main(["stats", "--rows", "200", "--format", "json"])
        assert code == 0
        stats = json.loads(capsys.readouterr().out)
        assert stats["wlm"]["enabled"] is False

    def test_missing_profile_file_errors(self, capsys):
        code = main(["stats", "--rows", "100",
                     "--wlm-profile", "/no/such/profile.json"])
        assert code == 1

    def test_run_script_accepts_profile(self, script_dir,
                                        profile_path, capsys):
        code = main(["run-script", str(script_dir / "job.etl"),
                     "--wlm-profile", profile_path])
        assert code == 0
        assert "2 inserted" in capsys.readouterr().out


class TestTraceCommand:
    def test_jsonl_export(self, tmp_path, capsys):
        import json

        out = tmp_path / "trace.jsonl"
        code = main(["trace", "--rows", "500", "--out", str(out)])
        assert code == 0
        spans = [json.loads(line)
                 for line in out.read_text().splitlines()]
        names = {span["name"] for span in spans}
        assert names >= {"job", "receive", "convert", "write",
                         "upload", "copy", "apply"}

    def test_stdout_export(self, capsys):
        code = main(["trace", "--rows", "500", "--out", "-"])
        assert code == 0
        assert '"name": "job"' in capsys.readouterr().out

    def test_small_buffer_warns(self, tmp_path, capsys):
        out = tmp_path / "trace.jsonl"
        code = main(["trace", "--rows", "500", "--out", str(out),
                     "--buffer-events", "3"])
        assert code == 0
        assert "dropped spans" in capsys.readouterr().err

    def test_zero_buffer_errors(self, capsys):
        code = main(["trace", "--rows", "100",
                     "--buffer-events", "0"])
        assert code == 1
        assert "at least one slot" in capsys.readouterr().err


class TestTranspile:
    def test_plain(self, capsys):
        code = main(["transpile",
                     "select ZEROIFNULL(A) from T"])
        assert code == 0
        assert "COALESCE(A, 0)" in capsys.readouterr().out

    def test_with_binding(self, capsys):
        code = main([
            "transpile",
            "insert into T values (cast(:D as DATE format "
            "'YYYY-MM-DD'))",
            "--bind", "D"])
        assert code == 0
        assert "TO_DATE(s.D" in capsys.readouterr().out

    def test_bad_sql_errors(self, capsys):
        assert main(["transpile", "NOT SQL AT ALL"]) == 1
        assert "error:" in capsys.readouterr().err


class TestAnalyze:
    def test_clean_corpus_exit_zero(self, tmp_path, capsys):
        (tmp_path / "a.etl").write_text(
            ".logon h/u,p;\nselect 1;\n.logoff;")
        code = main(["analyze", str(tmp_path)])
        assert code == 0
        assert "100.0%" in capsys.readouterr().out

    def test_problem_corpus_exit_two(self, tmp_path, capsys):
        (tmp_path / "a.etl").write_text(
            ".logon h/u,p;\nGRANT ALL TO x;\n.logoff;")
        assert main(["analyze", str(tmp_path)]) == 2

    def test_empty_corpus_exit_one(self, tmp_path):
        assert main(["analyze", str(tmp_path)]) == 1


class TestSimulate:
    def test_basic_run(self, capsys):
        code = main(["simulate", "--rows", "100000", "--cores", "4"])
        assert code == 0
        out = capsys.readouterr().out
        assert "acquisition time" in out
        assert "throughput" in out

    def test_oom_exit_code(self, capsys):
        code = main(["simulate", "--rows", "2000000",
                     "--credits", "1000000", "--memory-gb", "0.01"])
        assert code == 3
        assert "CRASHED" in capsys.readouterr().out
