"""CLI tests (driving main() in-process)."""

import os

import pytest

from repro.cli import main
from tests.conftest import EXAMPLE_DATA, EXAMPLE_SCRIPT


@pytest.fixture
def script_dir(tmp_path):
    (tmp_path / "job.etl").write_text(EXAMPLE_SCRIPT)
    (tmp_path / "input.txt").write_bytes(EXAMPLE_DATA)
    return tmp_path


class TestRunScript:
    def test_hyperq_backend(self, script_dir, capsys):
        code = main(["run-script", str(script_dir / "job.etl")])
        assert code == 0
        out = capsys.readouterr().out
        assert "2 inserted" in out
        assert "2 ET errors" in out
        assert "1 UV errors" in out

    def test_legacy_backend(self, script_dir, capsys):
        code = main(["run-script", str(script_dir / "job.etl"),
                     "--backend", "legacy"])
        assert code == 0
        assert "2 inserted" in capsys.readouterr().out

    def test_show_tables(self, script_dir, capsys):
        code = main(["run-script", str(script_dir / "job.etl"),
                     "--show-tables"])
        assert code == 0
        out = capsys.readouterr().out
        assert "PROD.CUSTOMER" in out
        assert "Smith" in out

    def test_export_writes_output_file(self, tmp_path, capsys):
        script = EXAMPLE_SCRIPT.replace(
            ".logoff;",
            ".begin export;\n.export outfile out.txt format vartext "
            "'|';\nselect CUST_ID from PROD.CUSTOMER;\n.end export;\n"
            ".logoff;")
        (tmp_path / "job.etl").write_text(script)
        (tmp_path / "input.txt").write_bytes(EXAMPLE_DATA)
        code = main(["run-script", str(tmp_path / "job.etl")])
        assert code == 0
        assert (tmp_path / "out.txt").exists()

    def test_missing_script_errors(self, capsys):
        assert main(["run-script", "/no/such/script.etl"]) == 1


class TestStatsCommand:
    def test_prometheus_output(self, capsys):
        code = main(["stats", "--rows", "500", "--format", "prom"])
        assert code == 0
        out = capsys.readouterr().out
        assert "# TYPE hyperq_chunks_received_total counter" in out
        assert "hyperq_jobs_total{event=\"completed\"} 1" in out

    def test_json_output(self, capsys):
        import json

        code = main(["stats", "--rows", "500", "--format", "json"])
        assert code == 0
        stats = json.loads(capsys.readouterr().out)
        assert "hyperq_stage_seconds" in stats["metrics"]
        assert stats["completed_jobs"] == 1

    def test_script_input(self, script_dir, capsys):
        code = main(["stats", "--script",
                     str(script_dir / "job.etl")])
        assert code == 0
        assert "hyperq_bytes_received_total 94" in \
            capsys.readouterr().out

    def test_bad_log_level_errors(self, capsys):
        code = main(["stats", "--rows", "100", "--log-level", "LOUD"])
        assert code == 1
        assert "unknown log level" in capsys.readouterr().err


class TestWlmProfileFlag:
    @pytest.fixture
    def profile_path(self, tmp_path):
        import json

        path = tmp_path / "wlm.json"
        path.write_text(json.dumps({
            "policy": "fair",
            "pools": [{"name": "etl", "weight": 2,
                       "max_concurrency": 2,
                       "match": {"user": "*"}}],
        }))
        return str(path)

    def test_stats_json_reports_pools(self, profile_path, capsys):
        import json

        code = main(["stats", "--rows", "200", "--format", "json",
                     "--wlm-profile", profile_path])
        assert code == 0
        stats = json.loads(capsys.readouterr().out)
        assert stats["wlm"]["enabled"] is True
        assert stats["wlm"]["policy"] == "fair"
        assert stats["wlm"]["pools"]["etl"]["admitted"] == 1
        assert stats["wlm"]["pools"]["etl"]["occupied_slots"] == 0

    def test_stats_prometheus_reports_wlm_series(self, profile_path,
                                                 capsys):
        code = main(["stats", "--rows", "200", "--format", "prom",
                     "--wlm-profile", profile_path])
        assert code == 0
        out = capsys.readouterr().out
        assert "# TYPE hyperq_wlm_admitted_total counter" in out
        assert 'hyperq_wlm_admitted_total{pool="etl"} 1' in out

    def test_disabled_without_flag(self, capsys):
        import json

        code = main(["stats", "--rows", "200", "--format", "json"])
        assert code == 0
        stats = json.loads(capsys.readouterr().out)
        assert stats["wlm"]["enabled"] is False

    def test_missing_profile_file_errors(self, capsys):
        code = main(["stats", "--rows", "100",
                     "--wlm-profile", "/no/such/profile.json"])
        assert code == 1

    def test_run_script_accepts_profile(self, script_dir,
                                        profile_path, capsys):
        code = main(["run-script", str(script_dir / "job.etl"),
                     "--wlm-profile", profile_path])
        assert code == 0
        assert "2 inserted" in capsys.readouterr().out


class TestTraceCommand:
    def test_jsonl_export(self, tmp_path, capsys):
        import json

        out = tmp_path / "trace.jsonl"
        code = main(["trace", "--rows", "500", "--out", str(out)])
        assert code == 0
        spans = [json.loads(line)
                 for line in out.read_text().splitlines()]
        names = {span["name"] for span in spans}
        assert names >= {"job", "receive", "convert", "write",
                         "upload", "copy", "apply"}

    def test_stdout_export(self, capsys):
        code = main(["trace", "--rows", "500", "--out", "-"])
        assert code == 0
        assert '"name": "job"' in capsys.readouterr().out

    def test_small_buffer_warns(self, tmp_path, capsys):
        out = tmp_path / "trace.jsonl"
        code = main(["trace", "--rows", "500", "--out", str(out),
                     "--buffer-events", "3"])
        assert code == 0
        assert "dropped spans" in capsys.readouterr().err

    def test_zero_buffer_errors(self, capsys):
        code = main(["trace", "--rows", "100",
                     "--buffer-events", "0"])
        assert code == 1
        assert "at least one slot" in capsys.readouterr().err


class TestTraceQueryCommand:
    def test_store_spill_and_query_roundtrip(self, tmp_path, capsys):
        import json

        store_dir = str(tmp_path / "spans")
        # First run spills spans to the store...
        code = main(["trace", "--rows", "300", "--out", "-",
                     "--store-dir", store_dir])
        assert code == 0
        first = [json.loads(line) for line in
                 capsys.readouterr().out.splitlines()]
        [job] = [s for s in first if s["name"] == "job"]
        job_id = job["attrs"]["job_id"]
        # ...then query mode reads them back without running a job.
        code = main(["trace", "--query", "--store-dir", store_dir,
                     "--job", job_id, "--out", "-"])
        assert code == 0
        queried = [json.loads(line) for line in
                   capsys.readouterr().out.splitlines()]
        assert {s["trace_id"] for s in queried} == {job["trace_id"]}
        assert {s["name"] for s in queried} >= {"job", "copy", "apply"}

    def test_query_by_trace_id(self, tmp_path, capsys):
        import json

        store_dir = str(tmp_path / "spans")
        assert main(["trace", "--rows", "200", "--out", "-",
                     "--store-dir", store_dir]) == 0
        [job] = [json.loads(line) for line in
                 capsys.readouterr().out.splitlines()
                 if '"name": "job"' in line]
        code = main(["trace", "--query", "--store-dir", store_dir,
                     "--trace-id", f"{job['trace_id']:x}",
                     "--out", "-"])
        assert code == 0
        lines = capsys.readouterr().out.splitlines()
        assert lines
        assert all(json.loads(l)["trace_id"] == job["trace_id"]
                   for l in lines)

    def test_query_without_store_dir_errors(self, capsys):
        assert main(["trace", "--query", "--out", "-"]) == 1
        assert "--store-dir" in capsys.readouterr().err

    def test_critical_path_table(self, capsys):
        code = main(["trace", "--rows", "300", "--out", "-",
                     "--critical-path"])
        assert code == 0
        out = capsys.readouterr().out
        assert "critical=" in out
        assert "acquisition=" in out
        assert "apply=" in out

    def test_sample_rate_zero_traces_nothing(self, capsys):
        code = main(["trace", "--rows", "200", "--out", "-",
                     "--sample-rate", "0.0"])
        assert code == 0
        assert capsys.readouterr().out == ""


class TestSloCommand:
    @pytest.fixture
    def profile_path(self, tmp_path):
        import json

        path = tmp_path / "slo.json"
        path.write_text(json.dumps({"slos": [
            {"name": "load-latency", "objective": "latency_p95",
             "pool": "*", "threshold_s": 30.0, "target": 0.99},
            {"name": "load-errors", "objective": "error_rate",
             "pool": "*", "target": 0.99},
        ]}))
        return str(path)

    def test_table_output(self, profile_path, capsys):
        code = main(["slo", "--rows", "300",
                     "--slo-profile", profile_path])
        assert code == 0
        out = capsys.readouterr().out
        assert "load-latency (latency_p95, pool=*): ok" in out
        assert "load-errors (error_rate, pool=*): ok" in out
        assert "good=1 bad=0" in out
        assert "p95=" in out

    def test_json_output(self, profile_path, capsys):
        import json

        code = main(["slo", "--rows", "300", "--format", "json",
                     "--slo-profile", profile_path])
        assert code == 0
        snapshot = json.loads(capsys.readouterr().out)
        assert snapshot["enabled"] is True
        assert snapshot["slos"]["load-latency"]["good"] == 1
        assert snapshot["slos"]["load-latency"]["breaching"] is False

    def test_missing_profile_errors(self, capsys):
        code = main(["slo", "--rows", "100",
                     "--slo-profile", "/no/such/slo.json"])
        assert code == 1
        assert "error:" in capsys.readouterr().err

    def test_example_profile_parses(self, capsys):
        code = main(["slo", "--rows", "200", "--slo-profile",
                     os.path.join(os.path.dirname(__file__), "..",
                                  "examples", "slo_profile.json")])
        assert code == 0


class TestFlightCommand:
    @pytest.fixture
    def bundle_dir(self, tmp_path):
        import json

        bundle = {
            "version": 1, "job_id": "j1", "reason": "aborted",
            "dumped_at": 123.0,
            "events": [
                {"ts": 1.0, "event": "started", "target": "T"},
                {"ts": 2.0, "event": "retry", "attempt": 1},
                {"ts": 3.0, "event": "aborted"},
            ],
            "node_events": [
                {"ts": 1.5, "event": "breaker_transition",
                 "state": "open"},
            ],
            "spans": [{"name": "job"}],
            "metrics": {"job_id": "j1"},
        }
        (tmp_path / "j1.json").write_text(json.dumps(bundle))
        return str(tmp_path)

    def test_list_bundles(self, bundle_dir, capsys):
        code = main(["flight", "--bundle-dir", bundle_dir])
        assert code == 0
        assert capsys.readouterr().out.splitlines() == ["j1"]

    def test_timeline_output(self, bundle_dir, capsys):
        code = main(["flight", "j1", "--bundle-dir", bundle_dir])
        assert code == 0
        out = capsys.readouterr().out
        assert "job j1: aborted (3 events, 1 spans)" in out
        assert "retry attempt=1" in out
        assert "[node]" in out
        assert "breaker_transition state=open" in out

    def test_json_output(self, bundle_dir, capsys):
        import json

        code = main(["flight", "j1", "--bundle-dir", bundle_dir,
                     "--format", "json"])
        assert code == 0
        bundle = json.loads(capsys.readouterr().out)
        assert bundle["reason"] == "aborted"

    def test_missing_bundle_errors(self, bundle_dir, capsys):
        code = main(["flight", "nope", "--bundle-dir", bundle_dir])
        assert code == 1
        assert "error:" in capsys.readouterr().err

    def test_empty_dir_lists_nothing(self, tmp_path, capsys):
        code = main(["flight", "--bundle-dir", str(tmp_path)])
        assert code == 1
        assert "no flight bundles" in capsys.readouterr().err


class TestTranspile:
    def test_plain(self, capsys):
        code = main(["transpile",
                     "select ZEROIFNULL(A) from T"])
        assert code == 0
        assert "COALESCE(A, 0)" in capsys.readouterr().out

    def test_with_binding(self, capsys):
        code = main([
            "transpile",
            "insert into T values (cast(:D as DATE format "
            "'YYYY-MM-DD'))",
            "--bind", "D"])
        assert code == 0
        assert "TO_DATE(s.D" in capsys.readouterr().out

    def test_bad_sql_errors(self, capsys):
        assert main(["transpile", "NOT SQL AT ALL"]) == 1
        assert "error:" in capsys.readouterr().err


class TestAnalyze:
    def test_clean_corpus_exit_zero(self, tmp_path, capsys):
        (tmp_path / "a.etl").write_text(
            ".logon h/u,p;\nselect 1;\n.logoff;")
        code = main(["analyze", str(tmp_path)])
        assert code == 0
        assert "100.0%" in capsys.readouterr().out

    def test_problem_corpus_exit_two(self, tmp_path, capsys):
        (tmp_path / "a.etl").write_text(
            ".logon h/u,p;\nGRANT ALL TO x;\n.logoff;")
        assert main(["analyze", str(tmp_path)]) == 2

    def test_empty_corpus_exit_one(self, tmp_path):
        assert main(["analyze", str(tmp_path)]) == 1


class TestSimulate:
    def test_basic_run(self, capsys):
        code = main(["simulate", "--rows", "100000", "--cores", "4"])
        assert code == 0
        out = capsys.readouterr().out
        assert "acquisition time" in out
        assert "throughput" in out

    def test_oom_exit_code(self, capsys):
        code = main(["simulate", "--rows", "2000000",
                     "--credits", "1000000", "--memory-gb", "0.01"])
        assert code == 3
        assert "CRASHED" in capsys.readouterr().out
