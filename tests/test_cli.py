"""CLI tests (driving main() in-process)."""

import os

import pytest

from repro.cli import main
from tests.conftest import EXAMPLE_DATA, EXAMPLE_SCRIPT


@pytest.fixture
def script_dir(tmp_path):
    (tmp_path / "job.etl").write_text(EXAMPLE_SCRIPT)
    (tmp_path / "input.txt").write_bytes(EXAMPLE_DATA)
    return tmp_path


class TestRunScript:
    def test_hyperq_backend(self, script_dir, capsys):
        code = main(["run-script", str(script_dir / "job.etl")])
        assert code == 0
        out = capsys.readouterr().out
        assert "2 inserted" in out
        assert "2 ET errors" in out
        assert "1 UV errors" in out

    def test_legacy_backend(self, script_dir, capsys):
        code = main(["run-script", str(script_dir / "job.etl"),
                     "--backend", "legacy"])
        assert code == 0
        assert "2 inserted" in capsys.readouterr().out

    def test_show_tables(self, script_dir, capsys):
        code = main(["run-script", str(script_dir / "job.etl"),
                     "--show-tables"])
        assert code == 0
        out = capsys.readouterr().out
        assert "PROD.CUSTOMER" in out
        assert "Smith" in out

    def test_export_writes_output_file(self, tmp_path, capsys):
        script = EXAMPLE_SCRIPT.replace(
            ".logoff;",
            ".begin export;\n.export outfile out.txt format vartext "
            "'|';\nselect CUST_ID from PROD.CUSTOMER;\n.end export;\n"
            ".logoff;")
        (tmp_path / "job.etl").write_text(script)
        (tmp_path / "input.txt").write_bytes(EXAMPLE_DATA)
        code = main(["run-script", str(tmp_path / "job.etl")])
        assert code == 0
        assert (tmp_path / "out.txt").exists()

    def test_missing_script_errors(self, capsys):
        assert main(["run-script", "/no/such/script.etl"]) == 1


class TestTranspile:
    def test_plain(self, capsys):
        code = main(["transpile",
                     "select ZEROIFNULL(A) from T"])
        assert code == 0
        assert "COALESCE(A, 0)" in capsys.readouterr().out

    def test_with_binding(self, capsys):
        code = main([
            "transpile",
            "insert into T values (cast(:D as DATE format "
            "'YYYY-MM-DD'))",
            "--bind", "D"])
        assert code == 0
        assert "TO_DATE(s.D" in capsys.readouterr().out

    def test_bad_sql_errors(self, capsys):
        assert main(["transpile", "NOT SQL AT ALL"]) == 1
        assert "error:" in capsys.readouterr().err


class TestAnalyze:
    def test_clean_corpus_exit_zero(self, tmp_path, capsys):
        (tmp_path / "a.etl").write_text(
            ".logon h/u,p;\nselect 1;\n.logoff;")
        code = main(["analyze", str(tmp_path)])
        assert code == 0
        assert "100.0%" in capsys.readouterr().out

    def test_problem_corpus_exit_two(self, tmp_path, capsys):
        (tmp_path / "a.etl").write_text(
            ".logon h/u,p;\nGRANT ALL TO x;\n.logoff;")
        assert main(["analyze", str(tmp_path)]) == 2

    def test_empty_corpus_exit_one(self, tmp_path):
        assert main(["analyze", str(tmp_path)]) == 1


class TestSimulate:
    def test_basic_run(self, capsys):
        code = main(["simulate", "--rows", "100000", "--cores", "4"])
        assert code == 0
        out = capsys.readouterr().out
        assert "acquisition time" in out
        assert "throughput" in out

    def test_oom_exit_code(self, capsys):
        code = main(["simulate", "--rows", "2000000",
                     "--credits", "1000000", "--memory-gb", "0.01"])
        assert code == 3
        assert "CRASHED" in capsys.readouterr().out
