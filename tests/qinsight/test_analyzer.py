"""qInsight workload-analysis tests."""

from repro.qinsight import WorkloadAnalyzer

CLEAN_JOB = """
.logon h/u,p;
create table T (A integer, B unicode(10));
.layout L;
.field A varchar(5);
.field B varchar(10);
.begin import tables T errortables T_ET T_UV;
.dml label Ins;
insert into T values (cast(:A as integer), :B);
.import infile f.txt format vartext '|' layout L apply Ins;
.end load;
.begin export;
.export outfile o.txt format vartext '|';
select A, ZEROIFNULL(A) from T;
.end export;
.logoff;
"""

PROBLEM_JOB = """
.logon h/u,p;
.dml label Bad;
insert into T values (cast(:X as integer format '999'));
.import infile f.txt format vartext '|' layout L apply Bad;
.end load;
GRANT SELECT ON T TO bob;
.logoff;
"""


class TestAnalyzeSql:
    def test_clean_statement(self):
        finding = WorkloadAnalyzer().analyze_sql(
            "j", "sql", "select ZEROIFNULL(A) from T")
        assert finding.status == "ok"
        assert "COALESCE" in finding.translated

    def test_dml_with_host_params_analyzed_bound(self):
        finding = WorkloadAnalyzer().analyze_sql(
            "j", "dml:X",
            "insert into T values (cast(:D as DATE format 'YYYY-MM-DD'))")
        assert finding.status == "ok"
        assert finding.host_params == ["D"]
        assert "TO_DATE(s.D" in finding.translated

    def test_untranslatable_construct_flagged(self):
        finding = WorkloadAnalyzer().analyze_sql(
            "j", "sql",
            "select cast(A as integer format '999') from T")
        assert finding.status == "rewrite"
        assert finding.construct == "FORMAT cast to non-temporal type"

    def test_unparseable_statement_flagged(self):
        finding = WorkloadAnalyzer().analyze_sql(
            "j", "sql", "GRANT SELECT ON T TO bob")
        assert finding.status == "unparsed"
        assert "GRANT" in finding.construct


class TestAnalyzeCorpus:
    def test_clean_job_full_coverage(self):
        report = WorkloadAnalyzer().analyze_corpus({"clean": CLEAN_JOB})
        assert report.total == 3  # ddl + dml + export select
        assert report.ok_fraction == 1.0
        assert report.construct_histogram() == {}

    def test_problem_job_counted(self):
        report = WorkloadAnalyzer().analyze_corpus(
            {"clean": CLEAN_JOB, "problem": PROBLEM_JOB})
        assert report.total == 5
        assert len(report.by_status("rewrite")) == 1
        assert len(report.by_status("unparsed")) == 1
        assert 0 < report.ok_fraction < 1

    def test_broken_script_recorded(self):
        report = WorkloadAnalyzer().analyze_corpus(
            {"broken": ".logon incomplete"})
        assert "broken" in report.script_errors
        assert report.total == 0

    def test_render_report(self):
        report = WorkloadAnalyzer().analyze_corpus(
            {"clean": CLEAN_JOB, "problem": PROBLEM_JOB})
        text = report.render()
        assert "statements analyzed : 5" in text
        assert "FORMAT cast" in text
        assert "problem/dml:Bad" in text

    def test_paper_scale_coverage_claim(self):
        """A corpus that is overwhelmingly standard constructs gets
        >99% coverage — the case study's '<1% rewritten' observation."""
        scripts = {f"job{i}": CLEAN_JOB for i in range(40)}
        scripts["odd"] = PROBLEM_JOB
        report = WorkloadAnalyzer().analyze_corpus(scripts)
        assert report.ok_fraction > 0.98
