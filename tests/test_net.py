"""Tests for the in-memory byte transport."""

import threading

import pytest

from repro.errors import TransportClosed
from repro.net import Listener, pipe


class TestPipe:
    def test_basic_send_recv(self):
        left, right = pipe()
        left.send_bytes(b"hello")
        assert right.recv_bytes() == b"hello"

    def test_both_directions(self):
        left, right = pipe()
        left.send_bytes(b"ping")
        right.send_bytes(b"pong")
        assert right.recv_bytes() == b"ping"
        assert left.recv_bytes() == b"pong"

    def test_eof_after_close(self):
        left, right = pipe()
        left.send_bytes(b"last")
        left.close()
        assert right.recv_bytes() == b"last"
        assert right.recv_bytes() is None
        assert right.recv_bytes() is None  # EOF is sticky

    def test_write_after_close_raises(self):
        left, _right = pipe()
        left.close()
        with pytest.raises(TransportClosed):
            left.send_bytes(b"x")

    def test_mtu_splits_writes(self):
        left, right = pipe(mtu=3)
        left.send_bytes(b"abcdefgh")
        chunks = [right.recv_bytes() for _ in range(3)]
        assert chunks == [b"abc", b"def", b"gh"]

    def test_recv_timeout(self):
        _left, right = pipe()
        with pytest.raises(TransportClosed):
            right.recv_bytes(timeout=0.05)

    def test_cross_thread(self):
        left, right = pipe()

        def writer():
            for i in range(100):
                left.send_bytes(bytes([i]))
            left.close()

        thread = threading.Thread(target=writer)
        thread.start()
        received = []
        while True:
            chunk = right.recv_bytes(timeout=5)
            if chunk is None:
                break
            received.append(chunk)
        thread.join()
        assert b"".join(received) == bytes(range(100))


class TestListener:
    def test_connect_accept(self):
        listener = Listener()
        client = listener.connect()
        server = listener.accept(timeout=1)
        client.send_bytes(b"hi")
        assert server.recv_bytes() == b"hi"
        server.send_bytes(b"yo")
        assert client.recv_bytes() == b"yo"

    def test_accept_timeout_returns_none(self):
        listener = Listener()
        assert listener.accept(timeout=0.05) is None

    def test_closed_listener_rejects_connect(self):
        listener = Listener()
        listener.close()
        with pytest.raises(TransportClosed):
            listener.connect()

    def test_accept_after_close_returns_none(self):
        listener = Listener()
        listener.close()
        assert listener.accept(timeout=0.1) is None

    def test_multiple_connections(self):
        listener = Listener()
        clients = [listener.connect() for _ in range(3)]
        servers = [listener.accept(timeout=1) for _ in range(3)]
        for i, client in enumerate(clients):
            client.send_bytes(f"c{i}".encode())
        received = sorted(s.recv_bytes() for s in servers)
        assert received == [b"c0", b"c1", b"c2"]
