"""Store and CreditPool tests for the simulator."""

from repro.sim.events import Environment
from repro.sim.resources import CreditPool, Store


class TestStore:
    def test_put_then_get(self):
        env = Environment()
        store = Store(env)
        store.put("item")
        got = []

        def getter():
            value = yield store.get()
            got.append(value)

        env.process(getter())
        env.run()
        assert got == ["item"]

    def test_get_blocks_until_put(self):
        env = Environment()
        store = Store(env)
        got = []

        def getter():
            value = yield store.get()
            got.append((value, env.now))

        def putter():
            yield env.timeout(3)
            store.put("late")

        env.process(getter())
        env.process(putter())
        env.run()
        assert got == [("late", 3.0)]

    def test_fifo_order(self):
        env = Environment()
        store = Store(env)
        got = []

        def getter(name):
            value = yield store.get()
            got.append((name, value))

        env.process(getter("first"))
        env.process(getter("second"))

        def putter():
            yield env.timeout(1)
            store.put(1)
            store.put(2)

        env.process(putter())
        env.run()
        assert got == [("first", 1), ("second", 2)]


class TestCreditPool:
    def test_immediate_acquire(self):
        env = Environment()
        pool = CreditPool(env, 2)
        done = []

        def proc():
            yield pool.acquire()
            done.append(env.now)

        env.process(proc())
        env.run()
        assert done == [0.0]
        assert pool.available == 1

    def test_blocking_and_wait_accounting(self):
        env = Environment()
        pool = CreditPool(env, 1)
        times = []

        def holder():
            yield pool.acquire()
            yield env.timeout(5)
            pool.release()

        def waiter():
            yield env.timeout(1)  # arrive after the holder
            yield pool.acquire()
            times.append(env.now)

        env.process(holder())
        env.process(waiter())
        env.run()
        assert times == [5.0]
        assert pool.blocked_acquires == 1
        assert pool.total_wait == 4.0

    def test_min_available_tracked(self):
        env = Environment()
        pool = CreditPool(env, 3)

        def proc():
            yield pool.acquire()
            yield pool.acquire()
            pool.release()
            pool.release()

        env.process(proc())
        env.run()
        assert pool.min_available == 1
        assert pool.available == 3
