"""Property: the CPU pool matches closed-form processor-sharing math."""

import pytest
from hypothesis import given, strategies as st

from repro.sim.cpu import SharedCpuPool
from repro.sim.events import Environment


@given(st.integers(1, 16), st.integers(1, 40),
       st.floats(0.01, 10.0))
def test_equal_tasks_finish_at_analytic_time(cores, tasks, work):
    """N equal tasks submitted together finish simultaneously at
    N*work/cores / efficiency (for N >= cores), or at work (N <= cores).
    """
    env = Environment()
    pool = SharedCpuPool(env, cores)
    done_times = []

    def submit():
        yield pool.compute(work)
        done_times.append(env.now)

    for _ in range(tasks):
        env.process(submit())
    env.run()

    assert len(done_times) == tasks
    # All equal tasks finish at the same simulated instant.
    assert max(done_times) - min(done_times) < 1e-6
    # rate_for(k) folds in both the core share and the overhead model,
    # so the makespan of k equal tasks is simply work / rate.
    expected = work / pool.rate_for(tasks)
    assert done_times[0] == pytest.approx(expected, rel=1e-9)


@given(st.integers(1, 8), st.lists(st.floats(0.1, 5.0), min_size=1,
                                   max_size=10))
def test_total_busy_time_conserved(cores, works):
    """Work is conserved: busy_time equals the total work divided by
    the efficiency actually experienced — and with no overhead
    (switch_cost=0) it equals the sum of work exactly."""
    env = Environment()
    pool = SharedCpuPool(env, cores, switch_cost=0.0)

    def submit(w):
        yield pool.compute(w)

    for w in works:
        env.process(submit(w))
    env.run()
    assert pool.tasks_completed == len(works)
    assert pool.busy_time == pytest.approx(sum(works), rel=1e-6)


@given(st.integers(1, 8), st.floats(0.5, 4.0), st.floats(0.5, 4.0))
def test_makespan_lower_bound(cores, w1, w2):
    """The makespan is never below max(critical path, total/cores)."""
    env = Environment()
    pool = SharedCpuPool(env, cores, switch_cost=0.0)

    def submit(w):
        yield pool.compute(w)

    env.process(submit(w1))
    env.process(submit(w2))
    end = env.run()
    assert end >= max(w1, w2) - 1e-9
    assert end >= (w1 + w2) / cores - 1e-9
