"""Event-loop tests for the discrete-event simulator."""

import pytest

from repro.errors import SimulationError
from repro.sim.events import Environment


class TestTimeouts:
    def test_timeouts_fire_in_order(self):
        env = Environment()
        log = []

        def proc(name, delay):
            yield env.timeout(delay)
            log.append((name, env.now))

        env.process(proc("b", 2.0))
        env.process(proc("a", 1.0))
        env.run()
        assert log == [("a", 1.0), ("b", 2.0)]

    def test_zero_delay(self):
        env = Environment()
        done = []

        def proc():
            yield env.timeout(0)
            done.append(env.now)

        env.process(proc())
        env.run()
        assert done == [0.0]

    def test_negative_delay_rejected(self):
        env = Environment()
        with pytest.raises(SimulationError):
            env.timeout(-1)

    def test_run_until(self):
        env = Environment()

        def proc():
            yield env.timeout(10)

        env.process(proc())
        assert env.run(until=5) == 5
        assert env.run() == 10


class TestProcesses:
    def test_process_return_value(self):
        env = Environment()

        def child():
            yield env.timeout(1)
            return 42

        collected = []

        def parent():
            value = yield env.process(child())
            collected.append(value)

        env.process(parent())
        env.run()
        assert collected == [42]

    def test_waiting_on_triggered_event(self):
        env = Environment()
        event = env.event()
        event.succeed("early")
        got = []

        def proc():
            value = yield event
            got.append(value)

        env.process(proc())
        env.run()
        assert got == ["early"]

    def test_multiple_waiters_all_resume(self):
        env = Environment()
        gate = env.event()
        woken = []

        def waiter(name):
            yield gate
            woken.append(name)

        for name in ("x", "y", "z"):
            env.process(waiter(name))

        def opener():
            yield env.timeout(1)
            gate.succeed()

        env.process(opener())
        env.run()
        assert sorted(woken) == ["x", "y", "z"]

    def test_yielding_non_event_raises(self):
        env = Environment()

        def bad():
            yield 42

        env.process(bad())
        with pytest.raises(SimulationError):
            env.run()

    def test_double_trigger_rejected(self):
        env = Environment()
        event = env.event()
        event.succeed()
        with pytest.raises(SimulationError):
            event.succeed()

    def test_cancelled_event_skipped(self):
        env = Environment()
        timer = env.timeout(5)
        fired = []
        timer.callbacks.append(lambda e: fired.append(env.now))
        timer.cancel()
        env.run()
        assert fired == []
        assert env.now == 0.0
