"""Processor-sharing CPU pool tests."""

import pytest

from repro.sim.cpu import SharedCpuPool
from repro.sim.events import Environment


def run_tasks(cores, works, submit_times=None, **kwargs):
    """Run tasks on a pool; returns completion times by index."""
    env = Environment()
    pool = SharedCpuPool(env, cores, **kwargs)
    completions = {}

    def submit(index, work, at):
        yield env.timeout(at)
        yield pool.compute(work)
        completions[index] = env.now

    times = submit_times or [0.0] * len(works)
    for i, (work, at) in enumerate(zip(works, times)):
        env.process(submit(i, work, at))
    env.run()
    return completions, pool


class TestSingleTask:
    def test_exact_duration(self):
        completions, _ = run_tasks(1, [2.5])
        assert completions[0] == pytest.approx(2.5)

    def test_zero_work_immediate(self):
        completions, _ = run_tasks(1, [0.0])
        assert completions[0] == 0.0

    def test_invalid_cores(self):
        with pytest.raises(ValueError):
            SharedCpuPool(Environment(), 0)


class TestSharing:
    def test_two_tasks_one_core_share(self):
        # Two 1s tasks on one core: both finish at t=2 under PS.
        completions, _ = run_tasks(1, [1.0, 1.0],
                                   switch_cost=0.0)
        assert completions[0] == pytest.approx(2.0)
        assert completions[1] == pytest.approx(2.0)

    def test_two_tasks_two_cores_parallel(self):
        completions, _ = run_tasks(2, [1.0, 1.0], switch_cost=0.0)
        assert completions[0] == pytest.approx(1.0)
        assert completions[1] == pytest.approx(1.0)

    def test_unequal_tasks(self):
        # 1s and 3s on one core: short finishes at 2 (shared), then the
        # long one runs alone: 2 + (3 - 1) = 4.
        completions, _ = run_tasks(1, [1.0, 3.0], switch_cost=0.0)
        assert completions[0] == pytest.approx(2.0)
        assert completions[1] == pytest.approx(4.0)

    def test_late_arrival(self):
        # 2s task; a second 2s task arrives at t=1.
        # [0,1): task0 alone (1s done). [1,?): shared.
        # task0 has 1s left -> finishes at t=3; task1 then alone -> t=4.
        completions, _ = run_tasks(
            1, [2.0, 2.0], submit_times=[0.0, 1.0], switch_cost=0.0)
        assert completions[0] == pytest.approx(3.0)
        assert completions[1] == pytest.approx(4.0)

    def test_statistics(self):
        _, pool = run_tasks(2, [1.0, 1.0, 1.0], switch_cost=0.0)
        assert pool.tasks_completed == 3
        assert pool.peak_runnable == 3
        assert pool.busy_time == pytest.approx(3.0)


class TestOverheadModel:
    def test_rate_at_or_below_capacity_is_full(self):
        pool = SharedCpuPool(Environment(), 8)
        assert pool.rate_for(4) == pytest.approx(1.0)
        assert pool.rate_for(8) == pytest.approx(1.0)

    def test_rate_decays_with_backlog(self):
        pool = SharedCpuPool(Environment(), 8, quantum=0.004,
                             switch_cost=0.00002)
        r100 = pool.rate_for(100) * 100 / 8     # normalized efficiency
        r100000 = pool.rate_for(100_000) * 100_000 / 8
        assert r100 > r100000
        assert r100 > 0.9
        assert r100000 < 0.5

    def test_oversubscription_slows_completion(self):
        fast, _ = run_tasks(2, [1.0] * 4, switch_cost=0.0)
        slow, _ = run_tasks(2, [1.0] * 4, quantum=0.01,
                            switch_cost=0.01)
        assert max(slow.values()) > max(fast.values())

    def test_work_conservation_under_overhead(self):
        """Tasks still all finish; overhead slows but never starves."""
        completions, pool = run_tasks(2, [0.5] * 20, quantum=0.004,
                                      switch_cost=0.001)
        assert len(completions) == 20
        assert pool.tasks_completed == 20
