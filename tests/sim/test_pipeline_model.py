"""Simulated acquisition pipeline tests (the Fig 9/10 substrate)."""

import pytest

from repro.errors import SimOutOfMemory
from repro.sim.events import Environment
from repro.sim.memory import MemoryModel
from repro.sim.pipeline import SimParams, simulate_acquisition


def small_params(**overrides) -> SimParams:
    base = dict(
        rows=100_000, row_bytes=500, chunk_bytes=1 << 20,
        sessions=4, cores=4, credits=16,
        convert_cpu_per_byte=1e-8, convert_cpu_per_row=0.0,
        client_bandwidth_per_session=200e6,
        disk_bandwidth=2e9, link_bandwidth=2e9, copy_bandwidth=1e10,
        fixed_setup=1.0, fixed_teardown=1.0, session_setup=0.1,
    )
    base.update(overrides)
    return SimParams(**base)


class TestMemoryModel:
    def test_peak_tracking(self):
        env = Environment()
        memory = MemoryModel(env, limit_bytes=100)
        memory.allocate(60)
        memory.allocate(30)
        memory.free(50)
        assert memory.peak == 90
        assert memory.in_use == 40

    def test_oom_raises(self):
        env = Environment()
        memory = MemoryModel(env, limit_bytes=100)
        with pytest.raises(SimOutOfMemory):
            memory.allocate(200)

    def test_unlimited(self):
        memory = MemoryModel(Environment(), limit_bytes=None)
        memory.allocate(10**15)  # no limit, no error


class TestSimulation:
    def test_completes_and_reports(self):
        report = simulate_acquisition(small_params())
        assert not report.crashed
        assert report.total_time > 0
        assert report.acquisition_time > 0
        assert report.setup_teardown_time > 0
        assert report.files_uploaded >= 1
        assert report.peak_memory_bytes > 0

    def test_more_data_takes_longer(self):
        t1 = simulate_acquisition(small_params(rows=50_000))
        t2 = simulate_acquisition(small_params(rows=200_000))
        assert t2.acquisition_time > t1.acquisition_time

    def test_deterministic(self):
        a = simulate_acquisition(small_params())
        b = simulate_acquisition(small_params())
        assert a.total_time == b.total_time
        assert a.peak_memory_bytes == b.peak_memory_bytes

    def test_more_cores_help_cpu_bound_load(self):
        slow = simulate_acquisition(small_params(
            cores=2, convert_cpu_per_byte=1e-7))
        fast = simulate_acquisition(small_params(
            cores=8, convert_cpu_per_byte=1e-7))
        assert fast.total_time < slow.total_time

    def test_tiny_credit_pool_throttles(self):
        # Conversion slower than arrival: credits bound the backlog.
        throttled = simulate_acquisition(small_params(
            credits=2, convert_cpu_per_byte=5e-8))
        roomy = simulate_acquisition(small_params(
            credits=64, convert_cpu_per_byte=5e-8))
        assert throttled.credit_blocked_acquires > 0
        assert throttled.peak_runnable_tasks <= 2
        assert roomy.acquisition_time <= throttled.acquisition_time

    def test_in_flight_bounded_by_credits(self):
        report = simulate_acquisition(small_params(
            credits=8, convert_cpu_per_byte=1e-7))
        assert report.peak_runnable_tasks <= 8

    def test_oom_with_unbounded_credits(self):
        report = simulate_acquisition(small_params(
            rows=400_000, credits=10**6,
            convert_cpu_per_byte=2e-7,   # conversion far behind arrival
            memory_limit_bytes=32 << 20))
        assert report.crashed
        assert report.crash_time is not None

    def test_synchronous_ack_slower(self):
        fast = simulate_acquisition(small_params(
            convert_cpu_per_byte=4e-8))
        slow = simulate_acquisition(small_params(
            convert_cpu_per_byte=4e-8, synchronous_ack=True))
        assert slow.acquisition_time > fast.acquisition_time

    def test_compression_helps_on_slow_link(self):
        plain = simulate_acquisition(small_params(link_bandwidth=20e6))
        gzipped = simulate_acquisition(small_params(
            link_bandwidth=20e6, compression=True))
        assert gzipped.acquisition_time < plain.acquisition_time

    def test_compression_costs_cpu_on_fast_link(self):
        plain = simulate_acquisition(small_params(
            cores=1, convert_cpu_per_byte=2e-8))
        gzipped = simulate_acquisition(small_params(
            cores=1, convert_cpu_per_byte=2e-8, compression=True,
            compression_cpu_per_byte=2e-8))
        assert gzipped.total_time >= plain.total_time

    def test_file_threshold_controls_file_count(self):
        many = simulate_acquisition(small_params(
            file_threshold_bytes=4 << 20))
        few = simulate_acquisition(small_params(
            file_threshold_bytes=256 << 20))
        assert many.files_uploaded > few.files_uploaded

    def test_throughput_property(self):
        report = simulate_acquisition(small_params())
        expected = small_params().total_bytes / report.acquisition_time
        assert report.throughput_bytes_per_s == pytest.approx(expected)
