"""Unit tests for the retry policy (backoff, budget, classification)."""

import random

import pytest

from repro.errors import PermanentFault, TransientFault, TransportClosed
from repro.resilience import RetryPolicy, full_jitter_delay, is_transient


def flaky(failures, exc_factory=lambda: TransientFault("blip")):
    """A callable that fails ``failures`` times, then returns 'ok'."""
    state = {"left": failures, "calls": 0}

    def fn():
        state["calls"] += 1
        if state["left"] > 0:
            state["left"] -= 1
            raise exc_factory()
        return "ok"

    fn.state = state
    return fn


def no_sleep_policy(**kwargs):
    kwargs.setdefault("sleep", lambda s: None)
    kwargs.setdefault("rng", random.Random(0))
    return RetryPolicy(**kwargs)


class TestClassification:
    def test_injected_faults_carry_their_class(self):
        assert is_transient(TransientFault("x"))
        assert not is_transient(PermanentFault("x"))

    def test_transport_closed_is_transient(self):
        assert is_transient(TransportClosed("gone"))

    def test_plain_exceptions_are_permanent(self):
        assert not is_transient(ValueError("nope"))

    def test_transient_attribute_opts_in(self):
        exc = RuntimeError("throttled")
        exc.transient = True
        assert is_transient(exc)


class TestFullJitter:
    def test_delay_within_exponential_envelope(self):
        rng = random.Random(1)
        for attempt in range(1, 8):
            ceiling = min(2.0, 0.1 * 2 ** (attempt - 1))
            for _ in range(50):
                delay = full_jitter_delay(attempt, 0.1, 2.0, rng)
                assert 0.0 <= delay <= ceiling

    def test_same_seed_same_delays(self):
        a = [full_jitter_delay(i, 0.1, 2.0, random.Random(3))
             for i in range(1, 5)]
        b = [full_jitter_delay(i, 0.1, 2.0, random.Random(3))
             for i in range(1, 5)]
        assert a == b


class TestRetryPolicy:
    def test_succeeds_after_transient_failures(self):
        policy = no_sleep_policy(max_attempts=4)
        fn = flaky(2)
        assert policy.call(fn, target="store.upload") == "ok"
        assert fn.state["calls"] == 3
        assert policy.attempts_total == 2
        assert policy.by_target == {"store.upload": 2}
        assert policy.giveups_total == 0

    def test_gives_up_after_max_attempts(self):
        policy = no_sleep_policy(max_attempts=3)
        fn = flaky(99)
        with pytest.raises(TransientFault):
            policy.call(fn, target="copy.into")
        assert fn.state["calls"] == 3
        assert policy.attempts_total == 2  # two re-attempts were made
        assert policy.giveups_total == 1

    def test_permanent_error_not_retried(self):
        policy = no_sleep_policy(max_attempts=5)
        fn = flaky(99, exc_factory=lambda: PermanentFault("dead"))
        with pytest.raises(PermanentFault):
            policy.call(fn)
        assert fn.state["calls"] == 1
        assert policy.attempts_total == 0
        assert policy.giveups_total == 0  # not a transient give-up

    def test_budget_bounds_total_sleep(self):
        slept = []
        policy = RetryPolicy(max_attempts=50, base_delay_s=1.0,
                             max_delay_s=1.0, budget_s=2.5,
                             rng=random.Random(0), sleep=slept.append)
        # Force deterministic full-ceiling delays.
        policy.rng = random.Random()
        policy.rng.uniform = lambda a, b: b
        with pytest.raises(TransientFault):
            policy.call(flaky(99))
        assert sum(slept) <= 2.5
        assert policy.giveups_total == 1

    def test_single_attempt_policy_never_retries(self):
        policy = no_sleep_policy(max_attempts=1)
        with pytest.raises(TransientFault):
            policy.call(flaky(1))
        assert policy.attempts_total == 0

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(base_delay_s=-1)
        with pytest.raises(ValueError):
            RetryPolicy(multiplier=0.5)

    def test_snapshot(self):
        policy = no_sleep_policy()
        policy.call(flaky(1), target="a")
        snap = policy.snapshot()
        assert snap["attempts"] == 1
        assert snap["by_target"] == {"a": 1}

    def test_retry_after_hint_floors_delay(self):
        """A server retry-after hint (e.g. WLM_THROTTLED) overrides a
        smaller jittered backoff — retrying sooner than the peer asked
        would just re-trip the same admission limit."""
        from repro.errors import WlmThrottled

        slept = []
        policy = RetryPolicy(max_attempts=3, base_delay_s=0.001,
                             max_delay_s=0.002, budget_s=30.0,
                             rng=random.Random(0), sleep=slept.append)
        policy.call(flaky(
            2, exc_factory=lambda: WlmThrottled(
                "busy", pool="p", retry_after_s=0.5)))
        assert len(slept) == 2
        assert all(delay >= 0.5 for delay in slept)

    def test_retry_after_hint_capped_at_remaining_budget(self):
        """A hint larger than the whole sleep budget must not void the
        configured attempts: it is capped at the remaining budget so
        the retry still happens (just sooner than the peer asked)."""
        from repro.errors import WlmThrottled

        slept = []
        policy = RetryPolicy(max_attempts=3, base_delay_s=0.001,
                             max_delay_s=0.002, budget_s=1.0,
                             rng=random.Random(0), sleep=slept.append)
        result = policy.call(flaky(
            1, exc_factory=lambda: WlmThrottled(
                "busy", pool="p", retry_after_s=60.0)))
        assert result == "ok"
        assert len(slept) == 1
        assert slept[0] <= 1.0

    def test_retry_after_hint_does_not_shrink_larger_backoff(self):
        """The hint is a floor, not a replacement for backoff."""
        exc = TransientFault("blip")
        exc.retry_after_s = 0.01
        slept = []
        policy = RetryPolicy(max_attempts=2, base_delay_s=5.0,
                             max_delay_s=5.0, budget_s=30.0,
                             sleep=slept.append)
        policy.rng = random.Random()
        policy.rng.uniform = lambda a, b: b  # deterministic ceiling
        policy.call(flaky(1, exc_factory=lambda: exc))
        assert slept == [5.0]


class TestRetryObservability:
    def test_metrics_and_spans_recorded(self):
        from repro.obs import Observability
        obs = Observability(trace_enabled=True)
        policy = no_sleep_policy(max_attempts=4)
        with obs.tracer.span("op") as parent:
            policy.call(flaky(2), target="store.upload", obs=obs,
                        parent=parent)
        counters = obs.registry.collect()["hyperq_retry_attempts_total"]
        (sample,) = counters["samples"]
        assert sample["labels"] == {"target": "store.upload"}
        assert sample["value"] == 2
        retry_spans = obs.tracer.spans("retry")
        assert len(retry_spans) == 2
        assert all(s["parent_id"] == parent.span_id
                   for s in retry_spans)
        assert retry_spans[0]["attrs"]["attempt"] == 1
        assert all(s["status"] == "error" for s in retry_spans)

    def test_giveup_metric_recorded(self):
        from repro.obs import Observability
        obs = Observability()
        policy = no_sleep_policy(max_attempts=2)
        with pytest.raises(TransientFault):
            policy.call(flaky(9), target="copy.into", obs=obs)
        counters = obs.registry.collect()["hyperq_retry_giveups_total"]
        (sample,) = counters["samples"]
        assert sample["value"] == 1
