"""Unit tests for the circuit breaker state machine."""

import pytest

from repro.errors import CircuitOpenError
from repro.resilience import CircuitBreaker, CircuitBreakerRegistry
from repro.resilience.breaker import CLOSED, HALF_OPEN, OPEN


class FakeClock:
    """Manually advanced monotonic clock."""

    def __init__(self):
        self.now = 100.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


def boom():
    raise RuntimeError("boom")


def make_breaker(**kwargs):
    clock = FakeClock()
    kwargs.setdefault("failure_threshold", 3)
    kwargs.setdefault("cooldown_s", 10.0)
    breaker = CircuitBreaker("store.upload", clock=clock, **kwargs)
    return breaker, clock


class TestCircuitBreaker:
    def test_starts_closed_and_passes_calls(self):
        breaker, _ = make_breaker()
        assert breaker.state == CLOSED
        assert breaker.call(lambda: 42) == 42

    def test_opens_after_consecutive_failures(self):
        breaker, _ = make_breaker(failure_threshold=3)
        for _ in range(3):
            with pytest.raises(RuntimeError):
                breaker.call(boom)
        assert breaker.state == OPEN
        assert breaker.opens == 1

    def test_success_resets_the_failure_streak(self):
        breaker, _ = make_breaker(failure_threshold=3)
        for _ in range(2):
            with pytest.raises(RuntimeError):
                breaker.call(boom)
        breaker.call(lambda: "ok")  # streak broken
        for _ in range(2):
            with pytest.raises(RuntimeError):
                breaker.call(boom)
        assert breaker.state == CLOSED

    def test_open_breaker_rejects_instantly(self):
        breaker, _ = make_breaker(failure_threshold=1, cooldown_s=10.0)
        with pytest.raises(RuntimeError):
            breaker.call(boom)
        with pytest.raises(CircuitOpenError) as info:
            breaker.call(lambda: "never runs")
        assert info.value.target == "store.upload"
        assert 0.0 < info.value.retry_after_s <= 10.0
        assert breaker.rejections == 1

    def test_circuit_open_error_is_not_transient(self):
        from repro.resilience import is_transient
        assert not is_transient(CircuitOpenError("t", retry_after_s=1.0))

    def test_half_open_after_cooldown_then_closes_on_success(self):
        breaker, clock = make_breaker(failure_threshold=1,
                                      cooldown_s=10.0)
        with pytest.raises(RuntimeError):
            breaker.call(boom)
        clock.advance(10.0)
        assert breaker.state == HALF_OPEN
        assert breaker.call(lambda: "probe") == "probe"
        assert breaker.state == CLOSED

    def test_half_open_failure_reopens_and_restarts_cooldown(self):
        breaker, clock = make_breaker(failure_threshold=1,
                                      cooldown_s=10.0)
        with pytest.raises(RuntimeError):
            breaker.call(boom)
        clock.advance(10.0)
        with pytest.raises(RuntimeError):
            breaker.call(boom)  # the probe fails
        assert breaker.state == OPEN
        clock.advance(5.0)  # cooldown restarted: still open
        assert breaker.state == OPEN
        clock.advance(5.0)
        assert breaker.state == HALF_OPEN

    def test_half_open_probe_limit(self):
        breaker, clock = make_breaker(failure_threshold=1,
                                      cooldown_s=1.0,
                                      half_open_max_calls=1)
        with pytest.raises(RuntimeError):
            breaker.call(boom)
        clock.advance(1.0)
        breaker.allow()  # first probe admitted (still in flight)
        with pytest.raises(CircuitOpenError):
            breaker.allow()  # second concurrent probe rejected

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            CircuitBreaker("t", failure_threshold=0)
        with pytest.raises(ValueError):
            CircuitBreaker("t", cooldown_s=-1)
        with pytest.raises(ValueError):
            CircuitBreaker("t", half_open_max_calls=0)

    def test_snapshot(self):
        breaker, _ = make_breaker(failure_threshold=1)
        with pytest.raises(RuntimeError):
            breaker.call(boom)
        snap = breaker.snapshot()
        assert snap["state"] == OPEN
        assert snap["opens"] == 1

    def test_transition_metrics(self):
        from repro.obs import Observability
        obs = Observability()
        clock = FakeClock()
        breaker = CircuitBreaker("copy.into", failure_threshold=1,
                                 cooldown_s=1.0, clock=clock, obs=obs)
        with pytest.raises(RuntimeError):
            breaker.call(boom)
        gauges = obs.registry.collect()["hyperq_breaker_open"]
        (sample,) = gauges["samples"]
        assert sample["labels"] == {"target": "copy.into"}
        assert sample["value"] == 1.0
        clock.advance(1.0)
        breaker.call(lambda: "ok")
        gauges = obs.registry.collect()["hyperq_breaker_open"]
        (sample,) = gauges["samples"]
        assert sample["value"] == 0.0


class TestRegistry:
    def test_get_creates_once_per_target(self):
        registry = CircuitBreakerRegistry(failure_threshold=2)
        a = registry.get("store.upload")
        assert registry.get("store.upload") is a
        assert registry.get("copy.into") is not a
        assert a.failure_threshold == 2

    def test_snapshot_covers_all_targets(self):
        registry = CircuitBreakerRegistry()
        registry.get("b").on_failure()
        registry.get("a")
        snap = registry.snapshot()
        assert list(snap) == ["a", "b"]
        assert snap["b"]["consecutive_failures"] == 1

    def test_from_config(self):
        from repro.core.config import HyperQConfig
        config = HyperQConfig(breaker_failure_threshold=7,
                              breaker_cooldown_s=3.0)
        registry = CircuitBreakerRegistry.from_config(config)
        breaker = registry.get("x")
        assert breaker.failure_threshold == 7
        assert breaker.cooldown_s == 3.0
