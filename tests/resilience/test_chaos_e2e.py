"""End-to-end loads under seeded chaos profiles.

The acceptance property of the resilience subsystem: a load running
under a chaos profile with transient store/COPY faults finishes with
*row-for-row identical* target-table and error-table contents as the
fault-free run — the retries are invisible to job semantics.  Permanent
faults surface as clean gateway errors, and a job killed mid-load
restarts from its checkpoint journal without re-uploading any
already-durable staging file.
"""

import time

import pytest

from repro.core.config import HyperQConfig
from repro.errors import ProtocolError, TransportClosed
from repro.legacy.client import ImportJobSpec, LegacyEtlClient
from repro.legacy.types import FieldDef, Layout, parse_type

from tests.conftest import make_node

CUSTOMER_DDL = (
    "create table PROD.CUSTOMER ("
    "CUST_ID varchar(5) not null, CUST_NAME varchar(50), "
    "JOIN_DATE date, unique (CUST_ID))")
CUSTOMER_LAYOUT = Layout("CustLayout", [
    FieldDef("CUST_ID", parse_type("varchar(5)")),
    FieldDef("CUST_NAME", parse_type("varchar(50)")),
    FieldDef("JOIN_DATE", parse_type("varchar(10)")),
])
CUSTOMER_APPLY = (
    "insert into PROD.CUSTOMER values (trim(:CUST_ID), "
    "trim(:CUST_NAME), cast(:JOIN_DATE as DATE format 'YYYY-MM-DD'))")


def customer_data() -> bytes:
    """48 rows: 2 bad dates (ET) and 4 duplicate keys (UV)."""
    rows = []
    for i in range(44):
        date = "xxxx" if i in (5, 17) else f"2012-01-{i % 28 + 1:02d}"
        rows.append(f"{i:03d}|Name{i}|{date}")
    for i in range(4):  # duplicate the first four keys
        rows.append(f"{i:03d}|Dup{i}|2012-06-01")
    return ("\n".join(rows) + "\n").encode()


#: ≥10% transient fault rates on the upload and COPY paths, plus a
#: guaranteed hit on each path's first call, all from one fixed seed.
CHAOS_PROFILE = {
    "seed": 20230325,
    "rules": [
        {"point": "store.upload", "at_call": 1},
        {"point": "store.upload", "probability": 0.15},
        {"point": "copy.into", "at_call": 1},
        {"point": "store.upload", "every_nth": 7, "error": None,
         "latency_s": 0.001},
    ],
}


def run_customer_job(stack, chunk_bytes: int = 128):
    client = LegacyEtlClient(stack.node.connect, timeout=15)
    client.logon("h", "u", "p")
    client.execute_sql(CUSTOMER_DDL)
    result = client.run_import(ImportJobSpec(
        target_table="PROD.CUSTOMER", et_table="PROD.CUSTOMER_ET",
        uv_table="PROD.CUSTOMER_UV", layout=CUSTOMER_LAYOUT,
        apply_sql=CUSTOMER_APPLY, data=customer_data(),
        sessions=2, chunk_bytes=chunk_bytes))
    client.logoff()
    return result


def table_rows(stack, table):
    return sorted(stack.engine.query(f"SELECT * FROM {table}"))


class TestChaosEquivalence:
    def test_seeded_chaos_run_matches_fault_free_run(self):
        with make_node(config=HyperQConfig(
                converters=2, filewriters=2, credits=8,
                file_threshold_bytes=256)) as clean:
            clean_result = run_customer_job(clean)
            clean_rows = {t: table_rows(clean, t) for t in (
                "PROD.CUSTOMER", "PROD.CUSTOMER_ET",
                "PROD.CUSTOMER_UV")}

        with make_node(config=HyperQConfig(
                converters=2, filewriters=2, credits=8,
                file_threshold_bytes=256,
                retry_base_delay_s=0.001, retry_max_delay_s=0.01,
                chaos_profile=CHAOS_PROFILE)) as chaotic:
            chaos_result = run_customer_job(chaotic)
            stats = chaotic.node.stats()
            for table, expected in clean_rows.items():
                assert table_rows(chaotic, table) == expected, table

        assert chaos_result.rows_inserted == clean_result.rows_inserted
        assert chaos_result.et_errors == clean_result.et_errors == 2
        assert chaos_result.uv_errors == clean_result.uv_errors == 4

        resilience = stats["resilience"]
        assert resilience["faults_injected"] > 0
        assert resilience["retry_attempts"] > 0
        assert resilience["retry_giveups"] == 0
        assert resilience["faults"]["calls"]["store.upload"] > 0
        assert resilience["retry"]["by_target"]["store.upload"] > 0
        assert resilience["retry"]["by_target"]["copy.into"] >= 1

    def test_chaos_schedule_is_reproducible(self):
        def run():
            with make_node(config=HyperQConfig(
                    converters=1, filewriters=1, credits=8,
                    file_threshold_bytes=256,
                    retry_base_delay_s=0.001, retry_max_delay_s=0.01,
                    chaos_profile=CHAOS_PROFILE)) as stack:
                run_customer_job(stack)
                snap = stack.node.faults.snapshot()
            return snap["injected"]

        assert run() == run()


class TestPermanentFaults:
    def test_permanent_copy_fault_surfaces_as_clean_error(self):
        profile = [{"point": "copy.into", "at_call": 1,
                    "error": "permanent",
                    "message": "COPY permanently rejected"}]
        with make_node(config=HyperQConfig(
                converters=2, filewriters=2, credits=8,
                chaos_profile=profile)) as stack:
            with pytest.raises(ProtocolError,
                               match="COPY permanently rejected"):
                run_customer_job(stack)
            resilience = stack.node.stats()["resilience"]
            assert resilience["faults"]["injected"] == \
                {"copy.into:permanent": 1}
            # permanent = not retried: no attempts burned on it.
            assert resilience["retry"]["by_target"].get("copy.into") \
                is None

    def test_permanent_upload_fault_fails_the_job(self):
        profile = [{"point": "store.upload", "at_call": 1,
                    "error": "permanent", "message": "bucket gone"}]
        with make_node(config=HyperQConfig(
                converters=2, filewriters=2, credits=8,
                chaos_profile=profile)) as stack:
            with pytest.raises(ProtocolError, match="bucket gone"):
                run_customer_job(stack)


class TestNetworkChaos:
    def test_dropped_connection_recovered_by_client_restart(self):
        # The 7th server send is a DATA_ACK; dropping it kills the data
        # session mid-flight, exactly once.
        profile = [{"point": "net.send", "at_call": 7, "max_fires": 1}]
        with make_node(config=HyperQConfig(
                converters=2, filewriters=2, credits=8,
                chaos_profile=profile)) as stack:
            client = LegacyEtlClient(stack.node.connect, timeout=15)
            client.logon("h", "u", "p")
            client.execute_sql(
                "create table R (A varchar(20) not null, unique (A))")
            data = "".join(
                f"row-{i:04d}\n" for i in range(40)).encode()
            result = client.run_import(ImportJobSpec(
                target_table="R", et_table="R_ET", uv_table="R_UV",
                layout=Layout("L", [FieldDef("A",
                                             parse_type("varchar(20)"))]),
                apply_sql="insert into R values (:A)", data=data,
                sessions=1, chunk_bytes=64, retry_attempts=2,
                reconnect_backoff_s=0.001))
            client.logoff()
            assert result.rows_inserted == 40
            assert result.uv_errors == 0  # nothing double-loaded
            assert stack.engine.query("SELECT COUNT(*) FROM R") == \
                [(40,)]
            assert stack.node.faults.snapshot()["injected"] == \
                {"net.send:transient": 1}


def wait_until(predicate, timeout_s=10.0):
    deadline = time.monotonic() + timeout_s
    while not predicate():
        if time.monotonic() > deadline:
            raise AssertionError("condition never became true")
        time.sleep(0.01)


class TestCheckpointRestart:
    def test_restart_reuploads_zero_durable_files(self, tmp_path):
        """Kill a load mid-data, restart it, and count re-uploads."""
        # One row per chunk, one staging file per chunk: every chunk's
        # durability is independently visible in the store.
        config = HyperQConfig(
            converters=1, filewriters=1, credits=8,
            file_threshold_bytes=16,
            chaos_profile=[{"point": "net.send", "at_call": 12,
                            "max_fires": 1}])
        data = "".join(
            f"row-{i:04d}-{'x' * 24}\n" for i in range(24)).encode()
        spec_kwargs = dict(
            target_table="R", et_table="R_ET", uv_table="R_UV",
            layout=Layout("L", [FieldDef("A",
                                         parse_type("varchar(40)"))]),
            apply_sql="insert into R values (:A)", data=data,
            sessions=1, chunk_bytes=16, job_id="restartjob",
            journal_path=str(tmp_path / "client.jsonl"))

        with make_node(config=config) as stack:
            client = LegacyEtlClient(stack.node.connect, timeout=15)
            client.logon("h", "u", "p")
            client.execute_sql(
                "create table R (A varchar(40) not null, unique (A))")

            # Run 1: the connection drops mid-data and, with no retry
            # budget, the job dies like a killed process would.
            with pytest.raises(TransportClosed):
                client.run_import(ImportJobSpec(**spec_kwargs))

            # Chunks 0-7 were submitted before the drop (the 8th ack
            # was the dropped send); the node stays up, so they all
            # become durable uploads.  Wait for that to settle.
            container = stack.node.config.container
            wait_until(lambda: stack.store.upload_count >= 8)
            time.sleep(0.1)
            uploads_before = stack.store.upload_count
            blobs_before = set(stack.store.list_blobs(container))
            assert uploads_before == len(blobs_before) == 8

            # Run 2: same job_id, resume=True — restarts from the
            # gateway's checkpoint journal.
            result = client.run_import(ImportJobSpec(
                **spec_kwargs, resume=True))
            client.logoff()

            # Zero re-uploads: of the 24 one-chunk staging files, the 8
            # durable ones are never PUT again — run 2 uploads exactly
            # the 16 files for the chunks the gateway never staged.
            # (END_LOAD already cleaned the staging prefix.)
            new_uploads = stack.store.upload_count - uploads_before
            assert new_uploads == 24 - 8

            # ... and the load is still exactly-once.
            assert result.rows_inserted == 24
            assert result.uv_errors == 0
            assert stack.engine.query("SELECT COUNT(*) FROM R") == \
                [(24,)]

            stats = stack.node.stats()
            skips = {}
            for sample in stack.node.obs.registry.collect()[
                    "hyperq_checkpoint_skips_total"]["samples"]:
                skips[sample["labels"]["kind"]] = sample["value"]
            assert skips.get("chunk", 0) > 0  # durable chunks skipped
            assert skips.get("upload", 0) == len(blobs_before)
            assert stats["resilience"]["faults_injected"] == 1

    def test_resume_skips_only_server_confirmed_chunks(self, tmp_path):
        """A client ack does not imply durability: the resumed client
        must resend chunks the gateway lost, even if they were acked."""
        import json
        config = HyperQConfig(converters=1, filewriters=1, credits=8,
                              file_threshold_bytes=16)
        data = "".join(
            f"row-{i:04d}-{'x' * 24}\n" for i in range(8)).encode()
        journal_path = tmp_path / "client.jsonl"
        # Forge a client journal claiming every chunk was acked, with
        # no server-side journal to back it: nothing is durable.
        with open(journal_path, "w", encoding="utf-8") as handle:
            for seq in range(8):
                handle.write(json.dumps({"t": "ack", "seq": seq}) + "\n")

        with make_node(config=config) as stack:
            client = LegacyEtlClient(stack.node.connect, timeout=15)
            client.logon("h", "u", "p")
            client.execute_sql("create table R (A varchar(40))")
            result = client.run_import(ImportJobSpec(
                target_table="R", et_table="R_ET", uv_table="R_UV",
                layout=Layout("L", [FieldDef("A",
                                             parse_type("varchar(40)"))]),
                apply_sql="insert into R values (:A)", data=data,
                sessions=1, chunk_bytes=16, job_id="forged",
                journal_path=str(journal_path), resume=True))
            client.logoff()
            # All 8 rows landed: the forged acks alone skipped nothing.
            assert result.rows_inserted == 8
