"""Unit tests for the checkpoint journal (replay, torn tails, resume)."""

import json
import os

from repro.resilience import CheckpointJournal


def journal_path(tmp_path):
    return os.path.join(str(tmp_path), "checkpoint.jsonl")


class TestRoundTrip:
    def test_records_replay_across_reopen(self, tmp_path):
        path = journal_path(tmp_path)
        with CheckpointJournal(path) as journal:
            journal.record_ack(0)
            journal.record_ack(2)
            journal.record_staged(
                "part-0-0.csv", path="/stage/part-0-0.csv", size=64,
                records=3, chunks=[{"seq": 0, "records": 3,
                                    "errors": []}])
            journal.record_uploaded("part-0-0.csv")
            journal.record_copy(3)
        with CheckpointJournal(path) as reopened:
            assert reopened.acked == {0, 2}
            assert reopened.uploaded == {"part-0-0.csv"}
            assert reopened.copy_rows == 3
            assert reopened.replayed == 5
            assert reopened.is_uploaded("part-0-0.csv")
            assert not reopened.is_uploaded("part-0-1.csv")

    def test_fresh_discards_previous_state(self, tmp_path):
        path = journal_path(tmp_path)
        with CheckpointJournal(path) as journal:
            journal.record_ack(1)
        with CheckpointJournal(path, fresh=True) as journal:
            assert journal.acked == set()
            assert journal.replayed == 0

    def test_unknown_record_types_are_skipped(self, tmp_path):
        path = journal_path(tmp_path)
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(json.dumps({"t": "future-thing"}) + "\n")
            handle.write(json.dumps({"t": "ack", "seq": 5}) + "\n")
        with CheckpointJournal(path) as journal:
            assert journal.acked == {5}


class TestTornTail:
    def test_torn_final_line_is_ignored(self, tmp_path):
        path = journal_path(tmp_path)
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(json.dumps({"t": "ack", "seq": 0}) + "\n")
            handle.write('{"t": "ack", "se')  # crashed mid-append
        with CheckpointJournal(path) as journal:
            assert journal.acked == {0}
            assert journal.replayed == 1
            journal.record_ack(1)  # journal stays appendable
        with CheckpointJournal(path) as reopened:
            assert reopened.acked == {0, 1}


class TestResumeQueries:
    def _staged(self, journal, name, path, seqs):
        journal.record_staged(
            name, path=path, size=10, records=len(seqs),
            chunks=[{"seq": s, "records": 1, "errors": []} for s in seqs])

    def test_durable_vs_pending_files(self, tmp_path):
        path = journal_path(tmp_path)
        with CheckpointJournal(path) as journal:
            self._staged(journal, "a.csv", "/gone/a.csv", [0])
            self._staged(journal, "b.csv", "/gone/b.csv", [1])
            journal.record_uploaded("a.csv")
            assert [r["file"] for r in journal.durable_files()] == \
                ["a.csv"]
            assert [r["file"] for r in journal.pending_files()] == \
                ["b.csv"]

    def test_durable_chunks_require_upload_or_local_file(self, tmp_path):
        path = journal_path(tmp_path)
        survivor = os.path.join(str(tmp_path), "b.csv")
        with open(survivor, "wb") as handle:
            handle.write(b"x\n")
        with CheckpointJournal(path) as journal:
            self._staged(journal, "a.csv", "/gone/a.csv", [0, 1])
            self._staged(journal, "b.csv", survivor, [2])
            self._staged(journal, "c.csv", "/gone/c.csv", [3])
            journal.record_uploaded("a.csv")
            durable = journal.durable_chunks()
        # a.csv uploaded, b.csv still on disk, c.csv lost with the host.
        assert sorted(durable) == [0, 1, 2]
        assert durable[2]["records"] == 1

    def test_snapshot(self, tmp_path):
        path = journal_path(tmp_path)
        with CheckpointJournal(path) as journal:
            journal.record_ack(0)
            self._staged(journal, "a.csv", "/gone/a.csv", [0])
            snap = journal.snapshot()
        assert snap["acked_chunks"] == 1
        assert snap["staged_files"] == 1
        assert snap["uploaded_files"] == 0
        assert snap["copy_rows"] is None
