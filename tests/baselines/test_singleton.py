"""Figure 11 baseline loader tests."""

from repro.baselines import SingletonInsertLoader
from repro.cdw.engine import CdwEngine
from repro.workloads import make_workload


def run(workload):
    loader = SingletonInsertLoader(CdwEngine())
    loader.prepare(workload)
    return loader.engine, loader.run(workload)


class TestSingletonLoader:
    def test_clean_load(self):
        workload = make_workload(rows=50, row_bytes=100, seed=1,
                                 table="B.T")
        engine, result = run(workload)
        assert result.rows_inserted == 50
        assert result.statements == 50
        assert engine.query("SELECT COUNT(*) FROM B.T") == [(50,)]

    def test_errors_logged_immediately(self):
        workload = make_workload(rows=100, row_bytes=100, seed=2,
                                 error_rate=0.1, table="B.T")
        engine, result = run(workload)
        assert result.et_errors == workload.expected_date_errors
        assert engine.query(
            "SELECT COUNT(*) FROM B.T_ET") == [(result.et_errors,)]
        # every error row carries its 1-based row number
        seqnos = [r[0] for r in engine.query("SELECT SEQNO FROM B.T_ET")]
        assert all(1 <= s <= 100 for s in seqnos)

    def test_uniqueness_violations_to_uv(self):
        workload = make_workload(rows=100, row_bytes=100, seed=3,
                                 dup_rate=0.05, table="B.T")
        engine, result = run(workload)
        assert result.uv_errors > 0
        assert engine.query(
            "SELECT COUNT(*) FROM B.T_UV") == [(result.uv_errors,)]

    def test_matches_hyperq_outcome(self):
        """The baseline and Hyper-Q agree on WHAT loads; they differ
        only in HOW long it takes (the Figure 11 comparison)."""
        from repro.bench import run_import_workload
        workload = make_workload(rows=150, row_bytes=100, seed=4,
                                 error_rate=0.05, dup_rate=0.03,
                                 table="B.T")
        engine, base = run(workload)
        hyperq = run_import_workload(workload)
        assert base.rows_inserted == hyperq.rows_inserted
        assert base.et_errors == hyperq.et_errors
        assert base.uv_errors == hyperq.uv_errors
