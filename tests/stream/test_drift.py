"""Schema drift end-to-end: evolve, route-to-error, halt.

The scripted feed adds SRC_REGION at one batch and renames REC_NAME to
CUST_NAME at a later one (the generator's manifest is the ground
truth).  ``evolve`` must propagate both as ALTER TABLE + mapping
updates and land every row; ``route-to-error`` must stage drifted
batches untouched and route them wholesale to the error table while
still advancing the watermark; ``halt`` must reject the first drifted
batch and leave the watermark at the last clean one.
"""

import pytest

from repro.core.config import HyperQConfig
from repro.errors import HYPERQ_SCHEMA_DRIFT, ReproError
from repro.stream import StreamRunner, StreamSession
from repro.workloads.streamgen import stream_workload

from tests.conftest import make_node


def _workload(feed):
    return stream_workload(batches=6, rows_per_batch=10, drift=True,
                           add_at=2, rename_at=4, seed=17, feed=feed)


def test_evolve_alters_target_and_lands_every_row(tmp_path):
    workload = _workload("evofeed")
    manifest = workload.manifest
    with make_node(config=HyperQConfig(credits=8)) as stack:
        stack.engine.execute(workload.ddl)
        session = StreamSession(stack.node.connect, feed="evofeed",
                                target_table=workload.target_table,
                                policy="evolve",
                                watermark_dir=str(tmp_path))
        with session:
            report = StreamRunner(session, workload).run()
        assert report.committed == 6 and report.routed == 0
        # the drift trail matches the manifest's schedule exactly
        observed = [(seq, event["kind"], event["column"])
                    for seq, event in report.drift]
        expected = [(d["seq"], d["kind"], d["column"])
                    for d in manifest["drift"]]
        assert observed == expected
        # ALTERs propagated: the target now has the final schema
        table = stack.engine.table(workload.target_table)
        assert [c.name for c in table.columns] == \
            manifest["final_columns"]
        rows = stack.engine.query(
            f"SELECT REC_ID, SRC_REGION FROM {workload.target_table}")
        assert len(rows) == manifest["rows_total"]
        # pre-drift rows were NULL-backfilled for the added column
        backfilled = [r for r in rows if r[1] is None]
        assert len(backfilled) == manifest["rows_before_add"]
        drift_counter = stack.node.obs.registry.collect()[
            "hyperq_stream_drift_events_total"]["samples"]
        assert {s["labels"]["kind"]: s["value"]
                for s in drift_counter} == {"added": 1, "renamed": 1}


def test_route_to_error_quarantines_drifted_batches(tmp_path):
    workload = _workload("r2efeed")
    manifest = workload.manifest
    rows_per_batch = manifest["rows_per_batch"][0]
    with make_node(config=HyperQConfig(credits=8)) as stack:
        stack.engine.execute(workload.ddl)
        session = StreamSession(stack.node.connect, feed="r2efeed",
                                target_table=workload.target_table,
                                policy="route-to-error",
                                watermark_dir=str(tmp_path))
        session.open()
        report = StreamRunner(session, workload).run()
        # the watermark still advanced across the routed batches
        assert stack.node.stats()["streams"]["r2efeed"][
            "committed_seq"] == manifest["batches"] - 1
        session.close()
        # the feed's accepted layout never advances, so every batch
        # from add_at on is drifted and quarantined wholesale
        drifted = manifest["batches"] - manifest["add_at"]
        assert report.routed == drifted
        assert report.committed == manifest["batches"]
        # the target only holds the clean prefix, unchanged schema
        table = stack.engine.table(workload.target_table)
        assert "SRC_REGION" not in [c.name for c in table.columns]
        target = stack.engine.query(
            f"SELECT REC_ID FROM {workload.target_table}")
        assert len(target) == manifest["rows_before_add"]
        et = stack.engine.query(
            f"SELECT SEQNO, ERRCODE, __RULE_ID FROM {workload.et_table}")
        assert len(et) == drifted * rows_per_batch
        assert {r[1] for r in et} == {HYPERQ_SCHEMA_DRIFT}
        assert {r[2] for r in et} == {"schema_drift"}


def test_halt_rejects_drift_and_freezes_watermark(tmp_path):
    workload = _workload("haltfeed")
    manifest = workload.manifest
    with make_node(config=HyperQConfig(credits=8)) as stack:
        stack.engine.execute(workload.ddl)
        session = StreamSession(stack.node.connect, feed="haltfeed",
                                target_table=workload.target_table,
                                policy="halt",
                                watermark_dir=str(tmp_path))
        session.open()
        runner = StreamRunner(session, workload)
        with pytest.raises(ReproError, match="drift"):
            runner.run()
        # every batch before the drift committed; nothing after
        assert len(runner.results) == manifest["add_at"]
        target = stack.engine.query(
            f"SELECT REC_ID FROM {workload.target_table}")
        assert len(target) == manifest["rows_before_add"]
        assert stack.node.stats()["streams"]["haltfeed"][
            "committed_seq"] == manifest["add_at"] - 1
