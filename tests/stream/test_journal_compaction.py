"""Checkpoint-journal compaction: O(state), crash-safe, replay-equal.

``compact()`` rewrites the journal as consolidated state via a
rewrite-and-rename, so a long-running feed's watermark journal stops
growing with history.  The rewrite must preserve every replayable
fact, survive appends afterwards, and keep honoring the torn-tail
rule (a crash mid-append never makes the journal unreadable).
"""

import json
import os

from repro.resilience.checkpoint import CheckpointJournal


def _state(journal):
    return (journal.acked, dict(journal.staged), journal.uploaded,
            journal.copy_rows, dict(journal.eager_copied),
            journal.eager_applied_below, journal.dq_routed,
            journal.stream_committed_seq, journal.stream_cursor,
            journal.stream_rows, list(journal.stream_drift))


def _fill(journal):
    for seq in range(6):
        journal.record_ack(seq)
    journal.record_staged("f0", path="/tmp/f0", size=100, records=6,
                          chunks=[{"seq": 0, "records": 6,
                                   "errors": []}])
    journal.record_uploaded("f0")
    journal.record_copy(6)
    journal.record_eager_copy("blob0", 6)
    journal.record_eager_apply(3)
    journal.record_dq_route([2, 4])
    journal.record_stream_drift(
        3, [{"kind": "added", "column": "C", "new_type": "INT"}],
        layout={"name": "l", "fields": []})
    for seq in range(40):
        journal.record_stream_commit(seq, cursor=f"off:{seq}", rows=10)


def test_compaction_shrinks_and_preserves_replay_state(tmp_path):
    path = str(tmp_path / "journal.jsonl")
    journal = CheckpointJournal(path)
    _fill(journal)
    before_state = _state(journal)
    before_size = os.path.getsize(path)

    saved = journal.compact()
    assert saved > 0
    assert os.path.getsize(path) == before_size - saved
    assert _state(journal) == before_state  # in-memory view unchanged

    # the 40 per-batch commits collapsed into one total_rows record
    lines = [json.loads(line) for line in
             open(path, encoding="utf-8") if line.strip()]
    commits = [r for r in lines if r["t"] == "stream_commit"]
    assert len(commits) == 1
    assert commits[0]["seq"] == 39
    assert commits[0]["total_rows"] == 400
    assert commits[0]["cursor"] == "off:39"
    journal.close()

    # a cold replay of the compacted journal reproduces the state
    replayed = CheckpointJournal(path)
    assert _state(replayed) == before_state
    replayed.close()


def test_journal_stays_appendable_after_compaction(tmp_path):
    path = str(tmp_path / "journal.jsonl")
    journal = CheckpointJournal(path)
    _fill(journal)
    journal.compact()
    journal.record_stream_commit(40, cursor="off:40", rows=10)
    journal.close()

    replayed = CheckpointJournal(path)
    assert replayed.stream_committed_seq == 40
    assert replayed.stream_rows == 410
    assert replayed.stream_cursor == "off:40"
    replayed.close()


def test_torn_tail_rules_survive_compaction(tmp_path):
    path = str(tmp_path / "journal.jsonl")
    journal = CheckpointJournal(path)
    _fill(journal)
    journal.compact()
    journal.close()

    # a crash mid-append leaves an unterminated JSON fragment
    with open(path, "a", encoding="utf-8") as handle:
        handle.write('{"t":"stream_commit","seq":99,"cur')

    replayed = CheckpointJournal(path)
    # the torn record is dropped, the compacted state is intact
    assert replayed.stream_committed_seq == 39
    assert replayed.stream_rows == 400
    # and the truncated tail was removed so appends start clean
    replayed.record_stream_commit(40, cursor="off:40", rows=10)
    replayed.close()
    again = CheckpointJournal(path)
    assert again.stream_committed_seq == 40
    again.close()
