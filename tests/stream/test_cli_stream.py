"""CLI: the ``stream`` subcommand drives a feed end to end."""

import json

from repro.cli import main


class TestStreamCommand:
    def test_table_output(self, capsys):
        code = main(["stream", "--batches", "5", "--rows", "8"])
        assert code == 0
        out = capsys.readouterr().out
        assert "5 committed" in out
        assert "rows inserted       : 40" in out
        assert "added column=SRC_REGION" in out

    def test_json_output_without_drift(self, capsys):
        code = main(["stream", "--batches", "4", "--rows", "6",
                     "--drift-profile", "none", "--format", "json"])
        assert code == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["committed"] == 4
        assert summary["rows_inserted"] == 24
        assert summary["drift_events"] == 0

    def test_route_to_error_policy(self, capsys):
        code = main(["stream", "--batches", "6", "--rows", "5",
                     "--drift-profile", "route-to-error",
                     "--format", "json"])
        assert code == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["routed"] > 0
        assert summary["et_errors"] == summary["routed"] * 5

    def test_stream_profile_file(self, tmp_path, capsys):
        profile = {"feed": "profeed", "batches": 3, "rows_per_batch": 4,
                   "drift": {"enabled": False},
                   "watermark_dir": str(tmp_path / "wm")}
        path = tmp_path / "stream_profile.json"
        path.write_text(json.dumps(profile))
        code = main(["stream", "--stream-profile", str(path),
                     "--format", "json"])
        assert code == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["feed"] == "profeed"
        assert summary["committed"] == 3
        assert (tmp_path / "wm" / "profeed.feed.jsonl").exists()

    def test_example_profile_parses(self, capsys):
        code = main(["stream", "--stream-profile",
                     "examples/stream_profile.json", "--batches", "2",
                     "--format", "json"])
        assert code == 0
        assert json.loads(capsys.readouterr().out)["committed"] == 2
