"""Drift × data quality: rules on drifted columns stay exempt until
the feed's accepted layout actually carries the column.

A ``not_null`` rule on SRC_REGION is configured from the start, but
SRC_REGION only appears at the feed's ``add_at`` batch.  Batches before
the drift must pass the precheck untouched (the rule references a
column their layout does not have — routing them would be a false
positive); batches after it must route exactly the rows whose region
is NULL.  Verdicts are checked differentially against the pure-Python
:func:`repro.dq.oracle.evaluate` oracle and the generator's manifest.
"""

from repro.core.config import HyperQConfig
from repro.core.gateway import _ruleset_for_layout
from repro.dq.oracle import evaluate
from repro.dq.profile import DqProfile
from repro.stream import StreamRunner, StreamSession
from repro.workloads.streamgen import stream_workload

from tests.conftest import make_node

DQ_RULES = [
    {"rule_id": "region_required", "kind": "not_null",
     "column": "SRC_REGION"},
]


def _oracle_routed(workload):
    """Per-batch oracle verdicts over the decoded VARTEXT rows."""
    profile = DqProfile.from_profile(DQ_RULES)
    routed = {}
    for batch in workload.batches:
        ruleset = profile.resolve(target=workload.target_table)
        ruleset = _ruleset_for_layout(ruleset, batch.layout)
        if ruleset is None:
            routed[batch.seq] = set()
            continue
        names = batch.layout.field_names
        rows = {}
        for seq, line in enumerate(
                batch.data.decode("utf-8").splitlines(), start=1):
            values = line.split("|")
            rows[seq] = {
                name: (value or None)  # VARTEXT: empty field is NULL
                for name, value in zip(names, values)}
        routed[batch.seq] = evaluate(ruleset, rows).routed_seqs
    return routed


def test_drifted_column_rule_exempt_until_layout_matches(tmp_path):
    workload = stream_workload(batches=6, rows_per_batch=15, drift=True,
                               add_at=2, rename_at=6,
                               null_region_rate=0.3, seed=29,
                               feed="dqfeed")
    manifest = workload.manifest
    oracle = _oracle_routed(workload)
    # the scenario is only meaningful if drift actually splits the
    # verdicts: clean prefix, violations after the column appears
    assert all(not oracle[seq] for seq in range(manifest["add_at"]))
    assert any(oracle[seq] for seq in range(manifest["add_at"], 6))
    # the oracle and the generator's manifest agree row-by-row
    for seq, rownums in manifest["null_region_rows"].items():
        assert oracle[seq] == set(rownums)

    config = HyperQConfig(credits=8, dq_profile=DQ_RULES)
    with make_node(config=config) as stack:
        stack.engine.execute(workload.ddl)
        session = StreamSession(stack.node.connect, feed="dqfeed",
                                target_table=workload.target_table,
                                policy="evolve",
                                watermark_dir=str(tmp_path))
        with session:
            report = StreamRunner(session, workload).run()
        assert report.committed == 6
        expected_routed = sum(len(v) for v in oracle.values())
        assert report.dq_routed_rows == expected_routed
        assert report.et_errors == 0
        et = stack.engine.query(
            f"SELECT SEQNO, __RULE_ID FROM {workload.et_table}")
        assert len(et) == expected_routed
        assert {r[1] for r in et} == {"region_required"}
        # routed rows never reached the target; clean rows all did
        target = stack.engine.query(
            f"SELECT REC_ID, SRC_REGION FROM {workload.target_table}")
        assert len(target) == manifest["rows_total"] - expected_routed
        # post-drift survivors all carry a non-NULL region; the only
        # NULLs are the backfilled pre-drift rows
        nulls = [r for r in target if r[1] is None]
        assert len(nulls) == manifest["rows_before_add"]
