"""Node shutdown with live feeds: quiesce before observability close.

``HyperQNode.stop()`` must quiesce abandoned stream feeds — journal
closed, WLM admission released, flight event recorded — *before* it
closes the observability stack, so the quiesce itself can still emit
telemetry.  A stopped node must hold no feed state.
"""

from repro.core.config import HyperQConfig
from repro.stream import StreamRunner, StreamSession
from repro.workloads.streamgen import stream_workload

from tests.conftest import make_node


def test_stop_quiesces_open_feeds_before_obs_close(tmp_path):
    workload = stream_workload(batches=2, rows_per_batch=5, drift=False,
                               feed="stopfeed", seed=31)
    stack = make_node(config=HyperQConfig(credits=8))
    try:
        stack.engine.execute(workload.ddl)
        session = StreamSession(stack.node.connect, feed="stopfeed",
                                target_table=workload.target_table,
                                watermark_dir=str(tmp_path))
        session.open()
        StreamRunner(session, workload).run()
        # abandon the feed: client goes away without END_LOAD
        session.close(end_feed=False)
        node = stack.node
        feed = node._streams["stopfeed"]

        order = []
        journal_close = feed.journal.close
        obs_close = node.obs.close

        def tracked_journal_close():
            order.append("journal")
            journal_close()

        def tracked_obs_close():
            order.append("obs")
            obs_close()

        feed.journal.close = tracked_journal_close
        node.obs.close = tracked_obs_close
    finally:
        stack.close()

    assert order == ["journal", "obs"]
    assert stack.node._streams == {}
    # the quiesce left a flight-recorder trace for the post-mortem
    events = [e["event"] for e in
              stack.node.obs.flight.events("stream:stopfeed")]
    assert "feed_quiesced" in events


def test_stop_is_clean_with_no_open_feeds():
    workload = stream_workload(batches=2, rows_per_batch=5, drift=False,
                               feed="donefeed", seed=33)
    stack = make_node(config=HyperQConfig(credits=8))
    stack.engine.execute(workload.ddl)
    with StreamSession(stack.node.connect, feed="donefeed",
                       target_table=workload.target_table) as session:
        StreamRunner(session, workload).run()
    # the context manager ended the feed; stop has nothing to quiesce
    assert stack.node._streams == {}
    stack.close()
