"""Steady-state continuous ingestion: commits, watermark, fast-skip.

A scripted feed runs through one :class:`StreamSession`; every batch
must land exactly once, the gateway must journal a durable per-feed
watermark (compacted at every commit boundary, so the journal stays
O(state)), and a restarted client replaying the whole feed from batch
zero must fast-skip everything at or below the watermark without
creating server-side jobs.
"""

import json
import os

from repro.core.config import HyperQConfig
from repro.stream import StreamRunner, StreamSession
from repro.workloads.streamgen import stream_workload

from tests.conftest import make_node


def _config():
    return HyperQConfig(converters=2, filewriters=2, credits=8)


def test_steady_state_feed_lands_every_row_once(tmp_path):
    workload = stream_workload(batches=5, rows_per_batch=8, drift=False,
                               seed=13)
    with make_node(config=_config()) as stack:
        stack.engine.execute(workload.ddl)
        session = StreamSession(stack.node.connect, feed=workload.feed,
                                target_table=workload.target_table,
                                watermark_dir=str(tmp_path))
        with session:
            report = StreamRunner(session, workload).run()
        assert report.committed == 5
        assert report.skipped == report.routed == 0
        assert report.rows_inserted == workload.rows_total
        assert report.et_errors == report.uv_errors == 0
        rows = stack.engine.query(
            f"SELECT REC_ID FROM {workload.target_table}")
        assert len(rows) == workload.rows_total
        assert len(set(rows)) == workload.rows_total
        batches = stack.node.obs.registry.collect()[
            "hyperq_stream_batches_total"]["samples"]
        committed = [s for s in batches
                     if s["labels"]["outcome"] == "committed"]
        assert committed and committed[0]["value"] == 5


def test_watermark_journal_is_durable_and_compact(tmp_path):
    workload = stream_workload(batches=8, rows_per_batch=6, drift=False,
                               feed="wm_feed", seed=5)
    with make_node(config=_config()) as stack:
        stack.engine.execute(workload.ddl)
        session = StreamSession(stack.node.connect, feed="wm_feed",
                                target_table=workload.target_table,
                                watermark_dir=str(tmp_path))
        with session:
            StreamRunner(session, workload).run()
    path = os.path.join(str(tmp_path), "wm_feed.feed.jsonl")
    assert os.path.exists(path)
    lines = [json.loads(line) for line in
             open(path, encoding="utf-8") if line.strip()]
    # compacted at every commit boundary: O(state), not O(batches)
    assert len(lines) <= 2
    commit = [r for r in lines if r["t"] == "stream_commit"][-1]
    assert commit["seq"] == 7
    assert commit["total_rows"] == workload.rows_total
    assert commit["cursor"] == workload.batches[-1].cursor


def test_restarted_client_fast_skips_committed_batches(tmp_path):
    workload = stream_workload(batches=6, rows_per_batch=7, drift=False,
                               seed=3)
    with make_node(config=_config()) as stack:
        stack.engine.execute(workload.ddl)
        first = StreamSession(stack.node.connect, feed=workload.feed,
                              target_table=workload.target_table,
                              watermark_dir=str(tmp_path))
        first.open()
        StreamRunner(first, workload).run(batches=4)
        # simulate a crash: the feed stays open on the server
        first.close(end_feed=False)

        second = StreamSession(stack.node.connect, feed=workload.feed,
                               target_table=workload.target_table,
                               watermark_dir=str(tmp_path))
        with second:
            report = StreamRunner(second, workload).run()
        assert report.skipped == 4
        assert report.committed == 2
        rows = stack.engine.query(
            f"SELECT REC_ID FROM {workload.target_table}")
        assert len(rows) == workload.rows_total
        assert len(set(rows)) == workload.rows_total
        skipped = [
            s for s in stack.node.obs.registry.collect()[
                "hyperq_stream_batches_total"]["samples"]
            if s["labels"]["outcome"] == "skipped"]
        assert skipped and skipped[0]["value"] == 4


def test_stats_expose_open_feeds_and_end_stream_closes(tmp_path):
    workload = stream_workload(batches=3, rows_per_batch=5, drift=False,
                               feed="statfeed", seed=9)
    with make_node(config=_config()) as stack:
        stack.engine.execute(workload.ddl)
        session = StreamSession(stack.node.connect, feed="statfeed",
                                target_table=workload.target_table,
                                watermark_dir=str(tmp_path))
        session.open()
        StreamRunner(session, workload).run()
        snapshot = stack.node.stats()["streams"]
        assert "statfeed" in snapshot
        assert snapshot["statfeed"]["committed_seq"] == 2
        assert snapshot["statfeed"]["rows_committed"] == \
            workload.rows_total
        session.close()  # END_LOAD with stream_end closes the feed
        assert stack.node.stats()["streams"] == {}
