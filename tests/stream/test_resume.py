"""Kill + resume: a feed's watermark makes replays exactly-once.

The chaos injector drops one server→client send mid-run, killing the
client somewhere between a gateway-side batch commit and the client
observing it (the worst window: the gateway has journaled the
watermark, the client has not seen APPLY_RESULT).  A fresh client then
replays the *whole* feed from batch zero.  Exactly-once demands zero
duplicated and zero lost rows, and a final target state identical to a
run that was never interrupted.
"""

import pytest

from repro.core.config import HyperQConfig
from repro.errors import ReproError
from repro.stream import StreamRunner, StreamSession
from repro.workloads.streamgen import stream_workload

from tests.conftest import make_node


def _workload():
    return stream_workload(batches=6, rows_per_batch=12, drift=True,
                           add_at=2, rename_at=4, seed=21)


def _final_state(engine, table):
    return sorted(engine.query(
        f"SELECT REC_ID, CUST_NAME, JOIN_DATE, SRC_REGION FROM {table}"))


def reference_outcome():
    """The uninterrupted run every kill+resume must converge to."""
    workload = _workload()
    with make_node(config=HyperQConfig(credits=8)) as stack:
        stack.engine.execute(workload.ddl)
        with StreamSession(stack.node.connect, feed=workload.feed,
                           target_table=workload.target_table) as session:
            report = StreamRunner(session, workload).run()
        assert report.committed == 6
        return _final_state(stack.engine, workload.target_table)


@pytest.mark.parametrize("at_call", [6, 13, 21])
def test_killed_client_replays_feed_exactly_once(tmp_path, at_call):
    expected = reference_outcome()
    workload = _workload()
    config = HyperQConfig(
        converters=1, filewriters=1, credits=8,
        chaos_profile=[{"point": "net.send", "at_call": at_call,
                        "max_fires": 1}])
    with make_node(config=config) as stack:
        stack.engine.execute(workload.ddl)
        first = StreamSession(stack.node.connect, feed=workload.feed,
                              target_table=workload.target_table,
                              watermark_dir=str(tmp_path), sessions=1)
        first.open()
        # the dropped send kills the client partway through the feed
        with pytest.raises(ReproError):
            StreamRunner(first, workload).run()
        assert stack.node.stats()["resilience"]["faults_injected"] == 1

        # a fresh client replays from batch zero: committed batches
        # fast-skip, the half-done one resumes through its job journal
        second = StreamSession(stack.node.connect, feed=workload.feed,
                               target_table=workload.target_table,
                               watermark_dir=str(tmp_path), sessions=1)
        with second:
            report = StreamRunner(second, workload).run()
        assert report.skipped + report.committed == 6
        assert report.et_errors == report.uv_errors == 0

        final = _final_state(stack.engine, workload.target_table)
        # zero lost, zero duplicated: identical to the clean run
        assert final == expected
