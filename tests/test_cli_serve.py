"""CLI serve + --connect integration tests over real TCP."""

import threading
import time

from repro.cli import main
from tests.conftest import EXAMPLE_DATA, EXAMPLE_SCRIPT


def test_serve_and_connect(tmp_path, capsys):
    """`repro serve` in one thread, `repro run-script --connect` in
    another — the product deployment shape."""
    # find a free port by binding port 0 through the serve code itself:
    # run serve with an explicit ephemeral port chosen beforehand.
    import socket
    probe = socket.socket()
    probe.bind(("127.0.0.1", 0))
    port = probe.getsockname()[1]
    probe.close()

    (tmp_path / "job.etl").write_text(EXAMPLE_SCRIPT)
    (tmp_path / "input.txt").write_bytes(EXAMPLE_DATA)

    server_result = {}

    def serve():
        server_result["code"] = main([
            "serve", "--port", str(port), "--duration", "4"])

    server_thread = threading.Thread(target=serve, daemon=True)
    server_thread.start()
    # wait for the socket to come up
    deadline = time.time() + 3
    while time.time() < deadline:
        try:
            socket.create_connection(("127.0.0.1", port),
                                     timeout=0.2).close()
            break
        except OSError:
            time.sleep(0.05)

    code = main(["run-script", str(tmp_path / "job.etl"),
                 "--connect", f"127.0.0.1:{port}"])
    assert code == 0
    out = capsys.readouterr().out
    assert "2 inserted" in out

    server_thread.join(timeout=10)
    assert server_result.get("code") == 0
    final = capsys.readouterr().out
    assert "served 1 jobs, 2 rows" in final


def test_interpreter_set_chunk_and_retries(stack):
    """`.set chunk_kbytes` / `.set retry_attempts` reach the client."""
    from repro.legacy.script import ScriptInterpreter, parse_script
    script = EXAMPLE_SCRIPT.replace(
        ".begin import",
        ".set chunk_kbytes 1;\n.set retry_attempts 2;\n.begin import")
    interp = ScriptInterpreter(
        stack.node.connect, files={"input.txt": EXAMPLE_DATA})
    result = interp.run(parse_script(script))
    assert result.last_import.rows_inserted == 2
    assert interp.settings["chunk_kbytes"] == "1"
