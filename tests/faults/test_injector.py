"""Unit tests for the deterministic fault injector."""

import pytest

from repro.errors import PermanentFault, TransientFault
from repro.faults import (
    INJECTION_POINTS, FaultInjector, FaultRule, NULL_INJECTOR,
)


def fire_all(injector, point, calls):
    """Fire ``point`` ``calls`` times; return the call numbers that hit."""
    hits = []
    for call_no in range(1, calls + 1):
        try:
            injector.fire(point)
        except (TransientFault, PermanentFault):
            hits.append(call_no)
    return hits


class TestFaultRule:
    def test_unknown_point_rejected(self):
        with pytest.raises(ValueError, match="unknown injection point"):
            FaultRule(point="store.explode", probability=0.5)

    def test_no_trigger_rejected(self):
        with pytest.raises(ValueError, match="no trigger"):
            FaultRule(point="store.upload")

    def test_probability_out_of_range_rejected(self):
        with pytest.raises(ValueError, match="outside"):
            FaultRule(point="store.upload", probability=1.5)

    def test_unknown_error_class_rejected(self):
        with pytest.raises(ValueError, match="unknown error class"):
            FaultRule(point="store.upload", at_call=1, error="weird")

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(ValueError, match="unknown chaos-rule keys"):
            FaultRule.from_dict({"point": "store.upload", "at_call": 1,
                                 "frequency": 3})

    def test_from_dict_requires_point(self):
        with pytest.raises(ValueError, match="missing 'point'"):
            FaultRule.from_dict({"at_call": 1})

    def test_zero_based_triggers_rejected(self):
        with pytest.raises(ValueError, match="1-based"):
            FaultRule(point="copy.into", at_call=0)
        with pytest.raises(ValueError, match="every_nth"):
            FaultRule(point="copy.into", every_nth=0)


class TestTriggers:
    def test_at_call_fires_exactly_once(self):
        injector = FaultInjector(
            [FaultRule(point="store.upload", at_call=3)])
        assert fire_all(injector, "store.upload", 10) == [3]

    def test_every_nth_fires_periodically(self):
        injector = FaultInjector(
            [FaultRule(point="store.upload", every_nth=4)])
        assert fire_all(injector, "store.upload", 12) == [4, 8, 12]

    def test_max_fires_bounds_a_rule(self):
        injector = FaultInjector(
            [FaultRule(point="store.upload", every_nth=2, max_fires=2)])
        assert fire_all(injector, "store.upload", 10) == [2, 4]

    def test_probability_is_deterministic_per_seed(self):
        def schedule(seed):
            injector = FaultInjector(
                [FaultRule(point="copy.into", probability=0.3)],
                seed=seed)
            return fire_all(injector, "copy.into", 200)

        assert schedule(7) == schedule(7)  # same seed, same schedule
        assert schedule(7) != schedule(8)  # different seed differs
        assert 20 < len(schedule(7)) < 100  # roughly 30% of 200

    def test_points_count_calls_independently(self):
        injector = FaultInjector([
            FaultRule(point="store.upload", at_call=2),
            FaultRule(point="copy.into", at_call=2),
        ])
        injector.fire("copy.into")  # does not advance store.upload
        injector.fire("store.upload")
        with pytest.raises(TransientFault):
            injector.fire("store.upload")
        assert injector.calls("copy.into") == 1
        assert injector.calls("store.upload") == 2


class TestErrorClasses:
    def test_transient_fault_is_transient(self):
        injector = FaultInjector(
            [FaultRule(point="dml.apply", at_call=1, error="transient")])
        with pytest.raises(TransientFault) as info:
            injector.fire("dml.apply")
        assert info.value.transient
        assert info.value.point == "dml.apply"

    def test_permanent_fault_is_not_transient(self):
        injector = FaultInjector(
            [FaultRule(point="dml.apply", at_call=1, error="permanent",
                       message="disk on fire")])
        with pytest.raises(PermanentFault, match="disk on fire") as info:
            injector.fire("dml.apply")
        assert not info.value.transient

    def test_latency_only_rule_sleeps_without_raising(self):
        slept = []
        injector = FaultInjector(
            [FaultRule(point="store.upload", every_nth=2, error=None,
                       latency_s=0.25)],
            sleep=slept.append)
        injector.fire("store.upload")
        injector.fire("store.upload")
        assert slept == [0.25]
        assert injector.total_injected == 1


class TestFromProfile:
    def test_none_profile_is_disabled(self):
        injector = FaultInjector.from_profile(None)
        assert not injector.enabled
        injector.fire("store.upload")  # no-op

    def test_list_profile(self):
        injector = FaultInjector.from_profile(
            [{"point": "store.upload", "at_call": 1}])
        assert injector.enabled
        with pytest.raises(TransientFault):
            injector.fire("store.upload")

    def test_dict_profile_with_seed(self):
        injector = FaultInjector.from_profile(
            {"seed": 42, "rules": [{"point": "copy.into",
                                    "probability": 0.5}]})
        assert injector.seed == 42

    def test_explicit_seed_overrides_profile(self):
        injector = FaultInjector.from_profile(
            {"seed": 42, "rules": []}, seed=7)
        assert injector.seed == 7

    def test_unknown_profile_keys_rejected(self):
        with pytest.raises(ValueError, match="unknown chaos-profile"):
            FaultInjector.from_profile({"seeds": 42, "rules": []})

    def test_non_dict_non_list_rejected(self):
        with pytest.raises(ValueError, match="list or dict"):
            FaultInjector.from_profile("chaos")


class TestIntrospection:
    def test_snapshot_counts_by_point_and_kind(self):
        injector = FaultInjector([
            FaultRule(point="store.upload", every_nth=2),
            FaultRule(point="copy.into", at_call=1, error="permanent"),
        ])
        fire_all(injector, "store.upload", 4)
        fire_all(injector, "copy.into", 1)
        snap = injector.snapshot()
        assert snap["injected"] == {"store.upload:transient": 2,
                                    "copy.into:permanent": 1}
        assert snap["total_injected"] == 3
        assert snap["calls"] == {"store.upload": 4, "copy.into": 1}

    def test_null_injector_is_shared_and_disabled(self):
        assert not NULL_INJECTOR.enabled
        assert NULL_INJECTOR.total_injected == 0

    def test_all_points_accept_fire(self):
        for point in INJECTION_POINTS:
            NULL_INJECTOR.fire(point)
