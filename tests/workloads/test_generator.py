"""Workload generator tests."""

import pytest

from repro.legacy.datafmt import VartextFormat
from repro.workloads import (
    make_workload, multi_tenant_workloads, wide_workload,
)


class TestMakeWorkload:
    def test_row_count_and_width(self):
        workload = make_workload(rows=500, row_bytes=300, seed=1)
        assert workload.rows == 500
        assert abs(workload.avg_row_bytes - 300) < 30

    def test_deterministic_by_seed(self):
        a = make_workload(rows=50, seed=9)
        b = make_workload(rows=50, seed=9)
        c = make_workload(rows=50, seed=10)
        assert a.data == b.data
        assert a.data != c.data

    def test_data_decodes_against_layout(self):
        workload = make_workload(rows=40, row_bytes=120, seed=2)
        fmt = VartextFormat(workload.layout)
        rows = fmt.decode_records(workload.data)
        assert len(rows) == 40
        assert all(len(r) == workload.layout.arity for r in rows)

    def test_error_injection_counts(self):
        workload = make_workload(rows=300, row_bytes=100, seed=3,
                                 error_rate=0.1)
        assert workload.expected_date_errors > 0
        bad = workload.data.count(b"not-a-date")
        assert bad == workload.expected_date_errors

    def test_dup_injection(self):
        workload = make_workload(rows=300, row_bytes=100, seed=4,
                                 dup_rate=0.05)
        assert workload.expected_dup_errors > 0
        fmt = VartextFormat(workload.layout)
        keys = [r[0] for r in fmt.decode_records(workload.data)]
        assert len(keys) - len(set(keys)) >= 1

    def test_field_count_errors(self):
        workload = make_workload(rows=200, row_bytes=100, seed=5,
                                 field_count_error_rate=0.1)
        fmt = VartextFormat(workload.layout)
        from repro.errors import DataFormatError
        errors = [i for i in fmt.iter_decode(workload.data)
                  if isinstance(i, DataFormatError)]
        assert len(errors) == workload.expected_field_count_errors > 0

    def test_no_errors_by_default(self):
        workload = make_workload(rows=100, seed=6)
        assert workload.expected_good_rows == 100

    def test_rejects_bad_rows_param(self):
        with pytest.raises(ValueError):
            make_workload(rows=0)

    def test_dml_references_all_fields(self):
        workload = make_workload(rows=10, seed=7)
        for field in workload.layout.field_names:
            assert f":{field}" in workload.apply_sql


class TestWideWorkload:
    def test_column_count(self):
        workload = wide_workload(rows=20, columns=50)
        assert workload.layout.arity == 50
        fmt = VartextFormat(workload.layout)
        rows = fmt.decode_records(workload.data)
        assert all(len(r) == 50 for r in rows)

    def test_needs_two_columns(self):
        with pytest.raises(ValueError):
            wide_workload(rows=10, columns=1)


class TestMultiTenantPreset:
    def test_shape_and_skew(self):
        tenants = multi_tenant_workloads(
            tenants=3, scripts=2, base_rows=100, skew=2.0, seed=1)
        assert [t.tenant for t in tenants] == \
            ["tenant-0", "tenant-1", "tenant-2"]
        assert all(len(t.workloads) == 2 for t in tenants)
        # tenant t runs base_rows * skew**t rows per script.
        assert tenants[0].workloads[0].rows == 100
        assert tenants[1].workloads[0].rows == 200
        assert tenants[2].workloads[0].rows == 400
        assert tenants[2].total_rows == 800

    def test_distinct_tables_per_job(self):
        tenants = multi_tenant_workloads(tenants=2, scripts=3,
                                         base_rows=10, seed=2)
        tables = [w.target_table
                  for t in tenants for w in t.workloads]
        assert len(tables) == len(set(tables)) == 6
        assert tables[0] == "PROD.MT_T0_S0"

    def test_deterministic_by_seed(self):
        a = multi_tenant_workloads(tenants=2, scripts=1, base_rows=20,
                                   seed=5)
        b = multi_tenant_workloads(tenants=2, scripts=1, base_rows=20,
                                   seed=5)
        assert a[1].workloads[0].data == b[1].workloads[0].data

    def test_jobs_decode_against_their_layouts(self):
        tenants = multi_tenant_workloads(tenants=2, scripts=2,
                                         base_rows=15, seed=3)
        for tenant in tenants:
            for workload in tenant.workloads:
                fmt = VartextFormat(workload.layout)
                rows = fmt.decode_records(workload.data)
                assert len(rows) == workload.rows

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            multi_tenant_workloads(tenants=0)
        with pytest.raises(ValueError):
            multi_tenant_workloads(skew=0.5)
