"""WorkloadManager admission control: slots, queue, shedding."""

import threading
import time

import pytest

from repro.core.config import HyperQConfig
from repro.core.credits import CreditManager
from repro.errors import WlmThrottled
from repro.wlm import WorkloadManager


def make_manager(profile, credits=4):
    return WorkloadManager.from_config(
        HyperQConfig(wlm_profile=profile), CreditManager(credits))


class TestDisabled:
    def test_pass_through_when_no_profile(self):
        credits = CreditManager(2)
        manager = WorkloadManager.from_config(HyperQConfig(), credits)
        assert not manager.enabled
        assert manager.classify(tenant="x") == ""
        assert manager.admit("", "j1") is None
        assert manager.credit_source("") is credits
        manager.release(None)  # tolerated
        assert manager.snapshot() == {"enabled": False, "pools": {}}


class TestAdmission:
    def test_admit_and_release_slot(self):
        manager = make_manager([{"name": "p", "max_concurrency": 2}])
        t1 = manager.admit("p", "j1")
        t2 = manager.admit("p", "j2")
        snap = manager.snapshot()["pools"]["p"]
        assert snap["occupied_slots"] == 2
        assert snap["admitted"] == 2
        manager.release(t1)
        manager.release(t2)
        assert manager.snapshot()["pools"]["p"]["occupied_slots"] == 0

    def test_release_is_idempotent(self):
        manager = make_manager([{"name": "p", "max_concurrency": 1}])
        ticket = manager.admit("p", "j1")
        manager.release(ticket)
        manager.release(ticket)
        assert manager.snapshot()["pools"]["p"]["occupied_slots"] == 0

    def test_queue_full_sheds_immediately(self):
        manager = make_manager([{
            "name": "p", "max_concurrency": 1, "queue_limit": 0,
        }])
        manager.admit("p", "j1")
        started = time.monotonic()
        with pytest.raises(WlmThrottled) as info:
            manager.admit("p", "j2")
        assert time.monotonic() - started < 0.5  # no queue wait
        exc = info.value
        assert exc.reason == "queue_full"
        assert exc.pool == "p"
        assert exc.transient is True
        assert exc.retry_after_s > 0
        assert manager.snapshot()["pools"]["p"]["throttled"] == 1

    def test_queue_timeout_sheds_late(self):
        manager = make_manager([{
            "name": "p", "max_concurrency": 1, "queue_limit": 4,
            "queue_timeout_s": 0.1,
        }])
        manager.admit("p", "j1")
        started = time.monotonic()
        with pytest.raises(WlmThrottled) as info:
            manager.admit("p", "j2")
        assert time.monotonic() - started >= 0.1
        assert info.value.reason == "queue_timeout"
        snap = manager.snapshot()["pools"]["p"]
        assert snap["queue_timeouts"] == 1
        assert snap["queue_depth"] == 0  # waiter cleaned up

    def test_queued_admission_proceeds_on_release(self):
        manager = make_manager([{
            "name": "p", "max_concurrency": 1, "queue_limit": 2,
            "queue_timeout_s": 5.0,
        }])
        first = manager.admit("p", "j1")
        admitted = threading.Event()

        def wait_in_queue():
            ticket = manager.admit("p", "j2")
            admitted.set()
            manager.release(ticket)

        thread = threading.Thread(target=wait_in_queue, daemon=True)
        thread.start()
        time.sleep(0.05)
        assert not admitted.is_set()
        assert manager.snapshot()["pools"]["p"]["queue_depth"] == 1
        manager.release(first)
        assert admitted.wait(timeout=2)
        thread.join(timeout=2)
        snap = manager.snapshot()["pools"]["p"]
        assert snap["admitted"] == 2
        assert snap["max_admission_wait_s"] > 0

    def test_retry_after_hint_scales_with_queue_depth(self):
        manager = make_manager([{
            "name": "p", "max_concurrency": 1, "queue_limit": 1,
            "queue_timeout_s": 5.0, "retry_after_s": 0.2,
        }])
        manager.admit("p", "j1")
        threading.Thread(
            target=lambda: manager.release(manager.admit("p", "j2")),
            daemon=True).start()
        time.sleep(0.05)  # j2 now queued
        with pytest.raises(WlmThrottled) as info:
            manager.admit("p", "j3")
        # hint = retry_after_s * (queued + 1) with one job queued.
        assert info.value.retry_after_s == pytest.approx(0.4)

    def test_pools_are_isolated(self):
        manager = make_manager([
            {"name": "a", "max_concurrency": 1, "queue_limit": 0},
            {"name": "b", "max_concurrency": 1, "queue_limit": 0},
        ])
        manager.admit("a", "j1")
        with pytest.raises(WlmThrottled):
            manager.admit("a", "j2")
        # pool b is unaffected by a's saturation.
        ticket = manager.admit("b", "j3")
        manager.release(ticket)

    def test_credit_source_is_pool_bound(self):
        manager = make_manager([{"name": "p"}])
        source = manager.credit_source("p")
        credit = source.acquire()
        assert manager.arbiter.in_flight("p") == 1
        source.release(credit)
        manager.credits.check_conservation()

    def test_snapshot_includes_arbiter_stats(self):
        manager = make_manager([{"name": "p", "weight": 2.0}])
        snap = manager.snapshot()
        assert snap["enabled"] is True
        assert snap["policy"] == "fair"
        assert snap["pools"]["p"]["credits"]["weight"] == 2.0
