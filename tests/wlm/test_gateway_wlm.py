"""WLM through the gateway: classification, throttling, telemetry."""

import threading
import time

import pytest

from repro.core.config import HyperQConfig
from repro.errors import WlmThrottled
from repro.legacy.client import (
    ExportJobSpec, ImportJobSpec, LegacyEtlClient,
)
from repro.legacy.protocol import Message, MessageChannel, MessageKind
from repro.workloads.generator import make_workload
from tests.conftest import make_node

PROFILE = {
    "policy": "fair",
    "pools": [
        {"name": "etl", "weight": 2, "max_concurrency": 2,
         "queue_limit": 2, "queue_timeout_s": 5.0,
         "match": {"tenant": "acme*"}},
        {"name": "batch", "weight": 1, "max_concurrency": 1,
         "queue_limit": 0, "queue_timeout_s": 0.2,
         "retry_after_s": 0.05,
         "match": {"user": "batch*"}},
    ],
}


def wlm_stack(profile=PROFILE, credits=8):
    return make_node(config=HyperQConfig(
        credits=credits, wlm_profile=profile))


def import_spec(workload, **overrides) -> ImportJobSpec:
    spec = dict(
        target_table=workload.target_table,
        et_table=workload.et_table, uv_table=workload.uv_table,
        layout=workload.layout, apply_sql=workload.apply_sql,
        data=workload.data, sessions=2)
    spec.update(overrides)
    return ImportJobSpec(**spec)


class TestClassificationAndStats:
    def test_tenant_routes_to_pool_and_stats_report(self):
        workload = make_workload(rows=100, row_bytes=60, seed=3)
        stack = wlm_stack()
        try:
            stack.engine.execute(workload.ddl)
            client = LegacyEtlClient(stack.node.connect)
            client.logon("h", "alice", "pw")
            result = client.run_import(import_spec(
                workload, tenant="acme-eu"))
            assert result.rows_inserted == workload.expected_good_rows
            client.logoff()

            wlm = stack.node.stats()["wlm"]
            assert wlm["enabled"] is True
            assert wlm["pools"]["etl"]["admitted"] == 1
            assert wlm["pools"]["etl"]["occupied_slots"] == 0
            assert wlm["pools"]["batch"]["admitted"] == 0
            assert wlm["pools"]["etl"]["credits"]["grants"] > 0
        finally:
            stack.close()

    def test_user_fallback_classification(self):
        """Without an explicit tenant the logon user classifies."""
        workload = make_workload(rows=50, row_bytes=60, seed=4)
        stack = wlm_stack()
        try:
            stack.engine.execute(workload.ddl)
            client = LegacyEtlClient(stack.node.connect)
            client.logon("h", "batch_loader", "pw")
            client.run_import(import_spec(workload, sessions=1))
            client.logoff()
            wlm = stack.node.stats()["wlm"]
            assert wlm["pools"]["batch"]["admitted"] == 1
        finally:
            stack.close()

    def test_prometheus_exposition_has_wlm_families(self):
        workload = make_workload(rows=50, row_bytes=60, seed=5)
        stack = wlm_stack()
        try:
            stack.engine.execute(workload.ddl)
            client = LegacyEtlClient(stack.node.connect)
            client.logon("h", "u", "pw")
            client.run_import(import_spec(
                workload, tenant="acme-x", sessions=1))
            client.logoff()
            prom = stack.node.render_prometheus()
            for family in (
                "hyperq_wlm_admitted_total",
                "hyperq_wlm_queue_depth",
                "hyperq_wlm_slots_occupied",
                "hyperq_wlm_admission_wait_seconds",
                "hyperq_wlm_credit_grants_total",
                "hyperq_wlm_credit_wait_seconds",
            ):
                assert family in prom, family
            assert 'pool="etl"' in prom
        finally:
            stack.close()

    def test_disabled_wlm_reports_disabled(self):
        stack = make_node()
        try:
            wlm = stack.node.stats()["wlm"]
            assert wlm == {"enabled": False, "pools": {}}
        finally:
            stack.close()


class TestThrottling:
    def test_saturated_pool_throttles_begin_load(self):
        workload = make_workload(rows=30, row_bytes=60, seed=6)
        stack = wlm_stack()
        try:
            stack.engine.execute(workload.ddl)
            # Occupy batch's single slot out-of-band so the client's
            # BEGIN_LOAD finds the pool saturated with no queue room.
            ticket = stack.node.wlm.admit("batch", "occupier")
            client = LegacyEtlClient(stack.node.connect)
            client.logon("h", "batch_user", "pw")
            with pytest.raises(WlmThrottled) as info:
                client.run_import(import_spec(workload, sessions=1))
            exc = info.value
            assert exc.code == 3149
            assert exc.pool == "batch"
            assert exc.reason == "queue_full"
            assert exc.retry_after_s > 0
            assert exc.transient is True

            # The shed left nothing behind: no job state, and the pool
            # recovers as soon as the occupant finishes.
            assert not stack.node._jobs
            stack.node.wlm.release(ticket)
            result = client.run_import(import_spec(workload, sessions=1))
            assert result.rows_inserted == workload.expected_good_rows
            client.logoff()
            wlm = stack.node.stats()["wlm"]
            assert wlm["pools"]["batch"]["throttled"] == 1
            # the out-of-band occupier plus the successful import.
            assert wlm["pools"]["batch"]["admitted"] == 2
        finally:
            stack.close()

    def test_admission_retry_succeeds_after_backoff(self):
        """The legacy client's admission retry rides out a throttle."""
        workload = make_workload(rows=30, row_bytes=60, seed=7)
        stack = wlm_stack()
        try:
            stack.engine.execute(workload.ddl)
            ticket = stack.node.wlm.admit("batch", "occupier")
            # Free the slot shortly after the first (shed) attempt.
            timer = threading.Timer(
                0.15, lambda: stack.node.wlm.release(ticket))
            timer.start()
            client = LegacyEtlClient(stack.node.connect)
            client.logon("h", "batch_user", "pw")
            result = client.run_import(import_spec(
                workload, sessions=1, admission_retry_attempts=10,
                admission_backoff_s=0.05))
            assert result.rows_inserted == workload.expected_good_rows
            client.logoff()
            timer.cancel()
            wlm = stack.node.stats()["wlm"]
            assert wlm["pools"]["batch"]["throttled"] >= 1
            # the out-of-band occupier plus the successful import.
            assert wlm["pools"]["batch"]["admitted"] == 2
        finally:
            stack.close()

    def test_throttle_does_not_abort_in_flight_job(self):
        """An admitted job runs to completion while others are shed."""
        workload = make_workload(rows=200, row_bytes=80, seed=8)
        other = make_workload(rows=30, row_bytes=60, seed=9,
                              table="PROD.OTHER")
        stack = wlm_stack()
        try:
            stack.engine.execute(workload.ddl)
            stack.engine.execute(other.ddl)
            results = {}

            def run_big():
                client = LegacyEtlClient(stack.node.connect)
                client.logon("h", "batch_user", "pw")
                results["big"] = client.run_import(
                    import_spec(workload, sessions=1))
                client.logoff()

            thread = threading.Thread(target=run_big, daemon=True)
            thread.start()
            # Wait for the big job to hold batch's only slot.
            deadline = time.monotonic() + 5
            while time.monotonic() < deadline:
                pools = stack.node.stats()["wlm"]["pools"]
                if pools["batch"]["occupied_slots"] == 1:
                    break
                time.sleep(0.005)
            client = LegacyEtlClient(stack.node.connect)
            client.logon("h", "batch_rival", "pw")
            try:
                client.run_import(import_spec(other, sessions=1))
            except WlmThrottled:
                pass  # expected whenever the big job still runs
            client.logoff()
            thread.join(timeout=30)
            assert results["big"].rows_inserted == \
                workload.expected_good_rows
        finally:
            stack.close()


class TestThreadNamingAndExports:
    def test_job_threads_carry_job_id(self):
        workload = make_workload(rows=30, row_bytes=60, seed=10)
        stack = wlm_stack()
        try:
            stack.engine.execute(workload.ddl)
            channel = MessageChannel(stack.node.connect(), timeout=5)
            channel.request(
                Message(MessageKind.LOGON, {"user": "u"}),
                MessageKind.LOGON_OK)
            channel.request(
                Message(MessageKind.BEGIN_LOAD, {
                    "job_id": "threadjob", "target": workload.target_table,
                    "et_table": workload.et_table,
                    "uv_table": workload.uv_table,
                    "layout": {"name": "L", "fields": [
                        [f.name, f.type.render()]
                        for f in workload.layout.fields]},
                    "format": workload.format_spec.to_wire(),
                    "sessions": 1, "tenant": "acme-t",
                }), MessageKind.BEGIN_LOAD_OK)
            names = {t.name for t in threading.enumerate()}
            # Control handler and pipeline workers are job-attributed.
            assert any("job-threadjob-ctl" in n for n in names), names
            assert any(n.startswith("hyperq-job-threadjob-converter")
                       for n in names), names
            channel.request(
                Message(MessageKind.END_LOAD, {"job_id": "threadjob"}),
                MessageKind.END_LOAD_OK)
            channel.close()
        finally:
            stack.close()

    def test_data_session_threads_carry_session_no(self):
        stack = wlm_stack()
        try:
            channel = MessageChannel(stack.node.connect(), timeout=5)
            channel.request(
                Message(MessageKind.LOGON,
                        {"user": "u", "job_id": "sess", "session_no": 3}),
                MessageKind.LOGON_OK)
            names = {t.name for t in threading.enumerate()}
            assert any(n.endswith("job-sess-s3") for n in names), names
            channel.close()
        finally:
            stack.close()

    def test_export_completion_frees_slot_and_registry(self):
        workload = make_workload(rows=120, row_bytes=60, seed=11)
        stack = wlm_stack()
        try:
            stack.engine.execute(workload.ddl)
            client = LegacyEtlClient(stack.node.connect)
            client.logon("h", "alice", "pw")
            client.run_import(import_spec(
                workload, tenant="acme-eu", sessions=1))
            exported = client.run_export(ExportJobSpec(
                select_sql=f"SELECT * FROM {workload.target_table}",
                sessions=3, tenant="acme-eu"))
            assert exported.rows_exported == workload.expected_good_rows
            client.logoff()
            # Every session saw EOF, so the job is gone and both
            # admissions (load + export) released their slots.
            assert not stack.node._exports
            wlm = stack.node.stats()["wlm"]
            assert wlm["pools"]["etl"]["admitted"] == 2
            assert wlm["pools"]["etl"]["occupied_slots"] == 0
        finally:
            stack.close()
