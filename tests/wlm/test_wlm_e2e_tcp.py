"""Concurrent multi-tenant workload over real TCP sockets.

Several tenants run mixed load + export jobs concurrently against one
workload-managed Hyper-Q node behind a :class:`TcpListener`, with a
deliberately constrained pool configuration.  Every job must finish
with correct row counts — admission may delay or throttle-and-retry,
but never lose or abort work.
"""

import threading

from repro.cdw.cloudstore import CloudStore
from repro.cdw.engine import CdwEngine
from repro.core.config import HyperQConfig
from repro.core.gateway import HyperQNode
from repro.legacy.client import (
    ExportJobSpec, ImportJobSpec, LegacyEtlClient,
)
from repro.net_tcp import TcpListener
from repro.workloads.generator import multi_tenant_workloads

PROFILE = {
    "policy": "fair",
    "pools": [
        {"name": "light", "weight": 2, "max_concurrency": 2,
         "queue_limit": 4, "queue_timeout_s": 10.0,
         "match": {"tenant": "tenant-0"}},
        {"name": "heavy", "weight": 1, "max_concurrency": 1,
         "queue_limit": 2, "queue_timeout_s": 10.0,
         "retry_after_s": 0.05,
         "match": {"tenant": "tenant-*"}},
    ],
}


def test_multi_tenant_mixed_load_export_over_tcp():
    """K tenants x M scripts, loads then exports, constrained pools."""
    tenants = multi_tenant_workloads(
        tenants=3, scripts=2, base_rows=60, skew=2.0, seed=21,
        row_bytes=80)
    store = CloudStore()
    engine = CdwEngine(store=store)
    for tenant in tenants:
        for workload in tenant.workloads:
            engine.execute(workload.ddl)

    config = HyperQConfig(credits=4, converters=2, filewriters=2,
                          wlm_profile=PROFILE)
    listener = TcpListener()
    node = HyperQNode(engine, store, config, listener=listener).start()
    results: dict[tuple[str, str], tuple[int, int]] = {}
    failures: list[BaseException] = []
    lock = threading.Lock()

    def run_tenant_script(tenant, workload):
        try:
            client = LegacyEtlClient(listener.connect, timeout=60)
            client.logon("h", f"{tenant}_user", "pw")
            loaded = client.run_import(ImportJobSpec(
                target_table=workload.target_table,
                et_table=workload.et_table,
                uv_table=workload.uv_table,
                layout=workload.layout,
                apply_sql=workload.apply_sql,
                data=workload.data,
                sessions=2,
                tenant=tenant,
                admission_retry_attempts=40,
                admission_backoff_s=0.05))
            exported = client.run_export(ExportJobSpec(
                select_sql=f"SELECT * FROM {workload.target_table}",
                sessions=2,
                tenant=tenant,
                admission_retry_attempts=40,
                admission_backoff_s=0.05))
            client.logoff()
            with lock:
                results[(tenant, workload.name)] = (
                    loaded.rows_inserted, exported.rows_exported)
        except BaseException as exc:  # pragma: no cover - diagnostics
            failures.append(exc)

    threads = [
        threading.Thread(target=run_tenant_script,
                         args=(tenant.tenant, workload), daemon=True)
        for tenant in tenants for workload in tenant.workloads
    ]
    try:
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120)
        assert not failures, failures
        # Correctness under contention: every tenant's every script
        # loaded and re-exported its exact row count.
        for tenant in tenants:
            for workload in tenant.workloads:
                key = (tenant.tenant, workload.name)
                assert results[key] == (
                    workload.expected_good_rows,
                    workload.expected_good_rows), key

        node.credits.check_conservation()
        wlm = node.stats()["wlm"]
        # tenant-0 classified into 'light', the rest into 'heavy';
        # each script is one load + one export admission.
        assert wlm["pools"]["light"]["admitted"] == 4
        assert wlm["pools"]["heavy"]["admitted"] == 8
        for pool in wlm["pools"].values():
            assert pool["occupied_slots"] == 0
            assert pool["queue_depth"] == 0
        assert not node._exports
    finally:
        node.stop()
