"""FairShareCreditArbiter: shares, work conservation, starvation."""

import threading
import time

import pytest

from repro.core.credits import CreditManager
from repro.errors import BackPressureTimeout
from repro.wlm import FairShareCreditArbiter, PoolCredits


def make_arbiter(pool_size=4, timeout_s=5.0, weights=None, policy="fair"):
    manager = CreditManager(pool_size, timeout_s=timeout_s)
    return FairShareCreditArbiter(
        manager, weights or {"a": 1.0, "b": 1.0}, policy=policy)


class TestBasics:
    def test_needs_pools(self):
        with pytest.raises(ValueError):
            FairShareCreditArbiter(CreditManager(2), {})

    def test_positive_weights_required(self):
        with pytest.raises(ValueError):
            FairShareCreditArbiter(CreditManager(2), {"a": 0})

    def test_acquire_release_roundtrip(self):
        arb = make_arbiter()
        credit = arb.acquire("a")
        assert arb.in_flight("a") == 1
        assert arb.manager.in_flight == 1
        arb.release(credit, "a")
        assert arb.in_flight("a") == 0
        arb.manager.check_conservation()

    def test_unknown_pool_view_rejected(self):
        with pytest.raises(ValueError, match="unknown pool"):
            make_arbiter().view("zzz")

    def test_pool_credits_duck_types_manager(self):
        arb = make_arbiter()
        view = arb.view("b")
        assert isinstance(view, PoolCredits)
        credit = view.acquire()
        assert arb.in_flight("b") == 1
        view.release(credit)
        assert arb.in_flight("b") == 0

    def test_idle_pool_capacity_flows_to_busy_pool(self):
        """Work conservation: a lone pool may use the whole pool."""
        arb = make_arbiter(pool_size=4)
        held = [arb.acquire("a") for _ in range(4)]
        assert arb.in_flight("a") == 4
        for credit in held:
            arb.release(credit, "a")

    def test_timeout_propagates(self):
        arb = make_arbiter(pool_size=1, timeout_s=0.05)
        arb.acquire("a")
        with pytest.raises(BackPressureTimeout):
            arb.acquire("b")

    def test_snapshot_shape(self):
        arb = make_arbiter()
        credit = arb.acquire("a")
        snap = arb.snapshot()
        assert snap["a"]["in_flight"] == 1
        assert snap["a"]["grants"] == 1
        assert snap["b"]["in_flight"] == 0
        arb.release(credit, "a")


class TestFairness:
    def test_overshooting_pool_blocks_while_other_deprived(self):
        """A pool at its share yields the next credit to a deprived one."""
        arb = make_arbiter(pool_size=4, timeout_s=5.0)
        # a takes the whole pool while b is idle (work conservation).
        held_a = [arb.acquire("a") for _ in range(4)]

        got_b = threading.Event()

        def want_b():
            credit = arb.acquire("b")
            got_b.set()
            arb.release(credit, "b")

        thread = threading.Thread(target=want_b, daemon=True)
        thread.start()
        time.sleep(0.05)
        assert not got_b.is_set()

        # a releases one credit and immediately wants another; with b
        # waiting below its share, a must NOT reclaim it.
        arb.release(held_a.pop(), "a")
        assert got_b.wait(timeout=2)
        thread.join(timeout=2)
        for credit in held_a:
            arb.release(credit, "a")
        arb.manager.check_conservation()

    def test_fifo_policy_allows_reclaim(self):
        """The baseline policy grants first-come even when unfair."""
        arb = make_arbiter(pool_size=2, timeout_s=0.2, policy="fifo")
        held = [arb.acquire("a"), arb.acquire("a")]
        arb.release(held.pop(), "a")
        # Nothing stops a from hoarding under fifo.
        held.append(arb.acquire("a"))
        assert arb.in_flight("a") == 2
        for credit in held:
            arb.release(credit, "a")

    def test_starvation_regression(self):
        """The regression the arbiter exists for: a flood of pool-a
        sessions must not starve pool b's trickle.

        With a plain CreditManager (the FIFO baseline) pool b's single
        worker competes against 8 hoarding workers for every free
        token.  Under the fair arbiter, b must complete its fixed batch
        while the flood runs — and never wait anywhere near the
        timeout on any single acquire.
        """
        arb = make_arbiter(pool_size=4, timeout_s=10.0,
                           weights={"a": 1.0, "b": 1.0})
        stop = threading.Event()
        errors: list[BaseException] = []

        def flood():
            while not stop.is_set():
                try:
                    credit = arb.acquire("a")
                    time.sleep(0.001)
                    arb.release(credit, "a")
                except BaseException as exc:  # pragma: no cover
                    errors.append(exc)
                    return

        floods = [threading.Thread(target=flood, daemon=True)
                  for _ in range(8)]
        for thread in floods:
            thread.start()
        time.sleep(0.05)  # let the flood saturate the pool

        max_wait = 0.0
        try:
            for _ in range(20):
                started = time.monotonic()
                credit = arb.acquire("b")
                max_wait = max(max_wait, time.monotonic() - started)
                time.sleep(0.001)
                arb.release(credit, "b")
        finally:
            stop.set()
            for thread in floods:
                thread.join(timeout=5)
        assert not errors
        # Each wait must be bounded by a handful of hold periods, not
        # the 10s timeout a starved FIFO waiter would approach.
        assert max_wait < 1.0, f"pool b starved: waited {max_wait:.3f}s"
        arb.manager.check_conservation()
        assert arb.snapshot()["b"]["grants"] == 20

    def test_weighted_shares_respected_under_saturation(self):
        """A 3:1 weighting gives the heavy pool ~3x the in-flight slots."""
        arb = make_arbiter(pool_size=8, timeout_s=10.0,
                           weights={"heavy": 3.0, "light": 1.0})
        stop = threading.Event()
        peak = {"heavy": 0, "light": 0}
        lock = threading.Lock()

        def churn(pool):
            while not stop.is_set():
                credit = arb.acquire(pool)
                with lock:
                    peak[pool] = max(peak[pool], arb.in_flight(pool))
                time.sleep(0.001)
                arb.release(credit, pool)

        threads = [threading.Thread(target=churn, args=(pool,),
                                    daemon=True)
                   for pool in ("heavy", "light") for _ in range(8)]
        for thread in threads:
            thread.start()
        time.sleep(0.3)
        stop.set()
        for thread in threads:
            thread.join(timeout=5)
        arb.manager.check_conservation()
        # heavy's share is 6, light's is 2; transient overshoot is
        # allowed (work conservation) but sustained peaks must differ.
        assert peak["heavy"] > peak["light"]


class TestAcquireFailureRollback:
    class _ExplodingManager:
        """Duck-typed CreditManager whose acquire can be made to fail."""

        pool_size = 2
        timeout_s = None

        def __init__(self):
            self.explode = True

        def acquire(self):
            if self.explode:
                raise BackPressureTimeout("no credit (invariant broken)")
            return object()

        def release(self, credit):
            pass

    def test_failed_manager_acquire_rolls_back_in_flight(self):
        """If the wrapped manager raises despite the grant, the pool's
        in-flight count must roll back — otherwise perceived capacity
        shrinks permanently and grants eventually wedge."""
        manager = self._ExplodingManager()
        arb = FairShareCreditArbiter(manager, {"p": 1.0})
        with pytest.raises(BackPressureTimeout):
            arb.acquire("p")
        assert arb.in_flight("p") == 0

        # The pool recovers fully once the manager behaves again.
        manager.explode = False
        credits = [arb.acquire("p"), arb.acquire("p")]
        assert arb.in_flight("p") == 2
        for credit in credits:
            arb.release(credit, "p")
        assert arb.in_flight("p") == 0
