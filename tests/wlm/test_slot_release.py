"""Admission slots must be released on every job-death path.

A pool with ``max_concurrency=1, queue_limit=0`` makes leaks instantly
visible: if a failed or abandoned job kept its slot, the very next
BEGIN would be shed with WLM_THROTTLED and the pool would be bricked
until node restart.
"""

import time

import pytest

from repro.core.config import HyperQConfig
from repro.errors import ProtocolError
from repro.legacy.client import (
    ImportJobSpec, LegacyEtlClient, _layout_to_wire,
)
from repro.legacy.datafmt import FormatSpec
from repro.legacy.protocol import Message, MessageChannel, MessageKind
from repro.workloads.generator import make_workload
from tests.conftest import make_node

PROFILE = {
    "pools": [
        {"name": "only", "weight": 1, "max_concurrency": 1,
         "queue_limit": 0, "queue_timeout_s": 1.0, "match": {}},
    ],
}


def tight_stack():
    return make_node(config=HyperQConfig(
        credits=8, wlm_profile=PROFILE))


def occupied(stack) -> int:
    return stack.node.stats()["wlm"]["pools"]["only"]["occupied_slots"]


def wait_until(predicate, timeout_s: float = 5.0) -> None:
    deadline = time.monotonic() + timeout_s
    while not predicate():
        if time.monotonic() > deadline:
            raise AssertionError("condition not reached in time")
        time.sleep(0.01)


def import_spec(workload, **overrides) -> ImportJobSpec:
    spec = dict(
        target_table=workload.target_table,
        et_table=workload.et_table, uv_table=workload.uv_table,
        layout=workload.layout, apply_sql=workload.apply_sql,
        data=workload.data, sessions=1)
    spec.update(overrides)
    return ImportJobSpec(**spec)


def control_channel(stack) -> MessageChannel:
    channel = MessageChannel(stack.node.connect(), timeout=5)
    channel.request(
        Message(MessageKind.LOGON,
                {"host": "h", "user": "u", "password": "p"}),
        MessageKind.LOGON_OK)
    return channel


def data_channel(stack, job_id: str, session_no: int) -> MessageChannel:
    channel = MessageChannel(stack.node.connect(), timeout=5)
    channel.request(
        Message(MessageKind.LOGON,
                {"host": "h", "user": "u", "password": "p",
                 "job_id": job_id, "session_no": session_no}),
        MessageKind.LOGON_OK)
    return channel


def begin_load(channel, workload, job_id: str) -> None:
    channel.request(
        Message(MessageKind.BEGIN_LOAD, {
            "job_id": job_id,
            "target": workload.target_table,
            "et_table": workload.et_table,
            "uv_table": workload.uv_table,
            "layout": _layout_to_wire(workload.layout),
            "format": FormatSpec("vartext", "|").to_wire(),
            "sessions": 1,
        }),
        MessageKind.BEGIN_LOAD_OK)


class TestLoadSlotRelease:
    def test_failed_apply_releases_slot(self):
        """A failed application phase must not brick the pool: the
        client aborts the job and the very next BEGIN is admitted."""
        workload = make_workload(rows=40, row_bytes=60, seed=11)
        stack = tight_stack()
        try:
            stack.engine.execute(workload.ddl)
            client = LegacyEtlClient(stack.node.connect)
            client.logon("h", "u", "p")
            with pytest.raises(ProtocolError):
                client.run_import(import_spec(
                    workload,
                    apply_sql="insert into NO_SUCH_TABLE values "
                              "(:CUST_ID)"))
            # Slot freed immediately, no job state left behind.
            assert occupied(stack) == 0
            assert not stack.node._jobs

            # The pool (1 slot, 0 queue) admits the retry of the job.
            result = client.run_import(import_spec(workload))
            assert result.rows_inserted == workload.expected_good_rows
            client.logoff()
        finally:
            stack.close()

    def test_control_disconnect_releases_slot(self):
        """A client that crashes after BEGIN_LOAD (no END_LOAD ever
        arrives) must not hold its admission slot forever."""
        workload = make_workload(rows=20, row_bytes=60, seed=12)
        stack = tight_stack()
        try:
            stack.engine.execute(workload.ddl)
            channel = control_channel(stack)
            begin_load(channel, workload, "crashjob")
            assert occupied(stack) == 1
            channel.close()  # simulated client crash
            wait_until(lambda: occupied(stack) == 0)
            wait_until(lambda: not stack.node._jobs)
        finally:
            stack.close()

    def test_aborted_job_keeps_restartable_state(self):
        """Abort frees the slot but preserves checkpointed state, so a
        resume restart of the same job_id still works."""
        workload = make_workload(rows=40, row_bytes=60, seed=13)
        stack = tight_stack()
        try:
            stack.engine.execute(workload.ddl)
            client = LegacyEtlClient(stack.node.connect)
            client.logon("h", "u", "p")
            spec_kwargs = dict(
                target_table=workload.target_table,
                et_table=workload.et_table,
                uv_table=workload.uv_table,
                layout=workload.layout, data=workload.data,
                sessions=1, job_id="rerunme")
            with pytest.raises(ProtocolError):
                client.run_import(ImportJobSpec(
                    apply_sql="insert into NO_SUCH_TABLE values "
                              "(:CUST_ID)",
                    **spec_kwargs))
            assert occupied(stack) == 0

            result = client.run_import(ImportJobSpec(
                apply_sql=workload.apply_sql, resume=True,
                **spec_kwargs))
            assert result.rows_inserted == workload.expected_good_rows
            client.logoff()
            assert occupied(stack) == 0
        finally:
            stack.close()


class TestExportSlotRelease:
    def setup_rows(self, stack, rows: int = 50) -> None:
        stack.engine.execute("create table E (A varchar(12))")
        for i in range(rows):
            stack.engine.execute(
                f"insert into E values ('row-{i:04d}')")

    def begin_export(self, channel, job_id: str,
                     sessions: int = 2) -> None:
        channel.request(
            Message(MessageKind.BEGIN_EXPORT, {
                "job_id": job_id,
                "sql": "select A from E",
                "format": FormatSpec("vartext", "|").to_wire(),
                "sessions": sessions,
            }),
            MessageKind.BEGIN_EXPORT_OK)

    def test_dead_data_session_releases_slot(self):
        """A data session that dies before fetching its EOF counts as
        drained on teardown — the export completes and frees its slot
        once the surviving sessions reach EOF."""
        stack = tight_stack()
        try:
            self.setup_rows(stack)
            control = control_channel(stack)
            self.begin_export(control, "exp1", sessions=2)
            assert occupied(stack) == 1

            # Session 1 connects, fetches nothing, and dies.
            dead = data_channel(stack, "exp1", session_no=1)
            dead.close()

            # Session 0 drains its stripe to EOF.
            live = data_channel(stack, "exp1", session_no=0)
            chunk_no = 0
            while True:
                response = live.request(
                    Message(MessageKind.EXPORT_FETCH,
                            {"job_id": "exp1", "session_no": 0,
                             "chunk_no": chunk_no}),
                    MessageKind.EXPORT_DATA)
                if response.meta.get("eof"):
                    break
                chunk_no += 2
            live.close()
            wait_until(lambda: occupied(stack) == 0)
            wait_until(lambda: not stack.node._exports)
            control.close()
        finally:
            stack.close()

    def test_eof_tracked_by_session_not_chunk_stripe(self):
        """Repeated past-the-end fetches from ONE session must not
        complete a two-session export early."""
        stack = tight_stack()
        try:
            self.setup_rows(stack, rows=2)
            control = control_channel(stack)
            self.begin_export(control, "exp2", sessions=2)
            live = data_channel(stack, "exp2", session_no=0)
            # Two past-the-end fetches with different chunk parities —
            # under chunk-stripe accounting these would (wrongly) count
            # as both sessions having drained.
            for chunk_no in (100, 101):
                response = live.request(
                    Message(MessageKind.EXPORT_FETCH,
                            {"job_id": "exp2", "session_no": 0,
                             "chunk_no": chunk_no}),
                    MessageKind.EXPORT_DATA)
                assert response.meta["eof"] is True
            assert occupied(stack) == 1
            assert "exp2" in stack.node._exports

            other = data_channel(stack, "exp2", session_no=1)
            response = other.request(
                Message(MessageKind.EXPORT_FETCH,
                        {"job_id": "exp2", "session_no": 1,
                         "chunk_no": 102}),
                MessageKind.EXPORT_DATA)
            assert response.meta["eof"] is True
            wait_until(lambda: occupied(stack) == 0)
            live.close()
            other.close()
            control.close()
        finally:
            stack.close()

    def test_control_disconnect_releases_export_slot(self):
        """An export whose owning control connection vanishes before
        any session drains is dropped and its slot freed."""
        stack = tight_stack()
        try:
            self.setup_rows(stack)
            control = control_channel(stack)
            self.begin_export(control, "exp3", sessions=2)
            assert occupied(stack) == 1
            control.close()  # simulated client crash
            wait_until(lambda: occupied(stack) == 0)
            wait_until(lambda: not stack.node._exports)
        finally:
            stack.close()
