"""WlmProfile / PoolSpec: parsing, validation, classification."""

import pytest

from repro.wlm import DEFAULT_POOL, PoolSpec, WlmProfile


class TestPoolSpec:
    def test_defaults(self):
        spec = PoolSpec(name="p")
        assert spec.weight == 1.0
        assert spec.max_concurrency == 8
        assert spec.queue_limit == 16
        assert spec.queue_timeout_s == 10.0

    def test_from_dict_unknown_key_rejected(self):
        with pytest.raises(ValueError, match="unknown wlm-pool keys"):
            PoolSpec.from_dict({"name": "p", "priority": 3})

    def test_missing_name_rejected(self):
        with pytest.raises(ValueError, match="missing 'name'"):
            PoolSpec.from_dict({"weight": 2})

    @pytest.mark.parametrize("bad", [
        {"name": ""},
        {"name": "p", "weight": 0},
        {"name": "p", "weight": -1},
        {"name": "p", "max_concurrency": 0},
        {"name": "p", "queue_limit": -1},
        {"name": "p", "queue_timeout_s": -0.5},
        {"name": "p", "retry_after_s": -1},
        {"name": "p", "match": {"host": "x"}},
        {"name": "p", "match": "tenant=x"},
    ])
    def test_invalid_specs_rejected(self, bad):
        with pytest.raises(ValueError):
            PoolSpec.from_dict(bad)

    def test_match_globs(self):
        spec = PoolSpec(name="p", match={"tenant": "acme-*",
                                         "target": "PROD.*"})
        assert spec.matches({"tenant": "acme-eu", "target": "PROD.F"})
        assert not spec.matches({"tenant": "bi", "target": "PROD.F"})
        assert not spec.matches({"tenant": "acme-eu", "target": "DEV.F"})

    def test_missing_attr_compares_as_empty(self):
        spec = PoolSpec(name="p", match={"tenant": "acme*"})
        assert not spec.matches({})
        assert PoolSpec(name="q", match={"tenant": "*"}).matches({})

    def test_empty_match_is_catch_all(self):
        assert PoolSpec(name="p").matches({"tenant": "anyone"})

    def test_throttle_hint_scales_with_queue(self):
        spec = PoolSpec(name="p", retry_after_s=0.5)
        assert spec.throttle_hint_s(0) == 0.5
        assert spec.throttle_hint_s(3) == 2.0
        assert spec.throttle_hint_s(10_000) == 30.0  # capped


class TestWlmProfile:
    def test_none_means_disabled(self):
        assert WlmProfile.from_profile(None) is None

    def test_bare_list_form(self):
        profile = WlmProfile.from_profile(
            [{"name": "a"}, {"name": "b"}])
        assert profile.policy == "fair"
        assert set(profile.pools) == {"a", "b", DEFAULT_POOL}

    def test_dict_form(self):
        profile = WlmProfile.from_profile({
            "policy": "fifo",
            "default_pool": "rest",
            "pools": [{"name": "etl", "weight": 3}],
        })
        assert profile.policy == "fifo"
        assert profile.default_pool == "rest"
        assert set(profile.pools) == {"etl", "rest"}

    def test_unknown_top_level_key_rejected(self):
        with pytest.raises(ValueError, match="unknown wlm-profile keys"):
            WlmProfile.from_profile({"pools": [], "mode": "x"})

    def test_bad_type_rejected(self):
        with pytest.raises(ValueError, match="list or dict"):
            WlmProfile.from_profile("fair")

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError, match="unknown wlm policy"):
            WlmProfile.from_profile({"policy": "lottery", "pools": []})

    def test_duplicate_pool_names_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            WlmProfile.from_profile([{"name": "a"}, {"name": "a"}])

    def test_classification_first_match_wins(self):
        profile = WlmProfile.from_profile([
            {"name": "narrow", "match": {"tenant": "acme-eu"}},
            {"name": "wide", "match": {"tenant": "acme-*"}},
        ])
        assert profile.classify(tenant="acme-eu") == "narrow"
        assert profile.classify(tenant="acme-us") == "wide"
        assert profile.classify(tenant="other") == DEFAULT_POOL

    def test_declared_default_keeps_its_spec(self):
        profile = WlmProfile.from_profile([
            {"name": DEFAULT_POOL, "max_concurrency": 3},
        ])
        assert profile.pools[DEFAULT_POOL].max_concurrency == 3
        assert len(profile) == 1

    def test_declared_catch_all_shadows_default(self):
        profile = WlmProfile.from_profile([
            {"name": "everything"},  # empty match = catch-all
        ])
        assert profile.classify(tenant="x") == "everything"

    def test_classify_by_user_and_target(self):
        profile = WlmProfile.from_profile([
            {"name": "prod-etl",
             "match": {"user": "etl*", "target": "PROD.*"}},
        ])
        assert profile.classify(user="etl_1", target="PROD.F") == \
            "prod-etl"
        assert profile.classify(user="ana", target="PROD.F") == \
            DEFAULT_POOL
