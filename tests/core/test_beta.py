"""Beta tests: DML shaping over staging, apply, uniqueness emulation."""

import datetime

import pytest

from repro.cdw.cloudstore import CloudStore
from repro.cdw.engine import CdwEngine
from repro.core.beta import SEQ_COLUMN, Beta
from repro.core.config import HyperQConfig
from repro.core.converter import AcquisitionError
from repro.errors import SqlTranslationError
from repro.legacy.types import FieldDef, Layout, parse_type
from repro.sqlxc.render import render

LAYOUT = Layout("L", [
    FieldDef("K", parse_type("varchar(10)")),
    FieldDef("V", parse_type("varchar(10)")),
    FieldDef("D", parse_type("varchar(10)")),
])


def make_rig(native_unique=True, config=None):
    engine = CdwEngine(store=CloudStore(), native_unique=native_unique)
    engine.execute("CREATE TABLE TGT (K NVARCHAR(10) NOT NULL, "
                   "V NVARCHAR(10), D DATE, UNIQUE (K))")
    engine.execute("CREATE TABLE STG (K NVARCHAR, V NVARCHAR, "
                   "D NVARCHAR, __SEQ BIGINT)")
    engine.execute("CREATE TABLE ET (SEQNO INT, ERRCODE INT, "
                   "ERRFIELD NVARCHAR(128), ERRMSG NVARCHAR(512), "
                   "__RULE_ID NVARCHAR(64), __REASON NVARCHAR(256))")
    engine.execute("CREATE TABLE UV (K NVARCHAR(10), V NVARCHAR(10), "
                   "D DATE, SEQNO INT, ERRCODE INT)")
    beta = Beta(engine, config or HyperQConfig())
    return engine, beta


def stage_rows(engine, rows):
    table = engine.table("STG")
    table.rows = [tuple(r) + (i,) for i, r in enumerate(rows)]


INSERT_SQL = ("insert into TGT values (trim(:K), :V, "
              "cast(:D as DATE format 'YYYY-MM-DD'))")


class TestPrepareDml:
    def test_insert_shape(self):
        engine, beta = make_rig()
        builder, kind = beta.prepare_dml(INSERT_SQL, LAYOUT, "STG")
        assert kind == "insert"
        sql = render(builder(5, 9))
        assert "FROM STG AS s" in sql
        assert f"s.{SEQ_COLUMN} BETWEEN 5 AND 9" in sql
        assert "TO_DATE(s.D, 'YYYY-MM-DD')" in sql

    def test_update_shape(self):
        engine, beta = make_rig()
        builder, kind = beta.prepare_dml(
            "update TGT set V = :V where TGT.K = :K", LAYOUT, "STG")
        assert kind == "update"
        sql = render(builder(0, 3))
        assert "UPDATE TGT SET" in sql
        assert "FROM STG AS s" in sql
        assert "BETWEEN 0 AND 3" in sql

    def test_delete_shape(self):
        engine, beta = make_rig()
        builder, kind = beta.prepare_dml(
            "delete from TGT where TGT.K = :K", LAYOUT, "STG")
        assert kind == "delete"
        assert "USING STG AS s" in render(builder(0, 0))

    def test_upsert_becomes_merge_over_staging(self):
        engine, beta = make_rig()
        builder, kind = beta.prepare_dml(
            "update TGT set V = :V where TGT.K = :K "
            "else insert into TGT values (:K, :V, NULL)", LAYOUT, "STG")
        assert kind == "merge"
        sql = render(builder(2, 4))
        assert sql.startswith("MERGE INTO TGT USING (SELECT")
        assert "BETWEEN 2 AND 4" in sql

    def test_multi_row_values_rejected(self):
        engine, beta = make_rig()
        with pytest.raises(SqlTranslationError):
            beta.prepare_dml(
                "insert into TGT values (:K, :V, NULL), (:K, :V, NULL)",
                LAYOUT, "STG")

    def test_select_rejected(self):
        engine, beta = make_rig()
        with pytest.raises(SqlTranslationError):
            beta.prepare_dml("select * from TGT", LAYOUT, "STG")


def apply(engine, beta, sql=INSERT_SQL, n=None, errors=(), **kwargs):
    if n is None:
        n = len(engine.table("STG").rows)
    chunk_records = {0: n + len(errors)}
    return beta.apply_dml(
        sql=sql, layout=LAYOUT, staging_table="STG",
        target_table="TGT", et_table="ET", uv_table="UV",
        chunk_records=chunk_records,
        acquisition_errors=list(errors), **kwargs)


class TestApply:
    def test_clean_load(self):
        engine, beta = make_rig()
        stage_rows(engine, [(" a ", "v1", "2020-01-01"),
                            ("b", "v2", "2020-01-02")])
        summary = apply(engine, beta)
        assert summary.rows_inserted == 2
        assert summary.statements == 1
        assert engine.query("SELECT K FROM TGT ORDER BY K") == \
            [("a",), ("b",)]

    def test_conversion_error_goes_to_et(self):
        engine, beta = make_rig()
        stage_rows(engine, [("a", "v", "2020-01-01"),
                            ("b", "v", "bad-date")])
        summary = apply(engine, beta)
        assert summary.rows_inserted == 1
        assert summary.et_errors == 1
        (row,) = engine.query(
            "SELECT SEQNO, ERRCODE, ERRFIELD, ERRMSG FROM ET")
        assert row[0] == 2
        assert row[1] == 3103
        assert row[2] == "D"
        assert "row number: 2" in row[3]

    def test_uniqueness_error_goes_to_uv_with_tuple(self):
        engine, beta = make_rig()
        stage_rows(engine, [("k1", "first", "2020-01-01"),
                            ("k1", "dup", "2020-01-02")])
        summary = apply(engine, beta)
        assert summary.uv_errors == 1
        (row,) = engine.query("SELECT K, V, SEQNO, ERRCODE FROM UV")
        assert row == ("k1", "dup", 2, 3805)
        # First occurrence won (legacy order semantics).
        assert engine.query("SELECT V FROM TGT") == [("first",)]

    def test_acquisition_errors_recorded_first(self):
        engine, beta = make_rig()
        stage_rows(engine, [("a", "v", "2020-01-01")])
        error = AcquisitionError(seq=1, code=2673, field=None,
                                 message="record has 2 fields")
        summary = apply(engine, beta, errors=[error])
        assert summary.et_errors == 1
        (row,) = engine.query("SELECT SEQNO, ERRCODE FROM ET")
        assert row == (2, 2673)

    def test_max_errors_range_report(self):
        engine, beta = make_rig()
        stage_rows(engine, [
            ("a", "v", "2020-01-01"),
            ("b", "v", "bad"),
            ("c", "v", "bad"),
            ("a", "v", "2020-12-01"),   # dup of row 1
            ("e", "v", "2020-12-01"),
        ])
        summary = apply(engine, beta, max_errors=2)
        messages = [r[0] for r in engine.query("SELECT ERRMSG FROM ET")]
        assert any("row numbers: (4, 5)" in m for m in messages)
        assert any("Max number of errors reached" in m for m in messages)
        assert summary.rows_inserted == 1

    def test_max_retries_range_report(self):
        engine, beta = make_rig()
        stage_rows(engine, [("a", "v", "bad")] * 8)
        summary = apply(engine, beta, max_retries=1)
        messages = [r[0] for r in engine.query("SELECT ERRMSG FROM ET")]
        assert all("Max number of retries reached" in m for m in messages)
        assert summary.rows_inserted == 0

    def test_update_apply(self):
        engine, beta = make_rig()
        engine.execute("INSERT INTO TGT VALUES ('a', 'old', NULL)")
        stage_rows(engine, [("a", "new", "x")])
        summary = apply(
            engine, beta,
            sql="update TGT set V = :V where TGT.K = trim(:K)")
        assert summary.rows_updated == 1
        assert engine.query("SELECT V FROM TGT") == [("new",)]

    def test_delete_apply(self):
        engine, beta = make_rig()
        engine.execute("INSERT INTO TGT VALUES ('a', 'x', NULL), "
                       "('b', 'y', NULL)")
        stage_rows(engine, [("a", "", "")])
        summary = apply(engine, beta,
                        sql="delete from TGT where TGT.K = trim(:K)")
        assert summary.rows_deleted == 1
        assert engine.query("SELECT K FROM TGT") == [("b",)]

    def test_upsert_apply(self):
        engine, beta = make_rig()
        engine.execute("INSERT INTO TGT VALUES ('a', 'old', NULL)")
        stage_rows(engine, [("a", "updated", "2020-01-01"),
                            ("c", "created", "2020-01-02")])
        summary = apply(
            engine, beta,
            sql="update TGT set V = :V where TGT.K = :K else insert "
                "into TGT values (:K, :V, "
                "cast(:D as DATE format 'YYYY-MM-DD'))")
        assert summary.rows_updated == 1
        assert summary.rows_inserted == 1
        assert engine.query("SELECT K, V FROM TGT ORDER BY K") == \
            [("a", "updated"), ("c", "created")]


class TestUniqueEmulation:
    def test_emulated_uniqueness_detected(self):
        engine, beta = make_rig(native_unique=False)
        stage_rows(engine, [("k1", "first", "2020-01-01"),
                            ("k1", "dup", "2020-01-02"),
                            ("k2", "ok", "2020-01-03")])
        summary = apply(engine, beta)
        assert summary.uv_errors == 1
        assert engine.query("SELECT K FROM TGT ORDER BY K") == \
            [("k1",), ("k2",)]
        assert engine.query("SELECT V FROM TGT WHERE K = 'k1'") == \
            [("first",)]

    def test_emulation_rollback_keeps_target_clean(self):
        engine, beta = make_rig(native_unique=False)
        engine.execute("INSERT INTO TGT VALUES ('k1', 'existing', NULL)")
        stage_rows(engine, [("k1", "dup", "2020-01-01")])
        summary = apply(engine, beta)
        assert summary.uv_errors == 1
        assert engine.query("SELECT COUNT(*) FROM TGT") == [(1,)]

    def test_forced_emulation_with_native_engine(self):
        engine, beta = make_rig(
            native_unique=True,
            config=HyperQConfig(force_unique_emulation=True))
        stage_rows(engine, [("k1", "a", "2020-01-01"),
                            ("k1", "b", "2020-01-02")])
        summary = apply(engine, beta)
        assert summary.uv_errors == 1


class TestRownumMapping:
    def test_multi_chunk_rownums(self):
        engine, beta = make_rig(config=HyperQConfig(seq_stride=100))
        table = engine.table("STG")
        # chunk 0 has 3 records, chunk 1 has 2: seq 100 -> row 4.
        table.rows = [
            ("a", "v", "2020-01-01", 0),
            ("b", "v", "2020-01-01", 1),
            ("c", "v", "2020-01-01", 2),
            ("d", "v", "bad-date", 100),
            ("e", "v", "2020-01-01", 101),
        ]
        summary = beta.apply_dml(
            sql=INSERT_SQL, layout=LAYOUT, staging_table="STG",
            target_table="TGT", et_table="ET", uv_table="UV",
            chunk_records={0: 3, 1: 2}, acquisition_errors=[])
        assert summary.rows_inserted == 4
        assert engine.query("SELECT SEQNO FROM ET") == [(4,)]
