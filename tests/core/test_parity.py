"""Parity: Hyper-Q over the CDW must match the reference legacy server.

The paper's whole premise is that the virtualized pipeline is
observationally equivalent to the legacy system: same loaded rows, same
rejected rows, same activity counts — for the same unmodified client,
script, and input file.  These tests run identical jobs against both
backends and diff the outcomes, including a property-based sweep over
random error placements.
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.bench.harness import build_stack
from repro.core.config import HyperQConfig
from repro.legacy.client import ImportJobSpec, LegacyEtlClient
from repro.legacy.server import LegacyServer
from repro.legacy.types import FieldDef, Layout, parse_type

LAYOUT = Layout("L", [
    FieldDef("K", parse_type("varchar(8)")),
    FieldDef("V", parse_type("varchar(16)")),
    FieldDef("D", parse_type("varchar(12)")),
])

DDL = ("create table T (K varchar(8) not null, V varchar(16), "
       "D date, unique (K))")
DML = ("insert into T values (trim(:K), :V, "
       "cast(:D as DATE format 'YYYY-MM-DD'))")


def _run_against(connect, data: bytes, sessions: int, chunk_bytes: int):
    client = LegacyEtlClient(connect)
    client.logon("h", "u", "p")
    client.execute_sql(DDL)
    result = client.run_import(ImportJobSpec(
        target_table="T", et_table="T_ET", uv_table="T_UV",
        layout=LAYOUT, apply_sql=DML, data=data,
        sessions=sessions, chunk_bytes=chunk_bytes))
    client.logoff()
    return result


def _observables(engine):
    target = engine.query("SELECT K, V, D FROM T ORDER BY K")
    et_rows = engine.query("SELECT SEQNO FROM T_ET ORDER BY SEQNO")
    uv_rows = engine.query("SELECT K, SEQNO FROM T_UV ORDER BY SEQNO")
    return target, et_rows, uv_rows


def run_both(data: bytes, sessions: int = 2, chunk_bytes: int = 64):
    server = LegacyServer().start()
    try:
        legacy_result = _run_against(server.connect, data, sessions,
                                     chunk_bytes)
        legacy_obs = _observables(server.engine)
    finally:
        server.stop()
    stack = build_stack(config=HyperQConfig(
        converters=2, filewriters=2, credits=8))
    try:
        hyperq_result = _run_against(stack.node.connect, data, sessions,
                                     chunk_bytes)
        hyperq_obs = _observables(stack.engine)
    finally:
        stack.close()
    return legacy_result, legacy_obs, hyperq_result, hyperq_obs


def make_file(rows):
    """rows: list of (key, value, kind) where kind in good/bad/dup."""
    lines = []
    for key, value, kind in rows:
        date = "2020-01-02" if kind != "baddate" else "garbage"
        lines.append(f"{key}|{value}|{date}")
    return ("\n".join(lines) + "\n").encode()


class TestParityExamples:
    def test_clean_load(self):
        data = make_file([(f"k{i}", f"v{i}", "good") for i in range(30)])
        lr, lo, hr, ho = run_both(data)
        assert lr.rows_inserted == hr.rows_inserted == 30
        assert lo == ho

    def test_bad_dates(self):
        rows = [(f"k{i}", f"v{i}", "baddate" if i % 5 == 0 else "good")
                for i in range(25)]
        lr, lo, hr, ho = run_both(make_file(rows))
        assert lr.et_errors == hr.et_errors == 5
        assert lo == ho

    def test_duplicates_first_wins(self):
        rows = [("a", "first", "good"), ("b", "x", "good"),
                ("a", "second", "good"), ("c", "y", "good"),
                ("a", "third", "good")]
        lr, lo, hr, ho = run_both(make_file(rows), chunk_bytes=24)
        assert lr.uv_errors == hr.uv_errors == 2
        assert lo == ho
        # the surviving tuple for key 'a' is the first occurrence
        assert ("a", "first", __import__("datetime").date(2020, 1, 2)) \
            in lo[0]

    def test_mixed_errors_many_chunk_sizes(self):
        rows = []
        for i in range(40):
            kind = "good"
            if i % 11 == 3:
                kind = "baddate"
            key = f"k{i if i % 13 != 7 else 0}"  # some dup keys
            rows.append((key, f"v{i}", kind))
        data = make_file(rows)
        reference = None
        for chunk_bytes in (16, 64, 1024, len(data)):
            lr, lo, hr, ho = run_both(data, chunk_bytes=chunk_bytes)
            assert lo == ho
            if reference is None:
                reference = ho
            else:
                # chunking must not change the outcome
                assert ho == reference


@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(
    st.lists(
        st.tuples(
            st.integers(0, 12),                      # key space (dups!)
            st.sampled_from(["good", "baddate"])),
        min_size=1, max_size=25),
    st.sampled_from([16, 48, 512]))
def test_parity_property(rows_spec, chunk_bytes):
    """For random inputs with random error placement and chunking, the
    virtualized pipeline is observationally identical to the legacy
    system."""
    rows = [(f"k{key}", f"v{i}", kind)
            for i, (key, kind) in enumerate(rows_spec)]
    lr, lo, hr, ho = run_both(make_file(rows), chunk_bytes=chunk_bytes)
    assert (lr.rows_inserted, lr.et_errors, lr.uv_errors) == \
        (hr.rows_inserted, hr.et_errors, hr.uv_errors)
    assert lo == ho
