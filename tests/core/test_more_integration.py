"""Additional end-to-end scenarios: multi-job scripts, Unicode data,
randomized export/import round trips."""

import datetime

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.legacy.client import (
    ExportJobSpec, ImportJobSpec, LegacyEtlClient,
)
from repro.legacy.script import ScriptInterpreter, parse_script
from repro.legacy.types import FieldDef, Layout, parse_type

MULTI_JOB_SCRIPT = """
.logon h/u,p;
create table A (K varchar(5), unique (K));
create table B (K varchar(5), N integer);
.layout LA;
.field K varchar(5);
.begin import tables A errortables A_ET A_UV;
.dml label IA;
insert into A values (trim(:K));
.import infile a.txt format vartext '|' layout LA apply IA;
.end load;
.layout LB;
.field K varchar(5);
.field N varchar(8);
.begin import tables B errortables B_ET B_UV;
.dml label IB;
insert into B values (trim(:K), cast(:N as integer));
.import infile b.txt format vartext '|' layout LB apply IB;
.end load;
insert into B select K, 0 from A where A.K not in (select K from B);
.logoff;
"""


class TestMultiJobScript:
    def test_two_loads_and_followup_sql(self, stack):
        files = {"a.txt": b"x1\nx2\nx3\n", "b.txt": b"x1|10\ny9|20\n"}
        interp = ScriptInterpreter(stack.node.connect, files=files)
        result = interp.run(parse_script(MULTI_JOB_SCRIPT))
        assert [imp.rows_inserted for imp in result.imports] == [3, 2]
        # follow-up INSERT..SELECT with a NOT IN subquery ran on the CDW
        rows = stack.engine.query("SELECT K, N FROM B ORDER BY K")
        assert rows == [("x1", 10), ("x2", 0), ("x3", 0), ("y9", 20)]
        assert len(stack.node.completed_jobs) == 2


class TestUnicodeEndToEnd:
    def test_unicode_values_survive_the_whole_stack(self, stack):
        client = LegacyEtlClient(stack.node.connect)
        client.logon("h", "u", "p")
        client.execute_sql(
            "create table U (NAME unicode(24), CITY unicode(24))")
        layout = Layout("L", [
            FieldDef("NAME", parse_type("unicode(24)")),
            FieldDef("CITY", parse_type("unicode(24)")),
        ])
        rows = [
            ("Søren", "Århus"),
            ("你好", "北京"),
            ("mötley—crüe", "NY|LA"),     # delimiter inside a value
            ("emoji 🚀", None),
        ]
        from repro.legacy.datafmt import VartextFormat
        data = VartextFormat(layout).encode_records(rows)
        result = client.run_import(ImportJobSpec(
            target_table="U", et_table="U_ET", uv_table="U_UV",
            layout=layout,
            apply_sql="insert into U values (:NAME, :CITY)",
            data=data, sessions=2, chunk_bytes=32))
        assert result.rows_inserted == 4
        stored = stack.engine.query("SELECT NAME, CITY FROM U")
        assert sorted(stored, key=repr) == sorted(rows, key=repr)
        exported = client.run_export(ExportJobSpec(
            "select NAME, CITY from U", sessions=2))
        decoded = VartextFormat(Layout("E", [
            FieldDef("NAME", parse_type("varchar(64)")),
            FieldDef("CITY", parse_type("varchar(64)")),
        ])).decode_records(exported.data)
        assert sorted(decoded, key=repr) == sorted(rows, key=repr)
        client.logoff()


_value = st.one_of(
    st.none(),
    st.text(
        alphabet=st.characters(codec="utf-8",
                               blacklist_categories=("Cs",),
                               blacklist_characters="\r"),
        min_size=1, max_size=12),
)


@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow,
                                 HealthCheck.function_scoped_fixture])
@given(st.lists(st.tuples(_value, _value), min_size=1, max_size=12))
def test_import_export_roundtrip_property(stack, rows):
    """Random text/NULL rows survive import -> CDW -> export exactly.

    Keys are made unique so uniqueness never interferes; the property
    under test is value fidelity across every conversion layer (vartext
    -> CSV staging -> CDW storage -> TDF -> legacy binary -> vartext).
    """
    client = LegacyEtlClient(stack.node.connect)
    client.logon("h", "u", "p")
    table = f"RT_{abs(hash(tuple(map(repr, rows)))) % 10**9}"
    client.execute_sql(
        f"create table {table} (I integer, A unicode(64), "
        f"B unicode(64))")
    layout = Layout("L", [
        FieldDef("I", parse_type("varchar(8)")),
        FieldDef("A", parse_type("unicode(64)")),
        FieldDef("B", parse_type("unicode(64)")),
    ])
    from repro.legacy.datafmt import VartextFormat
    fmt = VartextFormat(layout)
    keyed = [(str(i), a, b) for i, (a, b) in enumerate(rows)]
    result = client.run_import(ImportJobSpec(
        target_table=table, et_table=f"{table}_ET",
        uv_table=f"{table}_UV", layout=layout,
        apply_sql=f"insert into {table} values "
                  "(cast(:I as integer), :A, :B)",
        data=fmt.encode_records(keyed), sessions=1))
    assert result.rows_inserted == len(rows)
    exported = client.run_export(ExportJobSpec(
        f"select A, B from {table} order by I", sessions=1))
    out_layout = Layout("O", [
        FieldDef("A", parse_type("varchar(64)")),
        FieldDef("B", parse_type("varchar(64)")),
    ])
    decoded = VartextFormat(out_layout).decode_records(exported.data)
    assert decoded == [(a, b) for _, a, b in keyed]
    client.logoff()
