"""Adaptive error handler tests, driven by a scripted fake executor.

The handler is exercised against an in-memory oracle: a set of "bad"
sequence numbers.  Executing a range succeeds iff it contains no bad
seq — exactly the observable behaviour of set-oriented CDW DML.
"""

from hypothesis import given, strategies as st

from repro.core.errorhandling import AdaptiveErrorHandler
from repro.errors import BulkExecutionError


class Oracle:
    """Fake Beta: knows which seqs are bad, records everything."""

    def __init__(self, seqs, bad, uniqueness=()):
        self.seqs = list(seqs)
        self.bad = set(bad)
        self.uniqueness = set(uniqueness)
        self.loaded: list[int] = []
        self.tuple_errors: list[tuple[int, str]] = []
        self.range_errors: list[tuple[int, int, str]] = []
        self.executions = 0

    def execute_range(self, lo, hi):
        self.executions += 1
        covered = [s for s in self.seqs if lo <= s <= hi]
        for seq in covered:
            if seq in self.bad:
                kind = ("uniqueness" if seq in self.uniqueness
                        else "conversion")
                raise BulkExecutionError(f"bad seq in chunk", kind=kind)
        self.loaded.extend(covered)
        return (len(covered), 0, 0)

    def record_tuple_error(self, seq, exc):
        self.tuple_errors.append((seq, exc.kind))

    def record_range_error(self, lo, hi, exc, reason):
        self.range_errors.append((lo, hi, reason))

    def handler(self, max_errors=10**9, max_retries=64):
        return AdaptiveErrorHandler(
            execute_range=self.execute_range,
            record_tuple_error=self.record_tuple_error,
            record_range_error=self.record_range_error,
            max_errors=max_errors,
            max_retries=max_retries)


class TestBasics:
    def test_clean_data_single_statement(self):
        oracle = Oracle(range(100), bad=())
        outcome = oracle.handler().apply(list(range(100)))
        assert outcome.statements == 1
        assert outcome.rows_inserted == 100
        assert oracle.loaded == list(range(100))

    def test_empty_input(self):
        oracle = Oracle([], bad=())
        outcome = oracle.handler().apply([])
        assert outcome.statements == 0

    def test_single_bad_tuple_isolated(self):
        oracle = Oracle(range(8), bad={5})
        outcome = oracle.handler().apply(list(range(8)))
        assert outcome.tuple_errors == 1
        assert sorted(oracle.loaded) == [0, 1, 2, 3, 4, 6, 7]
        assert oracle.tuple_errors == [(5, "conversion")]

    def test_all_bad(self):
        oracle = Oracle(range(4), bad=set(range(4)))
        outcome = oracle.handler().apply(list(range(4)))
        assert outcome.tuple_errors == 4
        assert oracle.loaded == []

    def test_uniqueness_kind_preserved(self):
        oracle = Oracle(range(4), bad={2}, uniqueness={2})
        oracle.handler().apply(list(range(4)))
        assert oracle.tuple_errors == [(2, "uniqueness")]

    def test_processing_order_is_input_order(self):
        oracle = Oracle(range(16), bad={3, 9})
        oracle.handler().apply(list(range(16)))
        assert oracle.loaded == sorted(oracle.loaded)


class TestFigure6Trace:
    """The exact paper scenario: 5 rows, rows 2-3 bad, row 4 bad (dup),
    max_errors=2."""

    def test_max_errors_2(self):
        seqs = [1, 2, 3, 4, 5]
        oracle = Oracle(seqs, bad={2, 3, 4}, uniqueness={4})
        outcome = oracle.handler(max_errors=2).apply(seqs)
        # Rows 2 and 3 recorded individually; range (4, 5) recorded as
        # one error and NOT split, so row 5 is skipped despite being good.
        assert oracle.tuple_errors == [(2, "conversion"),
                                       (3, "conversion")]
        assert oracle.range_errors == [(4, 5, "max_errors")]
        assert oracle.loaded == [1]
        assert outcome.budget_exhausted


class TestLimits:
    def test_max_retries_records_range(self):
        seqs = list(range(16))
        oracle = Oracle(seqs, bad={7})
        outcome = oracle.handler(max_retries=1).apply(seqs)
        # Only one split allowed: the failing half is reported as a range.
        assert outcome.range_errors >= 1
        assert all(reason == "max_retries"
                   for _, _, reason in oracle.range_errors)
        # The clean half still loaded.
        assert set(oracle.loaded) >= set(range(8, 16))

    def test_max_retries_zero_records_whole_input(self):
        seqs = list(range(8))
        oracle = Oracle(seqs, bad={0})
        oracle.handler(max_retries=0).apply(seqs)
        assert oracle.range_errors == [(0, 7, "max_retries")]
        assert oracle.loaded == []

    def test_chunks_after_budget_still_attempted(self):
        """Budget exhaustion stops *splitting*, not execution: later
        clean chunks still load wholesale."""
        seqs = list(range(64))
        oracle = Oracle(seqs, bad={1})
        outcome = oracle.handler(max_errors=1).apply(seqs)
        assert outcome.budget_exhausted
        assert set(oracle.loaded) == set(range(64)) - {1}


@given(
    st.integers(min_value=1, max_value=60).flatmap(
        lambda n: st.tuples(
            st.just(n),
            st.sets(st.integers(0, n - 1), max_size=n))))
def test_exhaustive_splitting_property(case):
    """With no limits: every good tuple loads exactly once, every bad
    tuple is recorded exactly once, regardless of error placement."""
    n, bad = case
    seqs = list(range(n))
    oracle = Oracle(seqs, bad=bad)
    outcome = oracle.handler().apply(seqs)
    assert sorted(oracle.loaded) == sorted(set(seqs) - bad)
    assert len(oracle.loaded) == len(set(oracle.loaded))
    assert {s for s, _ in oracle.tuple_errors} == bad
    assert outcome.range_errors == 0
    # At most O(k log n + n/k)-ish executions; loose sanity bound.
    assert oracle.executions <= 4 * max(len(bad), 1) * (n.bit_length() + 1)
