"""Acquisition pipeline tests: drain, ordering, back-pressure, failures."""

import os
import tempfile

import pytest

from repro.cdw.bulkloader import CloudBulkLoader
from repro.cdw.cloudstore import CloudStore
from repro.cdw.engine import CdwEngine
from repro.core.config import HyperQConfig
from repro.core.converter import DataConverter
from repro.core.credits import CreditManager
from repro.core.metrics import JobMetrics
from repro.core.pipeline import AcquisitionPipeline
from repro.errors import GatewayError
from repro.legacy.datafmt import VartextFormat
from repro.legacy.types import FieldDef, Layout, parse_type

LAYOUT = Layout("L", [
    FieldDef("A", parse_type("varchar(20)")),
    FieldDef("B", parse_type("varchar(20)")),
])


@pytest.fixture
def rig(tmp_path):
    store = CloudStore()
    store.create_container("stage")
    engine = CdwEngine(store=store)
    engine.execute(
        "CREATE TABLE STG (A NVARCHAR, B NVARCHAR, __SEQ BIGINT)")
    config = HyperQConfig(converters=2, filewriters=2, credits=4,
                          file_threshold_bytes=64)
    credits = CreditManager(config.credits, timeout_s=10)
    metrics = JobMetrics(job_id="j1")
    pipeline = AcquisitionPipeline(
        converter=DataConverter(VartextFormat(LAYOUT),
                                seq_stride=config.seq_stride),
        credits=credits,
        loader=CloudBulkLoader(store),
        engine=engine,
        staging_table="STG",
        container="stage",
        prefix="j1/",
        staging_dir=str(tmp_path),
        config=config,
        metrics=metrics,
    )
    yield pipeline, engine, store, credits, metrics
    pipeline.shutdown()


class TestPipeline:
    def test_chunks_reach_staging_table(self, rig):
        pipeline, engine, _store, _credits, metrics = rig
        for seq in range(5):
            pipeline.submit_chunk(seq, f"a{seq}|b{seq}\n".encode())
        pipeline.drain()
        rows = engine.query("SELECT A, __SEQ FROM STG ORDER BY __SEQ")
        assert [r[0] for r in rows] == [f"a{i}" for i in range(5)]
        assert metrics.copy_rows == 5
        assert metrics.records_converted == 5

    def test_out_of_order_chunks_keep_seq_order(self, rig):
        pipeline, engine, _store, _credits, _metrics = rig
        for seq in (3, 0, 2, 1):
            pipeline.submit_chunk(seq, f"v{seq}|x\n".encode())
        pipeline.drain()
        rows = engine.query("SELECT A FROM STG ORDER BY __SEQ")
        assert rows == [("v0",), ("v1",), ("v2",), ("v3",)]

    def test_credits_returned_after_drain(self, rig):
        pipeline, _engine, _store, credits, _metrics = rig
        for seq in range(20):
            pipeline.submit_chunk(seq, b"a|b\n")
        pipeline.drain()
        credits.check_conservation()
        assert credits.available == credits.pool_size

    def test_back_pressure_engages_under_tiny_pool(self, rig):
        pipeline, _engine, _store, credits, _metrics = rig
        for seq in range(50):
            pipeline.submit_chunk(seq, b"a|b\n" * 20)
        pipeline.drain()
        # With 4 credits and 50 chunks, some acquires must have blocked
        # at least momentarily OR all completed fast; conservation holds
        # either way and min_available dipped.
        assert credits.min_available < credits.pool_size

    def test_multiple_files_cut_by_threshold(self, rig):
        pipeline, _engine, store, _credits, metrics = rig
        payload = ("x" * 30 + "|y\n").encode()
        for seq in range(10):
            pipeline.submit_chunk(seq, payload)
        pipeline.drain()
        assert metrics.files_written > 1
        assert len(store.list_blobs("stage", "j1/")) == \
            metrics.files_written

    def test_acquisition_errors_collected(self, rig):
        pipeline, engine, _store, _credits, _metrics = rig
        pipeline.submit_chunk(0, b"good|row\nbad-row\n")
        pipeline.drain()
        assert len(pipeline.acquisition_errors) == 1
        assert pipeline.chunk_records[0] == 2
        assert engine.query("SELECT COUNT(*) FROM STG") == [(1,)]

    def test_drain_is_idempotent(self, rig):
        pipeline, engine, _store, _credits, _metrics = rig
        pipeline.submit_chunk(0, b"a|b\n")
        pipeline.drain()
        pipeline.drain()
        assert engine.query("SELECT COUNT(*) FROM STG") == [(1,)]

    def test_worker_failure_surfaces_on_drain(self, rig):
        pipeline, _engine, _store, _credits, _metrics = rig

        def exploding_convert(chunk_seq, data):
            raise RuntimeError("converter crashed")

        pipeline.converter.convert = exploding_convert
        pipeline.submit_chunk(0, b"a|b\n")
        with pytest.raises(GatewayError, match="converter crashed"):
            pipeline.drain()

    def test_worker_failure_preserves_cause_and_failures(self, rig):
        from repro.errors import PipelineFailure
        pipeline, _engine, _store, _credits, _metrics = rig
        original = RuntimeError("converter crashed")

        def exploding_convert(chunk_seq, data):
            raise original

        pipeline.converter.convert = exploding_convert
        pipeline.submit_chunk(0, b"a|b\n")
        with pytest.raises(PipelineFailure) as info:
            pipeline.drain()
        # The worker-thread exception survives the thread hop intact:
        # as __cause__ (chained traceback) and in the failures list.
        assert info.value.__cause__ is original
        assert info.value.failures == [original]

    def test_staging_files_deleted_after_upload(self, rig, tmp_path):
        pipeline, _engine, _store, _credits, _metrics = rig
        payload = ("x" * 30 + "|y\n").encode()
        for seq in range(10):
            pipeline.submit_chunk(seq, payload)
        pipeline.drain()
        assert os.listdir(str(tmp_path)) == []
