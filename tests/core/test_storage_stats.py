"""stats()["storage"] and the hyperq_table_bytes gauge (PR 8).

The columnar storage layer is only observable if per-table footprint
surfaces in both the operational snapshot and the Prometheus
exposition, and the two must agree.
"""

import re

import pytest

from repro.bench.harness import build_stack
from repro.core.config import HyperQConfig


@pytest.fixture(scope="module")
def loaded_stack():
    """A node with two populated tables, shared by the assertions."""
    with build_stack(config=HyperQConfig()) as stack:
        stack.engine.execute(
            "CREATE TABLE ORDERS (ID INT, AMT DOUBLE, NOTE NVARCHAR)")
        stack.engine.execute("CREATE TABLE EMPTY (ID INT)")
        for i in range(200):
            stack.engine.execute(
                f"INSERT INTO ORDERS VALUES ({i}, {i}.5, 'n{i}')")
        yield stack


class TestStorageSnapshot:
    def test_stats_lists_every_table(self, loaded_stack):
        storage = loaded_stack.node.stats()["storage"]
        assert set(storage) >= {"ORDERS", "EMPTY"}
        orders = storage["ORDERS"]
        assert orders["rows"] == 200
        assert orders["bytes"] > 0
        assert orders["mode"] == "columnar"
        assert storage["EMPTY"]["rows"] == 0

    def test_row_mode_reported(self):
        with build_stack(config=HyperQConfig(columnar=False)) as stack:
            stack.engine.execute("CREATE TABLE R (ID INT)")
            stack.engine.execute("INSERT INTO R VALUES (1)")
            storage = stack.node.stats()["storage"]
            assert storage["R"]["mode"] == "rows"


class TestTableBytesGauge:
    def test_exposition_round_trip(self, loaded_stack):
        node = loaded_stack.node
        storage = node.stats()["storage"]
        text = node.render_prometheus()
        assert "# TYPE hyperq_table_bytes gauge" in text
        exposed = {
            match.group(1): float(match.group(2))
            for match in re.finditer(
                r'hyperq_table_bytes\{table="([^"]+)"\} (\S+)', text)
        }
        for name in ("ORDERS", "EMPTY"):
            assert exposed[name] == pytest.approx(storage[name]["bytes"])

    def test_gauge_tracks_growth(self, loaded_stack):
        node = loaded_stack.node
        before = node.stats()["storage"]["ORDERS"]["bytes"]
        loaded_stack.engine.execute(
            "INSERT INTO ORDERS VALUES (999, 1.0, 'tail')")
        after = node.stats()["storage"]["ORDERS"]["bytes"]
        assert after > before
