"""Edge cases: empty jobs, single-row jobs, pushdown boundaries."""

import pytest

from repro.cdw.engine import CdwEngine
from repro.legacy.client import ImportJobSpec, LegacyEtlClient
from repro.legacy.types import FieldDef, Layout, parse_type

LAYOUT = Layout("L", [FieldDef("A", parse_type("varchar(8)"))])


def run(stack, data: bytes, **kwargs):
    client = LegacyEtlClient(stack.node.connect)
    client.logon("h", "u", "p")
    if not stack.engine.catalog.exists("E"):
        client.execute_sql("create table E (A varchar(8))")
    spec = ImportJobSpec(
        target_table="E", et_table="E_ET", uv_table="E_UV",
        layout=LAYOUT, apply_sql="insert into E values (:A)",
        data=data, **kwargs)
    result = client.run_import(spec)
    client.logoff()
    return result


class TestEmptyAndTiny:
    def test_empty_input_file(self, stack):
        result = run(stack, b"")
        assert result.rows_inserted == 0
        assert result.chunks_sent == 0
        assert stack.node.completed_jobs[-1].records_converted == 0

    def test_single_row(self, stack):
        result = run(stack, b"only\n")
        assert result.rows_inserted == 1

    def test_input_without_trailing_newline(self, stack):
        result = run(stack, b"a\nb")
        assert result.rows_inserted == 2

    def test_more_sessions_than_chunks(self, stack):
        result = run(stack, b"a\nb\n", sessions=16, chunk_bytes=4)
        assert result.rows_inserted == 2

    def test_single_record_larger_than_chunk(self, stack):
        big = b"x" * 3000 + b"\n"
        # layout field is varchar(8): staging takes it (unbounded), the
        # DML cast to the 8-char target column fails -> ET error.
        result = run(stack, big, chunk_bytes=64)
        assert result.rows_inserted == 0
        assert result.et_errors == 1


class TestSortedSliceBoundaries:
    @pytest.fixture
    def engine(self):
        eng = CdwEngine()
        eng.execute("CREATE TABLE s (K BIGINT)")
        table = eng.table("s")
        table.rows = [(k,) for k in (1, 3, 3, 3, 7, 9)]
        table.sorted_by = "K"
        return eng

    def test_duplicate_keys_in_range(self, engine):
        assert engine.query(
            "SELECT COUNT(*) FROM s WHERE K BETWEEN 3 AND 3") == [(3,)]

    def test_range_below_all(self, engine):
        assert engine.query(
            "SELECT COUNT(*) FROM s WHERE K BETWEEN -5 AND 0") == [(0,)]

    def test_range_above_all(self, engine):
        assert engine.query(
            "SELECT COUNT(*) FROM s WHERE K BETWEEN 100 AND 200") == \
            [(0,)]

    def test_full_cover_range(self, engine):
        assert engine.query(
            "SELECT COUNT(*) FROM s WHERE K BETWEEN 0 AND 100") == [(6,)]

    def test_boundaries_inclusive(self, engine):
        assert engine.query(
            "SELECT COUNT(*) FROM s WHERE K BETWEEN 1 AND 9") == [(6,)]

    def test_alias_qualified_between(self, engine):
        assert engine.query(
            "SELECT COUNT(*) FROM s AS x WHERE x.K BETWEEN 3 AND 7") == \
            [(4,)]

    def test_negated_between_not_pushed(self, engine):
        assert engine.query(
            "SELECT COUNT(*) FROM s WHERE K NOT BETWEEN 3 AND 7") == \
            [(2,)]
