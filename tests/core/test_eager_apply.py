"""Eager-apply equivalence: pipelining must be invisible to semantics.

The acceptance property of ``HyperQConfig.eager_apply``: the same job
run with eager apply on and off — fault-free or under the example chaos
profile — produces row-for-row identical target, ET, and UV tables, the
same client-side checkpoint journal, and the same APPLY_RESULT counts.
The only observable differences are timing: a recorded
``overlap_s`` and the per-range ``eager.*`` spans.
"""

import json
import os
import time

import pytest

from repro.core.config import HyperQConfig
from repro.errors import ProtocolError
from repro.legacy.client import ImportJobSpec, LegacyEtlClient
from repro.legacy.types import FieldDef, Layout, parse_type

from tests.conftest import make_node
from tests.resilience.test_chaos_e2e import (
    run_customer_job, table_rows,
)

EXAMPLE_CHAOS = os.path.join(
    os.path.dirname(__file__), "..", "..", "examples",
    "chaos_profile.json")

TABLES = ("PROD.CUSTOMER", "PROD.CUSTOMER_ET", "PROD.CUSTOMER_UV")


def _config(**overrides) -> HyperQConfig:
    base = dict(converters=2, filewriters=2, credits=8,
                file_threshold_bytes=256)
    base.update(overrides)
    return HyperQConfig(**base)


def _run(config):
    with make_node(config=config) as stack:
        result = run_customer_job(stack)
        rows = {t: table_rows(stack, t) for t in TABLES}
        metrics = stack.node.completed_jobs[-1]
    return result, rows, metrics


class TestEagerEquivalence:
    def test_clean_run_matches_two_phase(self):
        base_result, base_rows, base_metrics = _run(_config())
        eager_result, eager_rows, eager_metrics = _run(
            _config(eager_apply=True))
        assert eager_rows == base_rows
        assert eager_result.rows_inserted == base_result.rows_inserted
        assert eager_result.et_errors == base_result.et_errors == 2
        assert eager_result.uv_errors == base_result.uv_errors == 4
        assert base_metrics.overlap_s == 0.0
        assert eager_metrics.overlap_s >= 0.0

    def test_chaos_profile_run_matches_two_phase(self):
        with open(EXAMPLE_CHAOS, "r", encoding="utf-8") as handle:
            chaos = json.load(handle)
        _, base_rows, _ = _run(_config())
        _, eager_rows, _ = _run(_config(
            eager_apply=True, chaos_profile=chaos,
            retry_base_delay_s=0.001, retry_max_delay_s=0.01))
        assert eager_rows == base_rows

    def test_client_checkpoint_journals_identical(self, tmp_path):
        """Acquisition-side durability is mode-independent: the client
        journals the same acked chunk set either way."""
        journals = {}
        for mode in (False, True):
            path = tmp_path / f"client-{mode}.jsonl"
            with make_node(config=_config(eager_apply=mode)) as stack:
                client = LegacyEtlClient(stack.node.connect, timeout=15)
                client.logon("h", "u", "p")
                client.execute_sql(
                    "create table R (A varchar(20) not null, "
                    "unique (A))")
                client.run_import(ImportJobSpec(
                    target_table="R", et_table="R_ET",
                    uv_table="R_UV",
                    layout=Layout("L", [
                        FieldDef("A", parse_type("varchar(20)"))]),
                    apply_sql="insert into R values (:A)",
                    data="".join(f"row-{i:04d}\n"
                                 for i in range(40)).encode(),
                    sessions=1, chunk_bytes=64,
                    journal_path=str(path)))
                client.logoff()
            with open(path, "r", encoding="utf-8") as handle:
                journals[mode] = sorted(handle.read().splitlines())
        assert journals[True] == journals[False]

    def test_eager_records_overlap_and_range_spans(self):
        config = _config(eager_apply=True, trace_enabled=True)
        with make_node(config=config) as stack:
            run_customer_job(stack)
            names = [r["name"] for r in stack.node.obs.tracer.records()]
            assert "eager.copy" in names
            assert "eager.apply_range" in names
            samples = stack.node.obs.registry.collect()[
                "hyperq_apply_overlap_seconds"]["samples"]
            assert samples and samples[0]["count"] == 1
            assert samples[0]["sum"] >= 0.0

    def test_apply_sql_mismatch_rejected(self):
        """Eager apply already ran the DML announced at BEGIN_LOAD; a
        different APPLY statement must fail loudly, not silently load
        the wrong thing."""
        with make_node(config=_config(eager_apply=True)) as stack:
            client = LegacyEtlClient(stack.node.connect, timeout=15)
            client.logon("h", "u", "p")
            client.execute_sql("create table R (A varchar(20))")
            client.execute_sql("create table R2 (A varchar(20))")
            control = client._require_control()
            from repro.legacy.client import _layout_to_wire
            from repro.legacy.datafmt import FormatSpec
            from repro.legacy.protocol import Message, MessageKind
            layout = Layout("L", [
                FieldDef("A", parse_type("varchar(20)"))])
            control.request(Message(MessageKind.BEGIN_LOAD, {
                "job_id": "mismatch", "target": "R",
                "et_table": "R_ET", "uv_table": "R_UV",
                "layout": _layout_to_wire(layout),
                "format": FormatSpec("vartext", "|").to_wire(),
                "sessions": 1,
                "apply_sql": "insert into R values (:A)",
            }), MessageKind.BEGIN_LOAD_OK)
            with pytest.raises(ProtocolError,
                               match="differs from the DML announced"):
                control.request(Message(MessageKind.APPLY_DML, {
                    "job_id": "mismatch",
                    "sql": "insert into R2 values (:A)",
                }), MessageKind.APPLY_RESULT)


class TestEagerResume:
    def test_resumed_eager_job_stays_exactly_once(self, tmp_path):
        """Kill an eager load mid-data and resume it: already-copied
        blobs and already-applied prefixes replay from the journal, and
        the final table is exactly-once."""
        from repro.errors import TransportClosed
        config = _config(
            converters=1, filewriters=1, file_threshold_bytes=16,
            eager_apply=True,
            chaos_profile=[{"point": "net.send", "at_call": 12,
                            "max_fires": 1}])
        data = "".join(
            f"row-{i:04d}-{'x' * 24}\n" for i in range(24)).encode()
        spec_kwargs = dict(
            target_table="R", et_table="R_ET", uv_table="R_UV",
            layout=Layout("L", [
                FieldDef("A", parse_type("varchar(40)"))]),
            apply_sql="insert into R values (:A)", data=data,
            sessions=1, chunk_bytes=16, job_id="eagerrestart",
            journal_path=str(tmp_path / "client.jsonl"))

        with make_node(config=config) as stack:
            client = LegacyEtlClient(stack.node.connect, timeout=15)
            client.logon("h", "u", "p")
            client.execute_sql(
                "create table R (A varchar(40) not null, unique (A))")
            with pytest.raises(TransportClosed):
                client.run_import(ImportJobSpec(**spec_kwargs))
            # Unlike the two-phase restart, run 1 may already have
            # applied a prefix into R before dying — those rows stay
            # (the engine survives) and the journal's watermark keeps
            # the resumed run from re-applying them.  The gateway's
            # applier outlives the client transport briefly, so wait
            # for the background apply to quiesce before snapshotting.
            applied_in_run1 = stack.engine.query(
                "SELECT COUNT(*) FROM R")[0][0]
            deadline = time.monotonic() + 10.0
            stable_since = time.monotonic()
            while time.monotonic() < deadline:
                time.sleep(0.05)
                count = stack.engine.query(
                    "SELECT COUNT(*) FROM R")[0][0]
                if count != applied_in_run1:
                    applied_in_run1 = count
                    stable_since = time.monotonic()
                elif time.monotonic() - stable_since >= 0.5:
                    break
            result = client.run_import(ImportJobSpec(
                **spec_kwargs, resume=True))
            client.logoff()
            assert result.uv_errors == 0  # nothing double-applied
            assert result.et_errors == 0
            assert result.rows_inserted == 24 - applied_in_run1
            assert stack.engine.query("SELECT COUNT(*) FROM R") == \
                [(24,)]
            assert stack.engine.query(
                "SELECT COUNT(DISTINCT A) FROM R") == [(24,)]
