"""Failure injection: the gateway must degrade cleanly, never wedge."""

import threading
import time

import pytest

from repro.core.config import HyperQConfig
from repro.errors import ProtocolError
from repro.legacy.client import ImportJobSpec, LegacyEtlClient
from repro.legacy.protocol import Message, MessageChannel, MessageKind
from repro.legacy.types import FieldDef, Layout, parse_type
from tests.conftest import make_node

LAYOUT = Layout("L", [FieldDef("A", parse_type("varchar(8)"))])


def simple_spec(**overrides):
    spec = dict(
        target_table="T", et_table="T_ET", uv_table="T_UV",
        layout=LAYOUT, apply_sql="insert into T values (:A)",
        data=b"a\nb\nc\n", sessions=1)
    spec.update(overrides)
    return ImportJobSpec(**spec)


class TestProtocolAbuse:
    def test_data_for_unknown_job(self, stack):
        channel = MessageChannel(stack.node.connect(), timeout=5)
        channel.request(Message(MessageKind.LOGON, {}),
                        MessageKind.LOGON_OK)
        channel.send(Message(MessageKind.DATA,
                             {"job_id": "ghost", "seq": 0}, body=b"x"))
        assert channel.recv().kind == MessageKind.ERROR

    def test_apply_for_unknown_job(self, stack):
        channel = MessageChannel(stack.node.connect(), timeout=5)
        channel.request(Message(MessageKind.LOGON, {}),
                        MessageKind.LOGON_OK)
        channel.send(Message(MessageKind.APPLY_DML,
                             {"job_id": "ghost", "sql": "select 1"}))
        assert channel.recv().kind == MessageKind.ERROR

    def test_gateway_survives_error_and_serves_next_request(self, stack):
        channel = MessageChannel(stack.node.connect(), timeout=5)
        channel.request(Message(MessageKind.LOGON, {}),
                        MessageKind.LOGON_OK)
        channel.send(Message(MessageKind.SQL_REQUEST,
                             {"sql": "select * from NOPE"}))
        assert channel.recv().kind == MessageKind.ERROR
        # Same connection still works afterwards.
        channel.send(Message(MessageKind.SQL_REQUEST,
                             {"sql": "select 1"}))
        assert channel.recv().kind == MessageKind.RESULT_SET

    def test_abrupt_disconnect_does_not_wedge_node(self, stack):
        channel = MessageChannel(stack.node.connect(), timeout=5)
        channel.request(Message(MessageKind.LOGON, {}),
                        MessageKind.LOGON_OK)
        channel.close()  # walk away mid-session
        # The node still serves new clients.
        client = LegacyEtlClient(stack.node.connect)
        client.logon("h", "u", "p")
        client.execute_sql("create table T (A varchar(8))")
        result = client.run_import(simple_spec())
        client.logoff()
        assert result.rows_inserted == 3

    def test_garbage_bytes_close_connection_only(self, stack):
        endpoint = stack.node.connect()
        endpoint.send_bytes(b"\xde\xad\xbe\xef" * 4)
        # Node must keep accepting fresh, well-behaved connections.
        client = LegacyEtlClient(stack.node.connect)
        client.logon("h", "u", "p")
        client.logoff()


class TestBadJobs:
    def test_apply_with_invalid_sql_reports_error(self, stack):
        client = LegacyEtlClient(stack.node.connect)
        client.logon("h", "u", "p")
        client.execute_sql("create table T (A varchar(8))")
        with pytest.raises(ProtocolError):
            client.run_import(simple_spec(
                apply_sql="THIS IS NOT SQL"))
        client.logoff()

    def test_apply_referencing_unknown_field_reports_error(self, stack):
        client = LegacyEtlClient(stack.node.connect)
        client.logon("h", "u", "p")
        client.execute_sql("create table T (A varchar(8))")
        with pytest.raises(ProtocolError):
            client.run_import(simple_spec(
                apply_sql="insert into T values (:NOT_A_FIELD)"))
        client.logoff()

    def test_node_usable_after_failed_job(self, stack):
        client = LegacyEtlClient(stack.node.connect)
        client.logon("h", "u", "p")
        client.execute_sql("create table T (A varchar(8))")
        with pytest.raises(ProtocolError):
            client.run_import(simple_spec(apply_sql="NOT SQL"))
        result = client.run_import(simple_spec())
        client.logoff()
        assert result.rows_inserted == 3


class TestBackPressureTimeout:
    def test_stalled_pipeline_times_out_cleanly(self):
        stack = make_node(config=HyperQConfig(
            converters=1, filewriters=1, credits=1,
            credit_timeout_s=0.2))
        try:
            client = LegacyEtlClient(stack.node.connect)
            client.logon("h", "u", "p")
            client.execute_sql("create table T (A varchar(8))")

            # Stall the single converter so credits never return.
            release = threading.Event()
            job_ids = []

            original_begin = stack.node._handle_begin_load

            def patched_begin(channel, message, conn):
                original_begin(channel, message, conn)
                job = stack.node._jobs[message.meta["job_id"]]
                job_ids.append(job.job_id)
                original_convert = job.pipeline.converter.convert

                def stalled_convert(seq, data):
                    release.wait(timeout=5)
                    return original_convert(seq, data)

                job.pipeline.converter.convert = stalled_convert

            stack.node._handle_begin_load = patched_begin
            data = b"".join(f"row{i}\n".encode() for i in range(50))
            with pytest.raises(ProtocolError, match="credit"):
                client.run_import(simple_spec(
                    data=data, chunk_bytes=16))
            release.set()
            time.sleep(0.1)
        finally:
            stack.close()
