"""Checkpoint/restart tests: sessions resume after connection failures.

A flaky transport drops the connection after a configured number of
sends; with ``retry_attempts`` the client reconnects and resumes from
its last unacknowledged chunk.  Because the gateway deduplicates chunk
sequence numbers, a chunk whose ack was lost can be resent without
double-loading — the end state is exactly-once.
"""

import threading

import pytest

from repro.errors import TransportClosed
from repro.legacy.client import ImportJobSpec, LegacyEtlClient
from repro.legacy.types import FieldDef, Layout, parse_type

LAYOUT = Layout("L", [FieldDef("A", parse_type("varchar(12)"))])


class _FlakyEndpoint:
    """Drops the connection after ``fail_after`` sends (once)."""

    def __init__(self, inner, fail_after: int, flag: dict):
        self._inner = inner
        self._fail_after = fail_after
        self._sends = 0
        self._flag = flag

    def send_bytes(self, data):
        self._sends += 1
        if not self._flag["tripped"] and self._sends > self._fail_after:
            self._flag["tripped"] = True
            self._inner.close_both()
            raise TransportClosed("injected connection failure")
        self._inner.send_bytes(data)

    def recv_bytes(self, timeout=None):
        return self._inner.recv_bytes(timeout=timeout)

    def close(self):
        self._inner.close()

    def close_both(self):
        self._inner.close_both()


def flaky_connect(node, fail_after: int):
    """Connection factory whose 2nd connection (a data session) is
    flaky — exactly once across the whole test."""
    flag = {"tripped": False}
    counter = {"n": 0}
    lock = threading.Lock()

    def connect():
        with lock:
            counter["n"] += 1
            number = counter["n"]
        endpoint = node.connect()
        if number == 2 and not flag["tripped"]:
            return _FlakyEndpoint(endpoint, fail_after, flag)
        return endpoint

    return connect, flag


def run_job(connect, sessions=1, retry_attempts=0):
    client = LegacyEtlClient(connect, timeout=5)
    client.logon("h", "u", "p")
    client.execute_sql(
        "create table R (A varchar(12) not null, unique (A))")
    data = "".join(f"row-{i:04d}\n" for i in range(40)).encode()
    result = client.run_import(ImportJobSpec(
        target_table="R", et_table="R_ET", uv_table="R_UV",
        layout=LAYOUT, apply_sql="insert into R values (:A)",
        data=data, sessions=sessions, chunk_bytes=64,
        retry_attempts=retry_attempts))
    client.logoff()
    return result


class TestRestart:
    def test_without_retries_job_fails(self, stack):
        connect, flag = flaky_connect(stack.node, fail_after=3)
        with pytest.raises(TransportClosed):
            run_job(connect, retry_attempts=0)
        assert flag["tripped"]

    def test_session_resumes_and_loads_exactly_once(self, stack):
        connect, flag = flaky_connect(stack.node, fail_after=3)
        result = run_job(connect, retry_attempts=2)
        assert flag["tripped"], "the failure must actually have fired"
        assert result.rows_inserted == 40
        assert result.uv_errors == 0  # no double-loaded rows
        rows = stack.engine.query("SELECT COUNT(*) FROM R")
        assert rows == [(40,)]

    def test_duplicate_chunk_submission_is_idempotent(self, stack):
        """Directly resend the same chunk seq — only one copy lands."""
        from repro.legacy.protocol import (
            Message, MessageChannel, MessageKind,
        )
        client = LegacyEtlClient(stack.node.connect)
        client.logon("h", "u", "p")
        client.execute_sql("create table R (A varchar(12))")
        control = client._control
        control.request(
            Message(MessageKind.BEGIN_LOAD, {
                "job_id": "duptest", "target": "R",
                "et_table": "R_ET", "uv_table": "R_UV",
                "layout": {"name": "L",
                           "fields": [["A", "VARCHAR(12)"]]},
                "format": "vartext:|", "sessions": 1,
            }), MessageKind.BEGIN_LOAD_OK)
        data_channel = MessageChannel(stack.node.connect(), timeout=5)
        data_channel.request(
            Message(MessageKind.LOGON,
                    {"job_id": "duptest", "session_no": 0}),
            MessageKind.LOGON_OK)
        for _ in range(3):  # same chunk, three times
            data_channel.request(
                Message(MessageKind.DATA,
                        {"job_id": "duptest", "session_no": 0,
                         "seq": 0}, body=b"x\ny\n"),
                MessageKind.DATA_ACK)
        data_channel.request(
            Message(MessageKind.DATA_EOF,
                    {"job_id": "duptest", "session_no": 0}),
            MessageKind.DATA_ACK)
        applied = control.request(
            Message(MessageKind.APPLY_DML,
                    {"job_id": "duptest",
                     "sql": "insert into R values (:A)"}),
            MessageKind.APPLY_RESULT)
        assert applied.meta["rows_inserted"] == 2
        control.request(Message(MessageKind.END_LOAD,
                                {"job_id": "duptest"}),
                        MessageKind.END_LOAD_OK)
        data_channel.close()
        client.logoff()


class TestNodeStats:
    def test_stats_snapshot(self, stack):
        run_job(stack.node.connect, retry_attempts=0)
        stats = stack.node.stats()
        assert stats["completed_jobs"] == 1
        assert stats["rows_loaded"] == 40
        assert stats["active_jobs"] == 0
        assert stats["credits"]["available"] == \
            stats["credits"]["pool_size"]
        assert stats["engine_statements"]["Insert"] >= 1
        assert stats["store_bytes_uploaded"] > 0
