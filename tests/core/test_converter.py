"""DataConverter tests: legacy chunk -> CSV staging bytes."""

import datetime

import pytest

from repro.cdw import stagefile
from repro.core.converter import DataConverter
from repro.errors import DataFormatError
from repro.legacy.datafmt import BinaryFormat, VartextFormat
from repro.legacy.types import FieldDef, Layout, parse_type

LAYOUT = Layout("L", [
    FieldDef("A", parse_type("varchar(20)")),
    FieldDef("B", parse_type("varchar(20)")),
])


def make_converter(record_format=None, stride=1000):
    fmt = record_format or VartextFormat(LAYOUT)
    return DataConverter(fmt, seq_stride=stride)


class TestConvert:
    def test_basic_vartext(self):
        converter = make_converter()
        converted = converter.convert(0, b"x|y\na|b\n")
        assert converted.records == 2
        rows = list(stagefile.decode_csv_rows(converted.csv_bytes))
        assert rows == [("x", "y", "0"), ("a", "b", "1")]

    def test_seq_uses_stride(self):
        converter = make_converter(stride=100)
        converted = converter.convert(3, b"x|y\n")
        rows = list(stagefile.decode_csv_rows(converted.csv_bytes))
        assert rows[0][-1] == "300"

    def test_null_becomes_marker_not_empty(self):
        """The null-detection discrepancy of Section 4: legacy empty
        vartext field -> CDW NULL marker."""
        converter = make_converter()
        converted = converter.convert(0, b"x|\n")
        assert b"\\N" in converted.csv_bytes
        rows = list(stagefile.decode_csv_rows(converted.csv_bytes))
        assert rows[0][1] is None

    def test_special_characters_escaped(self):
        converter = make_converter()
        data = VartextFormat(LAYOUT).encode_record(('a,"b', "c\nd"))
        converted = converter.convert(0, data)
        rows = list(stagefile.decode_csv_rows(converted.csv_bytes))
        assert rows[0][:2] == ('a,"b', "c\nd")

    def test_bad_records_become_acquisition_errors(self):
        converter = make_converter()
        converted = converter.convert(0, b"a|b\nonly-one-field\nc|d\n")
        assert converted.records == 2
        assert len(converted.errors) == 1
        assert converted.errors[0].seq == 1  # second record of chunk 0
        assert converted.total_records == 3

    def test_binary_input_types_serialized(self):
        layout = Layout("B", [
            FieldDef("N", parse_type("integer")),
            FieldDef("D", parse_type("date")),
        ])
        fmt = BinaryFormat(layout)
        converter = DataConverter(fmt, seq_stride=100)
        data = fmt.encode_record((7, datetime.date(2020, 1, 2)))
        converted = converter.convert(0, data)
        rows = list(stagefile.decode_csv_rows(converted.csv_bytes))
        assert rows == [("7", "2020-01-02", "0")]

    def test_stride_overflow_raises(self):
        converter = make_converter(stride=2)
        with pytest.raises(DataFormatError):
            converter.convert(0, b"a|b\nc|d\ne|f\n")

    def test_empty_chunk(self):
        converted = make_converter().convert(0, b"")
        assert converted.records == 0
        assert converted.csv_bytes == b""

    def test_scratch_buffer_does_not_leak_between_chunks(self):
        converter = make_converter()
        first = converter.convert(0, b"x|y\n")
        second = converter.convert(1, b"a|b\n")
        assert list(stagefile.decode_csv_rows(first.csv_bytes)) == \
            [("x", "y", "0")]
        assert list(stagefile.decode_csv_rows(second.csv_bytes)) == \
            [("a", "b", "1000")]


class TestOversizeChunk:
    """Oversized chunks are rejected up front, naming the staging table."""

    def test_message_names_chunk_and_staging_table(self):
        converter = DataConverter(
            VartextFormat(LAYOUT), seq_stride=2, staging_table="HQ_STG_7")
        with pytest.raises(DataFormatError) as excinfo:
            converter.convert(4, b"a|b\nc|d\ne|f\n")
        message = str(excinfo.value)
        assert "HQ_STG_7" in message
        assert "chunk 4" in message
        assert "3 records" in message
        assert "seq_stride" in message

    def test_rejected_before_converting_any_record(self):
        # The count check runs before row conversion: even a chunk whose
        # every record is malformed (conversion would error them out)
        # trips the stride check first.
        converter = make_converter(stride=1)
        with pytest.raises(DataFormatError):
            converter.convert(0, b"only-one-field\nanother\n")

    def test_exact_stride_is_accepted(self):
        converter = make_converter(stride=2)
        converted = converter.convert(0, b"a|b\nc|d\n")
        assert converted.records == 2
