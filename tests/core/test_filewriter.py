"""FileWriter tests: buffering, thresholds, flush."""

import os

from repro.core.filewriter import FileWriter


class TestFileWriter:
    def test_buffers_until_threshold(self, tmp_path):
        writer = FileWriter(str(tmp_path), 0, threshold_bytes=100)
        assert writer.append(b"x" * 40, records=4) is None
        assert writer.append(b"y" * 40, records=4) is None
        staged = writer.append(b"z" * 40, records=4)
        assert staged is not None
        assert staged.size == 120
        assert staged.records == 12
        with open(staged.path, "rb") as handle:
            assert handle.read() == b"x" * 40 + b"y" * 40 + b"z" * 40

    def test_flush_partial(self, tmp_path):
        writer = FileWriter(str(tmp_path), 0, threshold_bytes=1000)
        writer.append(b"abc", records=1)
        staged = writer.flush()
        assert staged is not None and staged.size == 3

    def test_flush_empty_returns_none(self, tmp_path):
        writer = FileWriter(str(tmp_path), 0, threshold_bytes=10)
        assert writer.flush() is None

    def test_file_names_are_unique_and_ordered(self, tmp_path):
        writer = FileWriter(str(tmp_path), 3, threshold_bytes=1)
        paths = [writer.append(b"x", records=1).path for _ in range(3)]
        names = [os.path.basename(p) for p in paths]
        assert names == sorted(names)
        assert all(name.startswith("part-03-") for name in names)

    def test_statistics(self, tmp_path):
        writer = FileWriter(str(tmp_path), 0, threshold_bytes=2)
        writer.append(b"ab", records=1)
        writer.append(b"cd", records=1)
        assert writer.files_written == 2
        assert writer.bytes_written == 4
