"""JobMetrics and Stopwatch tests."""

import time

from repro.core.metrics import JobMetrics, Stopwatch


class TestStopwatch:
    def test_accumulates(self):
        watch = Stopwatch()
        watch.start()
        time.sleep(0.02)
        watch.stop()
        first = watch.elapsed
        assert first >= 0.015
        watch.start()
        time.sleep(0.02)
        watch.stop()
        assert watch.elapsed > first

    def test_idempotent_start_stop(self):
        watch = Stopwatch()
        watch.start()
        watch.start()  # no-op
        watch.stop()
        elapsed = watch.elapsed
        watch.stop()  # no-op
        assert watch.elapsed == elapsed

    def test_context_manager(self):
        watch = Stopwatch()
        with watch:
            time.sleep(0.01)
        assert watch.elapsed >= 0.005
        assert not watch.running

    def test_context_manager_reentrant(self):
        """Entering an already-running stopwatch is harmless; the outer
        exit is what finally stops it."""
        watch = Stopwatch()
        watch.start()
        with watch:
            time.sleep(0.01)
        assert not watch.running
        assert watch.elapsed >= 0.005

    def test_context_manager_accumulates_across_uses(self):
        watch = Stopwatch()
        with watch:
            time.sleep(0.01)
        first = watch.elapsed
        with watch:
            time.sleep(0.01)
        assert watch.elapsed > first

    def test_context_manager_stops_on_exception(self):
        watch = Stopwatch()
        try:
            with watch:
                time.sleep(0.005)
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        assert not watch.running
        assert watch.elapsed >= 0.003


class TestJobMetrics:
    def test_other_is_residual(self):
        metrics = JobMetrics(total_s=10.0, acquisition_s=6.0,
                             application_s=3.0)
        assert metrics.other_s == 1.0

    def test_other_never_negative(self):
        metrics = JobMetrics(total_s=1.0, acquisition_s=2.0)
        assert metrics.other_s == 0.0

    def test_acquisition_rate(self):
        metrics = JobMetrics(acquisition_s=2.0,
                             bytes_received=4 * 1024 * 1024)
        assert metrics.acquisition_rate_mb_s == 2.0

    def test_rate_with_zero_time(self):
        assert JobMetrics().acquisition_rate_mb_s == 0.0

    def test_as_row_keys(self):
        row = JobMetrics(job_id="x", total_s=1.23456).as_row()
        assert row["total_s"] == 1.2346  # rounded
        assert "credit_waits" in row

    def test_as_row_covers_every_counter(self):
        metrics = JobMetrics(
            job_id="j", total_s=3.0, acquisition_s=1.0, application_s=1.5,
            chunks_received=4, bytes_received=100, records_converted=50,
            bytes_staged=90, files_written=2, bytes_uploaded=95,
            copy_rows=50, rows_inserted=48, et_errors=1, uv_errors=1,
            dml_statements=3, chunk_retries=2, credit_waits=5,
            credit_wait_s=0.12345)
        row = metrics.as_row()
        assert row["bytes_staged"] == 90
        assert row["files_written"] == 2
        assert row["bytes_uploaded"] == 95
        assert row["copy_rows"] == 50
        assert row["dml_statements"] == 3
        assert row["chunk_retries"] == 2
        assert row["credit_wait_s"] == 0.1235
        assert row["other_s"] == 0.5

    def test_as_row_identity_and_overlap_fields(self):
        metrics = JobMetrics(job_id="j9", trace_id="00af",
                             pool="etl", overlap_s=0.98765)
        row = metrics.as_row()
        # Identity columns lead the row so bench tables and flight
        # bundles key on them first.
        assert list(row)[:3] == ["job_id", "trace_id", "pool"]
        assert row["trace_id"] == "00af"
        assert row["pool"] == "etl"
        assert row["overlap_s"] == 0.9877

    def test_as_row_defaults_blank_identity(self):
        row = JobMetrics(job_id="j").as_row()
        assert row["trace_id"] == ""
        assert row["pool"] == ""
        assert row["overlap_s"] == 0.0
