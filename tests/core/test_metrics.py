"""JobMetrics and Stopwatch tests."""

import time

from repro.core.metrics import JobMetrics, Stopwatch


class TestStopwatch:
    def test_accumulates(self):
        watch = Stopwatch()
        watch.start()
        time.sleep(0.02)
        watch.stop()
        first = watch.elapsed
        assert first >= 0.015
        watch.start()
        time.sleep(0.02)
        watch.stop()
        assert watch.elapsed > first

    def test_idempotent_start_stop(self):
        watch = Stopwatch()
        watch.start()
        watch.start()  # no-op
        watch.stop()
        elapsed = watch.elapsed
        watch.stop()  # no-op
        assert watch.elapsed == elapsed

    def test_context_manager(self):
        watch = Stopwatch()
        with watch:
            time.sleep(0.01)
        assert watch.elapsed >= 0.005
        assert not watch.running


class TestJobMetrics:
    def test_other_is_residual(self):
        metrics = JobMetrics(total_s=10.0, acquisition_s=6.0,
                             application_s=3.0)
        assert metrics.other_s == 1.0

    def test_other_never_negative(self):
        metrics = JobMetrics(total_s=1.0, acquisition_s=2.0)
        assert metrics.other_s == 0.0

    def test_acquisition_rate(self):
        metrics = JobMetrics(acquisition_s=2.0,
                             bytes_received=4 * 1024 * 1024)
        assert metrics.acquisition_rate_mb_s == 2.0

    def test_rate_with_zero_time(self):
        assert JobMetrics().acquisition_rate_mb_s == 0.0

    def test_as_row_keys(self):
        row = JobMetrics(job_id="x", total_s=1.23456).as_row()
        assert row["total_s"] == 1.2346  # rounded
        assert "credit_waits" in row
