"""TDFCursor tests: ordered chunk serving with bounded prefetch."""

import threading

import pytest

from repro.cdw.engine import CdwEngine
from repro.core import tdf
from repro.core.tdfcursor import TdfCursor
from repro.errors import GatewayError


@pytest.fixture
def engine():
    eng = CdwEngine()
    eng.execute("CREATE TABLE t (A INT, B NVARCHAR(10))")
    rows = ", ".join(f"({i}, 'v{i}')" for i in range(25))
    eng.execute(f"INSERT INTO t VALUES {rows}")
    return eng


class TestCursor:
    def test_chunking(self, engine):
        cursor = TdfCursor(engine, "SELECT A FROM t ORDER BY A",
                           chunk_rows=10)
        assert cursor.total_rows == 25
        assert cursor.num_chunks == 3
        cursor.close()

    def test_packets_in_order(self, engine):
        cursor = TdfCursor(engine, "SELECT A FROM t ORDER BY A",
                           chunk_rows=10, prefetch=2)
        seen = []
        for chunk_no in range(cursor.num_chunks):
            packet = tdf.decode_packet(cursor.packet(chunk_no))
            assert packet.chunk_no == chunk_no
            seen.extend(row[0] for row in packet.rows)
        assert seen == list(range(25))
        assert cursor.packet(cursor.num_chunks) is None
        cursor.close()

    def test_out_of_order_requests(self, engine):
        """Sessions request interleaved chunk numbers (Section 3)."""
        cursor = TdfCursor(engine, "SELECT A FROM t ORDER BY A",
                           chunk_rows=5, prefetch=5)
        results = {}

        def fetch(session_no, session_count):
            chunk_no = session_no
            while chunk_no < cursor.num_chunks:
                packet = tdf.decode_packet(cursor.packet(chunk_no))
                results[chunk_no] = [r[0] for r in packet.rows]
                chunk_no += session_count

        threads = [threading.Thread(target=fetch, args=(i, 3))
                   for i in range(3)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        ordered = [v for _, vs in sorted(results.items()) for v in vs]
        assert ordered == list(range(25))
        cursor.close()

    def test_empty_result(self, engine):
        cursor = TdfCursor(engine, "SELECT A FROM t WHERE A < 0")
        assert cursor.num_chunks == 0
        assert cursor.packet(0) is None
        cursor.close()

    def test_non_select_rejected(self, engine):
        with pytest.raises(GatewayError):
            TdfCursor(engine, "INSERT INTO t VALUES (99, 'x')")

    def test_prefetch_bounded(self, engine):
        cursor = TdfCursor(engine, "SELECT A FROM t ORDER BY A",
                           chunk_rows=1, prefetch=3)
        import time
        deadline = time.monotonic() + 2
        while cursor._next_to_encode < 3 and time.monotonic() < deadline:
            time.sleep(0.01)
        # Encoder must stall at the prefetch window, not race ahead.
        assert cursor._next_to_encode <= 3 + 1
        cursor.close()
