"""CreditManager tests: blocking, conservation, statistics."""

import threading
import time

import pytest

from repro.core.credits import CreditManager
from repro.errors import BackPressureTimeout, GatewayError


class TestBasics:
    def test_acquire_release(self):
        manager = CreditManager(2)
        credit = manager.acquire()
        assert manager.available == 1
        assert manager.in_flight == 1
        manager.release(credit)
        assert manager.available == 2

    def test_empty_pool_rejected(self):
        with pytest.raises(GatewayError):
            CreditManager(0)

    def test_double_release_rejected(self):
        manager = CreditManager(1)
        credit = manager.acquire()
        manager.release(credit)
        with pytest.raises(GatewayError):
            manager.release(credit)

    def test_timeout(self):
        manager = CreditManager(1, timeout_s=0.05)
        manager.acquire()
        with pytest.raises(BackPressureTimeout):
            manager.acquire()

    def test_conservation_check(self):
        manager = CreditManager(3)
        credits = [manager.acquire() for _ in range(3)]
        manager.check_conservation()
        for credit in credits:
            manager.release(credit)
        manager.check_conservation()

    def test_conservation_detects_leak(self):
        manager = CreditManager(2)
        manager.acquire()
        manager._outstanding.clear()  # simulate a lost credit
        with pytest.raises(GatewayError):
            manager.check_conservation()

    def test_conservation_detects_counterfeit(self):
        """A credit injected from outside the pool breaks conservation."""
        manager = CreditManager(2)
        manager._outstanding.add(999)  # never minted by this pool
        with pytest.raises(GatewayError):
            manager.check_conservation()

    def test_conservation_holds_mid_flight(self):
        """The invariant holds at every point, not just at rest."""
        manager = CreditManager(4)
        held = []
        for _ in range(4):
            held.append(manager.acquire())
            manager.check_conservation()
        while held:
            manager.release(held.pop())
            manager.check_conservation()

    def test_release_foreign_credit_rejected(self):
        from repro.core.credits import Credit
        manager = CreditManager(1)
        with pytest.raises(GatewayError):
            manager.release(Credit(12345))


class TestBlocking:
    def test_blocked_acquire_wakes_on_release(self):
        manager = CreditManager(1, timeout_s=5)
        held = manager.acquire()
        acquired = threading.Event()

        def taker():
            manager.acquire()
            acquired.set()

        thread = threading.Thread(target=taker, daemon=True)
        thread.start()
        time.sleep(0.05)
        assert not acquired.is_set()
        manager.release(held)
        assert acquired.wait(timeout=2)
        assert manager.blocked_acquires == 1
        assert manager.total_wait_s > 0

    def test_stats_min_available(self):
        manager = CreditManager(4)
        credits = [manager.acquire() for _ in range(3)]
        assert manager.min_available == 1
        for credit in credits:
            manager.release(credit)
        assert manager.acquires == 3


class TestConcurrentStress:
    def test_many_workers_conserve_credits(self):
        """Property: after any interleaving, the pool is whole again."""
        manager = CreditManager(5, timeout_s=10)
        errors = []

        def worker():
            try:
                for _ in range(50):
                    credit = manager.acquire()
                    credits_snapshot = manager.in_flight
                    assert 0 < credits_snapshot <= 5
                    manager.release(credit)
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert manager.available == 5
        manager.check_conservation()

    def test_churn_with_conservation_asserted_throughout(self):
        """Conservation holds at every instant of a hot churn, not just
        at rest: an auditor thread asserts the invariant continuously
        while N workers acquire/hold/release as fast as they can."""
        manager = CreditManager(4, timeout_s=10)
        stop = threading.Event()
        errors: list[BaseException] = []

        def churn():
            try:
                for i in range(200):
                    credit = manager.acquire()
                    if i % 3 == 0:
                        time.sleep(0.0005)
                    manager.release(credit)
            except BaseException as exc:  # pragma: no cover
                errors.append(exc)

        def audit():
            try:
                while not stop.is_set():
                    manager.check_conservation()
            except BaseException as exc:  # pragma: no cover
                errors.append(exc)

        workers = [threading.Thread(target=churn) for _ in range(10)]
        auditor = threading.Thread(target=audit, daemon=True)
        auditor.start()
        for thread in workers:
            thread.start()
        for thread in workers:
            thread.join()
        stop.set()
        auditor.join(timeout=5)
        assert not errors
        assert manager.available == 4
        manager.check_conservation()
        assert manager.acquires == 10 * 200

    def test_churn_through_fair_share_arbiter_conserves(self):
        """The wlm arbiter in front of the pool must not break the
        manager's conservation invariant under concurrent churn."""
        from repro.wlm import FairShareCreditArbiter

        manager = CreditManager(4, timeout_s=10)
        arbiter = FairShareCreditArbiter(
            manager, {"a": 2.0, "b": 1.0})
        stop = threading.Event()
        errors: list[BaseException] = []

        def churn(pool):
            try:
                for _ in range(150):
                    credit = arbiter.acquire(pool)
                    manager.check_conservation()
                    arbiter.release(credit, pool)
            except BaseException as exc:  # pragma: no cover
                errors.append(exc)

        def audit():
            try:
                while not stop.is_set():
                    manager.check_conservation()
            except BaseException as exc:  # pragma: no cover
                errors.append(exc)

        workers = [threading.Thread(target=churn, args=(pool,))
                   for pool in ("a", "b") for _ in range(5)]
        auditor = threading.Thread(target=audit, daemon=True)
        auditor.start()
        for thread in workers:
            thread.start()
        for thread in workers:
            thread.join()
        stop.set()
        auditor.join(timeout=5)
        assert not errors
        assert manager.available == 4
        manager.check_conservation()
        assert arbiter.in_flight("a") == 0
        assert arbiter.in_flight("b") == 0
