"""Configuration invariance: tuning knobs must never change *results*.

The paper's tuning parameters (file-size threshold, compression,
parallelism, chunking, credit pool) trade performance; the loaded data
and error tables must be identical under every setting.  These tests
run the same job under disparate configurations and diff the outcomes.
"""

import pytest

from repro.bench.harness import build_stack, run_workload_through_hyperq
from repro.core.config import HyperQConfig
from repro.workloads import make_workload

CONFIGS = {
    "tiny-files": HyperQConfig(converters=1, filewriters=1, credits=2,
                               file_threshold_bytes=512),
    "wide": HyperQConfig(converters=8, filewriters=4, credits=64,
                         file_threshold_bytes=8 << 20),
    "gzip": HyperQConfig(converters=2, filewriters=2, credits=8,
                         compression="gzip"),
    "sync-ack": HyperQConfig(converters=2, filewriters=2, credits=8,
                             synchronous_ack=True),
}


def outcome(config: HyperQConfig, sessions: int, chunk_bytes: int):
    workload = make_workload(rows=400, row_bytes=120, seed=77,
                             error_rate=0.05, dup_rate=0.03,
                             table="I.T")
    with build_stack(config=config) as stack:
        metrics = run_workload_through_hyperq(
            stack, workload, sessions=sessions, chunk_bytes=chunk_bytes)
        target = stack.engine.query(
            "SELECT REC_ID, REC_NAME, JOIN_DATE FROM I.T "
            "ORDER BY REC_ID")
        et = stack.engine.query(
            "SELECT SEQNO, ERRCODE FROM I.T_ET ORDER BY SEQNO")
        uv = stack.engine.query(
            "SELECT REC_ID, SEQNO FROM I.T_UV ORDER BY SEQNO")
    return (metrics.rows_inserted, metrics.et_errors,
            metrics.uv_errors), target, et, uv


@pytest.fixture(scope="module")
def reference():
    return outcome(HyperQConfig(), sessions=2, chunk_bytes=4096)


@pytest.mark.parametrize("name", sorted(CONFIGS))
def test_config_invariance(name, reference):
    assert outcome(CONFIGS[name], sessions=2, chunk_bytes=4096) == \
        reference


@pytest.mark.parametrize("sessions,chunk_bytes", [
    (1, 128), (4, 128), (8, 997), (3, 10**6),
])
def test_chunking_invariance(sessions, chunk_bytes, reference):
    assert outcome(HyperQConfig(), sessions, chunk_bytes) == reference


def test_unique_emulation_invariance(reference):
    """Native vs emulated uniqueness must agree on the outcome."""
    workload = make_workload(rows=400, row_bytes=120, seed=77,
                             error_rate=0.05, dup_rate=0.03,
                             table="I.T")
    with build_stack(config=HyperQConfig(),
                     native_unique=False) as stack:
        metrics = run_workload_through_hyperq(
            stack, workload, sessions=2, chunk_bytes=4096)
        target = stack.engine.query(
            "SELECT REC_ID, REC_NAME, JOIN_DATE FROM I.T "
            "ORDER BY REC_ID")
        et = stack.engine.query(
            "SELECT SEQNO, ERRCODE FROM I.T_ET ORDER BY SEQNO")
        uv = stack.engine.query(
            "SELECT REC_ID, SEQNO FROM I.T_UV ORDER BY SEQNO")
    assert ((metrics.rows_inserted, metrics.et_errors,
             metrics.uv_errors), target, et, uv) == reference
