"""Kitchen-sink integration: every feature in one job.

One load job combining: multiple parallel sessions, small chunks, gzip
staging compression, a slow-ish simulated cloud link, injected date
errors + duplicate keys + field-count errors, Unicode payloads, a tight
credit pool, checkpoint/restart on a flaky connection, followed by a
verification export — the closest thing to the production case study
that fits in a unit test.
"""

import random

from repro.bench.harness import build_stack
from repro.core.config import HyperQConfig
from repro.legacy.client import (
    ExportJobSpec, ImportJobSpec, LegacyEtlClient,
)
from repro.legacy.datafmt import VartextFormat
from repro.legacy.types import FieldDef, Layout, parse_type

ROWS = 600

LAYOUT = Layout("L", [
    FieldDef("K", parse_type("varchar(10)")),
    FieldDef("NAME", parse_type("unicode(24)")),
    FieldDef("D", parse_type("varchar(10)")),
])


def build_input():
    rng = random.Random(4242)
    lines = []
    expected_good = 0
    date_errors = dup_errors = field_errors = 0
    seen_keys = set()
    for i in range(ROWS):
        roll = rng.random()
        key = f"K{i:06d}"
        name = rng.choice(["plain", "søren", "北京", "a|b", 'q"x'])
        date = f"202{rng.randrange(6)}-{1 + rng.randrange(12):02d}-" \
               f"{1 + rng.randrange(28):02d}"
        if roll < 0.04 and i > 0:
            key = f"K{rng.randrange(i):06d}"  # duplicate
        elif roll < 0.08:
            date = "garbage"
        elif roll < 0.10:
            lines.append(f"{key}|{name}")  # missing field
            field_errors += 1
            continue
        encoded_name = (name.replace("\\", "\\\\")
                        .replace("|", "\\|"))
        lines.append(f"{key}|{encoded_name}|{date}")
        if date == "garbage":
            date_errors += 1
        elif key in seen_keys:
            dup_errors += 1
        else:
            seen_keys.add(key)
            expected_good += 1
    data = ("\n".join(lines) + "\n").encode()
    return data, expected_good, date_errors, dup_errors, field_errors


def test_kitchen_sink():
    data, good, date_errors, dup_errors, field_errors = build_input()
    config = HyperQConfig(
        converters=3, filewriters=2, credits=4,
        compression="gzip", file_threshold_bytes=8 * 1024)
    stack = build_stack(config=config,
                        link_bandwidth_bytes_per_s=20e6)
    try:
        # A flaky second connection exercises checkpoint/restart.
        from tests.core.test_restart import flaky_connect
        connect, flag = flaky_connect(stack.node, fail_after=5)
        client = LegacyEtlClient(connect, timeout=10)
        client.logon("h", "u", "p")
        client.execute_sql(
            "create table KS (K varchar(10) not null, "
            "NAME unicode(24), D date, unique (K))")
        result = client.run_import(ImportJobSpec(
            target_table="KS", et_table="KS_ET", uv_table="KS_UV",
            layout=LAYOUT,
            apply_sql="insert into KS values (trim(:K), :NAME, "
                      "cast(:D as DATE format 'YYYY-MM-DD'))",
            data=data, sessions=3, chunk_bytes=512,
            retry_attempts=3))
        assert flag["tripped"], "the connection failure must have fired"
        assert result.rows_inserted == good
        assert result.et_errors == date_errors + field_errors
        assert result.uv_errors == dup_errors

        # Verify through an export: count and spot-check fidelity.
        export = client.run_export(ExportJobSpec(
            "sel K, NAME from KS order by K", sessions=2))
        assert export.rows_exported == good
        exported_rows = VartextFormat(Layout("E", [
            FieldDef("K", parse_type("varchar(10)")),
            FieldDef("NAME", parse_type("varchar(24)")),
        ])).decode_records(export.data)
        stored = stack.engine.query("SELECT K, NAME FROM KS ORDER BY K")
        assert exported_rows == stored

        # Node hygiene after everything.
        client.logoff()
        stack.node.credits.check_conservation()
        stats = stack.node.stats()
        assert stats["active_jobs"] == 0
        assert stats["completed_jobs"] == 1
    finally:
        stack.close()
