"""Differential tests: async sharded front end vs threaded baseline.

The async front end (``config.async_frontend``) must be invisible to
job semantics: every suite here runs the same client traffic against
both front ends and asserts identical results — row counts, error-table
routing, exported bytes, chaos kill+resume recovery, and WLM
throttle-and-retry behavior.  The threaded path is the long-lived
reference implementation, which is exactly what makes these
comparisons meaningful.
"""

import threading
import time

import pytest

from repro.core.config import HyperQConfig
from repro.errors import ConnectionLimited, TransportClosed
from repro.legacy.client import (
    ExportJobSpec, ImportJobSpec, LegacyEtlClient,
)
from repro.legacy.types import FieldDef, Layout, parse_type
from repro.net_async import default_shards, shard_key
from repro.net_tcp import TcpListener
from repro.workloads.generator import make_workload

from tests.conftest import make_node


def wait_until(predicate, timeout_s=10.0):
    deadline = time.monotonic() + timeout_s
    while not predicate():
        if time.monotonic() > deadline:
            raise AssertionError("condition never became true")
        time.sleep(0.01)


class TestShardKey:
    def test_deterministic_and_in_range(self):
        for shards in (1, 2, 4, 7):
            for target in ("PROD.FACT", "PROD.DIM", "T"):
                key = shard_key(target, "tenant-1", shards)
                assert 0 <= key < shards
                assert key == shard_key(target, "tenant-1", shards)

    def test_tenant_is_a_tiebreaker(self):
        """Same table, different tenants can differ; same pair never."""
        keys = {shard_key("PROD.FACT", f"tenant-{i}", 8)
                for i in range(64)}
        assert len(keys) > 1  # tenants actually spread

    def test_default_shards_bounded(self):
        assert 2 <= default_shards() <= 8


def run_jobs(async_frontend: bool, *, n_jobs: int = 3,
             shards: int = 3) -> dict:
    """Run a mixed clean/dirty load + export suite; return outcomes."""
    config = HyperQConfig(
        converters=2, filewriters=1, credits=16,
        async_frontend=async_frontend, gateway_shards=shards)
    stack = make_node(config=config)
    out = {}
    try:
        for i in range(n_jobs):
            dirty = i == n_jobs - 1
            workload = make_workload(
                rows=120, row_bytes=80, seed=11 + i,
                table=f"PROD.T{i}", name=f"job{i}",
                error_rate=0.05 if dirty else 0,
                dup_rate=0.05 if dirty else 0)
            client = LegacyEtlClient(stack.node.connect, timeout=60)
            client.logon("h", "etl", "pw")
            client.execute_sql(workload.ddl)
            loaded = client.run_import(ImportJobSpec(
                target_table=workload.target_table,
                et_table=workload.et_table,
                uv_table=workload.uv_table,
                layout=workload.layout,
                apply_sql=workload.apply_sql,
                data=workload.data,
                sessions=2, chunk_bytes=4096))
            exported = client.run_export(ExportJobSpec(
                select_sql=f"SELECT * FROM {workload.target_table}",
                sessions=2))
            client.logoff()
            rows = stack.engine.query(
                f"SELECT * FROM {workload.target_table}")
            out[workload.name] = {
                "inserted": loaded.rows_inserted,
                "et": loaded.et_errors,
                "uv": loaded.uv_errors,
                "exported": exported.rows_exported,
                "table": sorted(rows),
            }
        stack.node.credits.check_conservation()
        out["gateway"] = stack.node.stats()["gateway"]
    finally:
        stack.node.stop()
    return out


class TestDifferential:
    def test_async_equals_threaded_end_to_end(self):
        """Loads (clean + dirty) and exports: identical outcomes."""
        threaded = run_jobs(False)
        sharded = run_jobs(True)
        gateway = sharded.pop("gateway")
        threaded.pop("gateway")
        assert sharded == threaded
        assert gateway["frontend"] == "async"
        # The jobs actually went through shard workers, and every
        # routed frame was handled.
        assert sum(s["routed"] for s in gateway["shards"]) > 0
        assert all(s["routed"] == s["handled"]
                   for s in gateway["shards"])
        assert all(s["queue_depth"] == 0 for s in gateway["shards"])

    def test_same_table_loads_share_a_shard(self):
        """Two loads into one table hash to one shard (per-table locks
        stay shard-local by construction)."""
        config = HyperQConfig(
            converters=1, filewriters=1, credits=16,
            async_frontend=True, gateway_shards=4)
        stack = make_node(config=config)
        try:
            for i in range(2):
                workload = make_workload(
                    rows=40, row_bytes=60, seed=5, table="PROD.SAME",
                    name=f"round{i}")
                client = LegacyEtlClient(stack.node.connect, timeout=60)
                client.logon("h", "etl", "pw")
                if i == 0:
                    client.execute_sql(workload.ddl)
                client.run_import(ImportJobSpec(
                    target_table=workload.target_table,
                    et_table=workload.et_table,
                    uv_table=workload.uv_table,
                    layout=workload.layout,
                    apply_sql=workload.apply_sql,
                    data=workload.data, sessions=1))
                client.logoff()
            shards = stack.node.stats()["gateway"]["shards"]
            loaded_on = [s["shard"] for s in shards
                         if s["routed"] >= 4]  # BEGIN/DATA/APPLY/END
            assert loaded_on == \
                [shard_key("PROD.SAME", "etl", 4)]
        finally:
            stack.node.stop()


class TestChaosDifferential:
    """Kill+resume under seeded network chaos, on both front ends."""

    LAYOUT = Layout("L", [FieldDef("A", parse_type("varchar(20)"))])

    @pytest.mark.parametrize("async_frontend", [False, True])
    def test_dropped_ack_recovered_by_session_restart(
            self, async_frontend):
        # The 7th server send is a DATA_ACK; dropping it kills the
        # data session mid-flight, exactly once — the client's
        # checkpoint/restart machinery recovers on either front end.
        profile = [{"point": "net.send", "at_call": 7, "max_fires": 1}]
        config = HyperQConfig(
            converters=2, filewriters=2, credits=8,
            async_frontend=async_frontend, gateway_shards=2,
            chaos_profile=profile)
        stack = make_node(config=config)
        try:
            client = LegacyEtlClient(stack.node.connect, timeout=15)
            client.logon("h", "u", "p")
            client.execute_sql(
                "create table R (A varchar(20) not null, unique (A))")
            data = "".join(
                f"row-{i:04d}\n" for i in range(40)).encode()
            result = client.run_import(ImportJobSpec(
                target_table="R", et_table="R_ET", uv_table="R_UV",
                layout=self.LAYOUT,
                apply_sql="insert into R values (:A)", data=data,
                sessions=1, chunk_bytes=64, retry_attempts=2,
                reconnect_backoff_s=0.001))
            client.logoff()
            assert result.rows_inserted == 40
            assert result.uv_errors == 0  # nothing double-loaded
            assert stack.engine.query("SELECT COUNT(*) FROM R") == \
                [(40,)]
            assert stack.node.faults.snapshot()["injected"] == \
                {"net.send:transient": 1}
        finally:
            stack.node.stop()


WLM_PROFILE = {
    "policy": "fair",
    "pools": [
        {"name": "narrow", "weight": 1, "max_concurrency": 1,
         "queue_limit": 1, "queue_timeout_s": 10.0,
         "retry_after_s": 0.02, "match": {"tenant": "tenant-*"}},
    ],
}


class TestWlmDifferential:
    """Admission throttling must shed-and-retry identically."""

    @pytest.mark.parametrize("async_frontend", [False, True])
    def test_throttled_tenants_all_complete(self, async_frontend):
        config = HyperQConfig(
            converters=2, filewriters=1, credits=8,
            async_frontend=async_frontend, gateway_shards=2,
            wlm_profile=WLM_PROFILE)
        stack = make_node(config=config)
        workloads = [
            make_workload(rows=60, row_bytes=60, seed=31 + i,
                          table=f"PROD.W{i}", name=f"w{i}")
            for i in range(4)]
        try:
            for workload in workloads:
                stack.engine.execute(workload.ddl)
            results, failures = {}, []
            lock = threading.Lock()

            def run_one(index, workload):
                try:
                    client = LegacyEtlClient(stack.node.connect,
                                             timeout=60)
                    client.logon("h", "u", "pw")
                    loaded = client.run_import(ImportJobSpec(
                        target_table=workload.target_table,
                        et_table=workload.et_table,
                        uv_table=workload.uv_table,
                        layout=workload.layout,
                        apply_sql=workload.apply_sql,
                        data=workload.data, sessions=1,
                        tenant=f"tenant-{index}",
                        admission_retry_attempts=100,
                        admission_backoff_s=0.02))
                    client.logoff()
                    with lock:
                        results[workload.name] = loaded.rows_inserted
                except BaseException as exc:
                    with lock:
                        failures.append(exc)

            threads = [
                threading.Thread(target=run_one, args=(i, w))
                for i, w in enumerate(workloads)]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=60)
            assert not failures
            assert results == {
                w.name: w.expected_good_rows for w in workloads}
            wlm = stack.node.stats()["wlm"]
            # The 1-wide pool really did make jobs wait or bounce.
            narrow = wlm["pools"]["narrow"]
            assert narrow["admitted"] == 4
            assert (narrow["throttled"] > 0
                    or narrow["admission_wait_s"] > 0)
        finally:
            stack.node.stop()


class TestConnectionCap:
    @pytest.mark.parametrize("async_frontend", [False, True])
    def test_over_cap_connection_refused_typed(self, async_frontend):
        config = HyperQConfig(
            converters=1, filewriters=1, credits=4,
            async_frontend=async_frontend, gateway_shards=2,
            max_connections=2)
        stack = make_node(config=config)
        try:
            frontend = stack.node.frontend
            held = []
            for _ in range(2):
                client = LegacyEtlClient(stack.node.connect, timeout=10)
                client.logon("h", "u", "pw")
                held.append(client)
            wait_until(lambda: frontend.connections_active == 2)

            extra = LegacyEtlClient(stack.node.connect, timeout=10)
            with pytest.raises(ConnectionLimited) as excinfo:
                extra.logon("h", "u", "pw")
            assert excinfo.value.transient
            assert excinfo.value.code == 3159
            assert excinfo.value.limit == 2
            assert excinfo.value.retry_after_s > 0

            snapshot = stack.node.stats()["gateway"]
            assert snapshot["connections_refused"] >= 1
            assert snapshot["max_connections"] == 2

            # Freeing a slot readmits new sessions (the typed error is
            # retryable for a reason).
            held.pop().logoff()
            wait_until(lambda: frontend.connections_active < 2)
            retry = LegacyEtlClient(stack.node.connect, timeout=10)
            retry.logon("h", "u", "pw")
            retry.logoff()
            held[0].logoff()
        finally:
            stack.node.stop()


class TestIdleSessions:
    def test_many_idle_tcp_sessions_multiplexed(self):
        """A pile of idle sockets costs the reactor no threads, and a
        session opened last still gets served first."""
        config = HyperQConfig(
            converters=1, filewriters=1, credits=4,
            async_frontend=True, gateway_shards=2,
            metrics_enabled=False)
        listener = TcpListener()
        stack = make_node(config=config, listener=listener)
        idle = []
        try:
            threads_before = threading.active_count()
            for _ in range(100):
                idle.append(listener.connect())
            frontend = stack.node.frontend
            wait_until(lambda: frontend.connections_active == 100)
            # No thread-per-connection: the thread count is flat.
            assert threading.active_count() - threads_before < 10

            client = LegacyEtlClient(listener.connect, timeout=15)
            client.logon("h", "u", "pw")
            client.execute_sql("create table IDLE_T (A int not null)")
            client.logoff()
            for endpoint in idle:
                endpoint.close_both()
            idle = []
            wait_until(lambda: frontend.connections_active == 0)
        finally:
            for endpoint in idle:
                endpoint.close_both()
            stack.node.stop()


class TestFrontendTeardown:
    def test_abandoned_connection_frees_its_job_slot(self):
        """A control connection that vanishes mid-load releases its
        WLM admission and job state (teardown runs off-reactor)."""
        config = HyperQConfig(
            converters=1, filewriters=1, credits=4,
            async_frontend=True, gateway_shards=2,
            wlm_profile=[{"name": "only", "max_concurrency": 1,
                          "queue_limit": 0, "queue_timeout_s": 0.1,
                          "match": {"user": "u*"}}])
        stack = make_node(config=config)
        try:
            workload = make_workload(rows=10, row_bytes=40,
                                     table="PROD.ABANDON")
            stack.engine.execute(workload.ddl)
            client = LegacyEtlClient(stack.node.connect, timeout=10)
            client.logon("h", "u", "pw")
            # Start a load, then drop the control connection on the
            # floor without END_LOAD.
            channel = client._require_control()
            from repro.legacy.client import _layout_to_wire
            from repro.legacy.protocol import Message, MessageKind
            channel.request(Message(MessageKind.BEGIN_LOAD, {
                "job_id": "abandonedjob",
                "target": workload.target_table,
                "et_table": workload.et_table,
                "uv_table": workload.uv_table,
                "layout": _layout_to_wire(workload.layout),
                "format": workload.format_spec.to_wire(),
                "sessions": 1,
            }), MessageKind.BEGIN_LOAD_OK)
            channel.close()
            client._control = None
            # The abandoned job's slot comes back; a new load admits.
            wait_until(
                lambda: stack.node.stats()["active_jobs"] == 0)
            run = LegacyEtlClient(stack.node.connect, timeout=15)
            run.logon("h", "u", "pw")
            loaded = run.run_import(ImportJobSpec(
                target_table=workload.target_table,
                et_table=workload.et_table,
                uv_table=workload.uv_table,
                layout=workload.layout,
                apply_sql=workload.apply_sql,
                data=workload.data, sessions=1,
                admission_retry_attempts=20,
                admission_backoff_s=0.05))
            run.logoff()
            assert loaded.rows_inserted == workload.expected_good_rows
        finally:
            stack.node.stop()
