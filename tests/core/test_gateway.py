"""End-to-end Hyper-Q gateway tests (import, export, ad-hoc SQL).

These drive the *unmodified* legacy client and script interpreter against
a Hyper-Q node — the transparency property the paper claims.
"""

import datetime

import pytest

from repro.core.config import HyperQConfig
from repro.errors import ProtocolError
from repro.legacy.client import ExportJobSpec, LegacyEtlClient
from repro.legacy.script import ScriptInterpreter, parse_script
from tests.conftest import EXAMPLE_DATA, EXAMPLE_SCRIPT, make_node


class TestExampleThroughHyperQ:
    """Figure 5 parity + Figure 6 when max_errors=2."""

    def test_parity_with_legacy_figure5(self, stack):
        interp = ScriptInterpreter(
            stack.node.connect, files={"input.txt": EXAMPLE_DATA})
        result = interp.run(parse_script(EXAMPLE_SCRIPT))
        imp = result.last_import
        assert (imp.rows_inserted, imp.et_errors, imp.uv_errors) == \
            (2, 2, 1)
        assert stack.engine.query(
            "SELECT * FROM PROD.CUSTOMER ORDER BY CUST_ID") == [
                ("123", "Smith", datetime.date(2012, 1, 1)),
                ("157", "Jones", datetime.date(2012, 12, 1))]
        assert stack.engine.query(
            "SELECT SEQNO, ERRFIELD FROM PROD.CUSTOMER_ET "
            "ORDER BY SEQNO") == [(2, "JOIN_DATE"), (3, "JOIN_DATE")]
        assert stack.engine.query(
            "SELECT CUST_ID, CUST_NAME, SEQNO FROM PROD.CUSTOMER_UV") \
            == [("123", "Jones", 4)]

    def test_figure6_with_max_errors_2(self, stack):
        script = EXAMPLE_SCRIPT.replace(
            ".begin import", ".set max_errors 2;\n.begin import")
        interp = ScriptInterpreter(
            stack.node.connect, files={"input.txt": EXAMPLE_DATA})
        interp.run(parse_script(script))
        rows = stack.engine.query(
            "SELECT ERRCODE, ERRFIELD, ERRMSG FROM PROD.CUSTOMER_ET")
        assert [(r[0], r[1]) for r in rows] == [
            (3103, "JOIN_DATE"), (3103, "JOIN_DATE"), (9057, None)]
        assert "row number: 2" in rows[0][2]
        assert "row number: 3" in rows[1][2]
        assert "row numbers: (4, 5)" in rows[2][2]
        # Row 5 was skipped (range not split), so only row 1 loaded.
        assert stack.engine.query(
            "SELECT COUNT(*) FROM PROD.CUSTOMER") == [(1,)]

    def test_metrics_recorded(self, stack):
        interp = ScriptInterpreter(
            stack.node.connect, files={"input.txt": EXAMPLE_DATA})
        interp.run(parse_script(EXAMPLE_SCRIPT))
        (metrics,) = stack.node.completed_jobs
        assert metrics.records_converted == 5
        assert metrics.bytes_received == len(EXAMPLE_DATA)
        assert metrics.acquisition_s > 0
        assert metrics.application_s > 0
        assert metrics.total_s >= \
            metrics.acquisition_s + metrics.application_s

    def test_staging_cleanup_after_end_load(self, stack):
        interp = ScriptInterpreter(
            stack.node.connect, files={"input.txt": EXAMPLE_DATA})
        interp.run(parse_script(EXAMPLE_SCRIPT))
        leftovers = [t for t in stack.engine.catalog.names()
                     if t.startswith("HQ_STG_")]
        assert leftovers == []
        assert stack.store.list_blobs(
            stack.node.config.container) == []

    def test_credit_conservation_after_job(self, stack):
        interp = ScriptInterpreter(
            stack.node.connect, files={"input.txt": EXAMPLE_DATA})
        interp.run(parse_script(EXAMPLE_SCRIPT))
        stack.node.credits.check_conservation()
        assert stack.node.credits.available == \
            stack.node.credits.pool_size


class TestAdHocSql:
    def test_cross_compiled_ddl_and_query(self, stack):
        client = LegacyEtlClient(stack.node.connect)
        client.logon("h", "u", "p")
        client.execute_sql(
            "create table T (A integer, B unicode(5), C float)")
        client.execute_sql("insert into T values (1, 'x', 2.5)")
        result = client.execute_sql(
            "sel A, ZEROIFNULL(C) from T where B = 'x'")
        client.logoff()
        assert result.rows == [(1, 2.5)]
        # The legacy UNICODE type became NVARCHAR on the CDW.
        assert stack.engine.table("T").column("B").ctype.base == \
            "NVARCHAR"

    def test_error_surfaces_as_protocol_error(self, stack):
        client = LegacyEtlClient(stack.node.connect)
        client.logon("h", "u", "p")
        with pytest.raises(ProtocolError):
            client.execute_sql("select * from MISSING_TABLE")
        client.logoff()

    def test_load_into_missing_target_fails_cleanly(self, stack):
        from repro.legacy.client import ImportJobSpec
        from repro.legacy.types import FieldDef, Layout, parse_type
        client = LegacyEtlClient(stack.node.connect)
        client.logon("h", "u", "p")
        layout = Layout("L", [FieldDef("A", parse_type("varchar(5)"))])
        with pytest.raises(ProtocolError, match="does not exist"):
            client.run_import(ImportJobSpec(
                target_table="NOPE", et_table="NOPE_ET",
                uv_table="NOPE_UV", layout=layout,
                apply_sql="insert into NOPE values (:A)", data=b"a\n"))
        client.logoff()


class TestExportThroughHyperQ:
    def _load_target(self, stack, rows=10):
        client = LegacyEtlClient(stack.node.connect)
        client.logon("h", "u", "p")
        client.execute_sql("create table E (A integer, D date)")
        for i in range(rows):
            client.execute_sql(
                f"insert into E values ({i}, DATE '2020-01-0{i % 9 + 1}')")
        return client

    def test_export_roundtrip(self, stack):
        client = self._load_target(stack)
        result = client.run_export(ExportJobSpec(
            "sel A, D from E order by A", sessions=3))
        client.logoff()
        assert result.rows_exported == 10
        lines = result.data.decode().strip().split("\n")
        assert lines[0].startswith("0|2020-01-01")

    def test_export_chunks_served_in_order(self, stack):
        stack.node.config.export_chunk_rows = 3
        client = self._load_target(stack)
        result = client.run_export(ExportJobSpec(
            "sel A from E order by A", sessions=2))
        client.logoff()
        values = [int(line) for line in
                  result.data.decode().strip().split("\n")]
        assert values == list(range(10))
        assert result.chunks_fetched == 4

    def test_export_then_reimport_identity(self, stack):
        """Round-trip invariant: export a table, re-import the file,
        contents match (incl. NULL handling)."""
        client = LegacyEtlClient(stack.node.connect)
        client.logon("h", "u", "p")
        client.execute_sql(
            "create table SRC (K varchar(5), N integer)")
        client.execute_sql("insert into SRC values ('a', 1)")
        client.execute_sql("insert into SRC values ('b', NULL)")
        exported = client.run_export(ExportJobSpec(
            "sel K, N from SRC order by K", sessions=1))
        client.execute_sql(
            "create table DST (K varchar(5), N integer)")
        from repro.legacy.client import ImportJobSpec
        from repro.legacy.types import FieldDef, Layout, parse_type
        layout = Layout("L", [
            FieldDef("K", parse_type("varchar(5)")),
            FieldDef("N", parse_type("varchar(12)")),
        ])
        client.run_import(ImportJobSpec(
            target_table="DST", et_table="DST_ET", uv_table="DST_UV",
            layout=layout,
            apply_sql="insert into DST values (:K, "
                      "cast(:N as integer))",
            data=exported.data))
        client.logoff()
        assert stack.engine.query("SELECT * FROM DST ORDER BY K") == \
            stack.engine.query("SELECT * FROM SRC ORDER BY K")

    def test_unknown_export_job_rejected(self, stack):
        from repro.legacy.protocol import (
            Message, MessageChannel, MessageKind,
        )
        channel = MessageChannel(stack.node.connect(), timeout=5)
        channel.request(Message(MessageKind.LOGON, {}),
                        MessageKind.LOGON_OK)
        channel.send(Message(MessageKind.EXPORT_FETCH,
                             {"job_id": "ghost", "chunk_no": 0}))
        response = channel.recv()
        assert response.kind == MessageKind.ERROR


class TestConcurrentJobs:
    def test_two_imports_share_one_credit_manager(self):
        stack = make_node(config=HyperQConfig(
            converters=2, filewriters=1, credits=6))
        try:
            import threading
            from repro.legacy.client import ImportJobSpec
            from repro.legacy.types import FieldDef, Layout, parse_type
            layout = Layout("L", [
                FieldDef("K", parse_type("varchar(8)")),
            ])
            setup = LegacyEtlClient(stack.node.connect)
            setup.logon("h", "u", "p")
            setup.execute_sql("create table J1 (K varchar(8))")
            setup.execute_sql("create table J2 (K varchar(8))")
            setup.logoff()

            def run_job(table):
                client = LegacyEtlClient(stack.node.connect)
                client.logon("h", "u", "p")
                data = "".join(f"{table}-{i}\n" for i in range(200))
                client.run_import(ImportJobSpec(
                    target_table=table, et_table=f"{table}_ET",
                    uv_table=f"{table}_UV", layout=layout,
                    apply_sql=f"insert into {table} values (:K)",
                    data=data.encode(), sessions=2, chunk_bytes=256))
                client.logoff()

            threads = [threading.Thread(target=run_job, args=(t,))
                       for t in ("J1", "J2")]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            assert stack.engine.query(
                "SELECT COUNT(*) FROM J1") == [(200,)]
            assert stack.engine.query(
                "SELECT COUNT(*) FROM J2") == [(200,)]
            stack.node.credits.check_conservation()
        finally:
            stack.close()
