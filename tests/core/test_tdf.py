"""TDF (Tabular Data Format) encode/decode tests."""

import datetime
from decimal import Decimal

import pytest
from hypothesis import given, strategies as st

from repro.core import tdf
from repro.errors import TdfError


def roundtrip(columns, rows, chunk_no=0):
    packet = tdf.decode_packet(tdf.encode_packet(chunk_no, columns, rows))
    return packet


class TestPackets:
    def test_basic_roundtrip(self):
        packet = roundtrip(["A", "B"], [(1, "x"), (2, None)], chunk_no=7)
        assert packet.chunk_no == 7
        assert packet.columns == ["A", "B"]
        assert packet.rows == [(1, "x"), (2, None)]

    def test_empty_packet(self):
        packet = roundtrip(["A"], [])
        assert packet.rows == []

    def test_all_scalar_types(self):
        row = (None, True, -42, 2.5, "text", b"\x00\x01",
               datetime.date(2020, 1, 2),
               datetime.datetime(2021, 2, 3, 4, 5, 6, 789),
               Decimal("12.34"))
        packet = roundtrip([f"c{i}" for i in range(len(row))], [row])
        assert packet.rows == [row]

    def test_nested_values(self):
        out = bytearray()
        value = {"list": [1, [2, 3], {"k": "v"}], "n": None}
        tdf.encode_value(value, out)
        decoded, pos = tdf.decode_value(memoryview(bytes(out)), 0)
        assert decoded == value
        assert pos == len(out)

    def test_bad_magic_raises(self):
        with pytest.raises(TdfError):
            tdf.decode_packet(b"NOPE" + b"\x00" * 20)

    def test_truncated_packet_raises(self):
        raw = tdf.encode_packet(0, ["A"], [(1,)])
        with pytest.raises(TdfError):
            tdf.decode_packet(raw[:-2])

    def test_trailing_garbage_raises(self):
        raw = tdf.encode_packet(0, ["A"], [(1,)])
        with pytest.raises(TdfError):
            tdf.decode_packet(raw + b"\x00")

    def test_unencodable_type_raises(self):
        with pytest.raises(TdfError):
            tdf.encode_value(object(), bytearray())


_scalar = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(-2**62, 2**62),
    st.floats(allow_nan=False, allow_infinity=False),
    st.text(max_size=30),
    st.binary(max_size=30),
    st.dates(min_value=datetime.date(1, 1, 2),
             max_value=datetime.date(9999, 12, 30)),
    st.datetimes(min_value=datetime.datetime(1, 1, 1),
                 max_value=datetime.datetime(9999, 12, 31)),
    st.decimals(allow_nan=False, allow_infinity=False, places=4),
)


@given(st.lists(st.tuples(_scalar, _scalar, _scalar), max_size=15),
       st.integers(0, 2**31))
def test_tdf_roundtrip_property(rows, chunk_no):
    packet = roundtrip(["A", "B", "C"], rows, chunk_no)
    assert packet.rows == rows
    assert packet.chunk_no == chunk_no


_nested = st.recursive(
    _scalar,
    lambda children: st.one_of(
        st.lists(children, max_size=4),
        st.dictionaries(st.text(max_size=6), children, max_size=4)),
    max_leaves=12)


@given(_nested)
def test_tdf_nested_value_property(value):
    """TDF handles arbitrarily nested data (the format's design goal)."""
    out = bytearray()
    tdf.encode_value(value, out)
    decoded, pos = tdf.decode_value(memoryview(bytes(out)), 0)
    assert decoded == value
    assert pos == len(out)
