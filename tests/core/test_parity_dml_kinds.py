"""Parity for non-INSERT apply DML: UPDATE, DELETE, and legacy upsert.

The application phase can carry any DML; the virtualized execution
(set-oriented over staging, upsert rewritten to MERGE) must match the
legacy server's tuple-at-a-time interpretation — including order
sensitivity when several input records hit the same target row.
"""

import pytest

from repro.bench.harness import build_stack
from repro.core.config import HyperQConfig
from repro.legacy.client import ImportJobSpec, LegacyEtlClient
from repro.legacy.server import LegacyServer
from repro.legacy.types import FieldDef, Layout, parse_type

LAYOUT = Layout("L", [
    FieldDef("K", parse_type("varchar(8)")),
    FieldDef("V", parse_type("varchar(16)")),
])

SEED_SQL = [
    "create table T (K varchar(8) not null, V varchar(16), unique (K))",
    "insert into T values ('a', 'v-a')",
    "insert into T values ('b', 'v-b')",
    "insert into T values ('c', 'v-c')",
]


def run_job(connect, apply_sql: str, data: bytes, chunk_bytes: int = 24):
    client = LegacyEtlClient(connect)
    client.logon("h", "u", "p")
    for sql in SEED_SQL:
        client.execute_sql(sql)
    result = client.run_import(ImportJobSpec(
        target_table="T", et_table="T_ET", uv_table="T_UV",
        layout=LAYOUT, apply_sql=apply_sql, data=data,
        sessions=2, chunk_bytes=chunk_bytes))
    client.logoff()
    return result


def both(apply_sql: str, data: bytes, chunk_bytes: int = 24):
    server = LegacyServer().start()
    try:
        legacy_result = run_job(server.connect, apply_sql, data,
                                chunk_bytes)
        legacy_table = server.engine.query(
            "SELECT K, V FROM T ORDER BY K")
    finally:
        server.stop()
    stack = build_stack(config=HyperQConfig(credits=8))
    try:
        hyperq_result = run_job(stack.node.connect, apply_sql, data,
                                chunk_bytes)
        hyperq_table = stack.engine.query(
            "SELECT K, V FROM T ORDER BY K")
    finally:
        stack.close()
    return legacy_result, legacy_table, hyperq_result, hyperq_table


class TestUpdateParity:
    def test_matched_updates(self):
        data = b"a|new-a\nc|new-c\nzz|never\n"
        lr, lt, hr, ht = both(
            "update T set V = :V where T.K = trim(:K)", data)
        assert lr.rows_updated == hr.rows_updated == 2
        assert lt == ht
        assert ("a", "new-a") in ht

    def test_last_write_wins_for_repeated_keys(self):
        data = b"a|first\na|second\na|third\n"
        lr, lt, hr, ht = both(
            "update T set V = :V where T.K = trim(:K)", data,
            chunk_bytes=8)
        assert lt == ht
        assert ("a", "third") in ht


class TestDeleteParity:
    def test_matched_deletes(self):
        data = b"b|x\nnope|y\n"
        lr, lt, hr, ht = both(
            "delete from T where T.K = trim(:K)", data)
        assert lr.rows_deleted == hr.rows_deleted == 1
        assert lt == ht
        assert all(k != "b" for k, _ in ht)


class TestUpsertParity:
    UPSERT = ("update T set V = :V where T.K = :K "
              "else insert into T values (:K, :V)")

    def test_mixed_update_and_insert(self):
        data = b"a|updated-a\nd|created-d\nb|updated-b\ne|created-e\n"
        lr, lt, hr, ht = both(self.UPSERT, data)
        assert lt == ht
        assert (lr.rows_updated, lr.rows_inserted) == \
            (hr.rows_updated, hr.rows_inserted) == (2, 2)

    def test_insert_then_update_same_key_in_one_job(self):
        """Row 1 creates key 'z'; row 2 must UPDATE it (tuple order)."""
        data = b"z|created\nz|then-updated\n"
        lr, lt, hr, ht = both(self.UPSERT, data, chunk_bytes=8)
        assert lt == ht
        assert ("z", "then-updated") in ht
        assert (lr.rows_inserted, lr.rows_updated) == \
            (hr.rows_inserted, hr.rows_updated) == (1, 1)

    @pytest.mark.parametrize("chunk_bytes", [8, 64, 4096])
    def test_chunking_invariance(self, chunk_bytes):
        data = (b"a|u1\nq|c1\na|u2\nq|u-after-c\nr|c2\n")
        lr, lt, hr, ht = both(self.UPSERT, data, chunk_bytes)
        assert lt == ht
