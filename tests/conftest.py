"""Shared fixtures: the paper's running example (Example 2.1 / Figures
5-6) and pre-wired stacks."""

from __future__ import annotations

import pytest

from repro.bench.harness import Stack, build_stack
from repro.cdw.cloudstore import CloudStore
from repro.cdw.engine import CdwEngine
from repro.core.config import HyperQConfig
from repro.core.gateway import HyperQNode
from repro.legacy.server import LegacyServer

#: Example 2.1's job script, plus the DDL the paper leaves implicit.
EXAMPLE_SCRIPT = """
.logon host/user,pass;
create table PROD.CUSTOMER (
    CUST_ID varchar(5) not null,
    CUST_NAME varchar(50),
    JOIN_DATE date,
    unique (CUST_ID));
.layout CustLayout;
.field CUST_ID varchar(5);
.field CUST_NAME varchar(50);
.field JOIN_DATE varchar(10);
.begin import tables PROD.CUSTOMER
errortables PROD.CUSTOMER_ET PROD.CUSTOMER_UV;
.dml label InsApply;
insert into PROD.CUSTOMER values (
    trim(:CUST_ID), trim(:CUST_NAME),
    cast(:JOIN_DATE as DATE format 'YYYY-MM-DD') );
.import infile input.txt
    format vartext '|' layout CustLayout
    apply InsApply;
.end load;
.logoff;
"""

#: the data file of Figure 5(a): rows 2-3 have bad dates, row 4
#: duplicates row 1's key, rows 1 and 5 are clean.
EXAMPLE_DATA = (
    b"123|Smith|2012-01-01\n"
    b"456|Brown|xxxx\n"
    b"789|Brown|yyyyy\n"
    b"123|Jones|2012-12-01\n"
    b"157|Jones|2012-12-01\n"
)


@pytest.fixture
def legacy_server():
    server = LegacyServer().start()
    yield server
    server.stop()


@pytest.fixture
def stack():
    built = build_stack(
        config=HyperQConfig(converters=2, filewriters=2, credits=8))
    yield built
    built.close()


@pytest.fixture
def engine():
    return CdwEngine(store=CloudStore())


def make_node(native_unique: bool = True,
              config: HyperQConfig | None = None,
              listener=None) -> Stack:
    """Non-fixture helper for tests needing special wiring."""
    return build_stack(config=config, native_unique=native_unique,
                       listener=listener)
