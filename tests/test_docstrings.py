"""Meta-test: every public module, class, and function is documented.

The paper reproduction is meant to be adoptable; undocumented public
surface fails this test.
"""

import importlib
import inspect
import pkgutil

import repro


def iter_modules():
    yield repro
    for info in pkgutil.walk_packages(repro.__path__,
                                      prefix="repro."):
        if info.name.endswith("__main__"):
            continue
        yield importlib.import_module(info.name)


def test_every_module_has_docstring():
    undocumented = [m.__name__ for m in iter_modules()
                    if not (m.__doc__ or "").strip()]
    assert undocumented == []


def test_public_classes_and_functions_documented():
    missing: list[str] = []
    for module in iter_modules():
        for name, obj in vars(module).items():
            if name.startswith("_"):
                continue
            if getattr(obj, "__module__", None) != module.__name__:
                continue  # re-exports are documented at their source
            if inspect.isclass(obj) or inspect.isfunction(obj):
                if not (inspect.getdoc(obj) or "").strip():
                    missing.append(f"{module.__name__}.{name}")
    assert missing == [], f"undocumented public items: {missing}"


def test_public_methods_documented():
    missing: list[str] = []
    allow_undocumented = {
        # dunder-adjacent plumbing that needs no prose
        "__enter__", "__exit__", "__post_init__", "__repr__",
        "__len__",
    }
    for module in iter_modules():
        for cls_name, cls in vars(module).items():
            if cls_name.startswith("_") or not inspect.isclass(cls):
                continue
            if cls.__module__ != module.__name__:
                continue
            for name, member in vars(cls).items():
                if name.startswith("_") and name not in allow_undocumented:
                    continue
                if not inspect.isfunction(member):
                    continue
                if not (inspect.getdoc(member) or "").strip():
                    missing.append(
                        f"{module.__name__}.{cls_name}.{name}")
    assert missing == [], f"undocumented public methods: {missing}"
