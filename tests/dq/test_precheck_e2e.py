"""End-to-end precheck equivalence through the full gateway.

The acceptance bar for ``repro.dq``: rules-on must be *equivalent* to
rules-off on final state — the target receives the same rows and the
same client row numbers are rejected.  The precheck merely moves each
rejection from the adaptive apply path (recursive splits landing rows
in ET/UV, Figure 11) to one set-oriented pass before APPLY.

The dirty workload mix deliberately excludes ``referential``: FK
orphans apply cleanly with rules off (the CDW does not enforce FKs), so
they are the one kind the precheck rejects that application would not.
"""

import json

from repro.bench.harness import build_stack, run_workload_through_hyperq
from repro.core.config import HyperQConfig
from repro.errors import HYPERQ_DQ_VIOLATION
from repro.workloads.generator import dirty_workload

#: every kind that also fails during application with rules off.
EQUIV_MIX = {"not_null": 1, "range": 1, "regex": 1, "unique": 1}


def make_dirty(rows=1200, rate=0.03, seed=31, mix=EQUIV_MIX):
    return dirty_workload(rows, violation_rate=rate, seed=seed, mix=mix)


def run_job(dirty, *, rules=False, eager=False, chunk_bytes=16 * 1024):
    """One full gateway run; returns everything the assertions need."""
    config = HyperQConfig(
        dq_profile=dirty.dq_rules if rules else None,
        eager_apply=eager)
    with build_stack(config=config) as stack:
        for sql in dirty.setup_sql:
            stack.engine.execute(sql)
        metrics = run_workload_through_hyperq(
            stack, dirty.workload, chunk_bytes=chunk_bytes)
        w = dirty.workload
        target = sorted(stack.engine.query(
            f"SELECT REC_ID, REC_NAME, AMOUNT, REGION "
            f"FROM {w.target_table}"))
        et = stack.engine.query(
            f"SELECT SEQNO, ERRCODE, __RULE_ID FROM {w.et_table}")
        uv = stack.engine.query(f"SELECT SEQNO FROM {w.uv_table}")
        return {
            "metrics": metrics,
            "target": target,
            "et": et,
            "rejected": {r[0] for r in et} | {r[0] for r in uv},
            "stats": stack.node.stats(),
            "prom": stack.node.obs.registry.collect(),
        }


def assert_equivalent(off, on):
    """Rules-on and rules-off runs agree on every visible end state."""
    assert on["target"] == off["target"]
    assert on["rejected"] == off["rejected"]


class TestEquivalence:
    def test_two_phase_rules_on_matches_rules_off(self):
        dirty = make_dirty()
        off = run_job(dirty, rules=False)
        on = run_job(dirty, rules=True)
        assert_equivalent(off, on)
        # something was actually rejected, and the precheck caught all
        # of it: no adaptive splits were needed with rules on
        assert off["rejected"]
        assert off["metrics"].chunk_retries > 0
        assert on["metrics"].chunk_retries == 0
        # dq-routed rows carry provenance; apply-path rows do not
        dq_rows = [r for r in on["et"] if r[2] is not None]
        assert {r[1] for r in dq_rows} == {HYPERQ_DQ_VIOLATION}
        assert len(dq_rows) == on["metrics"].dq_routed_rows

    def test_eager_apply_rules_on_matches_rules_off(self):
        dirty = make_dirty(seed=77)
        off = run_job(dirty, rules=False)
        on = run_job(dirty, rules=True, eager=True)
        assert_equivalent(off, on)
        assert on["metrics"].dq_routed_rows == len(on["rejected"])

    def test_eager_and_two_phase_route_identically(self):
        dirty = make_dirty(seed=5)
        two_phase = run_job(dirty, rules=True, eager=False)
        eager = run_job(dirty, rules=True, eager=True)
        assert sorted(eager["et"]) == sorted(two_phase["et"])
        assert eager["target"] == two_phase["target"]


class TestObservability:
    def test_metrics_stats_and_prom_counters(self):
        dirty = make_dirty(rows=800, rate=0.04, seed=13)
        on = run_job(dirty, rules=True)
        m = on["metrics"]
        assert m.dq_checked == 800
        assert m.dq_routed_rows == len(on["rejected"]) > 0
        assert m.dq_violations >= m.dq_routed_rows

        dq = on["stats"]["dq"]
        assert dq["enabled"]
        assert dq["jobs_checked"] == 1
        assert dq["checked"] == 800
        assert dq["routed_rows"] == m.dq_routed_rows
        assert sum(dq["violations"].values()) == m.dq_violations
        (job,) = dq["jobs"]
        assert job["routed_rows"] == m.dq_routed_rows
        # snapshots serialize (they feed /stats and flight bundles)
        json.dumps(dq)

        checked = on["prom"]["hyperq_dq_checked_total"]["samples"]
        assert checked[0]["value"] == 800
        routed = on["prom"]["hyperq_dq_routed_rows_total"]["samples"]
        assert routed[0]["value"] == m.dq_routed_rows
        by_rule = {
            s["labels"]["rule"]: s["value"]
            for s in on["prom"]["hyperq_dq_violations_total"]["samples"]}
        assert sum(by_rule.values()) == m.dq_violations

    def test_clean_load_routes_nothing(self):
        dirty = make_dirty(rows=400, rate=0.0)
        on = run_job(dirty, rules=True)
        assert on["rejected"] == set()
        assert on["metrics"].dq_checked == 400
        assert on["metrics"].dq_routed_rows == 0
        assert on["target"] and len(on["target"]) == 400
