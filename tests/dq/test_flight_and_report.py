"""Flight-recorder events and the qInsight dq report."""

from repro.bench.harness import build_stack, run_workload_through_hyperq
from repro.core.config import HyperQConfig
from repro.qinsight import render_dq_report, top_violated_rules
from repro.workloads.generator import dirty_workload


def run_dirty_stack():
    dirty = dirty_workload(500, violation_rate=0.04, seed=19)
    config = HyperQConfig(dq_profile=dirty.dq_rules)
    stack = build_stack(config=config)
    for sql in dirty.setup_sql:
        stack.engine.execute(sql)
    metrics = run_workload_through_hyperq(stack, dirty.workload)
    return stack, dirty, metrics


class TestFlightEvents:
    def test_precheck_verdicts_reach_flight_bundles(self):
        stack, dirty, metrics = run_dirty_stack()
        try:
            flight = stack.node.obs.flight
            events = [e for e in flight.events(metrics.job_id)
                      if e["event"] == "dq_precheck"]
            assert events, "routing must leave a dq_precheck event"
            total_routed = sum(e["routed"] for e in events)
            assert total_routed == metrics.dq_routed_rows
            assert all(e["ruleset"] == "default" for e in events)
            assert all(e["rules"] for e in events)

            # post-mortem bundles carry the same verdicts
            bundle = flight.bundle(metrics.job_id, reason="test")
            bundled = [e for e in bundle["events"]
                       if e["event"] == "dq_precheck"]
            assert bundled == events
        finally:
            stack.close()

    def test_clean_precheck_stays_silent(self):
        dirty = dirty_workload(200, violation_rate=0.0)
        config = HyperQConfig(dq_profile=dirty.dq_rules)
        with build_stack(config=config) as stack:
            for sql in dirty.setup_sql:
                stack.engine.execute(sql)
            metrics = run_workload_through_hyperq(stack, dirty.workload)
            events = stack.node.obs.flight.events(metrics.job_id)
            assert not [e for e in events if e["event"] == "dq_precheck"]


class TestDqReport:
    def test_top_violated_rules_ranks_and_breaks_ties(self):
        job = {"violations": {"b": 3, "a": 3, "c": 9, "d": 1}}
        assert top_violated_rules(job) == [("c", 9), ("a", 3), ("b", 3)]
        assert top_violated_rules(job, limit=1) == [("c", 9)]
        assert top_violated_rules({}, limit=2) == []

    def test_report_renders_live_snapshot(self):
        stack, dirty, metrics = run_dirty_stack()
        try:
            report = render_dq_report(stack.node.stats()["dq"])
        finally:
            stack.close()
        assert "qInsight data-quality report" in report
        assert f"rows routed to ET   : {metrics.dq_routed_rows}" in report
        assert dirty.workload.target_table in report
        assert metrics.job_id in report
        # every violated rule shows up in the histogram
        for rule_id, rownums in dirty.manifest.items():
            if rownums:
                assert rule_id in report

    def test_report_handles_disabled_profile(self):
        report = render_dq_report(
            {"enabled": False, "rulesets": [], "jobs_checked": 0,
             "checked": 0, "routed_rows": 0, "violations": {},
             "jobs": []})
        assert "jobs prechecked     : 0" in report
