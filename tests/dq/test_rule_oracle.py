"""Differential suite: compiled SQL precheck vs pure-Python oracle.

Randomized dirty staging tables are checked twice — once through
:class:`repro.dq.DqPrechecker` (the compiled aggregated-CASE counts
pass, per-rule routing passes, and set-oriented unique/referential
passes, all executed by the CDW engine) and once through the tuple-at-
a-time oracle in :mod:`repro.dq.oracle`.  The two must agree *exactly*
on ``{rule_id: failed_count}`` and on the set of routed ``__SEQ`` s,
for every seed.
"""

import random

import pytest

from repro.cdw.cloudstore import CloudStore
from repro.cdw.engine import CdwEngine
from repro.dq import DqPrechecker, DqProfile
from repro.dq.oracle import evaluate
from repro.errors import HYPERQ_DQ_VIOLATION
from repro.legacy.types import FieldDef, Layout, parse_type

REGIONS = ("AA", "BB", "CC", "DD")

RULES = [
    {"rule_id": "name_required", "kind": "not_null", "column": "NAME"},
    {"rule_id": "amt_range", "kind": "range", "column": "AMT",
     "min": "100", "max": "899"},
    {"rule_id": "code_digits", "kind": "regex", "column": "CODE",
     "pattern": "^[0-9]+$"},
    {"rule_id": "region_set", "kind": "in_set", "column": "REGION",
     "values": list(REGIONS)},
    {"rule_id": "key_unique", "kind": "unique", "columns": ["K"]},
    {"rule_id": "region_fk", "kind": "referential", "column": "REGION",
     "parent_table": "DIM", "parent_column": "CODE"},
    {"rule_id": "k_prefix", "kind": "sql", "predicate": "K LIKE 'K%'"},
]

LAYOUT = Layout("dirty", [
    FieldDef(name, parse_type("varchar(20)"))
    for name in ("K", "NAME", "AMT", "CODE", "REGION")
])

#: parents deliberately exclude one staged region value ("DD" rows
#: violate the FK while still passing the in_set rule's larger set).
PARENT_VALUES = ("AA", "BB", "CC")


def random_rows(rng, n):
    """seq -> staging row dict, with every corruption kind mixed in."""
    rows = {}
    for seq in range(n):
        row = {
            "K": f"K{seq:05d}",
            "NAME": f"name-{seq}",
            "AMT": str(rng.randrange(100, 900)),
            "CODE": str(rng.randrange(10, 10_000)),
            "REGION": REGIONS[rng.randrange(len(REGIONS))],
        }
        # several independent corruption rolls: rows may violate any
        # number of rules at once (the counts-vs-routing distinction).
        if rng.random() < 0.08:
            row["NAME"] = None
        if rng.random() < 0.08:
            row["AMT"] = str(rng.choice(["050", "900", "999", "099"]))
        if rng.random() < 0.08:
            row["CODE"] = rng.choice(["x19", "12x45", "", "ab"]) or None
        if rng.random() < 0.08:
            row["REGION"] = rng.choice(["ZZ", "DD", "EE"])
        if rng.random() < 0.08 and seq > 0:
            row["K"] = f"K{rng.randrange(seq):05d}"
        if rng.random() < 0.04:
            row["K"] = rng.choice(["Q-odd", None])
        rows[seq] = row
    return rows


def build_engine(rows):
    engine = CdwEngine(store=CloudStore())
    engine.execute("CREATE TABLE STG (K NVARCHAR, NAME NVARCHAR, "
                   "AMT NVARCHAR, CODE NVARCHAR, REGION NVARCHAR, "
                   "__SEQ BIGINT)")
    table = engine.table("STG")
    table.rows = [
        (r["K"], r["NAME"], r["AMT"], r["CODE"], r["REGION"], seq)
        for seq, r in sorted(rows.items())]
    engine.execute("CREATE TABLE DIM (CODE NVARCHAR)")
    engine.table("DIM").rows = [(v,) for v in PARENT_VALUES]
    engine.execute("CREATE TABLE ET (SEQNO INT, ERRCODE INT, "
                   "ERRFIELD NVARCHAR(128), ERRMSG NVARCHAR(512), "
                   "__RULE_ID NVARCHAR(64), __REASON NVARCHAR(256))")
    return engine


def make_prechecker(engine, rows):
    ruleset = DqProfile.from_profile(RULES).resolve(target="T")
    checker = DqPrechecker(
        ruleset=ruleset, engine=engine, staging_table="STG",
        et_table="ET", target_table="T", layout=LAYOUT,
        seq_stride=1 << 20, job_id="diff")
    # one giant chunk: rownum == seq + 1
    checker.update_chunks({0: len(rows)})
    return ruleset, checker


def oracle_verdict(ruleset, rows):
    return evaluate(
        ruleset, rows,
        parent_values={"region_fk": set(PARENT_VALUES)},
        predicates={"k_prefix": lambda r: None if r["K"] is None
                    else r["K"].startswith("K")})


@pytest.mark.parametrize("seed", [1, 7, 23, 101, 4096])
def test_compiled_counts_and_routing_match_oracle(seed):
    rng = random.Random(seed)
    rows = random_rows(rng, 400)
    engine = build_engine(rows)
    ruleset, checker = make_prechecker(engine, rows)

    result = checker.check_range(0, len(rows) - 1)
    verdict = oracle_verdict(ruleset, rows)

    # exact agreement on per-rule failed counts (zero entries aside)
    compiled = {k: v for k, v in result.counts.items() if v}
    expected = {k: v for k, v in verdict.counts.items() if v}
    assert compiled == expected

    # exact agreement on the routed __SEQ set ...
    assert set(result.routed) == verdict.routed_seqs
    # ... and on which rule claimed each routed row (profile order)
    et = engine.query("SELECT SEQNO, __RULE_ID FROM ET")
    assert {seqno - 1: rule_id for seqno, rule_id in et} == \
        verdict.assigned

    # staging retains exactly the clean rows, in order
    remaining = [r[0] for r in
                 engine.query("SELECT __SEQ FROM STG ORDER BY __SEQ")]
    assert remaining == sorted(set(rows) - verdict.routed_seqs)

    # routed rows carry full provenance
    codes = {r[0] for r in engine.query("SELECT ERRCODE FROM ET")}
    if et:
        assert codes == {HYPERQ_DQ_VIOLATION}
    reasons = engine.query("SELECT __RULE_ID, __REASON FROM ET")
    assert all(reason for _, reason in reasons)


def test_recheck_is_idempotent():
    rng = random.Random(5)
    rows = random_rows(rng, 200)
    engine = build_engine(rows)
    ruleset, checker = make_prechecker(engine, rows)

    first = checker.check_range(0, len(rows) - 1)
    et_after_first = sorted(engine.query("SELECT SEQNO FROM ET"))
    second = checker.check_range(0, len(rows) - 1)

    # second pass finds a clean table: nothing new routed, ET unchanged
    assert second.routed == []
    assert {k: v for k, v in second.counts.items() if v} == {}
    assert sorted(engine.query("SELECT SEQNO FROM ET")) == et_after_first
    assert first.rerouted == 0


def test_range_split_equals_single_pass():
    """Prechecking [0,n) in two halves routes the same set as one pass
    (the eager-apply prefix path vs the two-phase path)."""
    rng = random.Random(17)
    rows = random_rows(rng, 300)

    engine_a = build_engine(rows)
    ruleset, one_pass = make_prechecker(engine_a, rows)
    one_pass.check_range(0, len(rows) - 1)
    et_a = sorted(engine_a.query("SELECT SEQNO, __RULE_ID FROM ET"))
    stg_a = engine_a.query("SELECT COUNT(*) FROM STG")

    engine_b = build_engine(rows)
    _, split = make_prechecker(engine_b, rows)
    mid = len(rows) // 2
    split.check_range(0, mid - 1)
    split.check_range(mid, len(rows) - 1)
    et_b = sorted(engine_b.query("SELECT SEQNO, __RULE_ID FROM ET"))
    stg_b = engine_b.query("SELECT COUNT(*) FROM STG")

    assert et_a == et_b
    assert stg_a == stg_b


def test_counts_pass_is_one_statement_per_range():
    """The per-row rules cost O(1) SQL statements per range, however
    many rules the profile has (the aggregated SUM(CASE) pass)."""
    rng = random.Random(3)
    rows = random_rows(rng, 120)
    engine = build_engine(rows)
    ruleset, checker = make_prechecker(engine, rows)

    statements = []
    original = engine.execute

    def counting_execute(stmt):
        statements.append(stmt)
        return original(stmt)

    engine.execute = counting_execute
    try:
        checker.check_range(0, len(rows) - 1)
    finally:
        engine.execute = original
    # 1 counts pass + ≤1 routing select per violated per-row rule
    # + ≤3 set-rule passes + batched INSERT/DELETE: far below per-row.
    assert len(statements) < 25


def test_violation_seqs_validate_against_manifest_preset():
    """The dirty-data preset's manifest is the oracle's ground truth.

    Each rule is evaluated solo so the comparison is per-rule raw
    violations (what the manifest records), not first-rule-wins
    routing assignment.
    """
    from repro.dq.profile import DqRuleSet
    from repro.workloads.generator import dirty_workload

    dirty = dirty_workload(600, violation_rate=0.05, seed=99)
    profile = DqProfile.from_profile(dirty.dq_rules)
    ruleset = profile.resolve(target=dirty.workload.target_table)
    layout = dirty.workload.layout

    # decode the generated VARTEXT back into oracle rows
    rows = {}
    for seq, line in enumerate(
            dirty.workload.data.decode().splitlines()):
        parts = line.split("|")
        rows[seq] = {
            f.name: (parts[i] if parts[i] != "" else None)
            for i, f in enumerate(layout.fields)}

    for rule in ruleset.rules:
        solo = DqRuleSet(name="solo", rules=(rule,))
        verdict = evaluate(
            solo, rows,
            parent_values={rule.rule_id: set(REGIONS)})
        got = tuple(sorted(seq + 1 for seq in verdict.assigned))
        assert got == dirty.manifest[rule.rule_id], rule.rule_id
