"""Unit tests for the dq rule model and profile loader."""

import subprocess
import sys

import pytest

from repro.dq import DqProfile, DqRule
from repro.dq.profile import DqRuleSet


def test_package_imports_standalone():
    """``import repro.dq`` must not need the gateway package first
    (guards the dq -> core -> gateway -> dq import cycle)."""
    proc = subprocess.run(
        [sys.executable, "-c",
         "import repro.dq; from repro.core.beta import SEQ_COLUMN; "
         "from repro.dq.compiler import SEQ_COLUMN as DQ_SEQ; "
         "assert SEQ_COLUMN == DQ_SEQ"],
        capture_output=True, text=True)
    assert proc.returncode == 0, proc.stderr


class TestRuleValidation:
    def test_every_kind_constructs(self):
        DqRule(rule_id="a", kind="not_null", column="C")
        DqRule(rule_id="b", kind="range", column="C", min="0")
        DqRule(rule_id="c", kind="regex", column="C", pattern="^x$")
        DqRule(rule_id="d", kind="in_set", column="C", values=("x",))
        DqRule(rule_id="e", kind="unique", columns=("C", "D"))
        DqRule(rule_id="f", kind="referential", column="C",
               parent_table="P", parent_column="K")
        DqRule(rule_id="g", kind="sql", predicate="C > 0")

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="kind"):
            DqRule(rule_id="x", kind="phase_of_moon", column="C")

    def test_missing_shape_rejected(self):
        with pytest.raises(ValueError):
            DqRule(rule_id="x", kind="not_null")          # no column
        with pytest.raises(ValueError):
            DqRule(rule_id="x", kind="range", column="C")  # no bound
        with pytest.raises(ValueError):
            DqRule(rule_id="x", kind="regex", column="C")  # no pattern
        with pytest.raises(ValueError):
            DqRule(rule_id="x", kind="in_set", column="C")  # no values
        with pytest.raises(ValueError):
            DqRule(rule_id="x", kind="unique")             # no key
        with pytest.raises(ValueError):
            DqRule(rule_id="x", kind="referential", column="C")
        with pytest.raises(ValueError):
            DqRule(rule_id="x", kind="sql")                # no predicate
        with pytest.raises(ValueError):
            DqRule(rule_id="", kind="not_null", column="C")

    def test_bad_regex_rejected_at_load(self):
        with pytest.raises(ValueError, match="regex"):
            DqRule(rule_id="x", kind="regex", column="C", pattern="[")

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(ValueError, match="unknown"):
            DqRule.from_dict({"rule_id": "x", "kind": "not_null",
                              "column": "C", "colour": "red"})

    def test_reason_is_rule_specific(self):
        rule = DqRule(rule_id="x", kind="range", column="AMT",
                      min="0", max="9")
        assert "AMT" in rule.reason()
        dup = DqRule(rule_id="y", kind="unique", columns=("A", "B"))
        assert "A, B" in dup.reason()


class TestProfile:
    def test_bare_rule_list_becomes_catch_all(self):
        profile = DqProfile.from_profile([
            {"rule_id": "a", "kind": "not_null", "column": "C"}])
        assert profile.enabled
        ruleset = profile.resolve(target="ANY.TABLE", pool="p")
        assert ruleset is not None
        assert [r.rule_id for r in ruleset.rules] == ["a"]

    def test_none_profile_disabled(self):
        profile = DqProfile.from_profile(None)
        assert not profile.enabled
        assert profile.resolve(target="T") is None

    def test_first_matching_ruleset_wins(self):
        profile = DqProfile.from_profile({"rulesets": [
            {"name": "prod", "match": {"target": "PROD.*"},
             "rules": [{"rule_id": "a", "kind": "not_null",
                        "column": "C"}]},
            {"name": "all", "rules": [
                {"rule_id": "b", "kind": "not_null", "column": "C"}]},
        ]})
        assert profile.resolve(target="PROD.FACT").name == "prod"
        assert profile.resolve(target="STAGE.X").name == "all"

    def test_empty_ruleset_is_an_exemption(self):
        profile = DqProfile.from_profile({"rulesets": [
            {"name": "exempt", "match": {"target": "STAGE.*"},
             "rules": []},
            {"name": "all", "rules": [
                {"rule_id": "a", "kind": "not_null", "column": "C"}]},
        ]})
        assert profile.resolve(target="STAGE.TMP") is None
        assert profile.resolve(target="PROD.F").name == "all"

    def test_pool_matching(self):
        ruleset = DqRuleSet(name="etl", match={"pool": "etl*"})
        assert ruleset.matches({"pool": "etl-batch"})
        assert not ruleset.matches({"pool": "interactive"})
        assert not ruleset.matches({})

    def test_duplicate_rule_ids_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            DqProfile.from_profile([
                {"rule_id": "a", "kind": "not_null", "column": "C"},
                {"rule_id": "a", "kind": "not_null", "column": "D"}])

    def test_unknown_profile_keys_rejected(self):
        with pytest.raises(ValueError):
            DqProfile.from_profile({"ruleset": []})
        with pytest.raises(ValueError):
            DqProfile.from_profile({"rulesets": [
                {"name": "x", "match": {"tenant": "t"}, "rules": []}]})
        with pytest.raises(ValueError, match="rule list"):
            DqProfile.from_profile("not-a-profile")
