"""Kill + resume: dq routing stays exactly-once.

A dirty eager-apply load is killed mid-data (chaos-dropped ack, no
retry budget) after the precheck has already routed violators from the
durable prefix, then resumed under the same ``job_id``.  The resume
path re-materializes staged chunks, so the precheck *re-deletes*
re-appearing violators — but the journal's ``dq_route`` records must
stop it from ever inserting a row into the error table twice or
double-counting ``hyperq_dq_routed_rows_total``.
"""

import pytest

from repro.bench.harness import build_stack, run_workload_through_hyperq
from repro.core.config import HyperQConfig
from repro.legacy.client import ImportJobSpec, LegacyEtlClient
from repro.errors import TransportClosed
from repro.workloads.generator import dirty_workload

from tests.conftest import make_node


def reference_outcome(dirty):
    """The single clean rules-on run every resume must reproduce."""
    config = HyperQConfig(
        dq_profile=dirty.dq_rules, eager_apply=True)
    with build_stack(config=config) as stack:
        for sql in dirty.setup_sql:
            stack.engine.execute(sql)
        run_workload_through_hyperq(
            stack, dirty.workload, sessions=1, chunk_bytes=2048)
        w = dirty.workload
        target = sorted(stack.engine.query(
            f"SELECT REC_ID, REC_NAME, AMOUNT FROM {w.target_table}"))
        et = sorted(stack.engine.query(
            f"SELECT SEQNO, __RULE_ID FROM {w.et_table}"))
        return target, et


def test_killed_and_resumed_load_routes_each_violator_once(tmp_path):
    dirty = dirty_workload(400, violation_rate=0.05, seed=41)
    expected_target, expected_et = reference_outcome(dirty)
    assert expected_et  # the workload must actually have violators

    config = HyperQConfig(
        converters=1, filewriters=1, credits=8,
        eager_apply=True, dq_profile=dirty.dq_rules,
        file_threshold_bytes=4096,
        chaos_profile=[{"point": "net.send", "at_call": 14,
                        "max_fires": 1}])
    w = dirty.workload
    spec_kwargs = dict(
        target_table=w.target_table, et_table=w.et_table,
        uv_table=w.uv_table, layout=w.layout, apply_sql=w.apply_sql,
        data=w.data, format_spec=w.format_spec, sessions=1,
        chunk_bytes=2048, job_id="dqrestart",
        journal_path=str(tmp_path / "client.jsonl"))

    with make_node(config=config) as stack:
        for sql in dirty.setup_sql:
            stack.engine.execute(sql)
        client = LegacyEtlClient(stack.node.connect, timeout=15)
        client.logon("h", "u", "p")
        client.execute_sql(w.ddl)

        # Run 1: the dropped ack kills the client mid-load; the durable
        # prefix may already have been prechecked and routed.
        with pytest.raises(TransportClosed):
            client.run_import(ImportJobSpec(**spec_kwargs))

        # Run 2: same job_id, resume from both journals.
        client.run_import(ImportJobSpec(**spec_kwargs, resume=True))
        client.logoff()

        et = stack.engine.query(
            f"SELECT SEQNO, __RULE_ID FROM {w.et_table}")
        # exactly-once: no violator routed twice across the two runs
        assert len(et) == len(set(et))
        assert sorted(et) == expected_et

        # the resumed load converges on the clean-run end state
        target = sorted(stack.engine.query(
            f"SELECT REC_ID, REC_NAME, AMOUNT FROM {w.target_table}"))
        assert target == expected_target

        # the routed-rows counter covers each violator exactly once
        routed = stack.node.obs.registry.collect()[
            "hyperq_dq_routed_rows_total"]["samples"]
        assert routed[0]["value"] == len(expected_et)
        assert stack.node.stats()["resilience"]["faults_injected"] == 1
