"""Tests for the legacy->CDW rewrite rules and parameter binding."""

import pytest

from repro.errors import SqlTranslationError, UnboundParameterError
from repro.sqlxc import nodes as n
from repro.sqlxc import transpile
from repro.sqlxc.parser import parse_expression, parse_statement
from repro.sqlxc.render import render
from repro.sqlxc.rewrites import (
    bind_params_to_columns, bind_params_to_values, collect_host_params,
    map_type, to_cdw, upsert_to_merge,
)


class TestTypeMap:
    def test_unicode_to_nvarchar(self):
        mapped = map_type(n.TypeName("UNICODE", 20, dialect="legacy"))
        assert (mapped.base, mapped.length) == ("NVARCHAR", 20)

    def test_byteint_widened(self):
        assert map_type(n.TypeName("BYTEINT", dialect="legacy")).base == \
            "SMALLINT"

    def test_float_to_double(self):
        assert map_type(n.TypeName("FLOAT", dialect="legacy")).base == \
            "DOUBLE"

    def test_cdw_types_pass_through(self):
        t = n.TypeName("NVARCHAR", 5, dialect="cdw")
        assert map_type(t) is t

    def test_unknown_type_raises(self):
        with pytest.raises(SqlTranslationError):
            map_type(n.TypeName("GEOMETRY", dialect="legacy"))


class TestStructuralRewrites:
    def test_format_cast_becomes_to_date(self):
        sql = "SELECT CAST(a AS DATE FORMAT 'MM/DD/YYYY') FROM t"
        assert transpile(sql) == \
            "SELECT TO_DATE(a, 'MM/DD/YYYY') FROM t"

    def test_format_cast_timestamp(self):
        stmt = to_cdw(parse_statement(
            "SELECT CAST(a AS TIMESTAMP FORMAT 'X') FROM t", "legacy"))
        assert "TO_TIMESTAMP" in render(stmt)

    def test_format_cast_to_int_rejected(self):
        with pytest.raises(SqlTranslationError):
            to_cdw(parse_statement(
                "SELECT CAST(a AS INTEGER FORMAT '9') FROM t", "legacy"))

    def test_plain_cast_type_mapped(self):
        assert transpile("SELECT CAST(a AS UNICODE(5)) FROM t") == \
            "SELECT CAST(a AS NVARCHAR(5)) FROM t"

    def test_zeroifnull(self):
        assert transpile("SELECT ZEROIFNULL(a) FROM t") == \
            "SELECT COALESCE(a, 0) FROM t"

    def test_nullifzero(self):
        assert transpile("SELECT NULLIFZERO(a) FROM t") == \
            "SELECT NULLIF(a, 0) FROM t"

    def test_index_to_strpos(self):
        assert transpile("SELECT INDEX(a, 'x') FROM t") == \
            "SELECT STRPOS(a, 'x') FROM t"

    def test_position_to_strpos_swaps_args(self):
        assert transpile("SELECT POSITION('x' IN a) FROM t") == \
            "SELECT STRPOS(a, 'x') FROM t"

    def test_ddl_types_mapped(self):
        out = transpile(
            "CREATE TABLE t (a UNICODE(5), b BYTEINT, c FLOAT)")
        assert "NVARCHAR(5)" in out
        assert "SMALLINT" in out
        assert "DOUBLE" in out


class TestUpsertToMerge:
    def _upsert(self, sql):
        stmt = parse_statement(sql, dialect="legacy")
        assert isinstance(stmt, n.Upsert)
        return stmt

    def test_basic_structure(self):
        stmt = self._upsert(
            "UPDATE t SET v = s.v WHERE t.k = s.k "
            "ELSE INSERT INTO t VALUES (s.k, s.v)")
        merge = upsert_to_merge(stmt)
        assert isinstance(merge, n.Merge)
        assert merge.target.name == "t"
        assert merge.matched.assignments[0].column == "v"
        assert len(merge.not_matched.values) == 2

    def test_mismatched_tables_rejected(self):
        stmt = self._upsert(
            "UPDATE t SET v = 1 WHERE k = 1 "
            "ELSE INSERT INTO other VALUES (1)")
        with pytest.raises(SqlTranslationError):
            upsert_to_merge(stmt)

    def test_missing_where_rejected(self):
        stmt = self._upsert(
            "UPDATE t SET v = 1 ELSE INSERT INTO t VALUES (1)")
        with pytest.raises(SqlTranslationError):
            upsert_to_merge(stmt)

    def test_via_to_cdw(self):
        stmt = parse_statement(
            "UPDATE t SET v = s.v WHERE t.k = s.k "
            "ELSE INSERT INTO t VALUES (s.k, s.v)", dialect="legacy")
        out = render(to_cdw(stmt))
        assert out.startswith("MERGE INTO t USING s")


class TestBinding:
    SQL = ("insert into T values (trim(:A), "
           "cast(:B as DATE format 'YYYY-MM-DD'))")

    def test_collect_host_params(self):
        stmt = parse_statement(self.SQL, dialect="legacy")
        assert collect_host_params(stmt) == ["A", "B"]

    def test_bind_to_columns(self):
        stmt = parse_statement(self.SQL, dialect="legacy")
        bound = bind_params_to_columns(stmt, ["A", "B"], "s")
        refs = [node for node in n.walk(bound)
                if isinstance(node, n.ColumnRef)]
        assert {(r.table, r.name) for r in refs} == \
            {("s", "A"), ("s", "B")}

    def test_bind_to_columns_case_insensitive(self):
        stmt = parse_statement("select :x", dialect="legacy")
        bound = bind_params_to_columns(stmt, ["X"], "s")
        ref = bound.items[0].expr
        assert ref.name == "X"

    def test_bind_to_columns_unknown_raises(self):
        stmt = parse_statement(self.SQL, dialect="legacy")
        with pytest.raises(UnboundParameterError):
            bind_params_to_columns(stmt, ["A"], "s")

    def test_bind_to_values(self):
        stmt = parse_statement(self.SQL, dialect="legacy")
        bound = bind_params_to_values(stmt, {"A": " x ", "B": "2020-01-01"})
        params = [node for node in n.walk(bound)
                  if isinstance(node, n.BoundParam)]
        assert {(p.name, p.value) for p in params} == \
            {("A", " x "), ("B", "2020-01-01")}

    def test_bind_to_values_missing_raises(self):
        stmt = parse_statement(self.SQL, dialect="legacy")
        with pytest.raises(UnboundParameterError):
            bind_params_to_values(stmt, {"A": 1})

    def test_binding_is_non_destructive(self):
        stmt = parse_statement(self.SQL, dialect="legacy")
        bind_params_to_values(stmt, {"A": 1, "B": 2})
        # The original template still carries host params (rebindable).
        assert collect_host_params(stmt) == ["A", "B"]


class TestEndToEndTranspile:
    def test_example_21_dml(self):
        sql = ("insert into PROD.CUSTOMER values (trim(:CUST_ID), "
               "trim(:CUST_NAME), "
               "cast(:JOIN_DATE as DATE format 'YYYY-MM-DD'))")
        stmt = parse_statement(sql, dialect="legacy")
        bound = bind_params_to_columns(
            stmt, ["CUST_ID", "CUST_NAME", "JOIN_DATE"], "s")
        out = render(to_cdw(bound), "cdw")
        assert out == (
            "INSERT INTO PROD.CUSTOMER VALUES (TRIM(s.CUST_ID), "
            "TRIM(s.CUST_NAME), TO_DATE(s.JOIN_DATE, 'YYYY-MM-DD'))")

    def test_select_passthrough(self):
        sql = "sel a from t where a > 1"
        assert transpile(sql) == "SELECT a FROM t WHERE (a > 1)"
