"""Property fuzz: parser and renderer agree on randomly generated ASTs.

Strategy: build random expression/statement trees from the AST node
types, render them, parse the rendering, render again — the two
renderings must be identical (render∘parse is the identity on rendered
output).  This catches precedence bugs, quoting bugs, and any construct
one side supports but the other does not.
"""

import datetime
from decimal import Decimal

from hypothesis import given, settings, strategies as st

from repro.sqlxc import nodes as n
from repro.sqlxc.parser import parse_expression, parse_statement
from repro.sqlxc.render import render, render_expr

_ident = st.from_regex(r"[A-Za-z][A-Za-z0-9_]{0,8}", fullmatch=True) \
    .filter(lambda s: s.upper() not in {
        # words the parser treats as grammar
        "SELECT", "SEL", "FROM", "WHERE", "GROUP", "BY", "HAVING",
        "ORDER", "ASC", "DESC", "LIMIT", "DISTINCT", "AS", "AND", "OR",
        "NOT", "IN", "IS", "NULL", "BETWEEN", "LIKE", "EXISTS", "CASE",
        "WHEN", "THEN", "ELSE", "END", "CAST", "FORMAT", "INSERT",
        "INTO", "VALUES", "UPDATE", "SET", "DELETE", "MERGE", "USING",
        "ON", "MATCHED", "CREATE", "TABLE", "DROP", "IF", "JOIN",
        "INNER", "LEFT", "RIGHT", "FULL", "OUTER", "CROSS", "UNIQUE",
        "PRIMARY", "KEY", "COPY", "TRUE", "FALSE", "DATE", "TIMESTAMP",
        "TIME", "INTERVAL", "TRIM", "LEADING", "TRAILING", "BOTH",
        "POSITION", "SUBSTRING", "FOR", "COMPRESSION", "DELIMITER",
        "CONSTRAINT", "DEFAULT", "UNION", "EXCEPT", "INTERSECT", "ALL",
        "EXTRACT",
        # function names with special parse forms
        "E",
    })

_literal = st.one_of(
    st.integers(-10**6, 10**6).map(n.Literal),
    st.text(alphabet="abc'x%_\\\n", max_size=6).map(n.Literal),
    st.just(n.Literal(None)),
    st.booleans().map(n.Literal),
    st.dates(min_value=datetime.date(1, 1, 1),
             max_value=datetime.date(9999, 12, 31)).map(n.Literal),
    st.decimals(min_value=Decimal("-999.99"),
                max_value=Decimal("999.99"),
                places=2).map(n.Literal),
)

_column = st.one_of(
    _ident.map(n.ColumnRef),
    st.tuples(_ident, _ident).map(
        lambda t: n.ColumnRef(t[0], table=t[1])),
)

_type_name = st.sampled_from([
    n.TypeName("INT", dialect="cdw"),
    n.TypeName("NVARCHAR", 20, dialect="cdw"),
    n.TypeName("DECIMAL", 10, 2, dialect="cdw"),
    n.TypeName("DATE", dialect="cdw"),
    n.TypeName("DOUBLE", dialect="cdw"),
])


def _exprs(children):
    binop = st.tuples(
        st.sampled_from(["+", "-", "*", "/", "=", "<>", "<", ">=",
                         "||", "AND", "OR"]),
        children, children,
    ).map(lambda t: n.BinaryOp(*t))
    unary = children.map(lambda e: n.UnaryOp("NOT", e))
    isnull = st.tuples(children, st.booleans()).map(
        lambda t: n.IsNull(t[0], t[1]))
    between = st.tuples(children, children, children,
                        st.booleans()).map(
        lambda t: n.Between(t[0], t[1], t[2], t[3]))
    like = st.tuples(children, _literal, st.booleans()).map(
        lambda t: n.Like(t[0], n.Literal(str(t[1].value)), t[2]))
    in_list = st.tuples(
        children, st.lists(children, min_size=1, max_size=3),
        st.booleans(),
    ).map(lambda t: n.InExpr(t[0], items=t[1], negated=t[2]))
    cast = st.tuples(children, _type_name).map(
        lambda t: n.Cast(t[0], t[1]))
    func = st.tuples(
        st.sampled_from(["COALESCE", "NULLIF", "UPPER", "LENGTH",
                         "SUBSTR", "ABS"]),
        st.lists(children, min_size=1, max_size=3),
    ).map(lambda t: n.FuncCall(t[0], t[1]))
    case = st.tuples(
        st.lists(st.tuples(children, children), min_size=1,
                 max_size=2),
        st.one_of(st.none(), children),
    ).map(lambda t: n.CaseExpr(
        [n.WhenClause(c, r) for c, r in t[0]], t[1]))
    return st.one_of(binop, unary, isnull, between, like, in_list,
                     cast, func, case)


_expression = st.recursive(
    st.one_of(_literal, _column), _exprs, max_leaves=20)


@settings(max_examples=200, deadline=None)
@given(_expression)
def test_expression_render_parse_render_fixpoint(expr):
    first = render_expr(expr, "cdw")
    reparsed = parse_expression(first, dialect="cdw")
    assert render_expr(reparsed, "cdw") == first


_select = st.builds(
    n.Select,
    items=st.lists(
        st.builds(n.SelectItem, expr=_expression,
                  alias=st.one_of(st.none(), _ident)),
        min_size=1, max_size=3),
    from_=st.one_of(
        st.none(),
        st.builds(n.TableRef, name=_ident,
                  alias=st.one_of(st.none(), _ident))),
    where=st.one_of(st.none(), _expression),
    limit=st.one_of(st.none(), st.integers(0, 100)),
    distinct=st.booleans(),
)


@settings(max_examples=100, deadline=None)
@given(_select)
def test_select_render_parse_render_fixpoint(stmt):
    first = render(stmt, "cdw")
    reparsed = parse_statement(first, dialect="cdw")
    assert render(reparsed, "cdw") == first


@settings(max_examples=100, deadline=None)
@given(st.builds(
    n.Insert,
    table=st.builds(n.TableRef, name=_ident),
    columns=st.lists(_ident, max_size=3, unique=True),
    source=st.builds(
        n.Values,
        rows=st.lists(st.lists(_literal, min_size=2, max_size=2),
                      min_size=1, max_size=3)),
))
def test_insert_render_parse_render_fixpoint(stmt):
    first = render(stmt, "cdw")
    reparsed = parse_statement(first, dialect="cdw")
    assert render(reparsed, "cdw") == first
