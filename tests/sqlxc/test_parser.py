"""Tests for the SQL parser (both dialects)."""

import datetime
from decimal import Decimal

import pytest

from repro.errors import SqlParseError
from repro.sqlxc import nodes as n
from repro.sqlxc.parser import parse_expression, parse_statement


class TestExpressions:
    def test_literals(self):
        assert parse_expression("42") == n.Literal(42)
        assert parse_expression("3.5") == n.Literal(Decimal("3.5"))
        assert parse_expression("1e3") == n.Literal(1000.0)
        assert parse_expression("'hi'") == n.Literal("hi")
        assert parse_expression("NULL") == n.Literal(None)
        assert parse_expression("TRUE") == n.Literal(True)

    def test_date_literal(self):
        assert parse_expression("DATE '2012-01-02'") == \
            n.Literal(datetime.date(2012, 1, 2))

    def test_column_refs(self):
        assert parse_expression("a") == n.ColumnRef("a")
        assert parse_expression("t.a") == n.ColumnRef("a", table="t")

    def test_host_param_legacy_only(self):
        expr = parse_expression(":X", dialect="legacy")
        assert expr == n.HostParam("X")

    def test_precedence_arithmetic(self):
        expr = parse_expression("1 + 2 * 3")
        assert isinstance(expr, n.BinaryOp) and expr.op == "+"
        assert isinstance(expr.right, n.BinaryOp) and expr.right.op == "*"

    def test_precedence_logic(self):
        expr = parse_expression("a = 1 OR b = 2 AND c = 3")
        assert expr.op == "OR"
        assert expr.right.op == "AND"

    def test_not(self):
        expr = parse_expression("NOT a = 1")
        assert isinstance(expr, n.UnaryOp) and expr.op == "NOT"

    def test_unary_minus_folds_literal(self):
        assert parse_expression("-5") == n.Literal(-5)

    def test_unary_minus_on_expression(self):
        expr = parse_expression("-(a)")
        assert isinstance(expr, n.UnaryOp) and expr.op == "-"

    def test_concat(self):
        expr = parse_expression("a || b || c")
        assert expr.op == "||"
        assert expr.left.op == "||"

    def test_is_null_and_negation(self):
        assert parse_expression("a IS NULL") == \
            n.IsNull(n.ColumnRef("a"))
        assert parse_expression("a IS NOT NULL").negated

    def test_in_list(self):
        expr = parse_expression("a IN (1, 2, 3)")
        assert isinstance(expr, n.InExpr)
        assert len(expr.items) == 3

    def test_not_in(self):
        assert parse_expression("a NOT IN (1)").negated

    def test_between(self):
        expr = parse_expression("a BETWEEN 1 AND 10")
        assert isinstance(expr, n.Between)

    def test_like(self):
        expr = parse_expression("a LIKE 'x%'")
        assert isinstance(expr, n.Like)

    def test_cast_plain(self):
        expr = parse_expression("CAST(a AS INTEGER)")
        assert isinstance(expr, n.Cast)
        assert expr.type.base == "INTEGER"

    def test_cast_with_format_legacy(self):
        expr = parse_expression(
            "CAST(:D AS DATE FORMAT 'YYYY-MM-DD')", dialect="legacy")
        assert expr.format == "YYYY-MM-DD"

    def test_cast_with_format_rejected_in_cdw(self):
        with pytest.raises(SqlParseError):
            parse_expression(
                "CAST(a AS DATE FORMAT 'YYYY-MM-DD')", dialect="cdw")

    def test_trim_variants(self):
        assert parse_expression("TRIM(a)").name == "TRIM"
        assert parse_expression("TRIM(LEADING FROM a)").name == "LTRIM"
        assert parse_expression("TRIM(TRAILING FROM a)").name == "RTRIM"

    def test_position(self):
        expr = parse_expression("POSITION('x' IN a)")
        assert expr.name == "POSITION"
        assert expr.args[0] == n.Literal("x")

    def test_substring_from_for(self):
        expr = parse_expression("SUBSTRING(a FROM 2 FOR 3)")
        assert expr.name == "SUBSTR"
        assert len(expr.args) == 3

    def test_case_searched(self):
        expr = parse_expression(
            "CASE WHEN a = 1 THEN 'one' ELSE 'other' END")
        assert isinstance(expr, n.CaseExpr)
        assert expr.else_result == n.Literal("other")

    def test_case_simple_desugars(self):
        expr = parse_expression("CASE a WHEN 1 THEN 'one' END")
        condition = expr.whens[0].condition
        assert isinstance(condition, n.BinaryOp) and condition.op == "="

    def test_function_call_with_distinct(self):
        expr = parse_expression("COUNT(DISTINCT a)")
        assert expr.distinct

    def test_count_star(self):
        expr = parse_expression("COUNT(*)")
        assert isinstance(expr.args[0], n.Star)

    def test_trailing_garbage_raises(self):
        with pytest.raises(SqlParseError):
            parse_expression("1 2")


class TestSelect:
    def test_simple(self):
        stmt = parse_statement("SELECT a, b FROM t")
        assert isinstance(stmt, n.Select)
        assert len(stmt.items) == 2
        assert stmt.from_.name == "t"

    def test_star(self):
        stmt = parse_statement("SELECT * FROM t")
        assert isinstance(stmt.items[0].expr, n.Star)

    def test_aliases(self):
        stmt = parse_statement("SELECT a AS x, b y FROM t AS u")
        assert stmt.items[0].alias == "x"
        assert stmt.items[1].alias == "y"
        assert stmt.from_.alias == "u"

    def test_qualified_table_name(self):
        stmt = parse_statement("SELECT * FROM PROD.CUSTOMER")
        assert stmt.from_.name == "PROD.CUSTOMER"

    def test_full_clause_set(self):
        stmt = parse_statement(
            "SELECT a, COUNT(*) FROM t WHERE b > 0 GROUP BY a "
            "HAVING COUNT(*) > 1 ORDER BY 2 DESC LIMIT 5")
        assert stmt.where is not None
        assert len(stmt.group_by) == 1
        assert stmt.having is not None
        assert stmt.order_by[0][1] is False
        assert stmt.limit == 5

    def test_joins(self):
        stmt = parse_statement(
            "SELECT * FROM a JOIN b ON a.x = b.x "
            "LEFT JOIN c ON b.y = c.y")
        outer = stmt.from_
        assert isinstance(outer, n.Join) and outer.kind == "LEFT"
        inner = outer.left
        assert isinstance(inner, n.Join) and inner.kind == "INNER"

    def test_cross_join_comma(self):
        stmt = parse_statement("SELECT * FROM a, b")
        assert stmt.from_.kind == "CROSS"

    def test_subquery_in_where(self):
        stmt = parse_statement(
            "SELECT a FROM t WHERE a IN (SELECT b FROM u)")
        assert stmt.where.subquery is not None

    def test_exists(self):
        stmt = parse_statement(
            "SELECT a FROM t WHERE EXISTS (SELECT 1 FROM u)")
        assert isinstance(stmt.where, n.Exists)

    def test_distinct(self):
        assert parse_statement("SELECT DISTINCT a FROM t").distinct


class TestDml:
    def test_insert_values(self):
        stmt = parse_statement("INSERT INTO t VALUES (1, 'x')")
        assert isinstance(stmt.source, n.Values)

    def test_insert_with_columns(self):
        stmt = parse_statement("INSERT INTO t (a, b) VALUES (1, 2)")
        assert stmt.columns == ["a", "b"]

    def test_insert_multi_row(self):
        stmt = parse_statement("INSERT INTO t VALUES (1), (2), (3)")
        assert len(stmt.source.rows) == 3

    def test_insert_select(self):
        stmt = parse_statement("INSERT INTO t SELECT a FROM u")
        assert isinstance(stmt.source, n.Select)

    def test_update(self):
        stmt = parse_statement(
            "UPDATE t SET a = 1, b = b + 1 WHERE c = 2")
        assert len(stmt.assignments) == 2
        assert stmt.where is not None

    def test_update_from(self):
        stmt = parse_statement(
            "UPDATE t SET a = s.a FROM stg s WHERE t.k = s.k",
            dialect="cdw")
        assert stmt.from_.alias == "s"

    def test_legacy_upsert(self):
        stmt = parse_statement(
            "UPDATE t SET a = :A WHERE k = :K "
            "ELSE INSERT INTO t VALUES (:K, :A)", dialect="legacy")
        assert isinstance(stmt, n.Upsert)

    def test_upsert_rejected_in_cdw(self):
        with pytest.raises(SqlParseError):
            parse_statement(
                "UPDATE t SET a = 1 WHERE k = 1 "
                "ELSE INSERT INTO t VALUES (1, 1)", dialect="cdw")

    def test_delete(self):
        stmt = parse_statement("DELETE FROM t WHERE a = 1")
        assert isinstance(stmt, n.Delete)

    def test_delete_using(self):
        stmt = parse_statement(
            "DELETE FROM t USING s WHERE t.k = s.k", dialect="cdw")
        assert stmt.using is not None

    def test_merge(self):
        stmt = parse_statement(
            "MERGE INTO t USING s ON t.k = s.k "
            "WHEN MATCHED THEN UPDATE SET v = s.v "
            "WHEN NOT MATCHED THEN INSERT (k, v) VALUES (s.k, s.v)",
            dialect="cdw")
        assert isinstance(stmt, n.Merge)
        assert stmt.matched.assignments[0].column == "v"
        assert stmt.not_matched.columns == ["k", "v"]

    def test_merge_delete_clause(self):
        stmt = parse_statement(
            "MERGE INTO t USING s ON t.k = s.k "
            "WHEN MATCHED THEN DELETE", dialect="cdw")
        assert stmt.matched.delete


class TestDdl:
    def test_create_table(self):
        stmt = parse_statement(
            "CREATE TABLE t (a INTEGER NOT NULL, b VARCHAR(5), "
            "UNIQUE (a))")
        assert isinstance(stmt, n.CreateTable)
        assert not stmt.columns[0].nullable
        assert stmt.unique == [["a"]]

    def test_create_table_if_not_exists(self):
        stmt = parse_statement("CREATE TABLE IF NOT EXISTS t (a INT)",
                               dialect="cdw")
        assert stmt.if_not_exists

    def test_inline_unique(self):
        stmt = parse_statement("CREATE TABLE t (a INT UNIQUE)",
                               dialect="cdw")
        assert stmt.unique == [["a"]]

    def test_primary_key(self):
        stmt = parse_statement(
            "CREATE TABLE t (a INT, PRIMARY KEY (a))", dialect="cdw")
        assert stmt.unique == [["a"]]

    def test_drop_table(self):
        stmt = parse_statement("DROP TABLE IF EXISTS t")
        assert stmt.if_exists

    def test_copy_into_cdw_only(self):
        stmt = parse_statement(
            "COPY INTO t FROM 'store://c/p/' FORMAT csv "
            "DELIMITER ';' COMPRESSION gzip", dialect="cdw")
        assert isinstance(stmt, n.CopyInto)
        assert stmt.compression == "gzip"
        assert stmt.delimiter == ";"
        with pytest.raises(SqlParseError):
            parse_statement("COPY INTO t FROM 'x'", dialect="legacy")

    def test_unparseable_statement_raises(self):
        with pytest.raises(SqlParseError):
            parse_statement("GRANT ALL TO bob")
