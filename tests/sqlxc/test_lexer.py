"""Tests for the SQL lexer."""

import pytest

from repro.errors import SqlLexError
from repro.sqlxc.lexer import TokenType, tokenize


def kinds(sql):
    return [(t.type, t.value) for t in tokenize(sql)[:-1]]


class TestTokenize:
    def test_keywords_uppercased(self):
        assert kinds("select from")[0] == (TokenType.KEYWORD, "SELECT")

    def test_sel_abbreviation(self):
        assert kinds("sel")[0] == (TokenType.KEYWORD, "SELECT")

    def test_identifiers_keep_case(self):
        assert kinds("MyTable")[0] == (TokenType.IDENT, "MyTable")

    def test_function_names_are_identifiers(self):
        assert kinds("coalesce")[0][0] is TokenType.IDENT

    def test_quoted_identifier(self):
        assert kinds('"weird name"')[0] == \
            (TokenType.IDENT, "weird name")

    def test_string_with_escape(self):
        assert kinds("'it''s'")[0] == (TokenType.STRING, "it's")

    def test_unterminated_string_raises(self):
        with pytest.raises(SqlLexError):
            tokenize("'oops")

    def test_host_param(self):
        assert kinds(":CUST_ID")[0] == (TokenType.HOSTPARAM, "CUST_ID")

    def test_bare_colon_raises(self):
        with pytest.raises(SqlLexError):
            tokenize("a : b")

    def test_numbers(self):
        assert kinds("42")[0] == (TokenType.NUMBER, "42")
        assert kinds("3.14")[0] == (TokenType.NUMBER, "3.14")
        assert kinds("1e5")[0] == (TokenType.NUMBER, "1e5")
        assert kinds("2.5E-3")[0] == (TokenType.NUMBER, "2.5E-3")

    def test_multi_char_operators(self):
        ops = [v for t, v in kinds("a <> b != c >= d || e")
               if t is TokenType.OP]
        assert ops == ["<>", "!=", ">=", "||"]

    def test_comments_skipped(self):
        assert kinds("a -- comment\n b") == \
            [(TokenType.IDENT, "a"), (TokenType.IDENT, "b")]
        assert kinds("a /* x */ b") == \
            [(TokenType.IDENT, "a"), (TokenType.IDENT, "b")]

    def test_unterminated_block_comment_raises(self):
        with pytest.raises(SqlLexError):
            tokenize("a /* forever")

    def test_unknown_character_raises(self):
        with pytest.raises(SqlLexError):
            tokenize("a ? b")

    def test_eof_token_always_last(self):
        tokens = tokenize("select 1")
        assert tokens[-1].type is TokenType.EOF
