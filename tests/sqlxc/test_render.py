"""Renderer tests, including the parse -> render -> parse fixpoint."""

import pytest

from repro.errors import SqlTranslationError
from repro.sqlxc import nodes as n
from repro.sqlxc.parser import parse_statement
from repro.sqlxc.render import render, render_expr

FIXPOINT_STATEMENTS = [
    ("SELECT a, b AS x FROM t WHERE a > 1 ORDER BY a LIMIT 3", "cdw"),
    ("SELECT DISTINCT t.a FROM s AS t GROUP BY t.a HAVING COUNT(*) > 1",
     "cdw"),
    ("SELECT * FROM a INNER JOIN b ON a.x = b.x", "cdw"),
    ("SELECT * FROM a LEFT JOIN b ON a.x = b.x", "cdw"),
    ("INSERT INTO t (a, b) VALUES (1, 'x''y')", "cdw"),
    ("INSERT INTO t SELECT a FROM u WHERE a IS NOT NULL", "cdw"),
    ("UPDATE t AS x SET a = (x.a + 1) FROM s WHERE x.k = s.k", "cdw"),
    ("DELETE FROM t USING s WHERE t.k = s.k", "cdw"),
    ("MERGE INTO t USING s ON t.k = s.k WHEN MATCHED THEN UPDATE SET "
     "v = s.v WHEN NOT MATCHED THEN INSERT (k, v) VALUES (s.k, s.v)",
     "cdw"),
    ("CREATE TABLE t (a INT NOT NULL, b NVARCHAR(5), UNIQUE (a))", "cdw"),
    ("DROP TABLE IF EXISTS t", "cdw"),
    ("COPY INTO t FROM 'store://c/p/' FORMAT csv COMPRESSION gzip",
     "cdw"),
    ("SELECT CASE WHEN a = 1 THEN 'x' ELSE 'y' END FROM t", "cdw"),
    ("SELECT a FROM t WHERE a BETWEEN 1 AND 2 AND b LIKE 'x%'", "cdw"),
    ("SELECT a FROM t WHERE a IN (SELECT b FROM u)", "cdw"),
    ("SELECT a FROM t WHERE EXISTS (SELECT 1 FROM u)", "cdw"),
    ("INSERT INTO PROD.CUSTOMER VALUES (TRIM(:CUST_ID), "
     "CAST(:JOIN_DATE AS DATE FORMAT 'YYYY-MM-DD'))", "legacy"),
    ("UPDATE t SET a = :A WHERE k = :K ELSE INSERT INTO t VALUES "
     "(:K, :A)", "legacy"),
]


@pytest.mark.parametrize("sql,dialect", FIXPOINT_STATEMENTS)
def test_parse_render_parse_fixpoint(sql, dialect):
    """render(parse(x)) must parse back to the same rendering."""
    first = render(parse_statement(sql, dialect), dialect)
    second = render(parse_statement(first, dialect), dialect)
    assert first == second


class TestRenderDetails:
    def test_string_escaping(self):
        assert render_expr(n.Literal("it's")) == "'it''s'"

    def test_identifier_quoting(self):
        assert render_expr(n.ColumnRef("weird name")) == '"weird name"'
        assert render_expr(n.ColumnRef("plain")) == "plain"

    def test_date_literal(self):
        import datetime
        assert render_expr(n.Literal(datetime.date(2020, 1, 2))) == \
            "DATE '2020-01-02'"

    def test_null_true_false(self):
        assert render_expr(n.Literal(None)) == "NULL"
        assert render_expr(n.Literal(True)) == "TRUE"

    def test_bound_param_renders_as_literal(self):
        assert render_expr(n.BoundParam("X", 5)) == "5"

    def test_host_param_legacy_only(self):
        assert render_expr(n.HostParam("X"), "legacy") == ":X"
        with pytest.raises(SqlTranslationError):
            render_expr(n.HostParam("X"), "cdw")

    def test_format_cast_cdw_rejected(self):
        cast = n.Cast(n.ColumnRef("a"), n.TypeName("DATE"),
                      format="YYYY-MM-DD")
        with pytest.raises(SqlTranslationError):
            render_expr(cast, "cdw")

    def test_upsert_cdw_rejected(self):
        stmt = parse_statement(
            "UPDATE t SET a = 1 WHERE k = 1 ELSE INSERT INTO t "
            "VALUES (1, 1)", dialect="legacy")
        with pytest.raises(SqlTranslationError):
            render(stmt, "cdw")

    def test_copy_into_legacy_rejected(self):
        stmt = parse_statement(
            "COPY INTO t FROM 'store://c/p/'", dialect="cdw")
        with pytest.raises(SqlTranslationError):
            render(stmt, "legacy")
