"""ALTER TABLE: parse / render round-trips for schema evolution."""

import pytest

from repro.errors import SqlParseError
from repro.sqlxc import nodes as n
from repro.sqlxc import transpile
from repro.sqlxc.parser import parse_statement
from repro.sqlxc.render import render


def test_parse_add_column():
    stmt = parse_statement(
        "ALTER TABLE PROD.T ADD COLUMN C VARCHAR(8)")
    assert isinstance(stmt, n.AlterTable)
    assert stmt.table.name == "PROD.T"
    assert stmt.action == "add"
    assert stmt.column.name == "C"
    assert not stmt.if_not_exists


def test_parse_add_column_if_not_exists():
    stmt = parse_statement(
        "ALTER TABLE T ADD COLUMN IF NOT EXISTS C INT")
    assert stmt.if_not_exists


def test_parse_add_without_column_keyword():
    stmt = parse_statement("ALTER TABLE T ADD C INT")
    assert stmt.action == "add"
    assert stmt.column.name == "C"


def test_parse_rename_column():
    stmt = parse_statement("ALTER TABLE T RENAME COLUMN A TO B")
    assert stmt.action == "rename"
    assert stmt.old_name == "A"
    assert stmt.new_name == "B"


@pytest.mark.parametrize("sql", [
    "ALTER TABLE T ADD COLUMN C VARCHAR(8)",
    "ALTER TABLE T ADD COLUMN IF NOT EXISTS C VARCHAR(8)",
    "ALTER TABLE T ADD COLUMN C INT NOT NULL",
    "ALTER TABLE T RENAME COLUMN A TO B",
])
def test_render_parse_roundtrip(sql):
    rendered = render(parse_statement(sql))
    assert render(parse_statement(rendered)) == rendered


def test_transpile_passes_alter_through():
    out = transpile("ALTER TABLE T ADD COLUMN IF NOT EXISTS C VARCHAR(8)")
    assert out == "ALTER TABLE T ADD COLUMN IF NOT EXISTS C VARCHAR(8)"


def test_parse_rejects_unknown_alter_action():
    with pytest.raises(SqlParseError):
        parse_statement("ALTER TABLE T DROP COLUMN C")
