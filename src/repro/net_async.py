"""Async, sharded gateway front end: session multiplexing on a reactor.

The threaded front end (:class:`repro.core.frontend.ThreadedFrontend`)
spends one OS thread per socket — simple, but a reconnect storm of
legacy feeds means thousands of stacks, and every DATA ack contends on
the scheduler.  This module multiplexes the same session contract onto

- **one reactor**: a selector-based ``asyncio`` loop owns accept and
  framing for every TCP connection.  Frames are reassembled by the
  same :class:`~repro.legacy.protocol.Coalescer` the threaded path
  uses, then *routed*, never handled, on the loop;
- **N shard workers**: each :class:`GatewayShard` owns its jobs'
  pipelines (a shared :class:`~repro.core.pipeline.PipelineWorkerPool`
  instead of three threads per job), its own staging namespace
  (``base_dir/shard-K``), and its jobs' eager-apply coordinators, so
  shards never contend on pipeline queues or per-table locks.

Routing is deterministic: BEGIN_LOAD hashes ``(target table, tenant)``
via :func:`shard_key`, so concurrent loads into one table land on one
shard (per-table locks are shard-local); job-carrying frames (DATA,
END_LOAD, data-session LOGONs...) follow the job's recorded shard; the
rest stays on the connection's round-robin home shard.

The legacy wire protocol is strictly one-outstanding-request per
connection — the client never sends frame *k+1* before frame *k*'s
reply — so per-connection handler ordering is protocol-guaranteed and
shard executors need no per-connection serialization.

WLM admission can block inside a BEGIN_LOAD handler for seconds, so
each shard splits its handlers across two executors: admission frames
on one, everything that *frees* slots or credits (END_LOAD, APPLY,
fetches) on the other.  A shard full of parked admits can therefore
still finish jobs — the deadlock a single shard thread would hit.

In-memory :class:`repro.net.Listener` endpoints are queue-based, not
selectable; for those the front end substitutes one bridge reader
thread per connection feeding the identical framing/routing path (the
differential tests exercise sharding this way; the reactor is for real
sockets).
"""

from __future__ import annotations

import asyncio
import os
import threading
import zlib
from concurrent.futures import ThreadPoolExecutor

from repro.core.frontend import refuse_connection
from repro.core.pipeline import PipelineWorkerPool
from repro.errors import ReproError, TransportClosed
from repro.legacy.protocol import Coalescer, Message, MessageKind
from repro.net_tcp import tune_socket
from repro.obs import NULL_OBS, get_logger

__all__ = ["AsyncFrontend", "GatewayShard", "shard_key"]

log = get_logger("net_async")

#: concurrent BEGIN_LOAD/BEGIN_EXPORT handlers per shard — each may
#: park inside WLM admission, so this bounds parked admits, not work.
_ADMIT_WORKERS = 8
#: concurrent non-admission handlers per shard.
_WORK_WORKERS = 4
#: accept backlog when no connection cap implies one — a reconnect
#: storm must queue in the kernel, not stall in SYN retransmit.
_DEFAULT_BACKLOG = 1024

#: frames that may block in WLM admission (see GatewayShard).
_ADMIT_KINDS = frozenset({MessageKind.BEGIN_LOAD, MessageKind.BEGIN_EXPORT})


def shard_key(target: str, tenant: str, shards: int) -> int:
    """Deterministic shard index for a ``(target table, tenant)`` pair.

    ``crc32`` rather than builtin ``hash()`` so the mapping is stable
    across processes and runs — a job resumed after a node restart
    must land on the shard whose staging namespace holds its files.
    """
    return zlib.crc32(f"{target}|{tenant}".encode()) % shards


def default_shards() -> int:
    """Auto shard count: scale with cores, stay useful on small hosts."""
    return max(2, min(8, os.cpu_count() or 2))


class _Conn:
    """Server side of one multiplexed session.

    Implements the Endpoint *write* surface (``send_bytes`` / ``close``
    / ``close_both``) so chaos wrapping
    (:class:`~repro.faults.injector.FaultyEndpoint`) composes, plus the
    teardown bookkeeping: a frame in flight on a shard keeps the
    session state alive until its handler returns no matter when the
    peer vanishes, and ``connection_closed`` fires exactly once, off
    the reactor (it can block quiescing an abandoned job's pipeline).
    """

    def __init__(self, frontend: "AsyncFrontend"):
        self.frontend = frontend
        self.name = ""
        self.home_shard = frontend._next_home()
        self.coalescer = Coalescer()
        #: node.new_conn() dict (None until admitted past the cap).
        self.session: dict | None = None
        #: chaos-wrapped self; what the reply sink writes through.
        self.endpoint = None
        self.sink: "_ReplySink | None" = None
        #: job ids this connection registered in the route map.
        self.registered: set[str] = set()
        self._lock = threading.Lock()
        self._outstanding = 0
        self._peer_gone = False
        self._teardown_fired = False

    # -- teardown protocol (reactor/bridge + shard threads) ------------------

    def frame_arrived(self) -> None:
        with self._lock:
            self._outstanding += 1

    def frame_done(self) -> bool:
        """Handler finished; True when this call must run the teardown."""
        with self._lock:
            self._outstanding -= 1
            if (self._peer_gone and self._outstanding == 0
                    and not self._teardown_fired):
                self._teardown_fired = True
                return True
        return False

    def peer_lost(self) -> bool:
        """Peer vanished; True when the caller must *schedule* teardown."""
        with self._lock:
            self._peer_gone = True
            if self._outstanding == 0 and not self._teardown_fired:
                self._teardown_fired = True
                return True
        return False

    # -- endpoint write surface (transport-specific) -------------------------

    def send_bytes(self, data: bytes) -> None:  # pragma: no cover
        raise NotImplementedError

    def close(self) -> None:
        self.close_both()

    def close_both(self) -> None:  # pragma: no cover
        raise NotImplementedError


class _TcpConn(_Conn, asyncio.Protocol):
    """A TCP session on the reactor.

    ``send_bytes`` is callable from any shard thread: the write is
    marshalled onto the loop with ``call_soon_threadsafe`` (asyncio
    transports are not thread-safe).  The one-outstanding-request
    protocol keeps per-connection reply ordering trivially correct —
    there is never more than one reply in flight to marshal.
    """

    def __init__(self, frontend: "AsyncFrontend"):
        _Conn.__init__(self, frontend)
        self.transport = None
        self._write_closed = False

    # -- asyncio.Protocol callbacks (reactor thread) -------------------------

    def connection_made(self, transport) -> None:
        self.transport = transport
        sock = transport.get_extra_info("socket")
        if sock is not None:
            tune_socket(sock)
        peer = transport.get_extra_info("peername")
        self.name = f"server<-{peer}"
        self.frontend._admit_conn(self)

    def data_received(self, data: bytes) -> None:
        self.frontend._on_bytes(self, data)

    def eof_received(self) -> bool:
        return False  # half-close means goodbye; let connection_lost run

    def connection_lost(self, exc) -> None:
        self._write_closed = True
        self.frontend._on_lost(self)

    # -- endpoint write surface (any thread) ---------------------------------

    def send_bytes(self, data: bytes) -> None:
        if self._write_closed:
            raise TransportClosed("write on closed async connection")
        try:
            self.frontend.loop.call_soon_threadsafe(
                self._write, bytes(data))
        except RuntimeError as exc:  # loop shut down mid-reply
            raise TransportClosed(
                f"reactor gone: {exc}") from exc

    def _write(self, data: bytes) -> None:
        if self.transport is not None and not self.transport.is_closing():
            self.transport.write(data)

    def close_both(self) -> None:
        self._write_closed = True
        try:
            self.frontend.loop.call_soon_threadsafe(self._close_transport)
        except RuntimeError:
            pass

    def _close_transport(self) -> None:
        if self.transport is not None:
            self.transport.close()


class _BridgeConn(_Conn):
    """An in-memory session served by a bridge reader thread.

    ``repro.net`` endpoints are queue-backed and already thread-safe,
    so writes go straight through; only the read side needs a thread.
    """

    def __init__(self, frontend: "AsyncFrontend", raw):
        _Conn.__init__(self, frontend)
        self.raw = raw
        self.name = getattr(raw, "name", "bridge")

    def send_bytes(self, data: bytes) -> None:
        self.raw.send_bytes(data)

    def close_both(self) -> None:
        self.raw.close_both()


class _ReplySink:
    """The ``channel`` a shard handler answers on: just ``send``.

    Matches the slice of :class:`~repro.legacy.protocol.MessageChannel`
    the node's handlers actually use; writes go through the
    chaos-wrapped endpoint so ``net.send`` fault rules fire on replies
    exactly as they do on the threaded path.
    """

    __slots__ = ("_endpoint",)

    def __init__(self, endpoint):
        self._endpoint = endpoint

    def send(self, message: Message) -> None:
        self._endpoint.send_bytes(message.to_bytes())

    def close(self) -> None:
        self._endpoint.close()


class GatewayShard:
    """One shard worker: pipelines, staging namespace, two executors.

    Everything a load job owns below the protocol — converter/writer/
    uploader stages, local staging files, the eager-apply coordinator —
    lives in the shard that BEGIN_LOAD hashed to, so two shards never
    share a pipeline queue or a per-table lock.  The two executors
    split *blocking admission* from *slot-freeing work*: END_LOAD must
    never queue behind a BEGIN_LOAD parked in ``wlm.admit``.
    """

    def __init__(self, frontend: "AsyncFrontend", index: int,
                 staging_root: str, pipeline_workers: int):
        self.frontend = frontend
        self.index = index
        self.staging_dir = os.path.join(staging_root, f"shard-{index}")
        os.makedirs(self.staging_dir, exist_ok=True)
        #: shared stage-task pool for every pipeline on this shard.
        self.pool = PipelineWorkerPool(
            workers=pipeline_workers, name=f"shard{index}")
        name = f"{frontend.name}-shard{index}"
        self.exec_admit = ThreadPoolExecutor(
            max_workers=_ADMIT_WORKERS, thread_name_prefix=f"{name}-admit")
        self.exec_work = ThreadPoolExecutor(
            max_workers=_WORK_WORKERS, thread_name_prefix=f"{name}-work")
        self._lock = threading.Lock()
        self._routed = 0
        self._handled = 0
        self._depth = 0

    def enqueue(self, conn: _Conn, message: Message) -> None:
        """Hand one routed frame to the right executor (never blocks)."""
        executor = (self.exec_admit if message.kind in _ADMIT_KINDS
                    else self.exec_work)
        with self._lock:
            self._routed += 1
            self._depth += 1
        self.frontend.obs.shard_queue_depth \
            .labels(shard=str(self.index)).inc()
        executor.submit(self._handle, conn, message)

    def _handle(self, conn: _Conn, message: Message) -> None:
        with self._lock:
            self._depth -= 1
        self.frontend.obs.shard_queue_depth \
            .labels(shard=str(self.index)).dec()
        try:
            self.frontend._execute(conn, message, self)
        finally:
            with self._lock:
                self._handled += 1

    def submit_teardown(self, conn: _Conn) -> None:
        """Run a connection teardown off the reactor (it can block)."""
        try:
            self.exec_work.submit(self.frontend._teardown, conn)
        except RuntimeError:
            # Executors already closed: the node is stopping and reaps
            # every job itself; nothing left to tear down per-conn.
            pass

    def snapshot(self) -> dict:
        """Routed/handled frame counters + current queue depth."""
        with self._lock:
            routed, handled, depth = \
                self._routed, self._handled, self._depth
        return {"shard": self.index, "routed": routed,
                "handled": handled, "queue_depth": depth}

    def close(self) -> None:
        """Shut down both executors and the shared pipeline pool."""
        self.exec_admit.shutdown(wait=False, cancel_futures=True)
        self.exec_work.shutdown(wait=False, cancel_futures=True)
        self.pool.close()


class AsyncFrontend:
    """Reactor + shard workers behind ``config.async_frontend``.

    Drives the same node session contract as
    :class:`~repro.core.frontend.ThreadedFrontend` (``new_conn`` /
    ``handle_message`` / ``connection_closed`` / ``wrap_endpoint``) —
    the node cannot tell which front end is serving it, which is what
    makes the differential async-vs-threaded suite meaningful.
    """

    kind = "async"

    def __init__(self, node, listener, *, name: str = "server",
                 shards: int = 0, max_connections: int = 0,
                 shard_pipeline_workers: int = 4, obs=NULL_OBS,
                 base_dir: str | None = None):
        self.node = node
        self.listener = listener
        self.name = name
        self.max_connections = max_connections
        self.obs = obs
        staging_root = base_dir or os.getcwd()
        count = shards or default_shards()
        self.shards = [
            GatewayShard(self, i, staging_root, shard_pipeline_workers)
            for i in range(count)]
        #: job id -> shard index (route DATA/END_LOAD/data-LOGON to the
        #: shard that owns the job's pipeline).
        self._job_shard: dict[str, int] = {}
        self._route_lock = threading.Lock()
        self._home_counter = 0
        self._cap_lock = threading.Lock()
        self._active = 0
        self._refused = 0
        self._running = False
        self.loop: asyncio.AbstractEventLoop | None = None
        self._reactor: threading.Thread | None = None
        self._accept_thread: threading.Thread | None = None
        self._stop_event: asyncio.Event | None = None

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> "AsyncFrontend":
        """Begin serving: the reactor for real sockets (listeners
        exposing ``socket()``), a bridge accept thread otherwise."""
        self._running = True
        socket_of = getattr(self.listener, "socket", None)
        if callable(socket_of):
            self._start_reactor(socket_of())
        else:
            # In-memory listener: not selectable, bridge threads instead.
            self._accept_thread = threading.Thread(
                target=self._bridge_accept, daemon=True,
                name=f"{self.name}-accept")
            self._accept_thread.start()
        return self

    def stop(self) -> None:
        """Stop accepting and halt the reactor; shards keep serving
        in-flight handlers until :meth:`close`."""
        self._running = False
        if self.loop is not None and self._stop_event is not None:
            try:
                self.loop.call_soon_threadsafe(self._stop_event.set)
            except RuntimeError:  # pragma: no cover - already down
                pass
        if self._reactor is not None:
            self._reactor.join(timeout=10.0)

    def close(self) -> None:
        """Second teardown phase (after the node reaped its jobs):
        shard executors and pipeline pools go away."""
        for shard in self.shards:
            shard.close()

    @property
    def connections_active(self) -> int:
        with self._cap_lock:
            return self._active

    def snapshot(self) -> dict:
        """``stats()["gateway"]`` contribution of this front end."""
        with self._cap_lock:
            active, refused = self._active, self._refused
        return {
            "frontend": self.kind,
            "connections_active": active,
            "connections_refused": refused,
            "max_connections": self.max_connections,
            "shards": [shard.snapshot() for shard in self.shards],
        }

    # -- reactor (TCP listeners) ---------------------------------------------

    def _start_reactor(self, server_sock) -> None:
        self.loop = asyncio.new_event_loop()
        started = threading.Event()
        # Re-listen with a backlog deep enough for a reconnect storm:
        # the cap (or a storm-sized default) bounds what we are willing
        # to queue, the listener's own backlog is the floor.
        backlog = max(getattr(self.listener, "backlog", 0),
                      self.max_connections or _DEFAULT_BACKLOG)

        async def _serve():
            self._stop_event = asyncio.Event()
            server = await self.loop.create_server(
                lambda: _TcpConn(self), sock=server_sock,
                backlog=backlog)
            started.set()
            try:
                await self._stop_event.wait()
            finally:
                server.close()
                await server.wait_closed()

        def _run():
            asyncio.set_event_loop(self.loop)
            try:
                self.loop.run_until_complete(_serve())
            finally:
                started.set()  # never leave start() hanging on a crash
                self.loop.close()

        self._reactor = threading.Thread(
            target=_run, daemon=True, name=f"{self.name}-reactor")
        self._reactor.start()
        started.wait(timeout=10.0)

    # -- bridge (in-memory listeners) ----------------------------------------

    def _bridge_accept(self) -> None:
        while self._running:
            try:
                raw = self.listener.accept(timeout=0.5)
            except ReproError:  # pragma: no cover - listener closed
                return
            if raw is None:
                continue
            conn = _BridgeConn(self, raw)
            if not self._admit_conn(conn):
                continue
            threading.Thread(
                target=self._bridge_read, args=(conn,), daemon=True,
                name=f"{self.name}-bridge").start()

    def _bridge_read(self, conn: _BridgeConn) -> None:
        try:
            while True:
                chunk = conn.raw.recv_bytes(timeout=None)
                if chunk is None:
                    return
                self._on_bytes(conn, chunk)
        except ReproError:
            pass
        finally:
            self._on_lost(conn)

    # -- connection admission / teardown -------------------------------------

    def _next_home(self) -> int:
        with self._route_lock:
            self._home_counter += 1
            return self._home_counter % len(self.shards)

    def _admit_conn(self, conn: _Conn) -> bool:
        """Admit past the connection cap or shed with a typed error."""
        with self._cap_lock:
            if self.max_connections and \
                    self._active >= self.max_connections:
                self._refused += 1
                refused = True
            else:
                self._active += 1
                refused = False
        if refused:
            refuse_connection(conn, self.max_connections, obs=self.obs)
            return False
        self.obs.connections_active.inc()
        conn.session = self.node.new_conn()
        conn.endpoint = self.node.wrap_endpoint(conn)
        conn.sink = _ReplySink(conn.endpoint)
        return True

    def _on_lost(self, conn: _Conn) -> None:
        if conn.session is None:
            return  # refused at the cap; nothing was admitted
        if conn.peer_lost():
            # connection_closed can block quiescing an abandoned job's
            # pipeline — never run it on the reactor.
            self.shards[conn.home_shard].submit_teardown(conn)

    def _teardown(self, conn: _Conn) -> None:
        try:
            self.node.connection_closed(conn.session)
        finally:
            if conn.registered:
                with self._route_lock:
                    for job_id in conn.registered:
                        self._job_shard.pop(job_id, None)
            with self._cap_lock:
                self._active -= 1
            self.obs.connections_active.dec()

    # -- framing + routing ---------------------------------------------------

    def _on_bytes(self, conn: _Conn, data: bytes) -> None:
        if conn.session is None:
            return  # bytes from a refused connection
        try:
            for message in conn.coalescer.feed(data):
                self._route(conn, message)
        except ReproError:
            conn.close_both()  # garbage frames: hang up

    def _route(self, conn: _Conn, message: Message) -> None:
        shard = self._pick_shard(conn, message)
        span = self.obs.tracer.span(
            "gateway.route", parent=message.trace_context(),
            kind=message.kind.name, shard=shard.index)
        span.end()
        conn.frame_arrived()
        shard.enqueue(conn, message)

    def _pick_shard(self, conn: _Conn, message: Message) -> GatewayShard:
        meta = message.meta
        if message.kind == MessageKind.BEGIN_LOAD:
            tenant = str(meta.get("tenant")
                         or (conn.session or {}).get("user", ""))
            index = shard_key(str(meta.get("target", "")), tenant,
                              len(self.shards))
            return self.shards[index]
        job_id = meta.get("job_id")
        if job_id:
            with self._route_lock:
                index = self._job_shard.get(job_id)
            if index is not None:
                return self.shards[index]
        return self.shards[conn.home_shard]

    # -- handler execution (shard executors) ---------------------------------

    def _execute(self, conn: _Conn, message: Message,
                 shard: GatewayShard) -> None:
        session = conn.session
        # The shard context _begin_load_admitted reads: shard staging
        # namespace + shared pipeline pool.  One outstanding request
        # per connection means no concurrent writer to this key.
        session["shard"] = shard
        try:
            self.node.handle_message(conn.sink, message, session)
        except ReproError:
            # Dead transport (or unrecoverable dispatch error): hang
            # up; connection_lost runs the teardown exactly once.
            conn.close_both()
        except BaseException:
            log.exception("shard handler crashed", extra={
                "shard": shard.index, "kind": message.kind.name})
            conn.close_both()
        finally:
            self._register_jobs(conn, shard)
            if conn.frame_done():
                self._teardown(conn)

    def _register_jobs(self, conn: _Conn, shard: GatewayShard) -> None:
        """Sync the job->shard route map with what this conn now owns.

        Safe to read ``conn.session`` here: data-session LOGONs for a
        job only arrive after BEGIN_LOAD_OK was sent, i.e. after this
        ran for the registering BEGIN_LOAD.
        """
        session = conn.session
        current = set(session["loads"]) | set(session["exports"])
        if current == conn.registered:
            return
        with self._route_lock:
            for job_id in current - conn.registered:
                self._job_shard.setdefault(job_id, shard.index)
            for job_id in conn.registered - current:
                self._job_shard.pop(job_id, None)
        conn.registered = current
