"""The Figure 11 baseline: singleton inserts with immediate error logging.

Section 9: "The baseline system loads data records using singleton
inserts, and when an erroneous tuple is encountered, it is inserted right
away into the error log."  No bulk path, no staging table, no adaptive
splitting — one round trip per record, which is why its cost is flat in
the error rate and much higher than Hyper-Q's bulk path at low error
rates.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.cdw.engine import CdwEngine
from repro.errors import (
    HYPERQ_CONVERSION_ERROR, HYPERQ_UNIQUENESS_ERROR, BulkExecutionError,
    CdwError, DataFormatError, SqlError,
)
from repro.legacy.datafmt import make_format
from repro.sqlxc import nodes as n
from repro.sqlxc.parser import parse_statement
from repro.sqlxc.rewrites import bind_params_to_values, to_cdw
from repro.workloads.generator import Workload

__all__ = ["SingletonInsertLoader", "BaselineResult"]


@dataclass
class BaselineResult:
    elapsed_s: float = 0.0
    rows_inserted: int = 0
    et_errors: int = 0
    uv_errors: int = 0
    statements: int = 0


class SingletonInsertLoader:
    """Loads a workload into the CDW one INSERT at a time."""

    def __init__(self, engine: CdwEngine):
        self.engine = engine

    def prepare(self, workload: Workload) -> None:
        """Create target and error tables for the workload."""
        self.engine.execute(to_cdw(
            parse_statement(workload.ddl, dialect="legacy")))
        self.engine.execute(
            f"CREATE TABLE {workload.et_table} (SEQNO INT, ERRCODE INT, "
            "ERRFIELD NVARCHAR(128), ERRMSG NVARCHAR(512))")
        target = self.engine.table(workload.target_table)
        uv_columns = ", ".join(
            f"{c.name} {c.ctype.render()}" for c in target.columns)
        self.engine.execute(
            f"CREATE TABLE {workload.uv_table} ({uv_columns}, "
            "SEQNO INT, ERRCODE INT)")

    def run(self, workload: Workload) -> BaselineResult:
        """Load every record with its own cross-compiled INSERT."""
        result = BaselineResult()
        started = time.perf_counter()
        template = parse_statement(workload.apply_sql, dialect="legacy")
        fmt = make_format(workload.format_spec, workload.layout)
        field_names = workload.layout.field_names
        rownum = 0
        for item in fmt.iter_decode(workload.data):
            rownum += 1
            if isinstance(item, DataFormatError):
                self._log_et(workload, rownum, item.code, item.field,
                             str(item))
                result.et_errors += 1
                continue
            bound = to_cdw(bind_params_to_values(
                template, dict(zip(field_names, item))))
            result.statements += 1
            try:
                outcome = self.engine.execute(bound)
            except BulkExecutionError as exc:
                if exc.kind == "uniqueness":
                    self._log_uv(workload, bound, rownum)
                    result.uv_errors += 1
                else:
                    self._log_et(workload, rownum,
                                 HYPERQ_CONVERSION_ERROR, exc.field,
                                 str(exc))
                    result.et_errors += 1
                continue
            except (SqlError, CdwError) as exc:
                self._log_et(workload, rownum, HYPERQ_CONVERSION_ERROR,
                             getattr(exc, "field", None), str(exc))
                result.et_errors += 1
                continue
            result.rows_inserted += outcome.rows_inserted
        result.elapsed_s = time.perf_counter() - started
        return result

    def _log_et(self, workload: Workload, rownum: int, code: int,
                field: str | None, message: str) -> None:
        values = n.Values([[n.Literal(rownum), n.Literal(code),
                            n.Literal(field), n.Literal(message[:512])]])
        self.engine.execute(
            n.Insert(n.TableRef(workload.et_table), [], values))

    def _log_uv(self, workload: Workload, bound: n.Statement,
                rownum: int) -> None:
        uv = self.engine.table(workload.uv_table)
        tuple_values: list = [None] * (uv.arity - 2)
        if isinstance(bound, n.Insert) and isinstance(bound.source,
                                                      n.Values):
            from repro.cdw.expressions import RowContext, evaluate
            ctx = RowContext()
            raw = [evaluate(e, ctx) for e in bound.source.rows[0]]
            tuple_values = (raw + tuple_values)[:uv.arity - 2]
        values = n.Values([[n.Literal(v) for v in tuple_values]
                           + [n.Literal(rownum),
                              n.Literal(HYPERQ_UNIQUENESS_ERROR)]])
        self.engine.execute(
            n.Insert(n.TableRef(workload.uv_table), [], values))
