"""Baseline systems the paper compares against."""

from repro.baselines.singleton import SingletonInsertLoader, BaselineResult

__all__ = ["SingletonInsertLoader", "BaselineResult"]
