"""Upfront translatability analysis of a legacy ETL workload.

For each job script the analyzer extracts every piece of SQL (bare
statements, ``.dml`` bodies, export SELECTs), attempts the full cross
compilation pipeline (parse legacy → rewrite → render CDW), and
classifies the outcome:

- ``ok`` — translates cleanly; nothing to do during the migration;
- ``rewrite`` — parsed, but a construct has no CDW equivalent
  (:class:`~repro.errors.SqlTranslationError`) — a *localized* manual
  rewrite, matching the paper's observation that "most manual rewrites
  are highly localized, i.e., they concern a single construct";
- ``unparsed`` — not legacy SQL the gateway understands at all.

The report aggregates by classification and by offending construct so a
migration team can "establish a standard process to address query
rewrites early on" (the Section 8 lesson learned).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ScriptError, SqlError, SqlTranslationError
from repro.legacy.script import ast as script_ast
from repro.legacy.script.parser import parse_script
from repro.sqlxc import parse_statement, render, to_cdw
from repro.sqlxc.rewrites import collect_host_params

__all__ = ["StatementFinding", "WorkloadReport", "WorkloadAnalyzer"]


@dataclass
class StatementFinding:
    """Analysis result for one statement of the workload."""

    job: str
    origin: str            # 'sql' | 'dml:<label>' | 'export'
    sql: str
    status: str            # 'ok' | 'rewrite' | 'unparsed'
    construct: str = ""    # offending construct for non-ok statements
    detail: str = ""
    host_params: list[str] = field(default_factory=list)
    translated: str = ""   # CDW rendering when status == 'ok'


@dataclass
class WorkloadReport:
    """Aggregated translatability of a script corpus."""

    findings: list[StatementFinding] = field(default_factory=list)
    script_errors: dict[str, str] = field(default_factory=dict)

    @property
    def total(self) -> int:
        return len(self.findings)

    def by_status(self, status: str) -> list[StatementFinding]:
        """All findings with the given status."""
        return [f for f in self.findings if f.status == status]

    @property
    def ok_fraction(self) -> float:
        if not self.findings:
            return 1.0
        return len(self.by_status("ok")) / self.total

    def construct_histogram(self) -> dict[str, int]:
        """How often each problematic construct appears."""
        histogram: dict[str, int] = {}
        for finding in self.findings:
            if finding.status != "ok":
                key = finding.construct or "unknown"
                histogram[key] = histogram.get(key, 0) + 1
        return dict(sorted(histogram.items(),
                           key=lambda kv: -kv[1]))

    def render(self) -> str:
        """Human-readable migration-readiness report."""
        lines = ["qInsight workload analysis", "=" * 40]
        lines.append(f"statements analyzed : {self.total}")
        lines.append(
            f"translate cleanly   : {len(self.by_status('ok'))} "
            f"({self.ok_fraction:.1%})")
        lines.append(
            f"need manual rewrite : {len(self.by_status('rewrite'))}")
        lines.append(
            f"not legacy SQL      : {len(self.by_status('unparsed'))}")
        if self.script_errors:
            lines.append(f"unparseable scripts : "
                         f"{len(self.script_errors)}")
        histogram = self.construct_histogram()
        if histogram:
            lines.append("")
            lines.append("constructs requiring attention:")
            for construct, count in histogram.items():
                lines.append(f"  {count:4d}  {construct}")
        problem_findings = [f for f in self.findings
                            if f.status != "ok"]
        if problem_findings:
            lines.append("")
            lines.append("statements to rewrite upfront:")
            for finding in problem_findings[:20]:
                snippet = " ".join(finding.sql.split())[:60]
                lines.append(
                    f"  [{finding.job}/{finding.origin}] {snippet}")
                lines.append(f"      -> {finding.detail}")
        return "\n".join(lines) + "\n"


def _classify_construct(exc: Exception, sql: str) -> str:
    """Best-effort naming of the construct behind a failure."""
    text = str(exc)
    lowered = sql.lower()
    if "FORMAT cast" in text:
        return "FORMAT cast to non-temporal type"
    if "no CDW mapping" in text or "no CDW equivalent" in text:
        return "unmapped legacy type"
    if "upsert" in text.lower():
        return "legacy upsert form"
    if "cannot parse statement" in text:
        first_word = sql.split(None, 1)[0].upper() if sql.split() else "?"
        return f"unsupported statement verb {first_word}"
    if "qualify" in lowered:
        return "QUALIFY clause"
    return type(exc).__name__


class WorkloadAnalyzer:
    """Analyzes corpora of legacy job scripts for translatability."""

    def analyze_sql(self, job: str, origin: str,
                    sql: str) -> StatementFinding:
        """Run one statement through the cross compiler and classify."""
        try:
            statement = parse_statement(sql, dialect="legacy")
        except SqlError as exc:
            return StatementFinding(
                job=job, origin=origin, sql=sql, status="unparsed",
                construct=_classify_construct(exc, sql),
                detail=str(exc))
        params = collect_host_params(statement)
        if params:
            # Host params are expected in DML bodies: analyze the bound
            # form (the shape Hyper-Q actually executes).
            from repro.sqlxc.rewrites import bind_params_to_columns
            statement = bind_params_to_columns(statement, params, "s")
        try:
            translated = render(to_cdw(statement), "cdw")
        except SqlTranslationError as exc:
            return StatementFinding(
                job=job, origin=origin, sql=sql, status="rewrite",
                construct=_classify_construct(exc, sql),
                detail=str(exc), host_params=params)
        return StatementFinding(
            job=job, origin=origin, sql=sql, status="ok",
            host_params=params, translated=translated)

    def analyze_script(self, job: str, source: str,
                       report: WorkloadReport) -> None:
        """Extract and analyze every SQL statement of one job script."""
        try:
            script = parse_script(source)
        except ScriptError as exc:
            report.script_errors[job] = str(exc)
            return
        for command in script.commands:
            if isinstance(command, script_ast.SqlCmd):
                report.findings.append(
                    self.analyze_sql(job, "sql", command.sql))
            elif isinstance(command, script_ast.DmlDecl):
                report.findings.append(self.analyze_sql(
                    job, f"dml:{command.label}", command.sql))
            elif isinstance(command, script_ast.ExportCmd):
                report.findings.append(self.analyze_sql(
                    job, "export", command.select_sql))

    def analyze_corpus(self,
                       scripts: dict[str, str]) -> WorkloadReport:
        """Analyze a corpus: job name -> script source."""
        report = WorkloadReport()
        for job in sorted(scripts):
            self.analyze_script(job, scripts[job], report)
        return report
