"""Data-quality insight over a node's precheck verdicts.

Consumes the ``stats()["dq"]`` snapshot a Hyper-Q node accumulates while
running declarative prechecks (see :mod:`repro.dq`) and renders a
migration-review style report: fleet totals, the violation histogram
across every rule, and the top violated rules per job — the dq
counterpart of the translatability report in
:mod:`repro.qinsight.analyzer`.
"""

from __future__ import annotations

__all__ = ["top_violated_rules", "render_dq_report"]


def top_violated_rules(job: dict, limit: int = 3) -> list[tuple[str, int]]:
    """The job's most-violated rules as ``(rule_id, count)`` pairs.

    ``job`` is one entry of ``stats()["dq"]["jobs"]``.  Ties break
    alphabetically so the report is deterministic.
    """
    violations = job.get("violations", {})
    ranked = sorted(violations.items(), key=lambda kv: (-kv[1], kv[0]))
    return ranked[:max(limit, 0)]


def render_dq_report(snapshot: dict, limit: int = 3) -> str:
    """Human-readable dq report from a ``stats()["dq"]`` snapshot."""
    lines = ["qInsight data-quality report", "=" * 40]
    rulesets = ", ".join(snapshot.get("rulesets", ())) or "-"
    lines.append(f"rulesets            : {rulesets}")
    lines.append(f"jobs prechecked     : {snapshot.get('jobs_checked', 0)}")
    lines.append(f"rows checked        : {snapshot.get('checked', 0)}")
    lines.append(f"rows routed to ET   : {snapshot.get('routed_rows', 0)}")
    violations = snapshot.get("violations", {})
    if violations:
        lines.append("")
        lines.append("violations by rule:")
        width = max(len(rule) for rule in violations)
        for rule, count in sorted(violations.items(),
                                  key=lambda kv: (-kv[1], kv[0])):
            lines.append(f"  {count:6d}  {rule.ljust(width)}")
    jobs = snapshot.get("jobs", ())
    if jobs:
        lines.append("")
        lines.append("top violated rules per job:")
        for job in jobs:
            top = ", ".join(f"{rule}={count}" for rule, count
                            in top_violated_rules(job, limit))
            lines.append(
                f"  [{job.get('job_id', '?')}] {job.get('target', '?')} "
                f"(ruleset {job.get('ruleset', '?')}): "
                f"checked={job.get('checked', 0)} "
                f"routed={job.get('routed_rows', 0)}"
                + (f" -> {top}" if top else " -> clean"))
    return "\n".join(lines) + "\n"
