"""qInsight-style workload analysis (Section 8).

The case study reports that "less than 1% of the queries in ETL jobs had
to be rewritten manually" and that the migration used qInsight [4] "to
identify parts of ETL jobs that need to be rewritten upfront".  This
package provides that upfront analysis for a corpus of legacy job
scripts: every statement is run through the cross compiler, failures are
classified by construct, and a coverage report says what fraction of the
workload virtualizes out of the box.

:mod:`repro.qinsight.dqreport` extends the same review posture to data
quality: it renders a node's ``stats()["dq"]`` precheck snapshot as a
fleet report with the top violated rules per job.
"""

from repro.qinsight.analyzer import (
    StatementFinding, WorkloadAnalyzer, WorkloadReport,
)
from repro.qinsight.dqreport import render_dq_report, top_violated_rules

__all__ = ["StatementFinding", "WorkloadAnalyzer", "WorkloadReport",
           "render_dq_report", "top_violated_rules"]
