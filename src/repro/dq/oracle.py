"""A pure-Python per-row oracle for the compiled SQL precheck.

Used by the differential suite (``tests/dq/test_rule_oracle.py``): the
oracle evaluates a ruleset tuple-at-a-time with the exact NULL and
first-occurrence-wins semantics documented in :mod:`repro.dq.rules`,
so compiled-SQL verdicts can be checked for *exact* agreement on both
``{rule_id: failed_count}`` and the set of routed ``__SEQ``\\ s.

Rows are mappings of staging column name → Python value (SQL NULL is
``None``) keyed by their ``__SEQ``.  ``sql``-kind rules are evaluated
through caller-supplied predicate callables (``row → bool | None``),
since re-implementing the SQL expression evaluator here would defeat
the point of a differential test.
"""

from __future__ import annotations

import re

from repro.dq.rules import DqRule

__all__ = ["OracleVerdict", "evaluate"]


class OracleVerdict:
    """Counts + routing assignment the compiled pass must reproduce."""

    __slots__ = ("counts", "assigned")

    def __init__(self, counts: "dict[str, int]",
                 assigned: "dict[int, str]"):
        #: {rule_id: failed_count} — every rule each row breaks.
        self.counts = counts
        #: {seq: rule_id} — first violating rule in profile order.
        self.assigned = assigned

    @property
    def routed_seqs(self) -> "set[int]":
        return set(self.assigned)


def _violates(rule: DqRule, row: dict, parents: "set | None",
              predicate) -> bool:
    """Per-row verdict for every kind except ``unique``."""
    if rule.kind == "not_null":
        return row[rule.column] is None
    value = row.get(rule.column) if rule.column else None
    if rule.kind == "range":
        if value is None:
            return False
        if rule.min is not None and value < rule.min:
            return True
        return rule.max is not None and value > rule.max
    if rule.kind == "regex":
        if value is None:
            return False
        return re.search(rule.pattern, str(value)) is None
    if rule.kind == "in_set":
        if value is None:
            return False
        return value not in rule.values
    if rule.kind == "referential":
        if value is None:
            return False
        return value not in parents
    # sql: NULL (None) predicates count as violations
    return predicate(row) is not True


def evaluate(ruleset, rows: "dict[int, dict]",
             parent_values: "dict[str, set] | None" = None,
             predicates: "dict[str, callable] | None" = None
             ) -> OracleVerdict:
    """Evaluate ``ruleset`` over the rows, ``__SEQ`` order.

    Mirrors the compiled precheck's two-stage cascade: every non-unique
    rule judges rows independently; ``unique`` rules then walk seqs in
    order and only let a *surviving* (not already doomed) row claim a
    key — a duplicate of a routed row is not a violation, exactly as
    the target's uniqueness constraint would decide after the routed
    row failed application.

    ``parent_values`` maps ``referential`` rule_ids to the set of
    valid parent-key values; ``predicates`` maps ``sql`` rule_ids to
    ``row → bool | None`` callables.
    """
    parent_values = parent_values or {}
    predicates = predicates or {}
    violators: "dict[str, set[int]]" = {
        rule.rule_id: set() for rule in ruleset.rules}
    doomed: "set[int]" = set()
    for rule in ruleset.rules:
        if rule.kind == "unique":
            continue
        hits = violators[rule.rule_id]
        for seq in sorted(rows):
            if _violates(rule, rows[seq],
                         parent_values.get(rule.rule_id),
                         predicates.get(rule.rule_id)):
                hits.add(seq)
        doomed |= hits
    for rule in ruleset.rules:
        if rule.kind != "unique":
            continue
        hits = violators[rule.rule_id]
        taken: "set[tuple]" = set()
        for seq in sorted(rows):
            key = tuple(rows[seq][c] for c in rule.key_columns)
            if any(v is None for v in key) or seq in doomed:
                continue
            if key in taken:
                hits.add(seq)
                doomed.add(seq)
            else:
                taken.add(key)
    counts = {rule_id: len(hits) for rule_id, hits in violators.items()}
    assigned: "dict[int, str]" = {}
    for rule in ruleset.rules:
        for seq in violators[rule.rule_id]:
            assigned.setdefault(seq, rule.rule_id)
    return OracleVerdict(counts, assigned)
