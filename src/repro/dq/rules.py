"""Declarative data-quality rules.

Each :class:`DqRule` names one check over the *staging* columns of a
load job — the legacy layout's field names, exactly as the rewritten
DML sees them.  Seven kinds are supported:

========== ===========================================================
kind       violation
========== ===========================================================
not_null   ``column`` is SQL NULL
range      ``column`` is below ``min`` or above ``max`` (either bound
           may be omitted); NULL is *not* a range violation
regex      ``column`` does not match ``pattern`` (``re.search``
           semantics); NULL is exempt
in_set     ``column`` is not one of ``values``; NULL is exempt
unique     the row's key (``column`` or composite ``columns``) already
           occurred at a lower ``__SEQ`` in a *surviving* row; rows
           with any NULL key column are exempt.  The first surviving
           occurrence wins — rows routed by other rules (or already
           deleted) never claim a key
referential ``column`` has no matching value in
           ``parent_table.parent_column``; NULL is exempt
sql        the raw ``predicate`` (a CDW-dialect boolean expression
           over the staging columns) is not TRUE — NULL predicates
           count as violations
========== ===========================================================

The NULL conventions mirror SQL constraint semantics: only
``not_null`` rejects NULLs, every other per-column rule treats NULL as
"no opinion" so one missing value is reported once, not once per rule.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

__all__ = ["DqRule", "RULE_KINDS", "PER_ROW_KINDS", "SET_KINDS"]

#: every rule kind the compiler understands.
RULE_KINDS = ("not_null", "range", "regex", "in_set", "unique",
              "referential", "sql")
#: kinds compiled into the single aggregated SUM(CASE …) pass.
PER_ROW_KINDS = ("not_null", "range", "regex", "in_set", "sql")
#: kinds needing a cross-row pass (grouping / set difference).
SET_KINDS = ("unique", "referential")


@dataclass(frozen=True)
class DqRule:
    """One declarative rule; validated eagerly at profile load."""

    rule_id: str
    kind: str
    column: str | None = None
    #: composite key for ``unique`` (takes precedence over ``column``).
    columns: tuple[str, ...] = ()
    min: "object" = None
    max: "object" = None
    pattern: str | None = None
    values: tuple = ()
    parent_table: str | None = None
    parent_column: str | None = None
    predicate: str | None = None

    def __post_init__(self):
        """Validate the rule's shape for its declared kind."""
        if not self.rule_id or not str(self.rule_id).strip():
            raise ValueError("dq rule needs a non-empty rule_id")
        if self.kind not in RULE_KINDS:
            raise ValueError(
                f"dq rule {self.rule_id}: unknown kind {self.kind!r} "
                f"(known: {', '.join(RULE_KINDS)})")
        needs_column = self.kind in ("not_null", "range", "regex",
                                     "in_set", "referential")
        if needs_column and not self.column:
            raise ValueError(
                f"dq rule {self.rule_id} ({self.kind}) needs a column")
        if self.kind == "range" and self.min is None and self.max is None:
            raise ValueError(
                f"dq rule {self.rule_id} (range) needs min and/or max")
        if self.kind == "regex":
            if not self.pattern:
                raise ValueError(
                    f"dq rule {self.rule_id} (regex) needs a pattern")
            try:
                re.compile(self.pattern)
            except re.error as exc:
                raise ValueError(
                    f"dq rule {self.rule_id}: bad regex pattern "
                    f"{self.pattern!r}: {exc}") from exc
        if self.kind == "in_set" and not self.values:
            raise ValueError(
                f"dq rule {self.rule_id} (in_set) needs values")
        if self.kind == "unique" and not (self.columns or self.column):
            raise ValueError(
                f"dq rule {self.rule_id} (unique) needs column(s)")
        if self.kind == "referential" and not (
                self.parent_table and self.parent_column):
            raise ValueError(
                f"dq rule {self.rule_id} (referential) needs "
                f"parent_table and parent_column")
        if self.kind == "sql" and not self.predicate:
            raise ValueError(
                f"dq rule {self.rule_id} (sql) needs a predicate")

    # -- derived -----------------------------------------------------------

    @property
    def key_columns(self) -> tuple[str, ...]:
        """The uniqueness key (composite ``columns`` or the single one)."""
        return self.columns if self.columns else (self.column,)

    @property
    def referenced_columns(self) -> tuple[str, ...]:
        """Every staging column the rule reads (empty for ``sql``)."""
        if self.kind == "unique":
            return self.key_columns
        if self.column:
            return (self.column,)
        return ()

    def reason(self) -> str:
        """The static ``__REASON`` text routed rows carry."""
        if self.kind == "not_null":
            return f"NULL in required column {self.column}"
        if self.kind == "range":
            lo = "-inf" if self.min is None else repr(self.min)
            hi = "+inf" if self.max is None else repr(self.max)
            return f"{self.column} outside [{lo}, {hi}]"
        if self.kind == "regex":
            return f"{self.column} does not match /{self.pattern}/"
        if self.kind == "in_set":
            return f"{self.column} not in allowed set"
        if self.kind == "unique":
            return f"duplicate key ({', '.join(self.key_columns)})"
        if self.kind == "referential":
            return (f"{self.column} has no match in "
                    f"{self.parent_table}.{self.parent_column}")
        return f"predicate not satisfied: {self.predicate}"[:200]

    # -- construction ------------------------------------------------------

    _KNOWN_KEYS = frozenset((
        "rule_id", "kind", "column", "columns", "min", "max",
        "pattern", "values", "parent_table", "parent_column",
        "predicate"))

    @classmethod
    def from_dict(cls, payload: dict) -> "DqRule":
        """Build a rule from one profile-JSON object."""
        if not isinstance(payload, dict):
            raise ValueError(f"dq rule must be an object, got "
                             f"{type(payload).__name__}")
        unknown = set(payload) - cls._KNOWN_KEYS
        if unknown:
            raise ValueError(
                f"unknown dq-rule keys: {', '.join(sorted(unknown))}")
        kwargs = dict(payload)
        if "columns" in kwargs:
            kwargs["columns"] = tuple(kwargs["columns"])
        if "values" in kwargs:
            kwargs["values"] = tuple(kwargs["values"])
        return cls(**kwargs)
