"""repro.dq — declarative data quality, compiled to set-oriented SQL.

The subsystem turns a JSON rule profile into two SQL passes run ahead
of the application phase (the ``dq.precheck``):

- :mod:`repro.dq.rules`    — the rule model (`not_null`, `range`,
  `regex`, `in_set`, `unique`, `referential`, raw `sql` predicates);
- :mod:`repro.dq.profile`  — profile loader + glob matching of
  rulesets to jobs (``HyperQConfig.dq_profile`` / ``--dq-profile``),
  resolved against the target table and the job's WLM pool;
- :mod:`repro.dq.compiler` — renders all per-row rules into one
  aggregated ``SELECT SUM(CASE WHEN …)`` pass plus per-rule routing
  selects, all ``__SEQ``-range-prunable;
- :mod:`repro.dq.precheck` — runs the passes, routes violators to the
  job's error table (``__RULE_ID``/``__REASON`` provenance), deletes
  them from staging, and journals the routed seqs for exactly-once
  resume;
- :mod:`repro.dq.oracle`   — the pure-Python per-row reference used by
  the differential tests.

See ``docs/DQ.md`` for the rule reference and the precheck lifecycle.
"""

from repro.dq.compiler import CompiledRuleSet, violation_flag
from repro.dq.precheck import DqPrechecker, DqRangeResult
from repro.dq.profile import DqProfile, DqRuleSet
from repro.dq.rules import PER_ROW_KINDS, RULE_KINDS, SET_KINDS, DqRule

__all__ = [
    "DqRule", "DqRuleSet", "DqProfile",
    "CompiledRuleSet", "violation_flag",
    "DqPrechecker", "DqRangeResult",
    "RULE_KINDS", "PER_ROW_KINDS", "SET_KINDS",
]
