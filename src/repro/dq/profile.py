"""Data-quality profiles: named rulesets matched to jobs by glob.

The JSON shape follows the ``wlm_profile``/``slo_profile`` pattern
(see ``examples/dq_profile.json``):

.. code-block:: json

    {"rulesets": [
        {"name": "customer-loads",
         "match": {"target": "PROD.*", "pool": "etl"},
         "rules": [
             {"rule_id": "rec_id_required", "kind": "not_null",
              "column": "REC_ID"}
         ]}
    ]}

A bare list of rules is also accepted and becomes one ruleset that
matches every job.  ``match`` patterns are ``fnmatch`` globs over the
job's target table and its WLM pool (resolved by the workload
classifier); an absent pattern — or an empty ``match`` — claims
everything.  Like WLM pool classification, resolution is
first-match-wins in declaration order.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fnmatch import fnmatchcase

from repro.dq.rules import DqRule

__all__ = ["DqProfile", "DqRuleSet", "MATCH_KEYS"]

#: job attributes a ruleset may match on.
MATCH_KEYS = ("target", "pool")


@dataclass(frozen=True)
class DqRuleSet:
    """An ordered rule list plus the glob patterns that select it."""

    name: str
    rules: tuple[DqRule, ...] = ()
    match: dict = field(default_factory=dict)

    def __post_init__(self):
        """Validate the ruleset name, match keys, and rule-id uniqueness."""
        if not self.name or not str(self.name).strip():
            raise ValueError("dq ruleset needs a non-empty name")
        unknown = set(self.match) - set(MATCH_KEYS)
        if unknown:
            raise ValueError(
                f"dq ruleset {self.name}: unknown match keys: "
                f"{', '.join(sorted(unknown))} "
                f"(known: {', '.join(MATCH_KEYS)})")
        seen: set[str] = set()
        for rule in self.rules:
            if rule.rule_id in seen:
                raise ValueError(
                    f"dq ruleset {self.name}: duplicate rule_id "
                    f"{rule.rule_id!r}")
            seen.add(rule.rule_id)

    def matches(self, attrs: dict) -> bool:
        """True when every configured glob matches its attribute."""
        return all(
            fnmatchcase(str(attrs.get(key) or ""), str(pattern))
            for key, pattern in self.match.items())

    @classmethod
    def from_dict(cls, payload: dict) -> "DqRuleSet":
        if not isinstance(payload, dict):
            raise ValueError(f"dq ruleset must be an object, got "
                             f"{type(payload).__name__}")
        unknown = set(payload) - {"name", "match", "rules"}
        if unknown:
            raise ValueError(
                f"unknown dq-ruleset keys: {', '.join(sorted(unknown))}")
        return cls(
            name=payload.get("name", ""),
            match=dict(payload.get("match", {})),
            rules=tuple(DqRule.from_dict(r)
                        for r in payload.get("rules", [])))


@dataclass(frozen=True)
class DqProfile:
    """Every configured ruleset, in declaration order."""

    rulesets: tuple[DqRuleSet, ...] = ()

    @property
    def enabled(self) -> bool:
        return bool(self.rulesets)

    @classmethod
    def from_profile(cls, payload) -> "DqProfile":
        """Build from parsed ``dq_profile`` JSON (dict, list, or None)."""
        if payload is None:
            return cls(())
        if isinstance(payload, list):
            # bare rule list: one anonymous catch-all ruleset
            return cls((DqRuleSet(
                name="default",
                rules=tuple(DqRule.from_dict(r) for r in payload)),))
        if not isinstance(payload, dict):
            raise ValueError(
                f"dq_profile must be an object or a rule list, got "
                f"{type(payload).__name__}")
        unknown = set(payload) - {"rulesets", "rules"}
        if unknown:
            raise ValueError(
                f"unknown dq-profile keys: {', '.join(sorted(unknown))}")
        rulesets = [DqRuleSet.from_dict(r)
                    for r in payload.get("rulesets", [])]
        if payload.get("rules"):
            rulesets.append(DqRuleSet(
                name="default",
                rules=tuple(DqRule.from_dict(r)
                            for r in payload["rules"])))
        return cls(tuple(rulesets))

    def resolve(self, *, target: str = "",
                pool: str = "") -> "DqRuleSet | None":
        """First ruleset whose globs claim this job, or None.

        Mirrors WLM pool classification: declaration order wins, and a
        matching ruleset with zero rules still wins (an explicit way to
        exempt a job class from a later catch-all).
        """
        attrs = {"target": target, "pool": pool}
        for ruleset in self.rulesets:
            if ruleset.matches(attrs):
                return ruleset if ruleset.rules else None
        return None
