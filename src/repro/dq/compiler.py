"""Compile a ruleset into set-oriented SQL over the staging table.

The per-row kinds (``not_null``, ``range``, ``regex``, ``in_set``,
``sql``) all reduce to one aggregated pass in the style of Kontra's
``SqlExecutor.compile``::

    SELECT COUNT(*) AS TOTAL,
           SUM(CASE WHEN … THEN 1 ELSE 0 END) AS C0,
           SUM(CASE WHEN … THEN 1 ELSE 0 END) AS C1, …
      FROM HQ_STG_j1
     WHERE __SEQ BETWEEN :lo AND :hi

returning ``{rule_id: failed_count}`` in a single row, plus one
routing ``SELECT __SEQ`` per *violated* rule.  Every CASE yields a
0/1 *violation flag* — never NULL — so SQL three-valued logic cannot
leak violations past ``SUM``.  The cross-row kinds (``unique``,
``referential``) compile to grouping / set-difference passes instead.

All range-scoped statements carry a non-negated ``__SEQ BETWEEN``
conjunct, so the engine's zone-map pruning (PR 5) turns each pass
into a binary-searched slice scan rather than a full staging scan.
"""

from __future__ import annotations

from repro.dq.rules import PER_ROW_KINDS, SET_KINDS, DqRule
from repro.sqlxc import nodes as n
from repro.sqlxc.parser import parse_statement

__all__ = ["CompiledRuleSet", "violation_flag", "et_insert",
           "staging_delete", "SEQ_COLUMN"]

#: Hyper-Q's synthetic staging order column.  Redeclared from
#: :data:`repro.core.beta.SEQ_COLUMN` (the canonical definition) so
#: ``repro.dq`` stays importable standalone — importing the gateway
#: package from here would be circular.
SEQ_COLUMN = "__SEQ"

_ONE = n.Literal(1)
_ZERO = n.Literal(0)


def _and(*conjuncts):
    """Left-folded AND over the given condition nodes."""
    expr = conjuncts[0]
    for conjunct in conjuncts[1:]:
        expr = n.BinaryOp("AND", expr, conjunct)
    return expr


def _seq_between(lo: int, hi: int):
    return n.Between(n.ColumnRef(SEQ_COLUMN),
                     n.Literal(lo), n.Literal(hi))


def _parse_predicate(rule: DqRule, staging_table: str):
    """The ``sql``-kind predicate as an expression tree."""
    wrapper = parse_statement(
        f"SELECT 1 FROM {staging_table} WHERE ({rule.predicate})",
        dialect="cdw")
    if wrapper.where is None:  # pragma: no cover - parser guarantees
        raise ValueError(
            f"dq rule {rule.rule_id}: unparseable predicate")
    return wrapper.where


def violation_flag(rule: DqRule, staging_table: str):
    """A CASE expression yielding 1 iff the row violates ``rule``.

    The flag is always 0 or 1 — NULL column values short-circuit to
    the kind's documented exemption before any comparison can go
    three-valued.
    """
    col = n.ColumnRef(rule.column) if rule.column else None
    if rule.kind == "not_null":
        return n.CaseExpr(
            [n.WhenClause(n.IsNull(col), _ONE)], _ZERO)
    if rule.kind == "range":
        whens = [n.WhenClause(n.IsNull(col), _ZERO)]
        if rule.min is not None:
            whens.append(n.WhenClause(
                n.BinaryOp("<", col, n.Literal(rule.min)), _ONE))
        if rule.max is not None:
            whens.append(n.WhenClause(
                n.BinaryOp(">", col, n.Literal(rule.max)), _ONE))
        return n.CaseExpr(whens, _ZERO)
    if rule.kind == "regex":
        return n.CaseExpr(
            [n.WhenClause(n.IsNull(col), _ZERO),
             n.WhenClause(
                 n.FuncCall("REGEXP_LIKE",
                            [col, n.Literal(rule.pattern)]), _ZERO)],
            _ONE)
    if rule.kind == "in_set":
        return n.CaseExpr(
            [n.WhenClause(n.IsNull(col), _ZERO),
             n.WhenClause(
                 n.InExpr(col, [n.Literal(v) for v in rule.values]),
                 _ZERO)],
            _ONE)
    if rule.kind == "sql":
        return n.CaseExpr(
            [n.WhenClause(_parse_predicate(rule, staging_table),
                          _ZERO)],
            _ONE)
    raise ValueError(f"rule kind {rule.kind} has no per-row flag")


def et_insert(et_table: str, rows: "list[tuple]") -> n.Insert:
    """Batched multi-row INSERT routing violations to the error table."""
    return n.Insert(
        n.TableRef(et_table), [],
        n.Values([[n.Literal(v) for v in row] for row in rows]))


def staging_delete(staging_table: str, seqs: "list[int]") -> n.Delete:
    """Remove the given staging rows (one zone-map-prunable DELETE).

    The BETWEEN over min/max keeps the scan a binary-searched slice;
    the IN list picks the exact rows inside it.
    """
    return n.Delete(
        n.TableRef(staging_table), None,
        _and(_seq_between(min(seqs), max(seqs)),
             n.InExpr(n.ColumnRef(SEQ_COLUMN),
                      [n.Literal(s) for s in seqs])))


class CompiledRuleSet:
    """A ruleset's rules rendered to reusable statement templates.

    Flag expressions are built once; only the ``__SEQ`` range literals
    differ between invocations (the engine treats handed-over trees as
    read-only, so sharing subtrees across statements is safe).
    """

    def __init__(self, ruleset, staging_table: str):
        self.ruleset = ruleset
        self.staging_table = staging_table
        self.per_row_rules = tuple(
            r for r in ruleset.rules if r.kind in PER_ROW_KINDS)
        self.set_rules = tuple(
            r for r in ruleset.rules if r.kind in SET_KINDS)
        self._flags = {
            r.rule_id: violation_flag(r, staging_table)
            for r in self.per_row_rules}

    def validate_columns(self, available: "set[str]") -> None:
        """Reject rules naming columns the staging layout lacks."""
        for rule in self.ruleset.rules:
            missing = [c for c in rule.referenced_columns
                       if c not in available]
            if missing:
                raise ValueError(
                    f"dq rule {rule.rule_id} references unknown "
                    f"staging column(s): {', '.join(missing)}")

    # -- per-row pass ------------------------------------------------------

    def counts_select(self, lo: int, hi: int) -> n.Select:
        """The single aggregated violation-count pass for the range."""
        items = [n.SelectItem(n.FuncCall("COUNT", [n.Star()]),
                              alias="TOTAL")]
        for i, rule in enumerate(self.per_row_rules):
            items.append(n.SelectItem(
                n.FuncCall("SUM", [self._flags[rule.rule_id]]),
                alias=f"C{i}"))
        return n.Select(items, from_=n.TableRef(self.staging_table),
                        where=_seq_between(lo, hi))

    def routing_flags_select(self, rules: "tuple[DqRule, ...]",
                             lo: int, hi: int) -> n.Select:
        """``(__SEQ, flag…)`` of rows violating any given per-row rule.

        One scan routes every violated per-row rule in the range — the
        WHERE keeps clean rows out of the result, the flag columns say
        which of the rules each surviving row broke.
        """
        items = [n.SelectItem(n.ColumnRef(SEQ_COLUMN))]
        any_hit = None
        for i, rule in enumerate(rules):
            flag = self._flags[rule.rule_id]
            items.append(n.SelectItem(flag, alias=f"F{i}"))
            hit = n.BinaryOp("=", flag, _ONE)
            any_hit = hit if any_hit is None else \
                n.BinaryOp("OR", any_hit, hit)
        return n.Select(
            items, from_=n.TableRef(self.staging_table),
            where=_and(_seq_between(lo, hi), any_hit))

    # -- unique ------------------------------------------------------------

    def _key_not_null(self, rule: DqRule):
        return [n.IsNull(n.ColumnRef(c), negated=True)
                for c in rule.key_columns]

    def unique_keys_select(self, rule: DqRule) -> n.Select:
        """(key…, __SEQ) of every keyed row in the staging table.

        Scans the whole table on purpose: the surviving-first-
        occurrence cascade must hold *globally*, and clean rows from
        already-applied eager prefixes stay in staging, so a later
        duplicate always sees the earlier winner here.
        """
        items = [n.SelectItem(n.ColumnRef(c))
                 for c in rule.key_columns]
        items.append(n.SelectItem(n.ColumnRef(SEQ_COLUMN)))
        return n.Select(
            items, from_=n.TableRef(self.staging_table),
            where=_and(*self._key_not_null(rule)))

    # -- referential -------------------------------------------------------

    def referential_members_select(self, rule: DqRule, lo: int,
                                   hi: int) -> n.Select:
        """(child value, __SEQ) of every non-NULL row in the range."""
        return n.Select(
            [n.SelectItem(n.ColumnRef(rule.column)),
             n.SelectItem(n.ColumnRef(SEQ_COLUMN))],
            from_=n.TableRef(self.staging_table),
            where=_and(_seq_between(lo, hi),
                       n.IsNull(n.ColumnRef(rule.column),
                                negated=True)))

    def parent_values_select(self, rule: DqRule) -> n.Select:
        """DISTINCT parent-key values the child column must hit."""
        return n.Select(
            [n.SelectItem(n.ColumnRef(rule.parent_column))],
            from_=n.TableRef(rule.parent_table),
            distinct=True)
