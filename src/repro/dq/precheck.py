"""The pre-APPLY data-quality check + violation routing pass.

:class:`DqPrechecker` runs between acquisition and application — once
over the whole staging table for two-phase jobs, or once per durable
contiguous ``__SEQ`` prefix under eager apply.  Each
:meth:`check_range` is a handful of set-oriented SQL passes:

1. the single aggregated counts pass (``{rule_id: failed_count}``);
2. one flag-columns routing pass shared by every *violated* per-row
   rule, plus the keys / set-difference passes for
   ``unique``/``referential``;
3. a batched multi-row INSERT of the violators into the job's error
   table (tagged ``__RULE_ID``/``__REASON``, Figure 6 style);
4. a zone-map-pruned DELETE removing them from staging — Beta never
   sees them, so the adaptive split cascade (Fig 11) is reserved for
   genuinely unexpected errors.

A row violating several rules is *routed* once, by the first violating
rule in profile order; the counts pass still reports it under every
per-row rule it breaks (Kontra semantics).  ``unique`` counts follow
the routing cascade instead: a duplicate only violates when an earlier
*surviving* row holds its key — rows routed by another rule (or deleted
by an earlier range) never claim a key, which keeps rules-on runs
row-for-row equivalent to what the target's constraints would have
decided during application, and makes the eager per-prefix path and the
two-phase whole-table path route identical sets.  Routed seqs are
journaled (``dq_route`` records) so kill+resume re-deletes
re-materialized rows but never double-inserts them into the error
table.
"""

from __future__ import annotations

import threading

from repro.dq.compiler import (SEQ_COLUMN, CompiledRuleSet, et_insert,
                               staging_delete)
from repro.dq.rules import DqRule
from repro.errors import HYPERQ_DQ_VIOLATION, GatewayError
from repro.obs import NULL_OBS, NULL_SPAN

__all__ = ["DqPrechecker", "DqRangeResult"]

#: seqs per DELETE batch — bounds the IN-list each statement evaluates.
_DELETE_BATCH = 512
#: rows per ET INSERT batch.
_INSERT_BATCH = 512


class DqRangeResult:
    """What one :meth:`DqPrechecker.check_range` call did."""

    __slots__ = ("checked", "counts", "routed", "rerouted")

    def __init__(self, checked: int, counts: "dict[str, int]",
                 routed: "list[int]", rerouted: int):
        #: staging rows scanned by the counts pass.
        self.checked = checked
        #: per-rule failed counts (every rule a row breaks).
        self.counts = counts
        #: freshly routed seqs (journal + error table + delete).
        self.routed = routed
        #: re-materialized seqs re-deleted without re-recording.
        self.rerouted = rerouted


class DqPrechecker:
    """Per-job precheck state: compiled rules + exactly-once routing."""

    def __init__(self, *, ruleset, engine, staging_table: str,
                 et_table: str, target_table: str, layout,
                 seq_stride: int, journal=None, obs=NULL_OBS,
                 job_id: str = ""):
        self.ruleset = ruleset
        self.engine = engine
        self.staging_table = staging_table
        self.et_table = et_table
        self.target_table = target_table
        self.seq_stride = seq_stride
        self.journal = journal
        self.obs = obs
        self.job_id = job_id
        self.compiled = CompiledRuleSet(ruleset, staging_table)
        self.compiled.validate_columns(set(layout.field_names))
        self._lock = threading.Lock()
        self._chunk_records: dict[int, int] = {}
        #: seqs routed by this process (journal covers prior runs).
        self._routed: set[int] = set()
        if journal is not None:
            self._routed.update(journal.dq_routed)
        # -- job totals (surfaced in metrics / stats / APPLY_RESULT) --
        self.checked = 0
        self.violations: dict[str, int] = {}
        self.routed_rows = 0
        self.ranges_checked = 0

    # -- bookkeeping -------------------------------------------------------

    def update_chunks(self, chunk_records: "dict[int, int]") -> None:
        """Refresh the chunk→record-count map used for row numbers."""
        with self._lock:
            self._chunk_records = dict(chunk_records)

    def _rownum_of(self):
        """seq → 1-based client row number (Beta's Figure 6 numbering)."""
        with self._lock:
            chunk_records = dict(self._chunk_records)
        starts: dict[int, int] = {}
        acc = 0
        for chunk in sorted(chunk_records):
            starts[chunk] = acc
            acc += chunk_records[chunk]
        stride = self.seq_stride

        def rownum(seq: int) -> int:
            chunk = seq // stride
            if chunk not in starts:
                raise GatewayError(
                    f"sequence {seq} belongs to unknown chunk {chunk}")
            return starts[chunk] + seq % stride + 1

        return rownum

    def summary(self) -> dict:
        """Job-level totals for ``stats()["dq"]`` and flight bundles."""
        return {
            "ruleset": self.ruleset.name,
            "checked": self.checked,
            "violations": dict(self.violations),
            "routed_rows": self.routed_rows,
            "ranges_checked": self.ranges_checked,
        }

    # -- rule evaluation ---------------------------------------------------

    def _per_row_counts(self, lo: int, hi: int
                        ) -> "tuple[int, dict[str, int]]":
        """(rows scanned, {rule_id: failed_count}) in one SQL pass."""
        rows = self.engine.query(self.compiled.counts_select(lo, hi))
        row = rows[0]
        total = int(row[0] or 0)
        counts = {
            rule.rule_id: int(row[i + 1] or 0)
            for i, rule in enumerate(self.compiled.per_row_rules)}
        return total, counts

    def _per_row_violators(self, rules: "tuple[DqRule, ...]", lo: int,
                           hi: int) -> "dict[str, list[int]]":
        """{rule_id: violating seqs} for the violated per-row rules —
        one flag-columns scan, however many rules were violated."""
        if not rules:
            return {}
        hits: "dict[str, list[int]]" = {r.rule_id: [] for r in rules}
        for row in self.engine.query(
                self.compiled.routing_flags_select(rules, lo, hi)):
            for i, rule in enumerate(rules):
                if row[i + 1]:
                    hits[rule.rule_id].append(row[0])
        return hits

    def _unique_violators(self, rule: DqRule, lo: int, hi: int,
                          doomed: "set[int]") -> "list[int]":
        """Range members losing to an earlier *surviving* occurrence.

        A key is only "taken" by a row that actually reaches the
        target: rows routed by another rule in this range (``doomed``)
        and rows already deleted by earlier ranges do not claim their
        key, so the next clean occurrence becomes the winner — exactly
        what the target's uniqueness constraint would decide if the
        doomed rows had failed during application instead.  One whole-
        table keys scan; the cascade walk happens here in seq order
        (rows below the range survived every earlier pass and claim
        their key unconditionally).
        """
        members = self.engine.query(
            self.compiled.unique_keys_select(rule))
        out: "list[int]" = []
        taken: "set[tuple]" = set()
        for row in sorted(members, key=lambda r: r[-1]):
            key, seq = tuple(row[:-1]), row[-1]
            if seq < lo:
                taken.add(key)
            elif seq <= hi:
                if seq in doomed:
                    continue
                if key in taken:
                    out.append(seq)
                else:
                    taken.add(key)
            else:
                break
        return out

    def _referential_violators(self, rule: DqRule, lo: int,
                               hi: int) -> "list[int]":
        members = self.engine.query(
            self.compiled.referential_members_select(rule, lo, hi))
        if not members:
            return []
        parents = {row[0] for row in self.engine.query(
            self.compiled.parent_values_select(rule))}
        return [seq for value, seq in members if value not in parents]

    # -- the precheck ------------------------------------------------------

    def _arm_staging(self) -> None:
        """Arm the staging ``__SEQ`` zone map if Beta has not yet.

        Two-phase jobs precheck *before* the apply run sorts staging;
        without this, every counts/routing/delete pass would be a full
        scan.  Idempotent — subsequent appends keep the order.
        """
        table = self.engine.table(self.staging_table)
        if table.sorted_by == SEQ_COLUMN:
            return
        with self.engine.locks.table_lock(self.staging_table).write():
            table.set_sorted(SEQ_COLUMN)

    def check_range(self, lo: int, hi: int, *,
                    parent_span=NULL_SPAN) -> DqRangeResult:
        """Run every rule over ``[lo, hi]`` and route the violators."""
        self._arm_staging()
        obs = self.obs
        with obs.tracer.span(
                "dq.precheck", parent=parent_span,
                job_id=self.job_id, ruleset=self.ruleset.name,
                lo=lo, hi=hi) as span:
            checked, counts = self._per_row_counts(lo, hi)
            # Evaluation order: every non-unique rule first (their
            # verdicts don't depend on other rows' fates), then unique
            # rules — which must know who is already doomed so routed
            # rows don't claim their key (see _unique_violators).
            violators: dict[str, list[int]] = {}
            doomed: set[int] = set()
            violated = tuple(r for r in self.compiled.per_row_rules
                             if counts[r.rule_id])
            violators.update(self._per_row_violators(violated, lo, hi))
            for rule in self.ruleset.rules:
                if rule.kind == "unique":
                    continue
                if rule.kind == "referential":
                    seqs = self._referential_violators(rule, lo, hi)
                    violators[rule.rule_id] = seqs
                    counts[rule.rule_id] = len(seqs)
                else:
                    seqs = violators.setdefault(rule.rule_id, [])
                doomed.update(seqs)
            for rule in self.ruleset.rules:
                if rule.kind != "unique":
                    continue
                seqs = self._unique_violators(rule, lo, hi, doomed)
                violators[rule.rule_id] = seqs
                counts[rule.rule_id] = len(seqs)
                doomed.update(seqs)
            # first-rule-wins routing assignment, in profile order
            assigned: dict[int, DqRule] = {}
            for rule in self.ruleset.rules:
                for seq in violators.get(rule.rule_id, ()):
                    assigned.setdefault(seq, rule)
            fresh = sorted(s for s in assigned if s not in self._routed)
            rerouted = len(assigned) - len(fresh)
            self._route(assigned, fresh)
            result = DqRangeResult(checked, counts, fresh, rerouted)
            self._account(result, span)
        return result

    def _route(self, assigned: "dict[int, DqRule]",
               fresh: "list[int]") -> None:
        """ET-insert the fresh violators, delete every assigned row,
        then journal — resume after a crash inside this window re-runs
        the range and re-deletes, but never re-inserts."""
        if fresh:
            rownum = self._rownum_of()
            rows = []
            for seq in fresh:
                rule = assigned[seq]
                reason = rule.reason()[:256]
                rows.append((
                    rownum(seq), HYPERQ_DQ_VIOLATION,
                    rule.column or (rule.key_columns[0]
                                    if rule.kind == "unique" else None),
                    (f"DQ rule {rule.rule_id} violated during precheck "
                     f"on {self.target_table}: {reason}, "
                     f"row number: {rownum(seq)}")[:512],
                    rule.rule_id, reason))
            for i in range(0, len(rows), _INSERT_BATCH):
                self.engine.execute(et_insert(
                    self.et_table, rows[i:i + _INSERT_BATCH]))
        doomed = sorted(assigned)
        for i in range(0, len(doomed), _DELETE_BATCH):
            batch = doomed[i:i + _DELETE_BATCH]
            self.engine.execute(
                staging_delete(self.staging_table, batch))
        if fresh:
            self._routed.update(fresh)
            if self.journal is not None:
                self.journal.record_dq_route(fresh)

    def _account(self, result: DqRangeResult, span) -> None:
        obs = self.obs
        self.checked += result.checked
        self.routed_rows += len(result.routed)
        self.ranges_checked += 1
        obs.dq_checked.inc(result.checked)
        obs.dq_routed_rows.inc(len(result.routed))
        total_violations = 0
        for rule_id, count in result.counts.items():
            if not count:
                continue
            total_violations += count
            self.violations[rule_id] = \
                self.violations.get(rule_id, 0) + count
            obs.dq_violations.labels(rule=rule_id).inc(count)
        span.set_attribute("checked", result.checked)
        span.set_attribute("violations", total_violations)
        span.set_attribute("routed", len(result.routed))
        if total_violations or result.rerouted:
            obs.flight.record(
                self.job_id, "dq_precheck",
                ruleset=self.ruleset.name,
                checked=result.checked,
                violations=total_violations,
                routed=len(result.routed),
                rerouted=result.rerouted,
                rules=",".join(sorted(
                    r for r, c in result.counts.items() if c)))
