"""repro.faults — deterministic fault injection for the virtualized stack.

A :class:`FaultInjector` arms named injection points (``store.upload``,
``store.download``, ``copy.into``, ``dml.apply``, ``net.send``) with
:class:`FaultRule`\\ s loaded from a chaos profile — probability,
every-Nth, and once-at-call-K triggers; transient vs. permanent error
classes; optional latency injection — all driven by one seeded rng so a
fault schedule replays identically across runs.  See
``docs/RESILIENCE.md`` for the profile schema and
:mod:`repro.resilience` for the machinery that absorbs the injected
failures.
"""

from __future__ import annotations

from repro.faults.injector import (
    INJECTION_POINTS, NULL_INJECTOR, FaultInjector, FaultRule,
    FaultyEndpoint,
)

__all__ = [
    "INJECTION_POINTS", "FaultInjector", "FaultRule", "FaultyEndpoint",
    "NULL_INJECTOR",
]
