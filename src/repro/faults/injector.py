"""The deterministic, seedable fault injector.

Cloud-facing operations in the virtualized stack (object-store uploads,
``COPY INTO``, set-oriented DML, the legacy wire) are exactly the
interfaces that fail in production, yet a reproduction running against
in-memory stand-ins never exercises a single error path.  The injector
gives every such interface a *named injection point* that the chaos
profile can arm:

========================  =====================================================
point                     fires inside
========================  =====================================================
``store.upload``          :meth:`CloudBulkLoader.upload_bytes` (per blob PUT)
``store.download``        :meth:`CloudBulkLoader.fetch_decoded` (per blob GET)
``copy.into``             the pipeline's in-cloud ``COPY INTO`` statement
``dml.apply``             the gateway's application-phase dispatch
``net.send``              every server-side wire send (via FaultyEndpoint)
========================  =====================================================

Rules are evaluated per *call* of a point.  Triggers — ``probability``,
``every_nth``, ``at_call`` — may be combined (all present triggers must
match), and ``max_fires`` bounds how often one rule fires.  Randomness
comes from one seeded :class:`random.Random`, so a given profile + seed
produces the same fault schedule on every run — failures become test
fixtures instead of flakes.
"""

from __future__ import annotations

import random
import threading
import time
from dataclasses import dataclass, field

from repro.errors import (
    PermanentFault, ReproError, TransientFault, TransportClosed,
)

__all__ = [
    "INJECTION_POINTS", "FaultRule", "FaultInjector", "NULL_INJECTOR",
    "FaultyEndpoint",
]

#: the named injection points threaded through the stack.
INJECTION_POINTS = (
    "store.upload", "store.download", "copy.into", "dml.apply",
    "net.send",
)

_ERROR_CLASSES = {"transient": TransientFault, "permanent": PermanentFault}


@dataclass
class FaultRule:
    """One armed fault: a trigger condition at one injection point."""

    point: str
    #: fire with this probability on each call (0.0 disables).
    probability: float = 0.0
    #: fire on every Nth call of the point (1-based; None disables).
    every_nth: int | None = None
    #: fire exactly when the point's call counter equals K (1-based).
    at_call: int | None = None
    #: ``"transient"``, ``"permanent"``, or None for latency-only rules.
    error: str | None = "transient"
    #: extra latency injected when the rule fires (before any error).
    latency_s: float = 0.0
    #: stop firing after this many hits (None = unlimited).
    max_fires: int | None = None
    message: str = ""
    #: how often this rule has fired (maintained by the injector).
    fires: int = field(default=0, compare=False)

    def __post_init__(self):
        """Validate the rule right where the profile author sees it."""
        if self.point not in INJECTION_POINTS:
            raise ValueError(
                f"unknown injection point {self.point!r} "
                f"(known: {', '.join(INJECTION_POINTS)})")
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError(
                f"probability {self.probability} outside [0, 1]")
        if self.every_nth is not None and self.every_nth < 1:
            raise ValueError("every_nth must be >= 1")
        if self.at_call is not None and self.at_call < 1:
            raise ValueError("at_call is 1-based and must be >= 1")
        if self.error is not None and self.error not in _ERROR_CLASSES:
            raise ValueError(
                f"unknown error class {self.error!r} "
                "(transient | permanent | null for latency-only)")
        if self.latency_s < 0:
            raise ValueError("latency_s cannot be negative")
        if self.max_fires is not None and self.max_fires < 1:
            raise ValueError("max_fires must be >= 1")
        if (self.probability == 0.0 and self.every_nth is None
                and self.at_call is None):
            raise ValueError(
                f"rule for {self.point!r} has no trigger "
                "(probability, every_nth, or at_call)")

    @classmethod
    def from_dict(cls, payload: dict) -> "FaultRule":
        """Build a rule from one chaos-profile JSON object."""
        known = {"point", "probability", "every_nth", "at_call", "error",
                 "latency_s", "max_fires", "message"}
        unknown = set(payload) - known
        if unknown:
            raise ValueError(
                f"unknown chaos-rule keys: {', '.join(sorted(unknown))}")
        if "point" not in payload:
            raise ValueError("chaos rule missing 'point'")
        return cls(**payload)

    def matches(self, call_no: int, rng: random.Random) -> bool:
        """Does this rule trigger on the point's ``call_no``-th call?

        All configured triggers must agree; the probability draw runs
        last (and only when needed) so deterministic triggers do not
        perturb the rng stream.
        """
        if self.max_fires is not None and self.fires >= self.max_fires:
            return False
        if self.at_call is not None and call_no != self.at_call:
            return False
        if self.every_nth is not None and call_no % self.every_nth != 0:
            return False
        if self.probability > 0.0 and rng.random() >= self.probability:
            return False
        if (self.probability == 0.0 and self.every_nth is None
                and self.at_call is None):
            return False
        return True


class FaultInjector:
    """Evaluates armed :class:`FaultRule`\\ s at named injection points.

    Thread-safe: pipeline workers, session handlers, and the uploader all
    fire points concurrently; rule evaluation and the rng draw happen
    under one lock.  The per-point/per-kind counters feed
    ``HyperQNode.stats()["resilience"]["faults_injected"]``.
    """

    def __init__(self, rules: list[FaultRule] | None = None,
                 seed: int = 0, obs=None, sleep=time.sleep):
        self.rules = list(rules or [])
        self.seed = seed
        self.obs = obs
        self._sleep = sleep
        self._rng = random.Random(seed)
        self._lock = threading.Lock()
        self._calls: dict[str, int] = {}
        #: fired-fault counts keyed by (point, error-kind).
        self.injected: dict[tuple[str, str], int] = {}
        self._by_point: dict[str, list[FaultRule]] = {}
        for rule in self.rules:
            self._by_point.setdefault(rule.point, []).append(rule)

    # -- construction ---------------------------------------------------------

    @classmethod
    def from_profile(cls, profile: dict | list | None,
                     seed: int | None = None, obs=None,
                     sleep=time.sleep) -> "FaultInjector":
        """Build an injector from a chaos-profile JSON value.

        Accepts either a bare list of rule objects or a dict of the form
        ``{"seed": 42, "rules": [...]}``; an explicit ``seed`` argument
        overrides the profile's.  ``None`` yields a disabled injector.
        """
        if profile is None:
            return cls([], seed=seed or 0, obs=obs, sleep=sleep)
        if isinstance(profile, list):
            rule_dicts, profile_seed = profile, 0
        elif isinstance(profile, dict):
            unknown = set(profile) - {"seed", "rules"}
            if unknown:
                raise ValueError(
                    "unknown chaos-profile keys: "
                    f"{', '.join(sorted(unknown))}")
            rule_dicts = profile.get("rules", [])
            profile_seed = int(profile.get("seed", 0))
        else:
            raise ValueError(
                f"chaos profile must be a list or dict, "
                f"not {type(profile).__name__}")
        rules = [FaultRule.from_dict(d) for d in rule_dicts]
        return cls(rules, seed=profile_seed if seed is None else seed,
                   obs=obs, sleep=sleep)

    # -- the hot path ----------------------------------------------------------

    @property
    def enabled(self) -> bool:
        return bool(self.rules)

    def fire(self, point: str, **context) -> None:
        """Evaluate ``point``'s rules for one call; may sleep or raise.

        The single call every instrumented interface makes.  A disabled
        injector returns after one dict lookup, so leaving the hooks in
        place costs nothing in production configurations.
        """
        if not self.rules:
            return
        rules = self._by_point.get(point)
        if not rules:
            return
        latency = 0.0
        tripped: FaultRule | None = None
        with self._lock:
            call_no = self._calls.get(point, 0) + 1
            self._calls[point] = call_no
            for rule in rules:
                if not rule.matches(call_no, self._rng):
                    continue
                rule.fires += 1
                latency += rule.latency_s
                kind = rule.error or "latency"
                key = (point, kind)
                self.injected[key] = self.injected.get(key, 0) + 1
                if rule.error is not None:
                    tripped = rule
                    break
        if self.obs is not None:
            if latency > 0 and tripped is None:
                self.obs.faults_injected.labels(
                    point=point, kind="latency").inc()
            if tripped is not None:
                self.obs.faults_injected.labels(
                    point=point, kind=tripped.error).inc()
        if latency > 0:
            self._sleep(latency)
        if tripped is not None:
            message = tripped.message or (
                f"injected {tripped.error} fault at {point} "
                f"(call {call_no})")
            raise _ERROR_CLASSES[tripped.error](
                message, point=point, rule=self.rules.index(tripped))

    # -- introspection ----------------------------------------------------------

    @property
    def total_injected(self) -> int:
        """Total faults fired (latency-only hits included)."""
        with self._lock:
            return sum(self.injected.values())

    def calls(self, point: str) -> int:
        """How many times ``point`` has been fired (hit or not)."""
        with self._lock:
            return self._calls.get(point, 0)

    def snapshot(self) -> dict:
        """Stats-friendly view: per-point call and injection counts."""
        with self._lock:
            return {
                "seed": self.seed,
                "rules": len(self.rules),
                "calls": dict(self._calls),
                "injected": {
                    f"{point}:{kind}": count
                    for (point, kind), count in sorted(
                        self.injected.items())
                },
                "total_injected": sum(self.injected.values()),
            }


#: the shared disabled injector — the default everywhere.
NULL_INJECTOR = FaultInjector()


class FaultyEndpoint:
    """Endpoint wrapper realizing ``net.send`` faults as connection drops.

    A fired ``net.send`` rule closes both directions of the transport and
    raises :class:`TransportClosed` — exactly what a mid-flight network
    partition looks like to the peer — so the legacy client's
    checkpoint/restart machinery (``retry_attempts``) is what recovers,
    not a hidden in-band retry.  Permanent rules re-raise the injected
    fault itself so the failure surfaces unretried.
    """

    def __init__(self, inner, faults: FaultInjector):
        self._inner = inner
        self._faults = faults

    def send_bytes(self, data: bytes) -> None:
        """Send, unless an armed ``net.send`` rule kills the link."""
        try:
            self._faults.fire("net.send", bytes=len(data))
        except TransientFault as exc:
            self._inner.close_both()
            raise TransportClosed(str(exc)) from exc
        except ReproError:
            self._inner.close_both()
            raise
        self._inner.send_bytes(data)

    def recv_bytes(self, timeout: float | None = None) -> bytes | None:
        """Receive from the wrapped endpoint (never faulted)."""
        return self._inner.recv_bytes(timeout=timeout)

    def close(self) -> None:
        """Close this side of the wrapped endpoint."""
        self._inner.close()

    def close_both(self) -> None:
        """Close both directions of the wrapped endpoint."""
        self._inner.close_both()
