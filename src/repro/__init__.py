"""repro — Adaptive Real-time Virtualization of Legacy ETL Pipelines.

A complete reproduction of the EDBT 2023 paper by Abdelhamid et al.
(Datometry Hyper-Q's ETL virtualization layer), including every
substrate it runs on:

- :mod:`repro.legacy`   — the legacy EDW stack (script language, wire
  protocol, record formats, client, reference server);
- :mod:`repro.cdw`      — the cloud data warehouse substrate
  (set-oriented SQL engine, object store, bulk loader);
- :mod:`repro.sqlxc`    — the SQL cross compiler;
- :mod:`repro.core`     — Hyper-Q itself: the virtualization gateway
  with the credit-managed acquisition pipeline and adaptive error
  handling (the paper's contribution);
- :mod:`repro.sim`      — a discrete-event model of the acquisition
  pipeline for the machine-scale experiments (Figures 9-10);
- :mod:`repro.obs`      — the observability layer: node-level metrics
  registry, pipeline span tracer, structured logging
  (``docs/OBSERVABILITY.md``);
- :mod:`repro.workloads`, :mod:`repro.baselines`, :mod:`repro.bench`,
  :mod:`repro.qinsight`, :mod:`repro.cli` — workload generation, the
  Figure 11 baseline, the benchmark/figure harness, workload analysis,
  and the command-line interface.

Quickstart: see README.md, ``examples/quickstart.py``, or::

    from repro.bench import build_stack
    with build_stack() as stack:
        ...  # stack.node is a running Hyper-Q in front of stack.engine
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
