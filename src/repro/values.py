"""Shared value model and legacy date-format handling.

Rows travel through the system as plain Python tuples.  ``None`` represents
SQL NULL.  Dates are :class:`datetime.date`, timestamps are
:class:`datetime.datetime`, decimals are :class:`decimal.Decimal`.

The legacy EDW expresses date parsing with *format strings* such as
``'YYYY-MM-DD'`` (see Example 2.1 in the paper:
``cast(:JOIN_DATE as DATE format 'YYYY-MM-DD')``).  The functions here
translate those format strings and apply them in both directions; the SQL
cross compiler rewrites them into the CDW's ``TO_DATE(x, fmt)`` call, which
the CDW expression evaluator implements on top of the same machinery.
"""

from __future__ import annotations

import datetime as _dt
import functools
import re
from decimal import Decimal, InvalidOperation

from repro.errors import ExpressionError

__all__ = [
    "Date",
    "Timestamp",
    "Decimal",
    "parse_date",
    "format_date",
    "parse_timestamp",
    "parse_decimal",
    "date_format_tokens",
    "DEFAULT_DATE_FORMAT",
]

Date = _dt.date
Timestamp = _dt.datetime

DEFAULT_DATE_FORMAT = "YYYY-MM-DD"

_MONTH_ABBREVS = [
    "JAN", "FEB", "MAR", "APR", "MAY", "JUN",
    "JUL", "AUG", "SEP", "OCT", "NOV", "DEC",
]

# Longest-match-first so that YYYY wins over YY and MMM over MM.
_FORMAT_ATOMS = ("YYYY", "MMM", "YY", "MM", "DD")


@functools.lru_cache(maxsize=256)
def date_format_tokens(fmt: str) -> tuple[str, ...]:
    """Split a legacy date format string into atoms and literal separators.

    Cached: bulk loads parse millions of values with a handful of
    distinct formats.

    >>> date_format_tokens('YYYY-MM-DD')
    ('YYYY', '-', 'MM', '-', 'DD')
    """
    tokens: list[str] = []
    i = 0
    upper = fmt.upper()
    while i < len(upper):
        for atom in _FORMAT_ATOMS:
            if upper.startswith(atom, i):
                tokens.append(atom)
                i += len(atom)
                break
        else:
            tokens.append(fmt[i])
            i += 1
    return tuple(tokens)


def _atom_regex(atom: str) -> str:
    if atom == "YYYY":
        return r"(?P<year>\d{4})"
    if atom == "YY":
        return r"(?P<year2>\d{2})"
    if atom == "MM":
        return r"(?P<month>\d{1,2})"
    if atom == "MMM":
        return r"(?P<monthname>[A-Za-z]{3})"
    if atom == "DD":
        return r"(?P<day>\d{1,2})"
    return re.escape(atom)


@functools.lru_cache(maxsize=256)
def _format_regex(fmt: str) -> "re.Pattern[str]":
    """The compiled pattern for one format string (cached like
    :func:`date_format_tokens` — bulk loads reuse a handful of formats
    across millions of values)."""
    return re.compile(
        "".join(_atom_regex(a) for a in date_format_tokens(fmt)))


def parse_date(text: str, fmt: str = DEFAULT_DATE_FORMAT,
               field: str | None = None) -> Date:
    """Parse ``text`` according to a legacy format string.

    Raises :class:`ExpressionError` when the text does not match — this is
    the error that, during the application phase, becomes a row in the
    transformation error table (code 3103 in Figure 6).
    """
    match = _format_regex(fmt).fullmatch(text.strip())
    if match is None:
        raise ExpressionError(
            f"DATE conversion failed: {text!r} does not match format {fmt!r}",
            field=field,
        )
    groups = match.groupdict()
    if groups.get("year") is not None:
        year = int(groups["year"])
    elif groups.get("year2") is not None:
        two = int(groups["year2"])
        # Legacy century window: 00-49 -> 2000s, 50-99 -> 1900s.
        year = 2000 + two if two < 50 else 1900 + two
    else:
        raise ExpressionError(f"format {fmt!r} has no year atom", field=field)
    if groups.get("month") is not None:
        month = int(groups["month"])
    elif groups.get("monthname") is not None:
        name = groups["monthname"].upper()
        if name not in _MONTH_ABBREVS:
            raise ExpressionError(
                f"DATE conversion failed: unknown month {name!r}", field=field)
        month = _MONTH_ABBREVS.index(name) + 1
    else:
        raise ExpressionError(f"format {fmt!r} has no month atom", field=field)
    day = int(groups["day"]) if groups.get("day") is not None else 1
    try:
        return _dt.date(year, month, day)
    except ValueError as exc:
        raise ExpressionError(
            f"DATE conversion failed: {text!r}: {exc}", field=field) from exc


def format_date(value: Date, fmt: str = DEFAULT_DATE_FORMAT) -> str:
    """Render a date using a legacy format string."""
    parts: list[str] = []
    for atom in date_format_tokens(fmt):
        if atom == "YYYY":
            parts.append(f"{value.year:04d}")
        elif atom == "YY":
            parts.append(f"{value.year % 100:02d}")
        elif atom == "MM":
            parts.append(f"{value.month:02d}")
        elif atom == "MMM":
            parts.append(_MONTH_ABBREVS[value.month - 1].title())
        elif atom == "DD":
            parts.append(f"{value.day:02d}")
        else:
            parts.append(atom)
    return "".join(parts)


_TS_RE = re.compile(
    r"(\d{4})-(\d{1,2})-(\d{1,2})[ T](\d{1,2}):(\d{2}):(\d{2})(?:\.(\d{1,6}))?"
)


def parse_timestamp(text: str, field: str | None = None) -> Timestamp:
    """Parse an ISO-ish timestamp (``YYYY-MM-DD HH:MM:SS[.ffffff]``)."""
    match = _TS_RE.fullmatch(text.strip())
    if match is None:
        raise ExpressionError(
            f"TIMESTAMP conversion failed: {text!r}", field=field)
    year, month, day, hour, minute, sec = (int(g) for g in match.groups()[:6])
    frac = match.group(7)
    micros = int(frac.ljust(6, "0")) if frac else 0
    try:
        return _dt.datetime(year, month, day, hour, minute, sec, micros)
    except ValueError as exc:
        raise ExpressionError(
            f"TIMESTAMP conversion failed: {text!r}: {exc}",
            field=field) from exc


def parse_decimal(text: str, field: str | None = None) -> Decimal:
    """Parse a decimal literal, mapping failures to :class:`ExpressionError`."""
    try:
        return Decimal(text.strip())
    except InvalidOperation as exc:
        raise ExpressionError(
            f"DECIMAL conversion failed: {text!r}", field=field) from exc
