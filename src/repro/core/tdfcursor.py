"""TDFCursor: on-demand retrieval and buffering of result chunks.

Section 3: "Hyper-Q uses a TDFCursor process which allows on-demand
retrieval and buffering of result chunks received from the CDW system ...
Hyper-Q buffers chunks received by the TDFCursor process in advance and
associates each chunk with its order to serve client sessions requesting
different chunks."

A background thread encodes TDF packets ahead of the clients into a
bounded buffer; parallel export sessions each request their own chunk
numbers and block until theirs is ready.
"""

from __future__ import annotations

import threading

from repro.cdw.engine import CdwEngine
from repro.core import tdf
from repro.errors import GatewayError
from repro.sqlxc import nodes as n

__all__ = ["TdfCursor"]


class TdfCursor:
    """Buffers a query's result as ordered TDF packets."""

    def __init__(self, engine: CdwEngine, select: "n.Select | str",
                 chunk_rows: int = 1000, prefetch: int = 4):
        if chunk_rows < 1:
            raise GatewayError("chunk_rows must be positive")
        result = engine.execute(select)
        if result.kind != "rows":
            raise GatewayError("TDFCursor needs a SELECT statement")
        self.columns: list[str] = result.columns
        self.total_rows = len(result.rows)
        self._rows = result.rows
        self.chunk_rows = chunk_rows
        self.num_chunks = max(
            (self.total_rows + chunk_rows - 1) // chunk_rows, 0)
        self.prefetch = max(prefetch, 1)

        self._buffer: dict[int, bytes] = {}
        self._next_to_encode = 0
        self._lock = threading.Lock()
        self._ready = threading.Condition(self._lock)
        self._closed = False
        self._encoder = threading.Thread(
            target=self._encode_ahead, daemon=True, name="tdf-cursor")
        self._encoder.start()

    # -- background encoding ---------------------------------------------------

    def _encode_ahead(self) -> None:
        while True:
            with self._ready:
                while (len(self._buffer) >= self.prefetch
                       and not self._closed):
                    self._ready.wait(timeout=0.5)
                if self._closed or self._next_to_encode >= self.num_chunks:
                    return
                chunk_no = self._next_to_encode
                self._next_to_encode += 1
            start = chunk_no * self.chunk_rows
            packet = tdf.encode_packet(
                chunk_no, self.columns,
                self._rows[start:start + self.chunk_rows])
            with self._ready:
                self._buffer[chunk_no] = packet
                self._ready.notify_all()

    # -- serving ------------------------------------------------------------------

    def packet(self, chunk_no: int,
               timeout_s: float = 30.0) -> bytes | None:
        """The TDF packet for ``chunk_no`` (``None`` past end of data).

        Each packet is served exactly once; serving frees its buffer slot
        so the encoder can run ahead.
        """
        if chunk_no >= self.num_chunks:
            return None
        with self._ready:
            import time
            deadline = time.monotonic() + timeout_s
            while chunk_no not in self._buffer:
                if self._closed:
                    raise GatewayError("TDFCursor is closed")
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise GatewayError(
                        f"timed out waiting for export chunk {chunk_no}")
                self._ready.wait(timeout=min(remaining, 0.5))
            packet = self._buffer.pop(chunk_no)
            self._ready.notify_all()
            return packet

    def close(self) -> None:
        """Stop the prefetch thread and drop the buffer."""
        with self._ready:
            self._closed = True
            self._ready.notify_all()
        self._encoder.join(timeout=5.0)
