"""The Hyper-Q node: Alpha listener, PXC dispatch, and job orchestration.

One :class:`HyperQNode` virtualizes legacy ETL traffic against a CDW
(Figure 2).  Per legacy connection the node runs a handler thread that

- reassembles frames from raw bytes (Alpha + Coalescer),
- decodes each message and reacts (the PXC's role): ad-hoc SQL is cross
  compiled and executed on the CDW; DATA chunks are acknowledged
  *immediately* and pushed to the asynchronous acquisition pipeline
  (Sections 4-5); APPLY runs Beta with adaptive error handling
  (Section 7); exports stream through a TDFCursor.

The node owns exactly one :class:`~repro.core.credits.CreditManager`,
shared by all concurrent jobs — Section 5: "one CreditManager is spawned
per Hyper-Q node, with each CreditManager being shared for all concurrent
ETL jobs on the node."
"""

from __future__ import annotations

import os
import shutil
import tempfile
import threading
import time
from dataclasses import dataclass, field, replace

from repro.cdw.bulkloader import CloudBulkLoader
from repro.cdw.cloudstore import CloudStore
from repro.cdw.engine import CdwEngine
from repro.core.beta import SEQ_COLUMN, ApplySummary, Beta
from repro.core.config import HyperQConfig
from repro.core.converter import DataConverter
from repro.core.credits import CreditManager
from repro.core.eagerapply import DurableFileRelay, EagerApplyCoordinator
from repro.core.frontend import ThreadedFrontend
from repro.core.metrics import JobMetrics, Stopwatch
from repro.core.pipeline import AcquisitionPipeline
from repro.core.tdfcursor import TdfCursor
from repro.dq import DqPrechecker, DqProfile
from repro.dq.compiler import et_insert, staging_delete
from repro.errors import (
    HYPERQ_SCHEMA_DRIFT, GatewayError, ProtocolError, ReproError,
    StreamDriftError,
)
from repro.faults import FaultInjector, FaultyEndpoint
from repro.obs import NULL_SPAN, Observability, configure_logging, get_logger
from repro.resilience import (
    CheckpointJournal, CircuitBreakerRegistry, RetryPolicy,
)
from repro.wlm import WorkloadManager
from repro.legacy.client import layout_from_wire
from repro.legacy.datafmt import BinaryFormat, FormatSpec, make_format
from repro.legacy.infer import infer_result_layout
from repro.legacy.protocol import Message, MessageChannel, MessageKind
from repro.legacy.types import Layout
from repro.net import Listener
from repro.sqlxc import to_cdw, transpile
from repro.sqlxc.parser import parse_statement
from repro.stream.drift import SchemaDriftResolver

__all__ = ["HyperQNode"]

log = get_logger("gateway")


@dataclass
class _LoadJob:
    job_id: str
    target: str
    et_table: str
    uv_table: str
    layout: Layout
    format_spec: FormatSpec
    staging_table: str
    staging_dir: str
    pipeline: AcquisitionPipeline
    metrics: JobMetrics
    #: the job's root trace span (parent of every stage span).
    span: object = NULL_SPAN
    #: phase stopwatches (Figure 7 split) — total runs begin→end load,
    #: acquisition from the first DATA chunk until the pipeline drains,
    #: application across Beta's DML run.
    total_watch: Stopwatch = field(default_factory=Stopwatch)
    acquisition_watch: Stopwatch = field(default_factory=Stopwatch)
    application_watch: Stopwatch = field(default_factory=Stopwatch)
    sessions_seen: set[int] = field(default_factory=set)
    lock: threading.Lock = field(default_factory=threading.Lock)
    #: workload-management admission (None when wlm is disabled).
    ticket: object = None
    #: eager-apply coordinator (None on the two-phase path) and the
    #: DML it was armed with at BEGIN_LOAD.
    eager: EagerApplyCoordinator | None = None
    eager_sql: str | None = None
    #: data-quality prechecker (None when no ruleset matched the job).
    dq: DqPrechecker | None = None
    #: owning stream feed (None for one-shot loads), the micro-batch
    #: sequence/cursor this job carries, the source event timestamp
    #: (lag gauge), drift accepted at BEGIN (wire dicts), and whether
    #: the whole batch routes to the error table (route-to-error).
    stream: "_StreamFeed | None" = None
    stream_seq: int = -1
    stream_cursor: str | None = None
    stream_event_ts: float | None = None
    stream_drift: list = field(default_factory=list)
    stream_route_error: bool = False


@dataclass
class _StreamFeed:
    """Gateway-side state of one continuous-ingestion feed.

    A feed outlives its micro-batch jobs: the watermark journal (in a
    *durable* directory, not the node's staging tempdir) carries the
    highest committed batch sequence, the source cursor, and the
    accepted wire layout across node restarts; the WLM ticket is
    admitted once at feed open and held across cycles, so a streaming
    session occupies exactly one pool slot however many batches it
    runs (per-batch jobs ride with ``ticket=None``).
    """

    name: str
    target: str
    #: schema-drift policy: ``evolve`` / ``route-to-error`` / ``halt``.
    policy: str
    journal: CheckpointJournal
    #: the wire layout the feed last accepted (drift baseline).
    layout: Layout
    #: source→target column mapping matrix (identity under ``evolve``).
    mapping: dict = field(default_factory=dict)
    pool: str = ""
    ticket: object = None
    committed_seq: int = -1
    cursor: str | None = None
    batches_committed: int = 0
    batches_skipped: int = 0
    rows_committed: int = 0
    drift_events: int = 0
    lock: threading.Lock = field(default_factory=threading.Lock)


@dataclass
class _ExportJob:
    job_id: str
    cursor: TdfCursor
    layout: Layout
    #: the job's root trace span (continues the client's trace when a
    #: traceparent rode in on BEGIN_EXPORT).
    span: object = NULL_SPAN
    #: workload-management admission (None when wlm is disabled).
    ticket: object = None
    #: data sessions that must see EOF before the job is torn down.
    eof_needed: int = 1
    eof_seen: set[int] = field(default_factory=set)


def _ruleset_for_layout(ruleset, layout: Layout):
    """Drop rules referencing columns absent from a batch's layout.

    Drift × DQ semantics for streaming feeds: a rule is *defined* for a
    micro-batch only once every column it references exists in that
    batch's layout, so a rule written against a column that appears
    mid-stream simply starts applying at the batch that adds it.
    Returns None when nothing survives (the precheck is skipped).
    """
    names = {f.upper() for f in layout.field_names}
    kept = tuple(r for r in ruleset.rules
                 if all(c.upper() in names
                        for c in r.referenced_columns))
    if not kept:
        return None
    if len(kept) == len(ruleset.rules):
        return ruleset
    return replace(ruleset, rules=kept)


class HyperQNode:
    """A Hyper-Q virtualization node in front of one CDW."""

    def __init__(self, engine: CdwEngine, store: CloudStore,
                 config: HyperQConfig | None = None,
                 name: str = "hyperq", listener=None):
        self.engine = engine
        self.store = store
        self.config = config or HyperQConfig()
        self.name = name
        if self.config.log_level is not None:
            configure_logging(self.config.log_level,
                              json_output=self.config.log_json)
        self.obs = Observability.from_config(self.config, node=name)
        if engine.on_statement is None:
            engine.on_statement = (
                lambda stmt, seconds: self.obs.statement_seconds
                .labels(statement=stmt).observe(seconds))
        engine.zone_map_pruning = self.config.zone_map_pruning
        engine.columnar = self.config.columnar
        if engine.on_scan_pruned is None:
            engine.on_scan_pruned = (
                lambda skipped: self.obs.scan_pruned_rows.inc(skipped))
        self.credits = CreditManager(
            self.config.credits, self.config.credit_timeout_s,
            obs=self.obs)
        self.beta = Beta(engine, self.config, obs=self.obs)
        #: the resilience trio shared by every cloud-facing call site on
        #: this node: one chaos injector, one retry policy (its counters
        #: are the node's retry telemetry), one breaker per target.
        self.faults = FaultInjector.from_profile(
            self.config.chaos_profile, seed=self.config.chaos_seed,
            obs=self.obs)
        self.retry = RetryPolicy.from_config(self.config)
        #: multi-tenant workload management: classification, per-pool
        #: admission, fair-share credit arbitration.  Disabled (pure
        #: pass-through) unless ``config.wlm_profile`` is set.
        self.wlm = WorkloadManager.from_config(
            self.config, self.credits, obs=self.obs)
        #: declarative data-quality rulesets (repro.dq), resolved per
        #: job against (target table, WLM pool).  Empty profile = the
        #: precheck never runs.
        self.dq_profile = DqProfile.from_profile(self.config.dq_profile)
        #: recent per-job dq summaries + running totals (stats()["dq"],
        #: consumed by the qinsight top-violated-rules report).
        self._dq_jobs: list[dict] = []
        self._dq_totals: dict = {
            "jobs_checked": 0, "checked": 0, "routed_rows": 0,
            "violations": {}}
        self.breakers = CircuitBreakerRegistry.from_config(
            self.config, obs=self.obs)
        self.loader = CloudBulkLoader(
            store, compression=self.config.compression, obs=self.obs,
            faults=self.faults, retry=self.retry, breakers=self.breakers,
            upload_workers=self.config.upload_workers)
        #: any object with accept()/connect()/close() — the in-memory
        #: transport by default, or a repro.net_tcp.TcpListener for a
        #: real socket.
        self.listener = listener if listener is not None else Listener()
        store.create_container(self.config.container)
        self._base_dir = tempfile.mkdtemp(prefix=f"{name}-staging-")
        if self.obs.flight.enabled and self.obs.flight.dump_dir is None:
            # Default bundle location rides the staging area (removed
            # at node stop); set config.flight_dump_dir to keep
            # post-mortems across node restarts.
            self.obs.flight.dump_dir = os.path.join(
                self._base_dir, "flight")
        self._jobs: dict[str, _LoadJob] = {}
        self._exports: dict[str, _ExportJob] = {}
        #: continuous-ingestion feeds by name (repro.stream).
        self._streams: dict[str, _StreamFeed] = {}
        self._registry_lock = threading.Lock()
        #: metrics of finished jobs, in completion order (bench harness).
        self.completed_jobs: list[JobMetrics] = []
        self._running = False
        #: the connection-handling front end (threaded or async),
        #: created at start() from ``config.async_frontend``.
        self.frontend = None

    # -- lifecycle --------------------------------------------------------------

    def start(self) -> "HyperQNode":
        """Start the front end; returns self for chaining."""
        self._running = True
        if self.config.async_frontend:
            from repro.net_async import AsyncFrontend
            self.frontend = AsyncFrontend(
                self, self.listener, name=self.name,
                shards=self.config.gateway_shards,
                max_connections=self.config.max_connections,
                shard_pipeline_workers=self.config.shard_pipeline_workers,
                obs=self.obs, base_dir=self._base_dir)
        else:
            self.frontend = ThreadedFrontend(
                self, self.listener, name=self.name,
                max_connections=self.config.max_connections,
                obs=self.obs)
        self.frontend.start()
        return self

    def stop(self) -> None:
        """Stop the node and tear down all job state."""
        self._running = False
        if self.frontend is not None:
            self.frontend.stop()
        self.listener.close()
        with self._registry_lock:
            jobs = list(self._jobs.values())
            self._jobs.clear()
            exports = list(self._exports.values())
            self._exports.clear()
        for job in jobs:
            if job.eager is not None:
                job.eager.shutdown()
                job.eager.join()
            job.pipeline.shutdown()
            self.wlm.release(job.ticket)
        for export in exports:
            self.wlm.release(export.ticket)
        # Stream feeds quiesce after their in-flight batch jobs (each
        # batch is drained or cleanly abandoned for resume above) and
        # strictly before Observability.close() flushes the trace store
        # — the same teardown ordering the eager coordinator needs.
        # Closing the watermark journal here flushes the feed's durable
        # state; a restarted node reopens it and resumes the feed.
        with self._registry_lock:
            feeds = list(self._streams.values())
            self._streams.clear()
        for feed in feeds:
            self.obs.flight.record(
                f"stream:{feed.name}", "feed_quiesced",
                committed_seq=feed.committed_seq,
                batches=feed.batches_committed)
            feed.journal.close()
            self.wlm.release(feed.ticket)
        # Shard executors/pipeline pools close only after the jobs
        # above drained — their pipelines run on those pools.
        if self.frontend is not None:
            self.frontend.close()
        shutil.rmtree(self._base_dir, ignore_errors=True)
        self.obs.close()
        log.info("node stopped", extra={
            "node": self.name, "abandoned_jobs": len(jobs),
            "abandoned_feeds": len(feeds),
            "completed_jobs": len(self.completed_jobs)})

    def __enter__(self) -> "HyperQNode":
        """Context-manager support: starts the node."""
        return self.start()

    def __exit__(self, *exc_info) -> None:
        """Stop the node on context exit."""
        self.stop()

    def connect(self):
        """Connection factory handed to legacy clients."""
        return self.listener.connect()

    def stats(self) -> dict:
        """Operational snapshot of the node (monitoring hook)."""
        with self._registry_lock:
            active = len(self._jobs)
            completed = len(self.completed_jobs)
            total_rows = sum(m.rows_inserted for m in self.completed_jobs)
            total_bytes = sum(m.bytes_received
                              for m in self.completed_jobs)
        return {
            "name": self.name,
            "gateway": (self.frontend.snapshot()
                        if self.frontend is not None else {}),
            "active_jobs": active,
            "completed_jobs": completed,
            "rows_loaded": total_rows,
            "bytes_received": total_bytes,
            "credits": {
                "pool_size": self.credits.pool_size,
                "available": self.credits.available,
                "acquires": self.credits.acquires,
                "blocked_acquires": self.credits.blocked_acquires,
                "total_wait_s": round(self.credits.total_wait_s, 6),
                "min_available": self.credits.min_available,
            },
            "engine_statements": dict(self.engine.statement_counts),
            "storage": self._storage_snapshot(),
            "plan_cache": {
                "dml": self.beta.plans.stats(),
                "engine_parse": self.engine.plan_cache.stats(),
            },
            "store_bytes_uploaded": self.store.bytes_uploaded,
            "wlm": self.wlm.snapshot(),
            "resilience": {
                "retry_attempts": self.retry.attempts_total,
                "retry_giveups": self.retry.giveups_total,
                "retry": self.retry.snapshot(),
                "breakers": self.breakers.snapshot(),
                "faults_injected": self.faults.total_injected,
                "faults": self.faults.snapshot(),
            },
            "metrics": self.obs.registry.collect(),
            "trace": {
                "enabled": self.obs.tracer.enabled,
                "buffered_spans": len(self.obs.tracer.records()),
                "dropped": self.obs.tracer.dropped,
                "sample_rate": self.obs.tracer.sample_rate,
                "store_segments": (
                    len(self.obs.trace_store.segments())
                    if self.obs.trace_store is not None else 0),
            },
            "dq": self._dq_snapshot(),
            "streams": self._streams_snapshot(),
            "slo": self.obs.slo.snapshot(),
            "flight": {
                "enabled": self.obs.flight.enabled,
                "jobs_recorded": len(self.obs.flight.jobs()),
                "dump_dir": self.obs.flight.dump_dir,
            },
        }

    def _dq_snapshot(self) -> dict:
        """stats()["dq"]: profile shape + totals + recent job summaries."""
        with self._registry_lock:
            totals = {
                "jobs_checked": self._dq_totals["jobs_checked"],
                "checked": self._dq_totals["checked"],
                "routed_rows": self._dq_totals["routed_rows"],
                "violations": dict(self._dq_totals["violations"]),
            }
            jobs = [dict(j) for j in self._dq_jobs]
        return {
            "enabled": self.dq_profile.enabled,
            "rulesets": [rs.name for rs in self.dq_profile.rulesets],
            **totals,
            "jobs": jobs,
        }

    def _streams_snapshot(self) -> dict:
        """stats()["streams"]: per-feed watermark + counters."""
        with self._registry_lock:
            feeds = list(self._streams.values())
        out = {}
        for feed in feeds:
            with feed.lock:
                out[feed.name] = {
                    "target": feed.target,
                    "policy": feed.policy,
                    "pool": feed.pool,
                    "committed_seq": feed.committed_seq,
                    "cursor": feed.cursor,
                    "batches_committed": feed.batches_committed,
                    "batches_skipped": feed.batches_skipped,
                    "rows_committed": feed.rows_committed,
                    "drift_events": feed.drift_events,
                    "layout": [f.name for f in feed.layout.fields],
                }
        return out

    def _storage_snapshot(self) -> dict:
        """stats()["storage"]: per-table rows / bytes / storage mode.

        Refreshes the ``hyperq_table_bytes`` gauge as a side effect so
        scrapes and :meth:`stats` always agree.
        """
        snapshot = self.engine.storage_snapshot()
        for table_name, info in snapshot.items():
            self.obs.table_bytes.labels(table=table_name) \
                .set(info["bytes"])
        return snapshot

    def render_prometheus(self) -> str:
        """Prometheus text exposition of the node's metric registry."""
        self._storage_snapshot()
        return self.obs.registry.render_prometheus()

    # -- connection handling (Alpha/Coalescer + PXC dispatch) --------------------
    #
    # The front end (ThreadedFrontend or AsyncFrontend) owns accept,
    # framing, and connection lifecycle; the node implements the
    # session contract it drives: new_conn / handle_message /
    # connection_closed / wrap_endpoint.

    def new_conn(self) -> dict:
        """Fresh connection-scoped session state.

        Classification attributes (set at LOGON) plus the jobs this
        connection owns — a control connection that vanishes must not
        leave its jobs holding admission slots forever.
        """
        return {"user": "", "loads": {}, "exports": {}}

    def wrap_endpoint(self, endpoint):
        """Chaos hook: armed ``net.send`` rules surface as connection
        drops on the server side of the wire."""
        if self.faults.enabled:
            return FaultyEndpoint(endpoint, self.faults)
        return endpoint

    def handle_message(self, channel, message: Message,
                       conn: dict) -> None:
        """Dispatch one frame; typed failures become ERROR replies.

        ``channel`` only needs ``send(message)`` — a
        :class:`~repro.legacy.protocol.MessageChannel` on the threaded
        path, a shard reply sink on the async path.  A dead transport
        (``TransportClosed`` from the reply send) propagates to the
        caller, which tears the connection down.
        """
        try:
            self._dispatch(channel, message, conn)
        except ReproError as exc:
            error_meta = {
                "code": getattr(exc, "code", 0),
                "message": str(exc),
            }
            # Workload-management throttles carry structured
            # backoff guidance the client-side retry honors.
            for key in ("retry_after_s", "pool", "reason"):
                value = getattr(exc, key, None)
                if value:
                    error_meta[key] = value
            # Echo the request's trace context so even a shed
            # request's reply stays correlated to the client's
            # trace (throttle replies are part of the story).
            traceparent = message.meta.get("traceparent")
            if traceparent:
                error_meta["traceparent"] = traceparent
            channel.send(Message(MessageKind.ERROR, error_meta))

    def connection_closed(self, conn: dict) -> None:
        """Reap whatever this connection was responsible for.

        A dying *data* session counts as drained for its export job
        (the job completes once every other session reaches EOF); jobs
        begun on a dying *control* connection are abandoned — their
        admission slots are freed so the pool cannot be bricked by
        crashed clients, while restartable state (staging table, store
        prefix, checkpoint journal) survives for a ``resume`` restart.
        """
        job_id = conn.get("job_id")
        if job_id:
            self._export_session_drained(job_id,
                                         conn.get("session_no", 0))
        for job in list(conn["loads"].values()):
            self._abort_load_job(job, event="abandoned")
        for job in list(conn["exports"].values()):
            self._drop_export(job)

    def _dispatch(self, channel: MessageChannel, message: Message,
                  conn: dict) -> None:
        kind = message.kind
        self.obs.messages_total.labels(kind=kind.name).inc()
        if kind == MessageKind.LOGON:
            self._handle_logon(channel, message, conn)
        elif kind == MessageKind.LOGOFF:
            channel.send(Message(MessageKind.LOGOFF_OK))
        elif kind == MessageKind.SQL_REQUEST:
            self._handle_sql(channel, message)
        elif kind == MessageKind.BEGIN_LOAD:
            self._handle_begin_load(channel, message, conn)
        elif kind == MessageKind.DATA:
            self._handle_data(channel, message)
        elif kind == MessageKind.DATA_EOF:
            self._handle_data_eof(channel, message)
        elif kind == MessageKind.APPLY_DML:
            self._handle_apply(channel, message)
        elif kind == MessageKind.END_LOAD:
            self._handle_end_load(channel, message, conn)
        elif kind == MessageKind.BEGIN_EXPORT:
            self._handle_begin_export(channel, message, conn)
        elif kind == MessageKind.EXPORT_FETCH:
            self._handle_export_fetch(channel, message)
        else:
            raise ProtocolError(f"unexpected message {kind.name}")

    def _handle_logon(self, channel: MessageChannel, message: Message,
                      conn: dict) -> None:
        """Record the session identity and name the handler thread.

        Data-session LOGONs carry the job they serve, so the handler
        thread is renamed ``<node>-job-<id>-s<n>`` — a hung or
        credit-starved load is then visible directly in a thread dump.
        """
        conn["user"] = message.meta.get("user", "")
        job_id = message.meta.get("job_id")
        if job_id:
            # Remember which job/session this data connection serves so
            # its teardown can be attributed (export EOF accounting).
            conn["job_id"] = job_id
            conn["session_no"] = message.meta.get("session_no", 0)
            threading.current_thread().name = (
                f"{self.name}-job-{job_id}"
                f"-s{conn['session_no']}")
        channel.send(Message(MessageKind.LOGON_OK))

    # -- ad-hoc SQL: cross compile and execute on the CDW ----------------------------

    def _handle_sql(self, channel: MessageChannel,
                    message: Message) -> None:
        statement = to_cdw(
            parse_statement(message.meta["sql"], dialect="legacy"))
        result = self.engine.execute(statement)
        if result.kind == "rows":
            layout = infer_result_layout(result.columns, result.rows)
            fmt = BinaryFormat(layout)
            channel.send(Message(
                MessageKind.RESULT_SET,
                {"columns": [[f.name, f.type.render()]
                             for f in layout.fields]},
                body=fmt.encode_records(result.rows)))
        else:
            channel.send(Message(
                MessageKind.STMT_OK,
                {"activity_count": result.activity_count}))

    # -- load jobs -----------------------------------------------------------------------

    def _job(self, job_id: str) -> _LoadJob:
        with self._registry_lock:
            job = self._jobs.get(job_id)
        if job is None:
            raise ProtocolError(f"unknown load job {job_id!r}")
        return job

    def _classify(self, meta: dict, conn: dict, target: str = "") -> str:
        """Resource pool for one BEGIN_* request.

        Tenancy is declared explicitly (``tenant`` in the request meta)
        or falls back to the logon user — legacy scripts predate any
        notion of tenancy, so the common case is user-based pooling.
        """
        user = conn.get("user", "")
        return self.wlm.classify(
            tenant=meta.get("tenant") or user, user=user, target=target)

    def _handle_begin_load(self, channel: MessageChannel,
                           message: Message, conn: dict) -> None:
        meta = message.meta
        job_id = meta["job_id"]
        threading.current_thread().name = f"{self.name}-job-{job_id}-ctl"
        layout = layout_from_wire(meta["layout"])
        format_spec = FormatSpec.from_wire(meta["format"])
        target = meta["target"]
        resume = bool(meta.get("resume"))
        if not self.engine.catalog.exists(target):
            raise GatewayError(
                f"target table {target!r} does not exist in the CDW")

        # A trace-carrying client makes this whole job a subtree of its
        # trace: the admission span and the job span both parent to the
        # remote context, so the gateway side has no orphan roots.
        remote_ctx = message.trace_context()

        # Streaming micro-batches branch off here: admission belongs to
        # the *feed* (one slot across all cycles), the feed's durable
        # watermark decides whether this batch already committed, and
        # schema drift is resolved before any job state exists.
        if meta.get("stream"):
            self._handle_begin_stream_batch(
                channel, meta, conn, job_id, layout, format_spec,
                target, resume, remote_ctx)
            return

        # Admission control happens before ANY job state is created, so
        # a shed request leaves nothing behind — the client just sees
        # WLM_THROTTLED and retries the whole BEGIN_LOAD later.
        pool = self._classify(meta, conn, target=target)
        ticket = self.wlm.admit(pool, job_id, kind="load",
                                parent_span=remote_ctx)
        try:
            job = self._begin_load_admitted(channel, meta, job_id, layout,
                                            format_spec, target, resume,
                                            pool, ticket, remote_ctx,
                                            conn=conn)
        except BaseException:
            self.wlm.release(ticket)
            raise
        # This control connection owns the job: if it closes before
        # END_LOAD the job is abandoned and its slot freed.
        conn["loads"][job_id] = job

    def _begin_load_admitted(self, channel: MessageChannel, meta: dict,
                             job_id: str, layout: Layout,
                             format_spec: FormatSpec, target: str,
                             resume: bool, pool: str, ticket,
                             remote_ctx=None,
                             stream: dict | None = None,
                             conn: dict | None = None) -> _LoadJob:
        """Set up one admitted load job (the pre-wlm BEGIN_LOAD body)."""
        # On the sharded front end the connection carries its shard:
        # the job's local staging lands in the shard's namespace and
        # the pipeline stages run on the shard's worker pool instead of
        # dedicated per-job threads.  The *cloud* prefix stays job_id/
        # either way, so a job resumed under a different front end still
        # finds its durable uploads.
        shard = conn.get("shard") if conn else None
        # A restarted job (same job_id, resume flag) replaces whatever
        # is left of its killed predecessor; the checkpoint journal in
        # the job's staging directory carries the durable progress over.
        if resume:
            with self._registry_lock:
                stale = self._jobs.pop(job_id, None)
            if stale is not None:
                # Eager first (see _abort_load_job): the applier must
                # finish journaling any in-flight range before the
                # pipeline teardown closes the journal — and before
                # this restart seeds its watermark from it.
                if stale.eager is not None:
                    stale.eager.shutdown()
                    stale.eager.join()
                stale.pipeline.shutdown()
                stale.span.end("error")
                self.wlm.release(stale.ticket)
                self.obs.jobs_total.labels(event="restarted").inc()
                self.obs.flight.record(job_id, "restarted")

        staging_table = f"HQ_STG_{job_id}"
        if not (resume and self.engine.catalog.exists(staging_table)):
            self._create_staging_table(staging_table, layout)
        self._create_error_tables(meta["et_table"], meta["uv_table"],
                                  target)

        staging_dir = os.path.join(
            shard.staging_dir if shard is not None else self._base_dir,
            job_id)
        os.makedirs(staging_dir, exist_ok=True)
        journal = None
        if self.config.checkpoint_enabled:
            journal = CheckpointJournal(
                os.path.join(staging_dir, "checkpoint.jsonl"),
                fresh=not resume)
        # Per-pool/target rule resolution mirrors WLM classification:
        # first matching ruleset in declaration order wins.
        dq = None
        ruleset = self.dq_profile.resolve(target=target, pool=pool)
        if ruleset is not None and stream is not None:
            if stream["route_error"]:
                # The whole batch is bound for the error table — the
                # precheck would only route it twice.
                ruleset = None
            else:
                # Drift × DQ: a rule applies to a stream batch only
                # once every column it references exists in the
                # batch's layout — a column added mid-stream is exempt
                # until the profile matches it (docs/STREAMING.md).
                ruleset = _ruleset_for_layout(ruleset, layout)
        if ruleset is not None:
            try:
                dq = DqPrechecker(
                    ruleset=ruleset, engine=self.engine,
                    staging_table=staging_table,
                    et_table=meta["et_table"], target_table=target,
                    layout=layout, seq_stride=self.config.seq_stride,
                    journal=journal, obs=self.obs, job_id=job_id)
            except ValueError as exc:
                raise GatewayError(f"dq profile rejected: {exc}") from exc

        metrics = JobMetrics(job_id=job_id,
                             sessions=meta.get("sessions", 0),
                             pool=pool)
        # With a remote context the job span continues the client's
        # trace; without one it is a locally-rooted trace as before.
        job_span = self.obs.tracer.span(
            "job", parent=remote_ctx, job_id=job_id, target=target,
            **({"pool": pool} if pool else {}))
        if job_span.trace_id:
            metrics.trace_id = f"{job_span.trace_id:032x}"
        with self.obs.tracer.span(
                "codec.compile", parent=job_span, job_id=job_id,
                kind=format_spec.kind,
                compiled=self.config.compiled_codecs):
            record_format = make_format(
                format_spec, layout, compiled=self.config.compiled_codecs)
        self.obs.codec_compiles.labels(kind=format_spec.kind).inc()
        converter = DataConverter(
            record_format,
            seq_stride=self.config.seq_stride,
            csv_delimiter=self.config.csv_delimiter,
            obs=self.obs,
            staging_table=staging_table)
        # Eager apply needs the durable-file hook wired before the
        # pipeline exists (a resumed pipeline re-uploads during its own
        # __init__), but the coordinator needs the pipeline — the relay
        # buffers callbacks across that construction gap.
        eager_sql = (meta.get("apply_sql")
                     if self.config.eager_apply else None)
        if stream is not None and stream["route_error"]:
            # Nothing of a route-to-error batch may reach the target
            # before APPLY moves it wholesale to the error table.
            eager_sql = None
        relay = DurableFileRelay() if eager_sql else None
        pipeline = AcquisitionPipeline(
            on_file_durable=relay,
            converter=converter,
            credits=self.wlm.credit_source(pool),
            loader=self.loader,
            job_id=job_id,
            engine=self.engine,
            staging_table=staging_table,
            container=self.config.container,
            prefix=f"{job_id}/",
            staging_dir=staging_dir,
            config=self.config,
            metrics=metrics,
            obs=self.obs,
            job_span=job_span,
            faults=self.faults,
            retry=self.retry,
            breakers=self.breakers,
            journal=journal,
            resume=resume,
            worker_pool=shard.pool if shard is not None else None,
        )
        eager = None
        if eager_sql:
            run = self.beta.start_apply(
                sql=eager_sql, layout=layout,
                staging_table=staging_table, target_table=target,
                et_table=meta["et_table"], uv_table=meta["uv_table"],
                max_errors=meta.get("max_errors"),
                max_retries=meta.get("max_retries"),
                span=job_span, job_id=job_id)
            eager = EagerApplyCoordinator(
                run=run, pipeline=pipeline, loader=self.loader,
                engine=self.engine, config=self.config,
                container=self.config.container, prefix=f"{job_id}/",
                staging_table=staging_table, metrics=metrics,
                obs=self.obs, job_span=job_span, journal=journal,
                faults=self.faults, retry=self.retry,
                breakers=self.breakers, job_id=job_id, dq=dq)
            relay.attach(eager.file_durable)
        job = _LoadJob(
            job_id=job_id, target=target,
            et_table=meta["et_table"], uv_table=meta["uv_table"],
            layout=layout, format_spec=format_spec,
            staging_table=staging_table, staging_dir=staging_dir,
            pipeline=pipeline, metrics=metrics,
            span=job_span, ticket=ticket,
            eager=eager, eager_sql=eager_sql, dq=dq,
        )
        if stream is not None:
            job.stream = stream["feed"]
            job.stream_seq = stream["seq"]
            job.stream_cursor = stream["cursor"]
            job.stream_event_ts = stream["event_ts"]
            job.stream_drift = stream["drift"]
            job.stream_route_error = stream["route_error"]
        job.total_watch.start()
        self.obs.jobs_total.labels(event="started").inc()
        self.obs.flight.record(
            job_id, "started", target=target, pool=pool,
            resume=resume, eager=bool(eager_sql),
            trace_id=metrics.trace_id)
        log.info("load job started", extra={
            "job_id": job_id, "target": target, "pool": pool,
            "sessions": meta.get("sessions", 0)})
        with self._registry_lock:
            self._jobs[job_id] = job
        ok_meta: dict = {"job_id": job_id}
        if resume:
            # The authoritative durable set: with the immediate-ack
            # pipeline an ack is NOT durability, so the client must only
            # skip chunks the gateway confirms it still has.
            ok_meta["durable_seqs"] = sorted(pipeline.resumed_seqs)
        channel.send(Message(MessageKind.BEGIN_LOAD_OK, ok_meta))
        return job

    # -- continuous ingestion (repro.stream) -------------------------------------

    def _handle_begin_stream_batch(self, channel: MessageChannel,
                                   meta: dict, conn: dict, job_id: str,
                                   layout: Layout,
                                   format_spec: FormatSpec, target: str,
                                   resume: bool, remote_ctx) -> None:
        """BEGIN_LOAD of one micro-batch on a streaming feed.

        Three outcomes: the batch sequence is at or below the feed's
        durable watermark → a ``stream_committed`` fast-skip reply and
        no job at all (replay after a client crash); the batch layout
        drifted → resolve it under the feed's policy first; otherwise
        → a normal load job that rides the feed's admission ticket.
        """
        stream_meta = meta["stream"]
        feed = self._stream_feed(stream_meta, conn, target, layout)
        seq = int(stream_meta.get("batch_seq", 0))
        with feed.lock:
            skip = seq <= feed.committed_seq
            if skip:
                feed.batches_skipped += 1
            committed_seq, cursor = feed.committed_seq, feed.cursor
        if skip:
            self.obs.stream_batches.labels(
                feed=feed.name, outcome="skipped").inc()
            self.obs.flight.record(
                f"stream:{feed.name}", "batch_skipped", seq=seq)
            channel.send(Message(MessageKind.BEGIN_LOAD_OK, {
                "job_id": job_id, "stream_committed": True,
                "committed_seq": committed_seq, "cursor": cursor}))
            return
        route_error, drift = self._stream_resolve_drift(
            feed, seq, layout, meta["layout"])
        job = self._begin_load_admitted(
            channel, meta, job_id, layout, format_spec, target,
            resume, feed.pool, None, remote_ctx,
            conn=conn,
            stream={
                "feed": feed,
                "seq": seq,
                "cursor": stream_meta.get("cursor"),
                "event_ts": stream_meta.get("event_ts"),
                "drift": drift,
                "route_error": route_error,
            })
        conn["loads"][job_id] = job

    def _stream_feed(self, stream_meta: dict, conn: dict, target: str,
                     layout: Layout) -> _StreamFeed:
        """Get or durably open the feed a stream batch belongs to.

        The watermark journal lives outside the node's staging tempdir
        (``config.stream_profile["watermark_dir"]``, then the client's
        ``watermark_dir`` meta, then a staging-area fallback that only
        suits tests), so a feed reopened after a node restart resumes
        from its last committed batch, accepted layout included.
        """
        name = str(stream_meta.get("feed") or "feed")
        with self._registry_lock:
            feed = self._streams.get(name)
        if feed is not None:
            if feed.target != target:
                raise GatewayError(
                    f"stream feed {name!r} is bound to "
                    f"{feed.target!r}, not {target!r}")
            return feed
        profile = self.config.stream_profile or {}
        policy = str(stream_meta.get("drift_policy")
                     or profile.get("drift_policy") or "evolve")
        if policy not in ("evolve", "route-to-error", "halt"):
            raise GatewayError(
                f"unknown stream drift policy {policy!r} "
                "(expected evolve, route-to-error, or halt)")
        watermark_dir = (profile.get("watermark_dir")
                         or stream_meta.get("watermark_dir")
                         or os.path.join(self._base_dir, "streams"))
        os.makedirs(watermark_dir, exist_ok=True)
        safe = "".join(c if c.isalnum() or c in "-_." else "_"
                       for c in name)
        journal = CheckpointJournal(
            os.path.join(watermark_dir, f"{safe}.feed.jsonl"))
        accepted = layout
        if journal.stream_layout is not None:
            accepted = layout_from_wire(journal.stream_layout)
        pool = self._classify(stream_meta, conn, target=target)
        # One admission per *feed*, held across every micro-batch
        # cycle: a streaming session is one long-running occupant of
        # its pool, fairly arbitrated against one-shot jobs.
        ticket = self.wlm.admit(pool, f"stream:{name}", kind="stream")
        feed = _StreamFeed(
            name=name, target=target, policy=policy, journal=journal,
            layout=accepted,
            mapping={f.name: f.name for f in accepted.fields},
            pool=pool, ticket=ticket,
            committed_seq=(-1 if journal.stream_committed_seq is None
                           else journal.stream_committed_seq),
            cursor=journal.stream_cursor,
            rows_committed=journal.stream_rows)
        if journal.stream_drift:
            # The accepted layout (and with it the identity mapping
            # built above) already reflects the journaled history;
            # only the counter needs restoring.
            feed.drift_events = len(journal.stream_drift)
        with self._registry_lock:
            existing = self._streams.get(name)
            if existing is not None:
                # Lost the creation race: keep the first one.
                journal.close()
                self.wlm.release(ticket)
                return existing
            self._streams[name] = feed
        self.obs.flight.record(
            f"stream:{name}", "feed_opened", target=target,
            policy=policy, committed_seq=feed.committed_seq)
        log.info("stream feed opened", extra={
            "feed": name, "target": target, "policy": policy,
            "committed_seq": feed.committed_seq})
        return feed

    def _stream_resolve_drift(self, feed: _StreamFeed, seq: int,
                              layout: Layout, layout_wire: dict
                              ) -> "tuple[bool, list[dict]]":
        """Diff a batch layout against the feed; apply the policy.

        Returns ``(route_error, wire_events)``.  Under ``evolve`` the
        target is ALTERed (ADD IF NOT EXISTS / guarded RENAME — both
        replay-safe across the ALTER→journal crash window), the
        mapping matrix is updated, the feed's accepted layout advances,
        and the drift is journaled *before* any batch data lands.
        Under ``route-to-error`` nothing advances — the batch stages
        under its own layout and APPLY routes it wholesale.  ``halt``
        raises, leaving the watermark untouched for replay.
        """
        with feed.lock:
            resolver = SchemaDriftResolver(feed=feed.name)
            events = resolver.resolve(feed.layout, layout)
            if not events:
                return False, []
            wire = [e.to_wire() for e in events]
            if feed.policy == "halt":
                raise StreamDriftError(
                    f"feed {feed.name}: schema drift under halt "
                    f"policy: {wire}", feed=feed.name, events=wire)
            for event in events:
                self.obs.stream_drift_events.labels(
                    feed=feed.name, kind=event.kind).inc()
            feed.drift_events += len(events)
            if feed.policy == "route-to-error":
                self.obs.flight.record(
                    f"stream:{feed.name}", "drift_routed", seq=seq,
                    events=len(events))
                log.info("stream drift routed to error table", extra={
                    "feed": feed.name, "seq": seq, "events": wire})
                return True, wire
            # evolve: propagate to the target, then journal.  ADD is
            # idempotent; RENAME is guarded so replaying the window
            # between a completed ALTER and the journal write is safe.
            target_table = self.engine.table(feed.target)
            for event in events:
                if event.kind == "added":
                    self.engine.execute(
                        f"ALTER TABLE {feed.target} ADD COLUMN "
                        f"IF NOT EXISTS {event.column} {event.new_type}")
                elif event.kind == "renamed" and \
                        target_table.has_column(event.old_name):
                    self.engine.execute(
                        f"ALTER TABLE {feed.target} RENAME COLUMN "
                        f"{event.old_name} TO {event.column}")
            feed.mapping = SchemaDriftResolver.apply_to_mapping(
                feed.mapping, events)
            feed.layout = layout
            feed.journal.record_stream_drift(seq, wire,
                                             layout=layout_wire)
            self.obs.flight.record(
                f"stream:{feed.name}", "drift_evolved", seq=seq,
                events=len(events))
            log.info("stream drift evolved", extra={
                "feed": feed.name, "seq": seq, "events": wire})
            return False, wire

    def _stream_route_batch(self, job: _LoadJob) -> ApplySummary:
        """route-to-error APPLY: the whole staged batch → error table.

        Reuses the dq routing idiom (batched multi-row ET INSERTs +
        zone-map-pruned staging DELETEs) with the drift provenance
        columns ``__RULE_ID='schema_drift'`` and the event list as
        ``__REASON``, so drift-routed and dq-routed rows share one
        queryable schema.  The watermark still advances — the batch is
        *handled*, not lost — and replay after a crash fast-skips it.
        """
        from repro.dq.precheck import _DELETE_BATCH, _INSERT_BATCH
        result = self.engine.execute(
            f"SELECT {SEQ_COLUMN} FROM {job.staging_table}")
        seqs = sorted(row[0] for row in result.rows)
        events = job.stream_drift
        reason = ("; ".join(
            f"{e['kind']}:{e.get('column', '')}" for e in events))[:256]
        column = events[0].get("column", "") if events else ""
        chunk_records = dict(job.pipeline.chunk_records)
        starts: dict[int, int] = {}
        acc = 0
        for chunk in sorted(chunk_records):
            starts[chunk] = acc
            acc += chunk_records[chunk]
        stride = self.config.seq_stride
        rows = []
        for seq in seqs:
            rownum = starts.get(seq // stride, 0) + seq % stride + 1
            rows.append((
                rownum, HYPERQ_SCHEMA_DRIFT, column,
                (f"schema drift on feed {job.stream.name} routed "
                 f"batch {job.stream_seq} to the error table: "
                 f"{reason}, row number: {rownum}")[:512],
                "schema_drift", reason))
        for i in range(0, len(rows), _INSERT_BATCH):
            self.engine.execute(
                et_insert(job.et_table, rows[i:i + _INSERT_BATCH]))
        for i in range(0, len(seqs), _DELETE_BATCH):
            self.engine.execute(staging_delete(
                job.staging_table, seqs[i:i + _DELETE_BATCH]))
        self.obs.flight.record(
            job.job_id, "stream_batch_routed", rows=len(seqs))
        return ApplySummary(et_errors=len(seqs),
                            statements=(len(rows) + _INSERT_BATCH - 1)
                            // _INSERT_BATCH if rows else 0)

    def _stream_commit(self, job: _LoadJob, summary: ApplySummary,
                       result_meta: dict) -> None:
        """Durably advance the feed watermark, then let the reply go.

        Ordering is the exactly-once crux: the ``stream_commit``
        record reaches the feed journal *before* APPLY_RESULT leaves
        the node.  A client that dies without seeing the reply replays
        the batch and fast-skips on the committed watermark; a node
        that dies before the record lands leaves the batch job's own
        checkpoint journal to resume the cycle mid-batch.  Compaction
        rides the same boundary, keeping the journal O(feed state)
        instead of O(batch history) however long the feed runs.
        """
        feed = job.stream
        rows = summary.rows_inserted + summary.rows_updated
        outcome = "routed" if job.stream_route_error else "committed"
        with feed.lock:
            feed.journal.record_stream_commit(
                job.stream_seq, cursor=job.stream_cursor, rows=rows)
            feed.journal.compact()
            feed.committed_seq = max(feed.committed_seq, job.stream_seq)
            feed.cursor = job.stream_cursor
            feed.batches_committed += 1
            feed.rows_committed += rows
            committed_seq = feed.committed_seq
        self.obs.stream_batches.labels(
            feed=feed.name, outcome=outcome).inc()
        stream_result = {
            "feed": feed.name, "seq": job.stream_seq,
            "committed_seq": committed_seq,
            "routed": job.stream_route_error,
        }
        if job.stream_event_ts is not None:
            lag = max(0.0, time.time() - float(job.stream_event_ts))
            self.obs.stream_lag_seconds.labels(feed=feed.name).set(lag)
            stream_result["lag_s"] = round(lag, 6)
        if job.stream_drift:
            stream_result["drift"] = list(job.stream_drift)
        result_meta["stream"] = stream_result
        self.obs.flight.record(
            f"stream:{feed.name}", "batch_committed",
            seq=job.stream_seq, rows=rows,
            routed=job.stream_route_error)

    def _close_stream_feed(self, name: str) -> None:
        """END_LOAD(stream_end): release the feed's slot and journal."""
        with self._registry_lock:
            feed = self._streams.pop(name, None)
        if feed is None:
            return
        feed.journal.close()
        self.wlm.release(feed.ticket)
        self.obs.flight.record(
            f"stream:{name}", "feed_closed",
            committed_seq=feed.committed_seq,
            batches=feed.batches_committed)
        log.info("stream feed closed", extra={
            "feed": name, "target": feed.target,
            "committed_seq": feed.committed_seq,
            "batches": feed.batches_committed,
            "rows": feed.rows_committed})

    def _create_staging_table(self, name: str, layout: Layout) -> None:
        """Staging columns are deliberately *unbounded* text for character
        fields: length enforcement belongs to the application phase where
        per-tuple error handling can catch it (Section 6 type mapping +
        Section 7 error handling)."""
        columns = []
        for fld in layout.fields:
            if fld.type.is_character:
                columns.append(f"{fld.name} NVARCHAR")
            else:
                from repro.cdw.types import cdw_type_from_legacy
                columns.append(
                    f"{fld.name} {cdw_type_from_legacy(fld.type).render()}")
        columns.append(f"{SEQ_COLUMN} BIGINT")
        self.engine.execute(
            f"CREATE TABLE {name} ({', '.join(columns)})")

    def _create_error_tables(self, et_table: str, uv_table: str,
                             target: str) -> None:
        # __RULE_ID/__REASON: shared provenance columns — dq-routed and
        # split-routed rows land in one queryable schema (docs/DQ.md).
        self.engine.execute(
            f"CREATE TABLE IF NOT EXISTS {et_table} ("
            "SEQNO INT, ERRCODE INT, ERRFIELD NVARCHAR(128), "
            "ERRMSG NVARCHAR(512), __RULE_ID NVARCHAR(64), "
            "__REASON NVARCHAR(256))")
        target_table = self.engine.table(target)
        uv_columns = ", ".join(
            f"{c.name} {c.ctype.render()}" for c in target_table.columns)
        self.engine.execute(
            f"CREATE TABLE IF NOT EXISTS {uv_table} "
            f"({uv_columns}, SEQNO INT, ERRCODE INT)")

    def _handle_data(self, channel: MessageChannel,
                     message: Message) -> None:
        job = self._job(message.meta["job_id"])
        with job.lock:
            # Stopwatch.start is a no-op while running, so the first
            # chunk starts the acquisition clock and the rest are free.
            job.acquisition_watch.start()
            job.metrics.chunks_received += 1
            job.metrics.bytes_received += len(message.body)
            job.sessions_seen.add(message.meta.get("session_no", 0))
        self.obs.chunks_received.inc()
        self.obs.bytes_received.inc(len(message.body))
        receive_span = self.obs.tracer.span(
            "receive", parent=job.span, chunk_seq=message.meta["seq"],
            bytes=len(message.body),
            session=message.meta.get("session_no", 0))
        # Minimal processing, then the immediate acknowledgment: the only
        # thing that can delay the ack is credit back-pressure.
        try:
            with self.obs.stage_seconds.labels(stage="receive").time():
                job.pipeline.submit_chunk(
                    message.meta["seq"], message.body, span=receive_span)
        except BaseException:
            receive_span.end("error")
            raise
        receive_span.end()
        channel.send(Message(MessageKind.DATA_ACK,
                             {"seq": message.meta["seq"]}))

    def _handle_data_eof(self, channel: MessageChannel,
                         message: Message) -> None:
        self._job(message.meta["job_id"])  # validate
        channel.send(Message(MessageKind.DATA_ACK, {"seq": -1}))

    def _handle_apply(self, channel: MessageChannel,
                      message: Message) -> None:
        job = self._job(message.meta["job_id"])
        if job.eager is not None:
            self._handle_apply_eager(channel, message, job)
            return
        # Acquisition ends once the pipeline has fully drained into the
        # staging table (upload + in-cloud COPY included).
        job.pipeline.drain()
        job.acquisition_watch.stop()
        job.metrics.acquisition_s = job.acquisition_watch.elapsed
        job.metrics.sessions = max(
            job.metrics.sessions, len(job.sessions_seen))

        # A drifted batch under route-to-error never reaches Beta: its
        # DML references columns the (un-evolved) target does not have.
        if job.stream_route_error:
            with job.application_watch, \
                    self.obs.stage_seconds.labels(stage="apply").time():
                summary = self._stream_route_batch(job)
            self._record_apply_result(channel, job, summary)
            return

        # The dq precheck sits between acquisition and APPLY: one
        # aggregated rule pass + violation routing, so Beta's split
        # cascade only ever sees unexpected errors.  Its cost counts
        # toward the application phase.
        if job.dq is not None:
            with job.application_watch:
                job.dq.update_chunks(dict(job.pipeline.chunk_records))
                job.dq.check_range(
                    0, self._staging_seq_ceiling(job),
                    parent_span=job.span)

        apply_span = self.obs.tracer.span(
            "apply", parent=job.span, job_id=job.job_id,
            target=job.target)

        def run_apply():
            # The ``dml.apply`` injection point fires *before* Beta
            # dispatches any DML, so an absorbed transient fault never
            # retries a partially applied statement sequence.
            self.faults.fire("dml.apply", job_id=job.job_id)
            return self.beta.apply_dml(
                sql=message.meta["sql"],
                layout=job.layout,
                staging_table=job.staging_table,
                target_table=job.target,
                et_table=job.et_table,
                uv_table=job.uv_table,
                chunk_records=job.pipeline.chunk_records,
                acquisition_errors=job.pipeline.acquisition_errors,
                max_errors=message.meta.get("max_errors"),
                max_retries=message.meta.get("max_retries"),
                span=apply_span, job_id=job.job_id,
            )

        breaker = self.breakers.get("dml.apply")
        self.obs.flight.record(job.job_id, "apply_started")
        try:
            with job.application_watch, \
                    self.obs.stage_seconds.labels(stage="apply").time():
                summary = self.retry.call(
                    lambda: breaker.call(run_apply),
                    target="dml.apply", obs=self.obs, parent=apply_span,
                    job_id=job.job_id)
        except BaseException:
            apply_span.end("error")
            raise
        apply_span.set_attribute("rows_inserted", summary.rows_inserted)
        apply_span.end()
        self._record_apply_result(channel, job, summary)

    def _handle_apply_eager(self, channel: MessageChannel,
                            message: Message, job: _LoadJob) -> None:
        """APPLY on the eager path: a drain barrier, not a phase.

        The coordinator has been copying and applying durable prefixes
        since BEGIN_LOAD; here the gateway drains the acquisition
        pipeline (suppressing its prefix-wide COPY — the coordinator
        owns every copy), waits for the workers to run dry, and merges
        one summary identical to the two-phase outcome.
        """
        if message.meta["sql"] != job.eager_sql:
            raise GatewayError(
                "APPLY statement differs from the DML announced at "
                "BEGIN_LOAD; eager apply already ran the announced one")
        job.pipeline.drain(copy=False)
        job.acquisition_watch.stop()
        acquisition_ended = time.perf_counter()
        job.metrics.acquisition_s = job.acquisition_watch.elapsed
        job.metrics.sessions = max(
            job.metrics.sessions, len(job.sessions_seen))

        apply_span = self.obs.tracer.span(
            "apply", parent=job.span, job_id=job.job_id,
            target=job.target, eager=True)
        self.obs.flight.record(job.job_id, "apply_started", eager=True)
        try:
            with job.application_watch, \
                    self.obs.stage_seconds.labels(stage="apply").time():
                summary = job.eager.finish()
        except BaseException:
            apply_span.end("error")
            raise
        # Overlap: time between the first eager range application and
        # the end of acquisition — the wall clock the pipelining saved.
        overlap = 0.0
        if job.eager.first_apply_at is not None:
            overlap = max(
                0.0, acquisition_ended - job.eager.first_apply_at)
        job.metrics.overlap_s = overlap
        self.obs.apply_overlap_seconds.observe(overlap)
        apply_span.set_attribute("rows_inserted", summary.rows_inserted)
        apply_span.set_attribute("overlap_s", round(overlap, 6))
        apply_span.end()
        self._record_apply_result(channel, job, summary)

    def _staging_seq_ceiling(self, job: _LoadJob) -> int:
        """Inclusive ``__SEQ`` upper bound covering every staged chunk."""
        chunks = job.pipeline.chunk_records
        return (1 + max(chunks, default=0)) * self.config.seq_stride - 1

    def _note_dq_job(self, job: _LoadJob) -> None:
        """Fold a finished job's dq summary into the node accumulator."""
        summary = job.dq.summary()
        summary["job_id"] = job.job_id
        summary["target"] = job.target
        with self._registry_lock:
            totals = self._dq_totals
            totals["jobs_checked"] += 1
            totals["checked"] += summary["checked"]
            totals["routed_rows"] += summary["routed_rows"]
            for rule_id, count in summary["violations"].items():
                totals["violations"][rule_id] = \
                    totals["violations"].get(rule_id, 0) + count
            self._dq_jobs.append(summary)
            del self._dq_jobs[:-64]

    def _record_apply_result(self, channel: MessageChannel,
                             job: _LoadJob, summary) -> None:
        """Fold an ApplySummary into job metrics and answer the client."""
        job.metrics.application_s = job.application_watch.elapsed
        job.metrics.rows_inserted = summary.rows_inserted
        job.metrics.rows_updated = summary.rows_updated
        job.metrics.rows_deleted = summary.rows_deleted
        job.metrics.et_errors = summary.et_errors
        job.metrics.uv_errors = summary.uv_errors
        job.metrics.dml_statements = summary.statements
        job.metrics.chunk_retries = summary.splits
        result_meta = {
            "rows_inserted": summary.rows_inserted,
            "rows_updated": summary.rows_updated,
            "rows_deleted": summary.rows_deleted,
            "et_errors": summary.et_errors,
            "uv_errors": summary.uv_errors,
        }
        if job.dq is not None:
            dq_summary = job.dq.summary()
            job.metrics.dq_checked = dq_summary["checked"]
            job.metrics.dq_violations = sum(
                dq_summary["violations"].values())
            job.metrics.dq_routed_rows = dq_summary["routed_rows"]
            result_meta["dq_violations"] = job.metrics.dq_violations
            result_meta["dq_routed_rows"] = job.metrics.dq_routed_rows
            self._note_dq_job(job)
        if job.stream is not None:
            # Exactly-once hinge: the feed watermark commits (and the
            # journal compacts) BEFORE the reply leaves the node.
            self._stream_commit(job, summary, result_meta)
        self.obs.flight.record(
            job.job_id, "apply_finished",
            rows_inserted=summary.rows_inserted,
            et_errors=summary.et_errors, uv_errors=summary.uv_errors,
            splits=summary.splits,
            dq_routed=job.metrics.dq_routed_rows)
        channel.send(Message(MessageKind.APPLY_RESULT, result_meta))

    def _abort_load_job(self, job: _LoadJob,
                        event: str = "aborted") -> None:
        """Tear down a failed/abandoned load and free its pool slot.

        Unlike END_LOAD proper, restartable state survives: the staging
        table, the uploaded store prefix, and the checkpoint journal in
        the staging directory all stay put so a ``resume=True`` restart
        of the same job_id can pick up the durable work.  Idempotent,
        and a no-op when the registered job is not ``job`` (a resume
        restart already replaced it).
        """
        with self._registry_lock:
            if self._jobs.get(job.job_id) is not job:
                return
        # Quiesce *before* unregistering: once the job leaves the
        # registry a resume restart can no longer find (and join) it,
        # so its applier must already be gone — an in-flight range that
        # finished after the restart seeded its journal watermark would
        # be double-applied.  The eager coordinator goes first: the
        # pipeline teardown closes the shared checkpoint journal, and
        # an applier that has run a range's DML must still be able to
        # journal the new watermark.
        if job.eager is not None:
            job.eager.shutdown()
            job.eager.join()
        job.pipeline.quiesce()
        with self._registry_lock:
            if self._jobs.get(job.job_id) is not job:
                # A resume restart replaced the job while we quiesced —
                # it did its own takeover; nothing left to release.
                return
            self._jobs.pop(job.job_id)
        job.span.end("error")
        job.total_watch.stop()
        job.metrics.total_s = job.total_watch.elapsed
        self.obs.jobs_total.labels(event=event).inc()
        self.obs.slo.record_job(job.metrics.pool, job.metrics.total_s,
                                ok=False)
        self.obs.flight.record(job.job_id, event)
        self._dump_flight(job, reason=event)
        self.wlm.release(job.ticket)
        log.info("load job %s", event, extra={
            "job_id": job.job_id, "target": job.target})

    def _dump_flight(self, job: _LoadJob, reason: str) -> None:
        """Write the post-mortem bundle for a dead job, best-effort.

        The bundle pairs the job's flight-recorder events with every
        span of its trace (matched by trace id, falling back to the
        ``job_id`` span attribute when tracing ran unsampled) and a
        metrics snapshot.
        """
        if not (self.obs.flight.enabled and self.obs.flight.dump_dir):
            return
        trace_id = getattr(job.span, "trace_id", 0)
        spans = [r for r in self.obs.tracer.records()
                 if (trace_id and r.get("trace_id") == trace_id)
                 or r.get("attrs", {}).get("job_id") == job.job_id]
        self.obs.flight.dump(job.job_id, spans=spans,
                             metrics=job.metrics.as_row(), reason=reason)

    def _handle_end_load(self, channel: MessageChannel,
                         message: Message, conn: dict) -> None:
        if message.meta.get("stream_end"):
            # Feed close rides END_LOAD but names no batch job — it
            # must be handled before the job lookup.
            self._close_stream_feed(
                str(message.meta.get("feed")
                    or message.meta.get("job_id") or ""))
            channel.send(Message(MessageKind.END_LOAD_OK))
            return
        job_id = message.meta["job_id"]
        job = self._job(job_id)
        conn["loads"].pop(job_id, None)
        if message.meta.get("abort"):
            # The client gave up on the job (failed apply, exhausted
            # data-session retries, ...): release the admission slot
            # now, keep the checkpointed state for a restart.
            self._abort_load_job(job)
            channel.send(Message(MessageKind.END_LOAD_OK))
            return
        job.pipeline.shutdown()
        self.engine.execute(f"DROP TABLE IF EXISTS {job.staging_table}")
        self.store.delete_prefix(self.config.container, f"{job_id}/")
        shutil.rmtree(job.staging_dir, ignore_errors=True)
        job.total_watch.stop()
        job.metrics.total_s = job.total_watch.elapsed
        metrics = job.metrics
        self.obs.job_phase_seconds.labels(phase="total").observe(
            metrics.total_s)
        self.obs.job_phase_seconds.labels(phase="acquisition").observe(
            metrics.acquisition_s)
        self.obs.job_phase_seconds.labels(phase="application").observe(
            metrics.application_s)
        self.obs.jobs_total.labels(event="completed").inc()
        self.obs.slo.record_job(metrics.pool, metrics.total_s, ok=True)
        self.obs.flight.record(
            job_id, "completed", total_s=round(metrics.total_s, 4),
            rows_inserted=metrics.rows_inserted)
        job.span.set_attribute("total_s", round(metrics.total_s, 6))
        job.span.end()
        log.info("load job completed", extra={
            "job_id": job_id, "target": job.target,
            "total_s": round(metrics.total_s, 4),
            "rows_inserted": metrics.rows_inserted,
            "et_errors": metrics.et_errors,
            "uv_errors": metrics.uv_errors})
        with self._registry_lock:
            self._jobs.pop(job_id, None)
            self.completed_jobs.append(job.metrics)
        # The pool slot frees only after every trace of the job is gone,
        # so admission really does bound concurrent resource footprints.
        self.wlm.release(job.ticket)
        channel.send(Message(MessageKind.END_LOAD_OK))

    # -- export jobs ------------------------------------------------------------------------

    def _handle_begin_export(self, channel: MessageChannel,
                             message: Message, conn: dict) -> None:
        job_id = message.meta["job_id"]
        threading.current_thread().name = f"{self.name}-job-{job_id}-ctl"
        pool = self._classify(message.meta, conn)
        remote_ctx = message.trace_context()
        ticket = self.wlm.admit(pool, job_id, kind="export",
                                parent_span=remote_ctx)
        export_span = self.obs.tracer.span(
            "export", parent=remote_ctx, job_id=job_id,
            **({"pool": pool} if pool else {}))
        try:
            cdw_sql = transpile(message.meta["sql"], "legacy", "cdw")
            cursor = TdfCursor(
                self.engine, cdw_sql,
                chunk_rows=self.config.export_chunk_rows,
                prefetch=max(self.config.prefetch_packets,
                             message.meta.get("sessions", 1)))
            # Infer the legacy layout from the materialized result so
            # every chunk is encoded consistently.
            layout = infer_result_layout(cursor.columns, cursor._rows)
        except BaseException:
            export_span.end("error")
            self.wlm.release(ticket)
            raise
        job = _ExportJob(
            job_id=job_id, cursor=cursor, layout=layout,
            span=export_span, ticket=ticket,
            eof_needed=max(1, message.meta.get("sessions", 1)))
        with self._registry_lock:
            self._exports[job_id] = job
        # This control connection owns the export: if it closes before
        # every data session drains, the job is dropped and its
        # admission slot freed.
        conn["exports"][job_id] = job
        channel.send(Message(MessageKind.BEGIN_EXPORT_OK, {
            "columns": [[f.name, f.type.render()] for f in layout.fields],
        }))

    def _export_session_drained(self, job_id: str,
                                session_no: int) -> None:
        """One data session is done with ``job_id`` (EOF or teardown).

        Once every session either saw EOF or closed its connection the
        export is complete: drop it from the registry and free its
        admission slot.  Idempotent per session, no-op for unknown (or
        load) jobs.
        """
        with self._registry_lock:
            job = self._exports.get(job_id)
            if job is None:
                return
            job.eof_seen.add(session_no)
            done = len(job.eof_seen) >= job.eof_needed
            if done:
                self._exports.pop(job_id, None)
        if done:
            job.span.end()
            self.wlm.release(job.ticket)

    def _drop_export(self, job: _ExportJob) -> None:
        """Abandon an export whose owning connection vanished."""
        with self._registry_lock:
            if self._exports.get(job.job_id) is job:
                self._exports.pop(job.job_id)
        job.span.end("error")
        self.wlm.release(job.ticket)

    def _handle_export_fetch(self, channel: MessageChannel,
                             message: Message) -> None:
        with self._registry_lock:
            job = self._exports.get(message.meta["job_id"])
        if job is None:
            raise ProtocolError(
                f"unknown export job {message.meta.get('job_id')!r}")
        chunk_no = message.meta["chunk_no"]
        packet_bytes = job.cursor.packet(chunk_no)
        if packet_bytes is None:
            # The fetching session identifies itself in the request;
            # older clients that omit ``session_no`` fetch the stripe
            # ``chunk_no ≡ session (mod sessions)``, so the past-the-end
            # chunk_no still names the session that drained.
            session_no = message.meta.get(
                "session_no", chunk_no % job.eof_needed)
            self._export_session_drained(job.job_id, session_no)
            channel.send(Message(MessageKind.EXPORT_DATA,
                                 {"chunk_no": chunk_no, "eof": True}))
            return
        # PXC unwraps the TDF packet and re-encodes rows in the legacy
        # binary representation the client expects (Section 4).
        from repro.core import tdf
        packet = tdf.decode_packet(packet_bytes)
        fmt = BinaryFormat(job.layout)
        channel.send(Message(
            MessageKind.EXPORT_DATA,
            {"chunk_no": chunk_no, "eof": False,
             "records": len(packet.rows)},
            body=fmt.encode_records(packet.rows)))
