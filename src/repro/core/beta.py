"""Beta: executes the cross-compiled DML and decodes its results.

The Beta process (Figure 2a) handles the *application phase* of a load
job: the client's tuple-at-a-time DML — already cross compiled and bound
over the staging table by the PXC — is executed as set-oriented DML over
staging-row ranges, under the adaptive error handler of Section 7.  Beta
also owns uniqueness *emulation* for CDWs without native unique
constraints (Section 7, citing [26]): after each chunk's DML it validates
the declared keys and rolls the chunk back if they broke.

Error tables written here follow Figure 6: transformation errors carry
code 3103 and messages like ``DATE conversion failed during DML on
PROD.CUSTOMER, row number: 2``; an exhausted error budget is recorded as
code 9057 with a row-number range.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cdw.engine import CdwEngine
from repro.core.config import HyperQConfig
from repro.core.converter import AcquisitionError
from repro.core.errorhandling import AdaptiveErrorHandler, ApplyOutcome
from repro.errors import (
    HYPERQ_CONVERSION_ERROR, HYPERQ_MAX_ERRORS_REACHED,
    HYPERQ_UNIQUENESS_ERROR, BulkExecutionError, GatewayError,
    SqlTranslationError,
)
from repro.legacy.types import Layout
from repro.obs import NULL_OBS, NULL_SPAN, Observability, get_logger
from repro.plancache import PlanCache
from repro.sqlxc import nodes as n
from repro.sqlxc.parser import parse_statement
from repro.sqlxc.rewrites import bind_params_to_columns, to_cdw

__all__ = ["Beta", "ApplyRun", "ApplySummary", "PreparedDml",
           "SEQ_COLUMN", "STAGING_ALIAS"]

log = get_logger("beta")

#: the synthetic order column Hyper-Q adds to every staging table.
SEQ_COLUMN = "__SEQ"
#: alias the staging table is bound under in rewritten DML.
STAGING_ALIAS = "s"


@dataclass
class ApplySummary:
    """What the application phase did (returned in APPLY_RESULT)."""

    rows_inserted: int = 0
    rows_updated: int = 0
    rows_deleted: int = 0
    et_errors: int = 0
    uv_errors: int = 0
    statements: int = 0
    splits: int = 0


class PreparedDml:
    """A range-parameterized prepared statement.

    The cross-compiled DML is built *once* into a statement template
    whose ``__SEQ BETWEEN lo AND hi`` bounds are two dedicated mutable
    :class:`~repro.sqlxc.nodes.Literal` nodes; :meth:`bind` rebinds only
    those two literals and returns the shared template.  Safe because a
    job's application phase executes ranges sequentially and each job
    has its own staging table (hence its own cache entry and template).
    """

    __slots__ = ("kind", "statement", "_lo", "_hi")

    def __init__(self, kind: str, statement: n.Statement,
                 lo: n.Literal, hi: n.Literal):
        self.kind = kind
        self.statement = statement
        self._lo = lo
        self._hi = hi

    def bind(self, lo: int, hi: int) -> n.Statement:
        """Rebind the ``__SEQ`` range and return the statement."""
        self._lo.value = lo
        self._hi.value = hi
        return self.statement


def _first_clause(exc: BaseException) -> str:
    """Extract the human summary of an engine error for error messages.

    ``INSERT INTO T aborted: DATE conversion failed: 'x' ...`` becomes
    ``DATE conversion failed`` — matching the Figure 6 message style.
    """
    text = str(exc)
    if "aborted: " in text:
        text = text.split("aborted: ", 1)[1]
    return text.split(":", 1)[0].strip()


class Beta:
    """Application-phase executor for one Hyper-Q node."""

    def __init__(self, engine: CdwEngine, config: HyperQConfig,
                 obs: Observability = NULL_OBS):
        self.engine = engine
        self.config = config
        self.obs = obs
        self.plans = PlanCache(
            capacity=config.plan_cache_size,
            on_hit=obs.plan_cache_hits.inc,
            on_miss=obs.plan_cache_misses.inc)

    # -- DML shaping ------------------------------------------------------------

    @staticmethod
    def _plan_key(sql: str, layout: Layout, staging_table: str) -> tuple:
        signature = tuple(
            (f.name, f.type.base, f.type.length, f.type.scale)
            for f in layout.fields)
        return (sql, staging_table, signature)

    def prepare_dml(self, sql: str, layout: Layout,
                    staging_table: str):
        """Cross compile the job DML into a range-parameterized builder.

        Returns ``(builder, statement_kind)`` where ``builder(lo, hi)``
        yields the CDW statement applying the DML to staging rows with
        ``__SEQ`` in ``[lo, hi]``.  The compiled :class:`PreparedDml` is
        cached: repeat calls for the same (sql, staging table, layout)
        rebind the existing template instead of re-running
        parse → bind → translate.
        """
        plan = self.plans.get_or_compile(
            self._plan_key(sql, layout, staging_table),
            lambda: self._compile_dml(sql, layout, staging_table))
        return plan.bind, plan.kind

    def _compile_dml(self, sql: str, layout: Layout,
                     staging_table: str) -> PreparedDml:
        statement = parse_statement(sql, dialect="legacy")
        statement = bind_params_to_columns(
            statement, layout.field_names, STAGING_ALIAS)
        statement = to_cdw(statement)

        lo = n.Literal(0)
        hi = n.Literal(0)
        pred = n.Between(
            n.ColumnRef(SEQ_COLUMN, table=STAGING_ALIAS), lo, hi)

        if isinstance(statement, n.Insert):
            if not isinstance(statement.source, n.Values) \
                    or len(statement.source.rows) != 1:
                raise SqlTranslationError(
                    "apply DML INSERT must carry one VALUES row of "
                    "host-variable expressions")
            select = n.Select(
                items=[n.SelectItem(e) for e in statement.source.rows[0]],
                from_=n.TableRef(staging_table, STAGING_ALIAS),
                where=pred)
            template = n.Insert(
                statement.table, list(statement.columns), select)
            return PreparedDml("insert", template, lo, hi)

        if isinstance(statement, n.Update):
            if statement.from_ is not None:
                raise SqlTranslationError(
                    "apply DML UPDATE cannot have its own FROM clause")
            where = pred if statement.where is None \
                else n.BinaryOp("AND", statement.where, pred)
            template = n.Update(
                statement.table, statement.assignments,
                n.TableRef(staging_table, STAGING_ALIAS), where)
            return PreparedDml("update", template, lo, hi)

        if isinstance(statement, n.Delete):
            if statement.using is not None:
                raise SqlTranslationError(
                    "apply DML DELETE cannot have its own USING clause")
            where = pred if statement.where is None \
                else n.BinaryOp("AND", statement.where, pred)
            template = n.Delete(
                statement.table,
                n.TableRef(staging_table, STAGING_ALIAS), where)
            return PreparedDml("delete", template, lo, hi)

        if isinstance(statement, n.Merge):
            source = n.Select(
                items=[
                    n.SelectItem(n.ColumnRef(f, table=STAGING_ALIAS), f)
                    for f in layout.field_names
                ],
                from_=n.TableRef(staging_table, STAGING_ALIAS),
                where=pred)
            template = n.Merge(
                statement.target, source, STAGING_ALIAS, statement.on,
                statement.matched, statement.not_matched)
            return PreparedDml("merge", template, lo, hi)

        raise SqlTranslationError(
            f"unsupported apply DML {type(statement).__name__}")

    # -- uniqueness emulation ------------------------------------------------------

    @property
    def _emulate_unique(self) -> bool:
        return (not self.engine.native_unique
                or self.config.force_unique_emulation)

    def _execute_with_emulation(self, statement: n.Statement,
                                target_name: str, kind: str):
        target = self.engine.table(target_name)
        if not (self._emulate_unique and target.unique_keys):
            return self.engine.execute(statement)
        # The check-and-rollback sequence below reads and rewrites
        # target.rows *around* the engine call, so it must hold the
        # table's write lock for the whole window; the inner execute()
        # re-acquires it reentrantly.
        with self.engine.locks.table_lock(target_name).write():
            if kind == "insert":
                # inserts only append — rollback is truncation.
                length_before = len(target.rows)
                result = self.engine.execute(statement)
                try:
                    target.check_unique(target.rows)
                except BulkExecutionError:
                    target.truncate_rows(length_before)
                    raise
                return result
            snapshot = list(target.rows)
            result = self.engine.execute(statement)
            try:
                target.check_unique(target.rows)
            except BulkExecutionError:
                target.rows = snapshot
                raise
            return result

    # -- error-table writes -----------------------------------------------------------

    def _insert_row(self, table_name: str, row: tuple) -> None:
        values = n.Values([[n.Literal(v) for v in row]])
        self.engine.execute(
            n.Insert(n.TableRef(table_name), [], values))

    def _record_et(self, et_table: str, rownum: int | None, code: int,
                   field: str | None, message: str,
                   rule_id: str | None = None,
                   reason: str | None = None) -> None:
        """One error-table row; ``rule_id``/``reason`` fill the shared
        ``__RULE_ID``/``__REASON`` provenance columns so split-routed
        and dq-routed rows land in one queryable schema."""
        self._insert_row(
            et_table,
            (rownum, code, field, message[:512], rule_id,
             reason[:256] if reason else None))

    # -- the application phase ------------------------------------------------------------

    def start_apply(self, *, sql: str, layout: Layout, staging_table: str,
                    target_table: str, et_table: str, uv_table: str,
                    max_errors: int | None = None,
                    max_retries: int | None = None,
                    span=NULL_SPAN, job_id: str = "") -> "ApplyRun":
        """Open an incremental application run for one load job.

        The two-phase path drives the returned :class:`ApplyRun` with a
        single whole-table :meth:`ApplyRun.apply_seq_range`; the
        eager-apply coordinator calls it once per durable contiguous
        ``__SEQ`` prefix extension while acquisition is still running.
        Both share one error budget and produce one merged summary.
        """
        return ApplyRun(
            self, sql=sql, layout=layout, staging_table=staging_table,
            target_table=target_table, et_table=et_table,
            uv_table=uv_table,
            max_errors=(max_errors if max_errors is not None
                        else self.config.max_errors),
            max_retries=(max_retries if max_retries is not None
                         else self.config.max_retries),
            span=span, job_id=job_id)

    def apply_dml(self, *, sql: str, layout: Layout, staging_table: str,
                  target_table: str, et_table: str, uv_table: str,
                  chunk_records: dict[int, int],
                  acquisition_errors: list[AcquisitionError],
                  max_errors: int | None = None,
                  max_retries: int | None = None,
                  span=NULL_SPAN, job_id: str = "") -> ApplySummary:
        """Run the application phase of a load job in one shot.

        ``span`` is the tracing parent (the job's ``apply`` span);
        adaptive-error-handler splits and skips are emitted as child
        events under it (and into the job's flight recorder when a
        ``job_id`` is given).
        """
        run = self.start_apply(
            sql=sql, layout=layout, staging_table=staging_table,
            target_table=target_table, et_table=et_table,
            uv_table=uv_table, max_errors=max_errors,
            max_retries=max_retries, span=span, job_id=job_id)
        run.arm_staging()
        run.update_chunks(chunk_records)
        run.record_acquisition_errors(acquisition_errors)
        run.apply_seq_range(None, None)
        return run.finish()

    def _rownum_mapper(self, chunk_records: dict[int, int]):
        stride = self.config.seq_stride
        starts: dict[int, int] = {}
        acc = 0
        for chunk in sorted(chunk_records):
            starts[chunk] = acc
            acc += chunk_records[chunk]

        def rownum(seq: int) -> int:
            chunk = seq // stride
            if chunk not in starts:
                raise GatewayError(
                    f"sequence {seq} belongs to unknown chunk {chunk}")
            return starts[chunk] + seq % stride + 1

        return rownum

    def _record_uv(self, uv_table: str, staging_table: str, builder,
                   kind: str, seq: int, rownum: int) -> None:
        """Record the converted violating tuple (Figure 5c-style)."""
        tuple_values: tuple = ()
        if kind in ("insert", "merge"):
            statement = builder(seq, seq)
            select = (statement.source if kind == "insert"
                      else statement.source)
            if isinstance(select, n.Select):
                rows = self.engine.query(select)
                if rows:
                    tuple_values = rows[0]
        uv = self.engine.table(uv_table)
        padded = list(tuple_values)[:uv.arity - 2]
        padded += [None] * (uv.arity - 2 - len(padded))
        self._insert_row(
            uv_table, tuple(padded) + (rownum, HYPERQ_UNIQUENESS_ERROR))


class ApplyRun:
    """Incremental application state for one load job.

    Owns the job-wide :class:`ApplyOutcome` (shared ``max_errors``
    budget), the prepared-DML builder, and the adaptive error handler;
    each :meth:`apply_seq_range` call extends the applied ``__SEQ``
    range.  Rownum mapping only depends on the record counts of earlier
    chunks, so applying a growing chunk-aligned prefix yields row
    numbers — and therefore ET/UV rows — identical to one whole-table
    pass.
    """

    def __init__(self, beta: Beta, *, sql: str, layout: Layout,
                 staging_table: str, target_table: str, et_table: str,
                 uv_table: str, max_errors: int, max_retries: int,
                 span=NULL_SPAN, job_id: str = ""):
        self.beta = beta
        self.job_id = job_id
        self.sql = sql
        self.layout = layout
        self.staging_table = staging_table
        self.target_table = target_table
        self.et_table = et_table
        self.uv_table = uv_table
        self.span = span
        self.summary = ApplySummary()
        self.outcome = ApplyOutcome()
        self._builder, self._kind = beta.prepare_dml(
            sql, layout, staging_table)
        self._rownum = beta._rownum_mapper({})
        self._recorded_acq: set[int] = set()
        self._handler = AdaptiveErrorHandler(
            execute_range=self._execute_range,
            record_tuple_error=self._record_tuple_error,
            record_range_error=self._record_range_error,
            max_errors=max_errors,
            max_retries=max_retries,
            observer=self._observe_split,
        )

    # -- handler callbacks --------------------------------------------------

    def _execute_range(self, lo: int, hi: int) -> tuple[int, int, int]:
        # Per-range cache lookup: every split/retry the adaptive
        # handler issues counts as a plan-cache hit, so the hit
        # rate mirrors how many parse+bind cycles were avoided.
        bind, _ = self.beta.prepare_dml(
            self.sql, self.layout, self.staging_table)
        statement = bind(lo, hi)
        result = self.beta._execute_with_emulation(
            statement, self.target_table, self._kind)
        return (result.rows_inserted, result.rows_updated,
                result.rows_deleted)

    def _record_tuple_error(self, seq: int,
                            exc: BulkExecutionError) -> None:
        rownum = self._rownum(seq)
        if exc.kind == "uniqueness":
            self.beta._record_uv(
                self.uv_table, self.staging_table, self._builder,
                self._kind, seq, rownum)
            self.summary.uv_errors += 1
            return
        self.beta._record_et(
            self.et_table, rownum, HYPERQ_CONVERSION_ERROR, exc.field,
            f"{_first_clause(exc)} during DML on {self.target_table}, "
            f"row number: {rownum}",
            rule_id="engine:conversion", reason=_first_clause(exc))
        self.summary.et_errors += 1

    def _record_range_error(self, lo: int, hi: int,
                            exc: BulkExecutionError, reason: str) -> None:
        what = ("Max number of errors reached" if reason == "max_errors"
                else "Max number of retries reached")
        self.beta._record_et(
            self.et_table, None, HYPERQ_MAX_ERRORS_REACHED, None,
            f"{what} during DML on {self.target_table}, row numbers: "
            f"({self._rownum(lo)}, {self._rownum(hi)})",
            rule_id=f"engine:{reason}", reason=what)
        self.summary.et_errors += 1

    def _observe_split(self, event: str, details: dict) -> None:
        obs = self.beta.obs
        obs.tracer.event(f"apply.{event}", parent=self.span,
                         target=self.target_table, **details)
        obs.flight.record(self.job_id, f"apply_{event}",
                          target=self.target_table, **details)
        if event == "split":
            obs.apply_splits.inc()
        elif event == "range_skip":
            obs.apply_errors.labels(kind="range").inc()

    # -- incremental driving ------------------------------------------------

    def arm_staging(self) -> None:
        """Sort the staging table by ``__SEQ`` and arm its zone map.

        Under the eager path this runs on the (empty) staging table
        right after creation; subsequent COPY INTO appends keep the
        order, so every later slice is a binary search.
        """
        engine = self.beta.engine
        staging = engine.table(self.staging_table)
        with engine.locks.table_lock(self.staging_table).write():
            staging.set_sorted(SEQ_COLUMN)

    def update_chunks(self, chunk_records: dict[int, int]) -> None:
        """Refresh the rownum mapper with every chunk known so far."""
        self._rownum = self.beta._rownum_mapper(chunk_records)

    def mark_acquisition_recorded(self, seqs) -> None:
        """Resume support: these seqs' acquisition errors are already in
        the error table from a previous incarnation of the job."""
        self._recorded_acq.update(seqs)

    def record_acquisition_errors(
            self, acquisition_errors: list[AcquisitionError]) -> None:
        """Write acquisition-time rejects to the error table (idempotent
        per seq — eager prefixes re-pass the growing list)."""
        fresh = [e for e in acquisition_errors
                 if e.seq not in self._recorded_acq]
        for error in sorted(fresh, key=lambda e: e.seq):
            rownum = self._rownum(error.seq)
            self.beta._record_et(
                self.et_table, rownum, error.code, error.field,
                f"{error.message} during acquisition for "
                f"{self.target_table}, row number: {rownum}",
                rule_id="acquisition", reason=error.message)
            self.summary.et_errors += 1
            self._recorded_acq.add(error.seq)

    def staged_seqs(self, lo_seq: int | None,
                    hi_seq: int | None) -> list[int]:
        """Sorted ``__SEQ`` values currently staged within a bound."""
        engine = self.beta.engine
        staging = engine.table(self.staging_table)
        with engine.locks.table_lock(self.staging_table).read():
            # Read the __SEQ column directly — no tuple materialization
            # when the staging table is columnar.
            if lo_seq is None and hi_seq is None:
                return sorted(
                    staging.column_values(SEQ_COLUMN, 0,
                                          staging.row_count))
            lo, hi = staging.seq_slice(
                lo_seq if lo_seq is not None else 0,
                hi_seq if hi_seq is not None else (1 << 62))
            return staging.column_values(SEQ_COLUMN, lo, hi)

    def apply_seq_range(self, lo_seq: int | None,
                        hi_seq: int | None) -> None:
        """Apply the DML to staged rows with ``__SEQ`` in the bound
        (None = open end), accumulating into the shared outcome."""
        seqs = self.staged_seqs(lo_seq, hi_seq)
        self._handler.apply(seqs, outcome=self.outcome)

    def finish(self) -> ApplySummary:
        """Close the run: fold the outcome into the summary, flush the
        observability counters, and return the merged summary."""
        summary = self.summary
        outcome = self.outcome
        summary.rows_inserted = outcome.rows_inserted
        summary.rows_updated = outcome.rows_updated
        summary.rows_deleted = outcome.rows_deleted
        summary.statements = outcome.statements
        summary.splits = outcome.splits
        obs = self.beta.obs
        obs.apply_statements.inc(outcome.statements)
        obs.apply_errors.labels(kind="et").inc(summary.et_errors)
        obs.apply_errors.labels(kind="uv").inc(summary.uv_errors)
        obs.rows_applied.labels(op="insert").inc(summary.rows_inserted)
        obs.rows_applied.labels(op="update").inc(summary.rows_updated)
        obs.rows_applied.labels(op="delete").inc(summary.rows_deleted)
        log.debug(
            "applied DML on %s: %d inserted, %d updated, %d deleted, "
            "%d ET errors, %d UV errors, %d statements, %d splits",
            self.target_table, summary.rows_inserted,
            summary.rows_updated, summary.rows_deleted,
            summary.et_errors, summary.uv_errors,
            summary.statements, summary.splits)
        return summary
