"""TDF — Tabular Data Format (Section 3).

"TDF is an internal binary data message representation designed to be an
extensible format that can handle arbitrarily large nested data."  Packets
carry a batch of rows; values are tag-prefixed so the format is
self-describing and nests arbitrarily (LIST/STRUCT).

Packet layout (little-endian)::

    4s   magic "TDF1"
    u32  chunk number
    u32  row count
    u16  column count
    per column: u16 name length + UTF-8 name
    per row:    one LIST value holding the column values

Value encoding: ``u8`` tag followed by the tag-specific payload.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from decimal import Decimal

from repro import values
from repro.errors import TdfError

__all__ = ["TdfPacket", "encode_packet", "decode_packet",
           "encode_value", "decode_value"]

_MAGIC = b"TDF1"

_T_NULL = 0
_T_BOOL = 1
_T_INT = 2
_T_FLOAT = 3
_T_STR = 4
_T_BYTES = 5
_T_DATE = 6
_T_TIMESTAMP = 7
_T_DECIMAL = 8
_T_LIST = 9
_T_STRUCT = 10

_EPOCH = values.Date(1970, 1, 1)


@dataclass
class TdfPacket:
    """One decoded TDF packet: a chunk of a result set."""

    chunk_no: int
    columns: list[str]
    rows: list[tuple]


def encode_value(value, out: bytearray) -> None:
    """Append one tagged value."""
    if value is None:
        out.append(_T_NULL)
    elif value is True or value is False:
        out.append(_T_BOOL)
        out.append(1 if value else 0)
    elif isinstance(value, int):
        out.append(_T_INT)
        out += struct.pack("<q", value)
    elif isinstance(value, float):
        out.append(_T_FLOAT)
        out += struct.pack("<d", value)
    elif isinstance(value, str):
        raw = value.encode("utf-8")
        out.append(_T_STR)
        out += struct.pack("<I", len(raw))
        out += raw
    elif isinstance(value, (bytes, bytearray)):
        out.append(_T_BYTES)
        out += struct.pack("<I", len(value))
        out += bytes(value)
    elif isinstance(value, values.Timestamp):
        # Component-wise encoding avoids timezone/epoch pitfalls.
        out.append(_T_TIMESTAMP)
        out += struct.pack(
            "<HBBBBBI", value.year, value.month, value.day,
            value.hour, value.minute, value.second, value.microsecond)
    elif isinstance(value, values.Date):
        out.append(_T_DATE)
        out += struct.pack("<i", (value - _EPOCH).days)
    elif isinstance(value, Decimal):
        raw = str(value).encode("ascii")
        out.append(_T_DECIMAL)
        out += struct.pack("<H", len(raw))
        out += raw
    elif isinstance(value, (list, tuple)):
        out.append(_T_LIST)
        out += struct.pack("<I", len(value))
        for item in value:
            encode_value(item, out)
    elif isinstance(value, dict):
        out.append(_T_STRUCT)
        out += struct.pack("<I", len(value))
        for key, item in value.items():
            raw = str(key).encode("utf-8")
            out += struct.pack("<H", len(raw))
            out += raw
            encode_value(item, out)
    else:
        raise TdfError(f"cannot TDF-encode {type(value).__name__}")


def decode_value(view: memoryview, pos: int) -> tuple[object, int]:
    """Decode one tagged value; returns (value, new position)."""
    try:
        tag = view[pos]
        pos += 1
        if tag == _T_NULL:
            return None, pos
        if tag == _T_BOOL:
            return bool(view[pos]), pos + 1
        if tag == _T_INT:
            (value,) = struct.unpack_from("<q", view, pos)
            return value, pos + 8
        if tag == _T_FLOAT:
            (value,) = struct.unpack_from("<d", view, pos)
            return value, pos + 8
        if tag in (_T_STR, _T_BYTES):
            (length,) = struct.unpack_from("<I", view, pos)
            raw = bytes(view[pos + 4:pos + 4 + length])
            if len(raw) != length:
                raise TdfError("truncated string payload")
            pos += 4 + length
            return (raw.decode("utf-8") if tag == _T_STR else raw), pos
        if tag == _T_DATE:
            (days,) = struct.unpack_from("<i", view, pos)
            return _EPOCH + __import__("datetime").timedelta(days=days), \
                pos + 4
        if tag == _T_TIMESTAMP:
            year, month, day, hour, minute, second, micro = \
                struct.unpack_from("<HBBBBBI", view, pos)
            return values.Timestamp(
                year, month, day, hour, minute, second, micro), pos + 11
        if tag == _T_DECIMAL:
            (length,) = struct.unpack_from("<H", view, pos)
            raw = bytes(view[pos + 2:pos + 2 + length])
            return Decimal(raw.decode("ascii")), pos + 2 + length
        if tag == _T_LIST:
            (count,) = struct.unpack_from("<I", view, pos)
            pos += 4
            items = []
            for _ in range(count):
                item, pos = decode_value(view, pos)
                items.append(item)
            return items, pos
        if tag == _T_STRUCT:
            (count,) = struct.unpack_from("<I", view, pos)
            pos += 4
            struct_value: dict = {}
            for _ in range(count):
                (name_len,) = struct.unpack_from("<H", view, pos)
                name = bytes(view[pos + 2:pos + 2 + name_len]).decode()
                pos += 2 + name_len
                item, pos = decode_value(view, pos)
                struct_value[name] = item
            return struct_value, pos
    except (struct.error, IndexError) as exc:
        raise TdfError(f"truncated TDF value: {exc}") from exc
    raise TdfError(f"unknown TDF tag {tag}")


def encode_packet(chunk_no: int, columns: list[str],
                  rows: list[tuple]) -> bytes:
    """Encode one result chunk as a TDF packet."""
    out = bytearray(_MAGIC)
    out += struct.pack("<IIH", chunk_no, len(rows), len(columns))
    for name in columns:
        raw = name.encode("utf-8")
        out += struct.pack("<H", len(raw))
        out += raw
    for row in rows:
        encode_value(list(row), out)
    return bytes(out)


def decode_packet(data: bytes) -> TdfPacket:
    """Decode a TDF packet back into rows (the PXC's "unwrap" step)."""
    view = memoryview(data)
    if bytes(view[:4]) != _MAGIC:
        raise TdfError("bad TDF magic")
    try:
        chunk_no, row_count, col_count = struct.unpack_from("<IIH", view, 4)
    except struct.error as exc:
        raise TdfError("truncated TDF header") from exc
    pos = 4 + 10
    columns: list[str] = []
    for _ in range(col_count):
        try:
            (name_len,) = struct.unpack_from("<H", view, pos)
        except struct.error as exc:
            raise TdfError("truncated TDF column header") from exc
        columns.append(bytes(view[pos + 2:pos + 2 + name_len]).decode())
        pos += 2 + name_len
    rows: list[tuple] = []
    for _ in range(row_count):
        value, pos = decode_value(view, pos)
        if not isinstance(value, list):
            raise TdfError("TDF row is not a LIST value")
        rows.append(tuple(value))
    if pos != len(view):
        raise TdfError(f"{len(view) - pos} trailing bytes in TDF packet")
    return TdfPacket(chunk_no, columns, rows)
