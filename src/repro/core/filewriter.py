"""FileWriter: serialize converted chunks into local staging files.

Section 3/5: the FileWriter receives converted chunks from parallel
sessions and serializes them into disk files; "the maximum size of the
serialized file is chosen to maximize the load performance into the CDW";
finalized files are handed to the upload stage.  Several FileWriters can
run concurrently, each building its own sequence of files.

Per Figure 4 the credit travelling with a chunk is returned to the pool
*just before the data is written to disk* — that hand-off happens in the
pipeline right before calling :meth:`FileWriter.append`.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

from repro.obs import NULL_OBS, Observability, get_logger

__all__ = ["StagedFile", "FileWriter"]

log = get_logger("filewriter")


@dataclass(frozen=True)
class StagedFile:
    """A finalized local staging file ready for upload.

    ``chunks`` is the file's chunk manifest — one entry per client chunk
    whose converted bytes the file contains (``{"seq", "records",
    "errors"}``) — recorded in the job's
    :class:`~repro.resilience.checkpoint.CheckpointJournal` so a
    restarted job knows which chunks are already durable.
    """

    path: str
    size: int
    records: int
    chunks: tuple = ()

    @property
    def name(self) -> str:
        """The file's journal/blob key (its basename)."""
        return os.path.basename(self.path)


class FileWriter:
    """Accumulates CSV bytes and cuts files at the size threshold.

    Not thread-safe by itself: the pipeline gives each FileWriter its own
    worker thread and queue, which also "prevents fluctuations in I/O
    performance from stalling the DataConverter workers".
    """

    def __init__(self, directory: str, writer_no: int,
                 threshold_bytes: int,
                 obs: Observability = NULL_OBS,
                 start_file_no: int = 0):
        self.directory = directory
        self.writer_no = writer_no
        self.threshold_bytes = threshold_bytes
        self.obs = obs
        self._buffer = bytearray()
        self._buffered_records = 0
        self._buffered_chunks: list[dict] = []
        #: resumed jobs continue numbering so new files never collide
        #: with (and overwrite) journaled durable ones.
        self._file_no = start_file_no
        self.files_written = 0
        self.bytes_written = 0

    def append(self, csv_bytes: bytes, records: int,
               chunk: dict | None = None) -> StagedFile | None:
        """Buffer one converted chunk; returns a file when one fills up.

        ``chunk`` is the manifest entry describing the buffered chunk
        (seq, record count, acquisition errors) — carried onto the
        finalized :class:`StagedFile` for checkpoint journaling.
        """
        self._buffer += csv_bytes
        self._buffered_records += records
        if chunk is not None:
            self._buffered_chunks.append(chunk)
        if len(self._buffer) >= self.threshold_bytes:
            return self._finalize()
        return None

    def flush(self) -> StagedFile | None:
        """Finalize whatever is buffered (end of acquisition).

        A buffer of zero bytes still finalizes when chunk manifests are
        pending: a chunk whose records were all rejected contributes no
        CSV, but its manifest entry must reach the checkpoint journal
        (and the eager-apply coordinator's durable-chunk tracking) all
        the same.
        """
        if not self._buffer and not self._buffered_chunks:
            return None
        return self._finalize()

    def _finalize(self) -> StagedFile:
        name = f"part-{self.writer_no:02d}-{self._file_no:05d}.csv"
        path = os.path.join(self.directory, name)
        with open(path, "wb") as handle:
            handle.write(self._buffer)
        staged = StagedFile(
            path=path, size=len(self._buffer),
            records=self._buffered_records,
            chunks=tuple(self._buffered_chunks))
        self.files_written += 1
        self.bytes_written += len(self._buffer)
        self.obs.files_written.inc()
        self.obs.staged_file_bytes.observe(staged.size)
        log.debug("finalized staging file %s (%d bytes, %d records)",
                  name, staged.size, staged.records)
        self._file_no += 1
        self._buffer = bytearray()
        self._buffered_records = 0
        self._buffered_chunks = []
        return staged
