"""Adaptive error handling (Section 7, Figure 6).

Modern CDW DML is set-oriented: one bad tuple aborts the whole statement
and the error is only observable at chunk granularity.  To recover the
legacy per-tuple error semantics, Hyper-Q "recursively repeat[s] the
application step on smaller data chunks": a failing chunk is split in two
and each half retried, down to individual tuples, which are then recorded
in the appropriate error table.

Two control parameters bound the work:

- ``max_errors`` — the maximum number of *individual* errors to record
  before the retry logic is aborted; once exhausted, a failing chunk is
  recorded as a row-number *range* (code 9057) and skipped without
  further splitting (Figure 6's last row);
- ``max_retries`` — the maximum number of times any input chunk is split;
  a chunk failing at that depth is likewise recorded as a range.

The handler is deliberately independent of SQL: it works on a sorted list
of staging sequence numbers and calls back into Beta to execute ranges
and record errors — which keeps it unit-testable with a scripted fake
executor.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.errors import BulkExecutionError
from repro.obs import get_logger

__all__ = ["ApplyOutcome", "AdaptiveErrorHandler"]

log = get_logger("errorhandler")


@dataclass
class ApplyOutcome:
    """Aggregated result of applying the DML with adaptive splitting."""

    rows_inserted: int = 0
    rows_updated: int = 0
    rows_deleted: int = 0
    tuple_errors: int = 0
    range_errors: int = 0
    #: number of DML executions attempted (successful or not).
    statements: int = 0
    #: number of chunk splits performed.
    splits: int = 0
    budget_exhausted: bool = False

    @property
    def total_errors(self) -> int:
        return self.tuple_errors + self.range_errors


#: executes the DML over staging rows with seq in [lo, hi]; returns
#: (inserted, updated, deleted); raises BulkExecutionError on failure.
RangeExecutor = Callable[[int, int], tuple[int, int, int]]
#: records one bad tuple (seq, error).
TupleErrorSink = Callable[[int, BulkExecutionError], None]
#: records a skipped range (lo seq, hi seq, error, reason).
RangeErrorSink = Callable[[int, int, BulkExecutionError, str], None]
#: observability hook ``(event, details)`` with events ``"split"``,
#: ``"tuple_error"``, and ``"range_skip"`` — keeps the handler free of
#: any tracing dependency while letting Beta emit structured events.
SplitObserver = Callable[[str, dict], None]


@dataclass
class AdaptiveErrorHandler:
    execute_range: RangeExecutor
    record_tuple_error: TupleErrorSink
    record_range_error: RangeErrorSink
    max_errors: int = 1000
    max_retries: int = 64
    observer: SplitObserver | None = None

    def _observe(self, event: str, **details) -> None:
        if self.observer is not None:
            self.observer(event, details)

    def apply(self, seqs: list[int],
              outcome: ApplyOutcome | None = None) -> ApplyOutcome:
        """Apply the DML over all of ``seqs`` (sorted staging sequence
        numbers), splitting adaptively on failure.

        Pass ``outcome`` to continue accumulating into a prior call's
        result — the eager-apply path invokes the handler once per
        durable ``__SEQ`` prefix extension and must share one
        ``max_errors`` budget (and one set of counters) across the whole
        job, exactly as a single two-phase call would.
        """
        if outcome is None:
            outcome = ApplyOutcome()
        if not seqs:
            return outcome
        # Explicit stack, pushed right-half first so processing stays in
        # input-file order — required so that, e.g., the first occurrence
        # of a duplicate key wins exactly as on the legacy system.
        stack: list[tuple[int, int, int]] = [(0, len(seqs) - 1, 0)]
        while stack:
            lo, hi, depth = stack.pop()
            outcome.statements += 1
            try:
                inserted, updated, deleted = self.execute_range(
                    seqs[lo], seqs[hi])
            except BulkExecutionError as exc:
                self._handle_failure(outcome, stack, seqs, lo, hi,
                                     depth, exc)
                continue
            outcome.rows_inserted += inserted
            outcome.rows_updated += updated
            outcome.rows_deleted += deleted
        return outcome

    def _handle_failure(self, outcome: ApplyOutcome,
                        stack: list[tuple[int, int, int]],
                        seqs: list[int], lo: int, hi: int, depth: int,
                        exc: BulkExecutionError) -> None:
        if lo == hi:
            self.record_tuple_error(seqs[lo], exc)
            outcome.tuple_errors += 1
            self._observe("tuple_error", seq=seqs[lo],
                          kind=getattr(exc, "kind", None))
            if outcome.tuple_errors >= self.max_errors:
                outcome.budget_exhausted = True
                log.debug("error budget exhausted after %d tuple errors",
                          outcome.tuple_errors)
            return
        if outcome.budget_exhausted:
            self.record_range_error(seqs[lo], seqs[hi], exc, "max_errors")
            outcome.range_errors += 1
            self._observe("range_skip", lo=seqs[lo], hi=seqs[hi],
                          reason="max_errors")
            return
        if depth >= self.max_retries:
            self.record_range_error(seqs[lo], seqs[hi], exc, "max_retries")
            outcome.range_errors += 1
            self._observe("range_skip", lo=seqs[lo], hi=seqs[hi],
                          reason="max_retries")
            return
        mid = (lo + hi) // 2
        outcome.splits += 1
        self._observe("split", lo=seqs[lo], hi=seqs[hi], depth=depth)
        stack.append((mid + 1, hi, depth + 1))
        stack.append((lo, mid, depth + 1))
