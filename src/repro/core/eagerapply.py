"""Eager apply: pipeline the application phase into acquisition.

The two-phase load of Sections 4-7 runs acquisition to completion, then
COPYs every staged blob, then applies the DML — even though a staged
file is ready for the CDW the moment its upload is durable.  This module
is the pipelined alternative (``HyperQConfig.eager_apply``): a
per-job :class:`EagerApplyCoordinator` listens for durable staged files,
COPYs each blob into the staging table as it lands, and applies the
job's DML over every *chunk-aligned contiguous* ``__SEQ`` prefix that
becomes fully copied — while later chunks are still converting,
uploading, or in flight from the client.

Correctness rests on two invariants:

* **Prefix order.**  DML is only ever applied to the contiguous durable
  prefix of chunk sequence numbers, in ``__SEQ`` order — the same order
  one whole-table pass would use, so the legacy tuple-at-a-time
  semantics (first duplicate wins, later rows see earlier effects) are
  preserved exactly.  Files may *copy* out of order; application never
  does.
* **Shared budget.**  Every prefix extension feeds the same
  :class:`~repro.core.beta.ApplyRun` — one ``max_errors`` budget, one
  merged summary, and row numbers that only depend on the record counts
  of earlier chunks, which the prefix always has.

The client's APPLY message becomes a drain barrier: the gateway drains
the acquisition pipeline (with the prefix-wide COPY suppressed — the
coordinator owns every copy), then :meth:`EagerApplyCoordinator.finish`
waits for the copier and applier workers to run dry and returns the
merged :class:`~repro.core.beta.ApplySummary`.

Restart: each copied blob is journaled (``eager_copy``) and each prefix
advance is journaled (``eager_apply``), so a resumed job re-copies and
re-applies nothing that is already durable.  Acquisition-error rows for
ranges applied right at a crash boundary are at-least-once (the journal
records the advance after the ET writes).  Do not flip ``eager_apply``
across a resume of the same job: the two modes journal different copy
records.
"""

from __future__ import annotations

import threading
import time

from repro.cdw.cloudstore import CloudStore
from repro.core.beta import ApplyRun
from repro.core.filewriter import StagedFile
from repro.errors import GatewayError
from repro.faults import NULL_INJECTOR, FaultInjector
from repro.obs import NULL_OBS, NULL_SPAN, Observability, get_logger

__all__ = ["DurableFileRelay", "EagerApplyCoordinator"]

log = get_logger("eagerapply")


class DurableFileRelay:
    """Buffering forwarder breaking the pipeline↔coordinator cycle.

    The pipeline needs its durable-file hook at construction (a resumed
    pipeline starts re-uploading journaled files inside ``__init__``),
    but the coordinator needs the constructed pipeline.  The relay goes
    into the pipeline first and buffers callbacks until
    :meth:`attach` hands them (and everything thereafter) to the
    coordinator.
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._target = None
        self._buffered: list[StagedFile] = []

    def __call__(self, staged: StagedFile) -> None:
        with self._lock:
            if self._target is None:
                self._buffered.append(staged)
                return
            target = self._target
        target(staged)

    def attach(self, target) -> None:
        """Set the forward target and replay everything buffered so far."""
        with self._lock:
            self._target = target
            buffered, self._buffered = self._buffered, []
        for staged in buffered:
            target(staged)


class EagerApplyCoordinator:
    """Per-job copier + applier workers overlapping apply with load."""

    def __init__(self, *, run: ApplyRun, pipeline, loader, engine,
                 config, container: str, prefix: str, staging_table: str,
                 metrics, obs: Observability = NULL_OBS,
                 job_span=NULL_SPAN, journal=None,
                 faults: FaultInjector = NULL_INJECTOR,
                 retry=None, breakers=None, job_id: str = "",
                 dq=None):
        self.run = run
        self.pipeline = pipeline
        self.loader = loader
        self.engine = engine
        self.config = config
        self.container = container
        self.prefix = prefix
        self.staging_table = staging_table
        self.metrics = metrics
        self.obs = obs
        self.job_span = job_span
        self.journal = journal
        self.faults = faults
        self.retry = retry
        self.breakers = breakers
        self.job_id = job_id
        #: optional :class:`repro.dq.DqPrechecker` — when set, every
        #: prefix is dq-prechecked (violators routed out of staging)
        #: before its ranged DML runs.
        self.dq = dq

        self._cond = threading.Condition()
        self._copy_queue: list[StagedFile] = []
        self._chunks_copied: set[int] = set()
        #: chunks [0, _applied_below) are applied (the watermark).
        self._applied_below = 0
        self._finishing = False
        self._copier_done = False
        self._failures: list[BaseException] = []
        #: perf_counter of the first eager range application (None until
        #: one runs) — basis of the job's apply/acquisition overlap.
        self.first_apply_at: float | None = None
        #: eager work counters (stats/bench surfaces).
        self.blobs_copied = 0
        self.ranges_applied = 0

        self._seed_from_journal()
        self.run.arm_staging()
        self._threads = [
            threading.Thread(target=self._copier, daemon=True,
                             name=f"hyperq-job-{job_id}-eager-copier"),
            threading.Thread(target=self._applier, daemon=True,
                             name=f"hyperq-job-{job_id}-eager-applier"),
        ]
        for thread in self._threads:
            thread.start()

    # -- resume ------------------------------------------------------------

    def _seed_from_journal(self) -> None:
        """Replay eager progress from a resumed job's journal."""
        journal = self.journal
        if journal is None:
            return
        self._applied_below = journal.eager_applied_below or 0
        stride = self.config.seq_stride
        self.run.mark_acquisition_recorded(
            e.seq for e in self.pipeline.acquisition_errors
            if e.seq < self._applied_below * stride)
        for rec in journal.durable_files():
            blob = self.loader.blob_name(self.prefix, rec["file"])
            chunks = [c["seq"] for c in rec.get("chunks", ())]
            if blob in journal.eager_copied \
                    or journal.copy_rows is not None:
                # Already in the staging table — just mark it.
                self._chunks_copied.update(chunks)
            else:
                # Durable in the store but never copied; the resumed
                # pipeline will not re-upload it, so re-enqueue the copy
                # here (the copier needs only the name and manifest).
                self._copy_queue.append(StagedFile(
                    path=rec.get("path", rec["file"]),
                    size=rec.get("size", 0),
                    records=rec.get("records", 0),
                    chunks=tuple(rec.get("chunks", ()))))

    # -- pipeline callback -------------------------------------------------

    def file_durable(self, staged: StagedFile) -> None:
        """Uploader hook: queue one durable staged file for COPY."""
        with self._cond:
            self._copy_queue.append(staged)
            self._cond.notify_all()

    def _fail(self, exc: BaseException) -> None:
        with self._cond:
            self._failures.append(exc)
            self._cond.notify_all()

    # -- copier worker -----------------------------------------------------

    def _copier(self) -> None:
        while True:
            with self._cond:
                while not self._copy_queue and not self._finishing \
                        and not self._failures:
                    self._cond.wait()
                if self._failures or (self._finishing
                                      and not self._copy_queue):
                    self._copier_done = True
                    self._cond.notify_all()
                    return
                staged = self._copy_queue.pop(0)
            try:
                self._copy_one(staged)
            except BaseException as exc:
                self._fail(exc)
                with self._cond:
                    self._copier_done = True
                    self._cond.notify_all()
                return

    def _copy_one(self, staged: StagedFile) -> None:
        blob = self.loader.blob_name(self.prefix, staged.name)
        chunks = [c["seq"] for c in staged.chunks]
        already = (self.journal is not None
                   and blob in self.journal.eager_copied)
        if not already and staged.size > 0:
            # An exact blob name works as its own COPY prefix: the store
            # lists exactly that blob.
            url = CloudStore.make_url(self.container, blob)
            statement = (
                f"COPY INTO {self.staging_table} FROM '{url}' "
                f"FORMAT csv DELIMITER '{self.config.csv_delimiter}'")
            with self.obs.tracer.span(
                    "eager.copy", parent=self.job_span, blob=blob,
                    staging_table=self.staging_table) as span, \
                    self.obs.stage_seconds.labels(stage="copy").time():
                result = self._execute_copy(statement, span)
                span.set_attribute("rows", result.rows_inserted)
            if self.journal is not None:
                self.journal.record_eager_copy(blob, result.rows_inserted)
            self.metrics.copy_rows += result.rows_inserted
            self.obs.copy_rows.inc(result.rows_inserted)
            self.blobs_copied += 1
            self.obs.flight.record(
                self.job_id, "eager_copy", blob=blob,
                rows=result.rows_inserted)
        with self._cond:
            self._chunks_copied.update(chunks)
            self._cond.notify_all()

    def _execute_copy(self, statement: str, copy_span):
        """Per-blob COPY under the ``copy.into`` fault + retry/breaker
        (same guard stack as the two-phase pipeline drain)."""

        def attempt():
            self.faults.fire("copy.into",
                             staging_table=self.staging_table)
            return self.engine.execute(statement)

        op = attempt
        if self.breakers is not None:
            breaker = self.breakers.get("copy.into")
            op = lambda: breaker.call(attempt)  # noqa: E731
        if self.retry is not None:
            return self.retry.call(op, target="copy.into", obs=self.obs,
                                   parent=copy_span, job_id=self.job_id)
        return op()

    # -- applier worker ----------------------------------------------------

    def _next_prefix(self) -> int:
        """Largest k ≥ watermark with chunks [watermark, k) all copied."""
        k = self._applied_below
        while k in self._chunks_copied:
            k += 1
        return k

    def _applier(self) -> None:
        while True:
            with self._cond:
                while True:
                    if self._failures:
                        return
                    k = self._next_prefix()
                    if k > self._applied_below:
                        break
                    if self._finishing and self._copier_done \
                            and not self._copy_queue:
                        return
                    self._cond.wait()
            try:
                self._apply_prefix(k)
            except BaseException as exc:
                self._fail(exc)
                return
            with self._cond:
                self._applied_below = k
                self._cond.notify_all()

    def _apply_prefix(self, k: int) -> None:
        """Apply chunks [watermark, k): acquisition errors + ranged DML."""
        stride = self.config.seq_stride
        lo_chunk = self._applied_below
        lo_seq = lo_chunk * stride
        hi_seq = k * stride - 1
        run = self.run
        run.update_chunks(dict(self.pipeline.chunk_records))
        run.record_acquisition_errors([
            e for e in list(self.pipeline.acquisition_errors)
            if e.seq <= hi_seq])
        if self.dq is not None:
            self.dq.update_chunks(dict(self.pipeline.chunk_records))
            self.dq.check_range(lo_seq, hi_seq,
                                parent_span=self.job_span)
        if self.first_apply_at is None:
            self.first_apply_at = time.perf_counter()
        with self.obs.tracer.span(
                "eager.apply_range", parent=self.job_span,
                lo_chunk=lo_chunk, hi_chunk=k - 1) as span, \
                self.obs.stage_seconds.labels(stage="apply").time():
            self._apply_guarded(lo_seq, hi_seq, span)
        self.ranges_applied += 1
        self.obs.flight.record(
            self.job_id, "eager_apply_range", lo_chunk=lo_chunk,
            hi_chunk=k - 1)
        if self.journal is not None:
            self.journal.record_eager_apply(k)
        log.debug("eagerly applied chunks [%d, %d)", lo_chunk, k)

    def _apply_guarded(self, lo_seq: int, hi_seq: int, span) -> None:
        """One ranged apply under the ``dml.apply`` fault + retry/breaker.

        The fault fires *before* any DML of the batch is dispatched, so
        an absorbed transient fault never retries a partially applied
        range.
        """

        def attempt():
            self.faults.fire("dml.apply", job_id=self.job_id)
            self.run.apply_seq_range(lo_seq, hi_seq)

        op = attempt
        if self.breakers is not None:
            breaker = self.breakers.get("dml.apply")
            op = lambda: breaker.call(attempt)  # noqa: E731
        if self.retry is not None:
            self.retry.call(op, target="dml.apply", obs=self.obs,
                            parent=span, job_id=self.job_id)
            return
        op()

    def shutdown(self) -> None:
        """Abandon the workers (job aborted/abandoned): wake both so
        they exit; idempotent, never blocks."""
        with self._cond:
            self._finishing = True
            self._failures.append(
                GatewayError("eager-apply coordinator shut down"))
            self._cond.notify_all()

    def join(self, timeout_s: float = 30.0) -> None:
        """Wait for both workers to exit after :meth:`shutdown`.

        A restarted job must not seed its journal watermark while a
        stale applier can still finish an in-flight range and journal
        past it — that would double-apply the overlap.  An in-flight
        range is bounded work, so the workers exit promptly once woken.
        """
        deadline = time.monotonic() + timeout_s
        for thread in self._threads:
            thread.join(timeout=max(deadline - time.monotonic(), 0.0))

    # -- barrier -----------------------------------------------------------

    def finish(self, timeout_s: float = 300.0):
        """The APPLY barrier: drain both workers, merge the summary.

        The caller must have drained the acquisition pipeline first
        (``drain(copy=False)``), so every staged file has already passed
        through :meth:`_file_durable`.
        """
        with self._cond:
            self._finishing = True
            self._cond.notify_all()
        deadline = time.monotonic() + timeout_s
        for thread in self._threads:
            thread.join(timeout=max(deadline - time.monotonic(), 0.1))
            if thread.is_alive():
                raise GatewayError(
                    "eager-apply coordinator drain timed out")
        if self._failures:
            raise self._failures[0]
        # Final catch-all under the same run: any acquisition errors in
        # trailing never-staged chunks, plus any staged rows past the
        # watermark (none in a clean run — every chunk is copied by now
        # and the applier advanced over all of them).
        run = self.run
        run.update_chunks(dict(self.pipeline.chunk_records))
        run.record_acquisition_errors(
            list(self.pipeline.acquisition_errors))
        tail_lo = self._applied_below * self.config.seq_stride
        if run.staged_seqs(tail_lo, None):
            self._apply_prefix(1 + max(
                self.pipeline.chunk_records, default=0))
        return run.finish()
