"""The CreditManager: lightweight back-pressure (Section 5, Figure 4).

When a session is about to pass a data chunk along for conversion it first
requests a credit; the credit travels with the chunk through the
DataConverter to the FileWriter, which returns it to the pool just before
the data is written to disk.  An empty pool blocks the requesting session —
slowing data acquisition only when the downstream stages fall behind.

One CreditManager is spawned per Hyper-Q node and shared by all concurrent
ETL jobs on the node.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass

from repro.errors import BackPressureTimeout, GatewayError
from repro.obs import NULL_OBS, Observability, get_logger

__all__ = ["Credit", "CreditManager"]

log = get_logger("credits")


@dataclass(frozen=True)
class Credit:
    """A single credit token; carried along the pipeline with its chunk."""

    serial: int


class CreditManager:
    """A counting pool of credit tokens with wait accounting.

    The implementation deliberately tracks individual tokens (not just a
    counter) so tests can assert *conservation*: at any quiescent moment,
    pool size == credits available + credits in flight.
    """

    def __init__(self, pool_size: int,
                 timeout_s: float | None = 30.0,
                 obs: Observability = NULL_OBS):
        if pool_size < 1:
            raise GatewayError("credit pool cannot be empty")
        self.pool_size = pool_size
        self.timeout_s = timeout_s
        self.obs = obs
        self._available: list[Credit] = [
            Credit(i) for i in range(pool_size)]
        self._outstanding: set[int] = set()
        self._lock = threading.Lock()
        self._ready = threading.Condition(self._lock)
        # -- statistics --
        self.acquires = 0
        self.blocked_acquires = 0
        self.total_wait_s = 0.0
        self.min_available = pool_size
        obs.credits_available.set(pool_size)

    # -- token operations -----------------------------------------------------

    def acquire(self) -> Credit:
        """Take a credit, blocking while the pool is empty."""
        deadline = (time.monotonic() + self.timeout_s
                    if self.timeout_s is not None else None)
        waited = 0.0
        with self._ready:
            self.acquires += 1
            blocked = not self._available
            if blocked:
                self.blocked_acquires += 1
            start = time.monotonic()
            while not self._available:
                remaining = None
                if deadline is not None:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        log.warning(
                            "credit acquisition timed out",
                            extra={"pool_size": self.pool_size,
                                   "timeout_s": self.timeout_s})
                        raise BackPressureTimeout(
                            f"no credit within {self.timeout_s}s "
                            f"(pool={self.pool_size}, all in flight)")
                self._ready.wait(timeout=remaining)
            if blocked:
                waited = time.monotonic() - start
                self.total_wait_s += waited
            credit = self._available.pop()
            self._outstanding.add(credit.serial)
            self.min_available = min(self.min_available,
                                     len(self._available))
            self.obs.credit_acquires.labels(
                blocked="yes" if blocked else "no").inc()
            if blocked:
                self.obs.credit_wait_seconds.observe(waited)
            self.obs.credits_available.set(len(self._available))
            return credit

    def release(self, credit: Credit) -> None:
        """Return a credit to the pool (FileWriter does this, Figure 4)."""
        with self._ready:
            if credit.serial not in self._outstanding:
                raise GatewayError(
                    f"credit {credit.serial} returned but was not "
                    "outstanding (double release?)")
            self._outstanding.remove(credit.serial)
            self._available.append(credit)
            self.obs.credits_available.set(len(self._available))
            self._ready.notify()

    # -- introspection ------------------------------------------------------------

    @property
    def available(self) -> int:
        with self._lock:
            return len(self._available)

    @property
    def in_flight(self) -> int:
        with self._lock:
            return len(self._outstanding)

    def check_conservation(self) -> None:
        """Assert no credit was lost or duplicated (test hook)."""
        with self._lock:
            total = len(self._available) + len(self._outstanding)
            if total != self.pool_size:
                raise GatewayError(
                    f"credit conservation violated: {len(self._available)} "
                    f"available + {len(self._outstanding)} in flight != "
                    f"{self.pool_size}")
