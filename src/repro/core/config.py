"""Tuning knobs of a Hyper-Q node.

Section 6: "Hyper-Q exposes these different tuning parameters that the
customers can configure according to different ETL job requirements" —
intermediate file size, compression, parallelism, and the credit pool.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["HyperQConfig"]


@dataclass
class HyperQConfig:
    """Configuration for one Hyper-Q node."""

    #: number of DataConverter worker threads.
    converters: int = 4
    #: number of FileWriter workers (parallel staging files).
    filewriters: int = 2
    #: size of the CreditManager pool shared by all jobs on the node.
    credits: int = 16
    #: how long a session blocks waiting for a credit before the job fails.
    credit_timeout_s: float | None = 30.0
    #: finalize a staging file once it reaches this many bytes.
    file_threshold_bytes: int = 4 * 1024 * 1024
    #: gzip-compress staging files before upload (None or "gzip").
    compression: str | None = None
    #: cloud store container staging files are uploaded into.
    container: str = "hyperq-staging"
    #: delimiter of the CSV staging files.
    csv_delimiter: str = ","
    #: stride between per-chunk sequence-number blocks; must exceed the
    #: number of records any single client chunk can contain.
    seq_stride: int = 1 << 20
    #: default adaptive-error-handling limits (overridable per job).
    max_errors: int = 1000
    max_retries: int = 64
    #: rows per TDF packet on the export path.
    export_chunk_rows: int = 1000
    #: how many TDF packets the TDFCursor buffers ahead of the client.
    prefetch_packets: int = 4
    #: emulate uniqueness checks even if the CDW enforces them natively
    #: (normally derived from the engine's capability; True forces it).
    force_unique_emulation: bool = False
    #: use the layout-compiled row codecs (repro.legacy.codec) for the
    #: job's record format; False falls back to the reference
    #: interpreters (kept as the behavioural oracle and A/B baseline).
    compiled_codecs: bool = True
    #: entries in Beta's prepared-DML plan cache (LRU; one entry per
    #: distinct (DML text, staging table, layout) shape).
    plan_cache_size: int = 128
    #: overlap the application phase with acquisition: COPY INTO + DML
    #: run on durable contiguous ``__SEQ`` prefixes as staged files
    #: land, and the client's APPLY becomes a drain barrier.  Requires
    #: the client to send its apply DML in BEGIN_LOAD metadata (the
    #: bundled client always does); jobs without it fall back to the
    #: two-phase path.
    eager_apply: bool = False
    #: binary-search ``__SEQ BETWEEN`` ranges over the staging table's
    #: sorted zone map instead of scanning every row per range; False
    #: keeps the full-scan path (A/B baseline).
    zone_map_pruning: bool = True
    #: store CDW tables as typed column vectors and evaluate scans /
    #: aggregates / bulk DML over column batches; False keeps the
    #: row-of-tuples storage and the per-row interpreter (the
    #: differential-testing and A/B baseline).
    columnar: bool = True
    #: worker threads for BulkLoader.upload_directory.
    upload_workers: int = 4
    #: acknowledge a chunk only after it is written to disk — the
    #: *rejected* synchronous design of Section 5, kept for the ablation
    #: benchmark.  Default (False) is the paper's immediate-ack pipeline.
    synchronous_ack: bool = False
    #: maintain the node-level metrics registry (counters/histograms
    #: behind ``HyperQNode.stats()``); near-zero cost, but can be turned
    #: off for pure-throughput benchmarking.
    metrics_enabled: bool = True
    #: emit a span per chunk/file/DML unit into the trace ring buffer.
    trace_enabled: bool = False
    #: capacity of the trace ring buffer (oldest spans dropped first).
    trace_buffer_events: int = 4096
    #: fraction of locally-rooted traces kept (1.0 = trace everything);
    #: traces continued from a client's traceparent are always kept.
    trace_sample_rate: float = 1.0
    #: when set, spill every closed span to bounded JSONL segments in
    #: this directory (queryable via ``repro trace --query``).
    trace_store_dir: str | None = None
    #: spans per trace-store segment file before rotation.
    trace_store_segment_spans: int = 2048
    #: trace-store segments retained (oldest pruned first).
    trace_store_max_segments: int = 8
    #: when set ("DEBUG"/"INFO"/...), configure structured logging for
    #: the whole ``repro.*`` hierarchy at node construction.
    log_level: str | None = None
    #: emit logs as JSON lines instead of human-readable text.
    log_json: bool = False

    # -- front end (repro.core.frontend / repro.net_async) --
    #: serve connections on the asyncio reactor front end instead of
    #: one OS thread per socket.  The threaded path stays the default
    #: (and the differential-testing baseline); flip this to multiplex
    #: thousands of sessions onto a handful of threads.
    async_frontend: bool = False
    #: shard workers behind the async front end; each shard owns its
    #: jobs' pipelines, staging namespace, and eager-apply coordinators
    #: (shard key = target table, tenant as tiebreaker).  0 picks a
    #: default from the host's core count.  Ignored by the threaded
    #: front end.
    gateway_shards: int = 0
    #: refuse connections beyond this many concurrent sessions with a
    #: typed retryable ERROR (code 3159) instead of growing without
    #: bound under a connection flood.  0 = unlimited.
    max_connections: int = 0
    #: worker threads in each shard's shared pipeline pool (sharded
    #: jobs run their converter/writer/uploader stages on the shard's
    #: pool instead of spawning three threads per job).
    shard_pipeline_workers: int = 4

    # -- resilience (repro.resilience) --
    #: total tries per cloud-facing call (1 = no retry).
    retry_max_attempts: int = 4
    #: first full-jitter backoff ceiling; doubles per retry.
    retry_base_delay_s: float = 0.05
    #: backoff ceiling cap.
    retry_max_delay_s: float = 2.0
    #: max cumulative backoff sleep per retried call.
    retry_budget_s: float = 30.0
    #: consecutive failures that open a target's circuit breaker.
    breaker_failure_threshold: int = 5
    #: how long an open breaker rejects calls before half-open probes.
    breaker_cooldown_s: float = 5.0
    #: write a per-job chunk-level CheckpointJournal enabling load
    #: restart without re-sending/re-uploading durable work.
    checkpoint_enabled: bool = True

    # -- workload management (repro.wlm) --
    #: parsed wlm-profile JSON ({"policy": ..., "pools": [...]} or a
    #: bare pool list); None disables workload management entirely.
    wlm_profile: dict | list | None = None

    # -- service-level objectives (repro.obs.slo) --
    #: parsed slo-profile JSON ({"slos": [...]} or a bare spec list);
    #: None disables SLO evaluation entirely.
    slo_profile: dict | list | None = None

    # -- data quality (repro.dq) --
    #: parsed dq-profile JSON ({"rulesets": [...]} or a bare rule
    #: list); None disables the pre-APPLY data-quality check entirely.
    dq_profile: dict | list | None = None

    # -- continuous ingestion (repro.stream) --
    #: parsed stream-profile JSON describing the node's streaming
    #: defaults ({"watermark_dir": ..., "drift_policy": ...,
    #: "cadence_s": ..., ...}); None leaves every stream knob to the
    #: per-feed BEGIN_LOAD metadata.
    stream_profile: dict | None = None

    # -- per-job flight recorder (repro.obs.flight) --
    #: keep a bounded in-memory event log per job and dump a
    #: post-mortem bundle (events + spans + metrics) when a job dies.
    flight_recorder_enabled: bool = True
    #: events retained per job (oldest dropped first).
    flight_max_events: int = 256
    #: where failure bundles are written; None uses a ``flight/``
    #: subdirectory of the node's staging area (removed at node stop).
    flight_dump_dir: str | None = None

    # -- fault injection (repro.faults) --
    #: parsed chaos-profile JSON ({"seed": ..., "rules": [...]} or a
    #: bare rule list); None disables injection entirely.
    chaos_profile: dict | list | None = None
    #: overrides the profile's rng seed when not None.
    chaos_seed: int | None = None

    def __post_init__(self):
        """Validate the configuration values."""
        if self.converters < 1:
            raise ValueError("need at least one DataConverter")
        if self.filewriters < 1:
            raise ValueError("need at least one FileWriter")
        if self.credits < 1:
            raise ValueError("credit pool cannot be empty")
        if self.seq_stride < 2:
            raise ValueError("seq_stride too small")
        if self.compression not in (None, "gzip"):
            raise ValueError(f"unsupported compression {self.compression!r}")
        if self.trace_buffer_events < 1:
            raise ValueError("trace buffer needs at least one slot")
        if not 0.0 <= self.trace_sample_rate <= 1.0:
            raise ValueError("trace_sample_rate must be within [0, 1]")
        if self.trace_store_segment_spans < 1:
            raise ValueError("trace_store_segment_spans must be >= 1")
        if self.trace_store_max_segments < 1:
            raise ValueError("trace_store_max_segments must be >= 1")
        if self.flight_max_events < 1:
            raise ValueError("flight_max_events must be >= 1")
        if self.plan_cache_size < 1:
            raise ValueError("plan_cache_size must be >= 1")
        if self.upload_workers < 1:
            raise ValueError("upload_workers must be >= 1")
        if self.gateway_shards < 0:
            raise ValueError("gateway_shards cannot be negative")
        if self.max_connections < 0:
            raise ValueError("max_connections cannot be negative")
        if self.shard_pipeline_workers < 1:
            raise ValueError("shard_pipeline_workers must be >= 1")
        if self.retry_max_attempts < 1:
            raise ValueError("retry_max_attempts must be >= 1")
        if min(self.retry_base_delay_s, self.retry_max_delay_s,
               self.retry_budget_s) < 0:
            raise ValueError("retry delays cannot be negative")
        if self.breaker_failure_threshold < 1:
            raise ValueError("breaker_failure_threshold must be >= 1")
        if self.breaker_cooldown_s < 0:
            raise ValueError("breaker_cooldown_s cannot be negative")
        if self.chaos_profile is not None and \
                not isinstance(self.chaos_profile, (dict, list)):
            raise ValueError("chaos_profile must be a dict or rule list")
        if self.wlm_profile is not None and \
                not isinstance(self.wlm_profile, (dict, list)):
            raise ValueError("wlm_profile must be a dict or pool list")
        if self.slo_profile is not None and \
                not isinstance(self.slo_profile, (dict, list)):
            raise ValueError("slo_profile must be a dict or spec list")
        if self.dq_profile is not None and \
                not isinstance(self.dq_profile, (dict, list)):
            raise ValueError("dq_profile must be a dict or rule list")
        if self.stream_profile is not None and \
                not isinstance(self.stream_profile, dict):
            raise ValueError("stream_profile must be a dict")
