"""The pipelined data-acquisition path (Sections 4-6, Figures 2-4).

Stage wiring for one load job::

    session handler ──credit──> converter queue ──> DataConverter workers
         (ack sent immediately after enqueueing; credits provide the only
          back-pressure, exactly as in Section 5)
    DataConverter ──(credit, converted chunk)──> FileWriter worker queues
    FileWriter: returns the credit *just before* writing to disk (Fig. 4),
         cuts staging files at the size threshold
    finalized file ──> uploader thread ──> cloud bulk loader ──> store
    drain(): flush writers, wait for uploads, then one in-cloud COPY INTO
         the staging table

Worker failures are captured and re-raised to the job's control session.
"""

from __future__ import annotations

import os
import queue
import threading
import time

from repro.cdw.bulkloader import CloudBulkLoader
from repro.cdw.cloudstore import CloudStore
from repro.cdw.engine import CdwEngine
from repro.core.config import HyperQConfig
from repro.core.converter import AcquisitionError, DataConverter
from repro.core.credits import Credit, CreditManager
from repro.core.filewriter import FileWriter, StagedFile
from repro.core.metrics import JobMetrics
from repro.errors import GatewayError
from repro.obs import NULL_OBS, NULL_SPAN, Observability, get_logger

__all__ = ["AcquisitionPipeline"]

log = get_logger("pipeline")

_STOP = object()
_FLUSH = object()


class AcquisitionPipeline:
    """Runs the converter/filewriter/uploader stages for one load job."""

    def __init__(self, *, converter: DataConverter, credits: CreditManager,
                 loader: CloudBulkLoader, engine: CdwEngine,
                 staging_table: str, container: str, prefix: str,
                 staging_dir: str, config: HyperQConfig,
                 metrics: JobMetrics, obs: Observability = NULL_OBS,
                 job_span=NULL_SPAN):
        self.converter = converter
        self.credits = credits
        self.loader = loader
        self.engine = engine
        self.staging_table = staging_table
        self.container = container
        self.prefix = prefix
        self.staging_dir = staging_dir
        self.config = config
        self.metrics = metrics
        self.obs = obs
        #: the job's root span — tracing parent for uploads and COPY,
        #: whose work aggregates many chunks.
        self.job_span = job_span

        #: per-chunk record counts (incl. rejected records), keyed by
        #: chunk seq — the basis for file row-number reconstruction.
        self.chunk_records: dict[int, int] = {}
        #: records rejected during conversion, for Beta to report.
        self.acquisition_errors: list[AcquisitionError] = []

        self._state = threading.Condition()
        self._seen_seqs: set[int] = set()
        self._submitted = 0
        self._written = 0
        self._flushes_done = 0
        self._finalized_files = 0
        self._uploaded_files = 0
        self._failures: list[BaseException] = []
        self._drained = False

        self._converter_queue: queue.Queue = queue.Queue()
        self._upload_queue: queue.Queue = queue.Queue()
        self._writer_queues: list[queue.Queue] = [
            queue.Queue() for _ in range(config.filewriters)]
        self._writers = [
            FileWriter(staging_dir, i, config.file_threshold_bytes,
                       obs=obs)
            for i in range(config.filewriters)
        ]

        self._threads: list[threading.Thread] = []
        for i in range(config.converters):
            self._spawn(self._converter_worker, f"converter-{i}")
        for i in range(config.filewriters):
            self._spawn(self._filewriter_worker, f"filewriter-{i}", i)
        self._spawn(self._uploader_worker, "uploader")

    def _spawn(self, target, name: str, *args) -> None:
        thread = threading.Thread(
            target=target, args=args, daemon=True, name=f"hyperq-{name}")
        thread.start()
        self._threads.append(thread)

    def _fail(self, exc: BaseException) -> None:
        with self._state:
            self._failures.append(exc)
            self._state.notify_all()

    def _check_failures(self) -> None:
        with self._state:
            failure = self._failures[0] if self._failures else None
        if failure is not None:
            raise GatewayError(
                f"acquisition pipeline failed: {failure}") from failure

    # -- producer side (called from session handler threads) -----------------

    def submit_chunk(self, chunk_seq: int, data: bytes,
                     span=NULL_SPAN) -> None:
        """Hand one raw client chunk to the pipeline.

        Blocks only while acquiring a credit — the back-pressure point.
        The caller sends the client's DATA_ACK right after this returns.
        ``span`` is the chunk's ``receive`` span; downstream stage spans
        nest under it as the chunk hops worker threads.

        Resubmitting an already-seen chunk sequence is a no-op (but still
        acknowledged): that makes client checkpoint/restart idempotent —
        a client whose ack was lost in a connection failure can safely
        resend the chunk.
        """
        self._check_failures()
        with self._state:
            if chunk_seq in self._seen_seqs:
                return
            self._seen_seqs.add(chunk_seq)
        acquire_span = self.obs.tracer.span(
            "credit.acquire", parent=span, chunk_seq=chunk_seq)
        started = time.perf_counter()
        try:
            credit = self.credits.acquire()
        except BaseException:
            acquire_span.end("error")
            raise
        waited = time.perf_counter() - started
        acquire_span.set_attribute("wait_s", round(waited, 6))
        acquire_span.end()
        with self._state:
            self.metrics.credit_wait_s += waited
            if waited > 0.0005:
                self.metrics.credit_waits += 1
            self._submitted += 1
        self._converter_queue.put((credit, chunk_seq, data, span))
        if self.config.synchronous_ack:
            # The rejected design of Section 5: hold the ack until this
            # chunk's bytes are on disk.
            with self._state:
                while chunk_seq not in self.chunk_records:
                    if self._failures:
                        break
                    self._state.wait(timeout=0.5)
            self._check_failures()

    # -- workers -----------------------------------------------------------------

    def _converter_worker(self) -> None:
        while True:
            item = self._converter_queue.get()
            if item is _STOP:
                return
            credit, chunk_seq, data, rx_span = item
            convert_span = self.obs.tracer.span(
                "convert", parent=rx_span, chunk_seq=chunk_seq,
                bytes=len(data))
            try:
                with self.obs.stage_seconds.labels(
                        stage="convert").time():
                    converted = self.converter.convert(chunk_seq, data)
            except BaseException as exc:
                convert_span.end("error")
                self.credits.release(credit)
                self._fail(exc)
                continue
            convert_span.set_attribute("records", converted.records)
            convert_span.end()
            target = self._writer_queues[
                chunk_seq % len(self._writer_queues)]
            target.put((credit, converted, convert_span))

    def _filewriter_worker(self, writer_no: int) -> None:
        writer = self._writers[writer_no]
        q = self._writer_queues[writer_no]
        while True:
            item = q.get()
            if item is _STOP:
                return
            if item is _FLUSH:
                try:
                    staged = writer.flush()
                except BaseException as exc:
                    self._fail(exc)
                    staged = None
                if staged is not None:
                    self._enqueue_upload(staged)
                with self._state:
                    self._flushes_done += 1
                    self._state.notify_all()
                continue
            credit, converted, convert_span = item
            # Figure 4: the credit returns to the pool just before the
            # data is written to disk.
            self.credits.release(credit)
            write_span = self.obs.tracer.span(
                "write", parent=convert_span,
                chunk_seq=converted.chunk_seq,
                bytes=len(converted.csv_bytes))
            try:
                with self.obs.stage_seconds.labels(
                        stage="write").time():
                    staged = writer.append(
                        converted.csv_bytes, converted.records)
            except BaseException as exc:
                write_span.end("error")
                self._fail(exc)
                continue
            write_span.end()
            if staged is not None:
                self._enqueue_upload(staged)
            with self._state:
                self.chunk_records[converted.chunk_seq] = \
                    converted.total_records
                self.acquisition_errors.extend(converted.errors)
                self.metrics.records_converted += converted.records
                self.metrics.bytes_staged += len(converted.csv_bytes)
                self._written += 1
                self._state.notify_all()
            self.obs.bytes_staged.inc(len(converted.csv_bytes))

    def _enqueue_upload(self, staged: StagedFile) -> None:
        with self._state:
            self._finalized_files += 1
            self.metrics.files_written += 1
        self._upload_queue.put(staged)

    def _uploader_worker(self) -> None:
        while True:
            item = self._upload_queue.get()
            if item is _STOP:
                return
            staged: StagedFile = item
            upload_span = self.obs.tracer.span(
                "upload", parent=self.job_span, path=staged.path,
                bytes=staged.size, records=staged.records)
            try:
                with self.obs.stage_seconds.labels(
                        stage="upload").time():
                    report = self.loader.upload_file(
                        staged.path, self.container, self.prefix)
                os.unlink(staged.path)
            except BaseException as exc:
                upload_span.end("error")
                self._fail(exc)
                continue
            upload_span.set_attribute("uploaded_bytes",
                                      report.uploaded_bytes)
            upload_span.end()
            with self._state:
                self.metrics.bytes_uploaded += report.uploaded_bytes
                self._uploaded_files += 1
                self._state.notify_all()

    # -- drain -----------------------------------------------------------------------

    def drain(self, timeout_s: float = 300.0) -> None:
        """Wait for every submitted chunk to be staged, then COPY.

        Called when the client starts the application phase: "After data
        is completely consumed, Hyper-Q initiates an in-the-cloud COPY
        operation to move data to a staging table in the CDW".
        """
        if self._drained:
            return
        deadline = time.monotonic() + timeout_s

        def wait_for(predicate) -> None:
            with self._state:
                while not predicate():
                    if self._failures:
                        break
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        raise GatewayError(
                            "acquisition pipeline drain timed out")
                    self._state.wait(timeout=min(remaining, 1.0))

        wait_for(lambda: self._written >= self._submitted)
        self._check_failures()
        # Flush partial files and wait for every writer to acknowledge.
        expected_flushes = self._flushes_done + len(self._writer_queues)
        for q in self._writer_queues:
            q.put(_FLUSH)
        wait_for(lambda: self._flushes_done >= expected_flushes)
        wait_for(lambda: self._uploaded_files >= self._finalized_files)
        self._check_failures()
        # The in-cloud COPY into the staging table.
        url = CloudStore.make_url(self.container, self.prefix)
        with self.obs.tracer.span(
                "copy", parent=self.job_span,
                staging_table=self.staging_table) as copy_span, \
                self.obs.stage_seconds.labels(stage="copy").time():
            result = self.engine.execute(
                f"COPY INTO {self.staging_table} FROM '{url}' FORMAT csv "
                f"DELIMITER '{self.config.csv_delimiter}'")
            copy_span.set_attribute("rows", result.rows_inserted)
        self.metrics.copy_rows = result.rows_inserted
        self.obs.copy_rows.inc(result.rows_inserted)
        log.debug("COPY INTO %s landed %d rows",
                  self.staging_table, result.rows_inserted)
        self._drained = True

    # -- teardown ----------------------------------------------------------------------

    def shutdown(self) -> None:
        """Stop all workers (idempotent)."""
        for _ in range(self.config.converters):
            self._converter_queue.put(_STOP)
        for q in self._writer_queues:
            q.put(_STOP)
        self._upload_queue.put(_STOP)
        for thread in self._threads:
            thread.join(timeout=10.0)
