"""The pipelined data-acquisition path (Sections 4-6, Figures 2-4).

Stage wiring for one load job::

    session handler ──credit──> converter queue ──> DataConverter workers
         (ack sent immediately after enqueueing; credits provide the only
          back-pressure, exactly as in Section 5)
    DataConverter ──(credit, converted chunk)──> FileWriter worker queues
    FileWriter: returns the credit *just before* writing to disk (Fig. 4),
         cuts staging files at the size threshold
    finalized file ──> uploader thread ──> cloud bulk loader ──> store
    drain(): flush writers, wait for uploads, then one in-cloud COPY INTO
         the staging table

Worker failures are captured and re-raised to the job's control session
as a :class:`~repro.errors.PipelineFailure` whose ``__cause__`` is the
original worker exception (traceback preserved across the thread hop).

Resilience: every finalized staging file and durable upload is recorded
in the job's :class:`~repro.resilience.checkpoint.CheckpointJournal`;
constructing the pipeline with ``resume=True`` replays that journal so a
restarted job re-uploads zero already-durable files and treats every
chunk inside them as already received.  The terminal ``COPY INTO`` runs
under the node's retry policy and circuit breaker, with the
``copy.into`` fault-injection point armed in front of it.
"""

from __future__ import annotations

import os
import queue
import re
import threading
import time
from dataclasses import asdict

from repro.cdw.bulkloader import CloudBulkLoader
from repro.cdw.cloudstore import CloudStore
from repro.cdw.engine import CdwEngine
from repro.core.config import HyperQConfig
from repro.core.converter import (
    AcquisitionError, ConvertedChunk, DataConverter,
)
from repro.core.credits import Credit
from repro.core.filewriter import FileWriter, StagedFile
from repro.core.metrics import JobMetrics
from repro.errors import GatewayError, PipelineFailure
from repro.faults import NULL_INJECTOR, FaultInjector
from repro.obs import NULL_OBS, NULL_SPAN, Observability, get_logger
from repro.resilience import (
    CheckpointJournal, CircuitBreakerRegistry, RetryPolicy,
)

__all__ = ["AcquisitionPipeline", "PipelineWorkerPool"]

log = get_logger("pipeline")

_STOP = object()
_FLUSH = object()

_PART_NAME = re.compile(r"part-(\d+)-(\d+)\.csv$")


class PipelineWorkerPool:
    """A fixed set of worker threads shared by many jobs' pipelines.

    The thread-per-job execution model (three dedicated workers per
    pipeline) multiplies threads by concurrent jobs; a gateway shard
    instead owns one of these pools and every job on the shard runs its
    converter/writer/uploader stages as :class:`_SerialLane` tasks on
    it.  Stage ordering is preserved per lane, thread count is bounded
    per shard, and two shards never touch each other's pool — the
    "per-shard pipelines" half of the sharded front end.
    """

    def __init__(self, workers: int = 4, name: str = "shard"):
        self._tasks: queue.SimpleQueue = queue.SimpleQueue()
        self._threads = [
            threading.Thread(target=self._run, daemon=True,
                             name=f"{name}-pipeline-{i}")
            for i in range(workers)
        ]
        for thread in self._threads:
            thread.start()

    def submit(self, fn) -> None:
        """Schedule one callable; runs on some pool thread, FIFO-ish."""
        self._tasks.put(fn)

    def _run(self) -> None:
        while True:
            fn = self._tasks.get()
            if fn is _STOP:
                return
            try:
                fn()
            except BaseException:  # pragma: no cover - lane bug guard
                log.exception("pipeline pool task failed")

    def close(self) -> None:
        """Stop the workers after the queued tasks (idempotent)."""
        for _ in self._threads:
            self._tasks.put(_STOP)
        for thread in self._threads:
            thread.join(timeout=10.0)
        self._threads = []


class _SerialLane:
    """One strictly-ordered task stream multiplexed onto a shared pool.

    Items submitted to a lane are handled one at a time, in order, but
    the lane only occupies a pool thread while it has items — the
    pool-mode replacement for a dedicated stage thread.  A stage whose
    handler must never run concurrently (a FileWriter appending to one
    staging file) gets its own lane.
    """

    def __init__(self, pool: PipelineWorkerPool, handler, on_error):
        self._pool = pool
        self._handler = handler
        self._on_error = on_error
        self._lock = threading.Lock()
        self._items: list = []
        self._scheduled = False

    def submit(self, item) -> None:
        with self._lock:
            self._items.append(item)
            if self._scheduled:
                return
            self._scheduled = True
        self._pool.submit(self._drain)

    def _drain(self) -> None:
        while True:
            with self._lock:
                if not self._items:
                    self._scheduled = False
                    return
                item = self._items.pop(0)
            try:
                self._handler(item)
            except BaseException as exc:
                self._on_error(exc)


class AcquisitionPipeline:
    """Runs the converter/filewriter/uploader stages for one load job."""

    def __init__(self, *, converter: DataConverter, credits,
                 loader: CloudBulkLoader, engine: CdwEngine,
                 staging_table: str, container: str, prefix: str,
                 staging_dir: str, config: HyperQConfig,
                 metrics: JobMetrics, obs: Observability = NULL_OBS,
                 job_span=NULL_SPAN,
                 faults: FaultInjector = NULL_INJECTOR,
                 retry: RetryPolicy | None = None,
                 breakers: CircuitBreakerRegistry | None = None,
                 journal: CheckpointJournal | None = None,
                 resume: bool = False, job_id: str = "",
                 on_file_durable: "callable | None" = None,
                 worker_pool: PipelineWorkerPool | None = None):
        self.converter = converter
        #: credit source — the node's CreditManager, or a pool-bound
        #: :class:`repro.wlm.PoolCredits` view when workload management
        #: is enabled (same acquire()/release(credit) surface).
        self.credits = credits
        #: owning job id; stamps worker thread names for diagnosability.
        self.job_id = job_id
        self.loader = loader
        self.engine = engine
        self.staging_table = staging_table
        self.container = container
        self.prefix = prefix
        self.staging_dir = staging_dir
        self.config = config
        self.metrics = metrics
        self.obs = obs
        #: the job's root span — tracing parent for uploads and COPY,
        #: whose work aggregates many chunks.
        self.job_span = job_span
        self.faults = faults
        self.retry = retry
        self.breakers = breakers
        self.journal = journal

        #: per-chunk record counts (incl. rejected records), keyed by
        #: chunk seq — the basis for file row-number reconstruction.
        self.chunk_records: dict[int, int] = {}
        #: records rejected during conversion, for Beta to report.
        self.acquisition_errors: list[AcquisitionError] = []

        self._state = threading.Condition()
        self._seen_seqs: set[int] = set()
        self._submitted = 0
        self._written = 0
        self._flushes_done = 0
        self._finalized_files = 0
        self._uploaded_files = 0
        self._failures: list[BaseException] = []
        self._drained = False
        #: hook ``(staged: StagedFile)`` fired from the uploader thread
        #: once a staging file is durable in the cloud store (and
        #: journaled) — the eager-apply coordinator uses it to COPY and
        #: apply contiguous ``__SEQ`` prefixes while later chunks are
        #: still converting.  Exceptions it raises fail the pipeline.
        #: Constructor-injected (not assigned post-hoc) because a
        #: resumed pipeline starts re-uploading journaled files before
        #: __init__ returns.
        self.on_file_durable = on_file_durable
        #: chunks/files found durable in the journal on resume.
        self.resumed_chunks = 0
        self.resumed_files = 0
        #: the durable chunk seqs replayed on resume — reported back to
        #: the client in BEGIN_LOAD_OK so it can skip exactly these.
        self.resumed_seqs: set[int] = set()

        resumed_uploads = self._replay_journal() if resume else []

        self._writers = [
            FileWriter(staging_dir, i, config.file_threshold_bytes,
                       obs=obs,
                       start_file_no=self._next_file_no(i, resume))
            for i in range(config.filewriters)
        ]

        self._threads: list[threading.Thread] = []
        #: shard-pool execution: stages run as ordered lanes on the
        #: shared pool instead of three-plus dedicated threads per job.
        self._pool = worker_pool
        if worker_pool is not None:
            self._convert_lane = _SerialLane(
                worker_pool, self._convert_item, self._fail)
            self._writer_lanes = [
                _SerialLane(worker_pool,
                            (lambda item, _no=i: self._write_item(
                                _no, item)),
                            self._fail)
                for i in range(config.filewriters)
            ]
            self._upload_lane = _SerialLane(
                worker_pool, self._upload_item, self._fail)
        else:
            self._converter_queue: queue.Queue = queue.Queue()
            self._upload_queue: queue.Queue = queue.Queue()
            self._writer_queues: list[queue.Queue] = [
                queue.Queue() for _ in range(config.filewriters)]
            for i in range(config.converters):
                self._spawn(self._converter_worker, f"converter-{i}")
            for i in range(config.filewriters):
                self._spawn(self._filewriter_worker, f"filewriter-{i}", i)
            self._spawn(self._uploader_worker, "uploader")
        # staged-but-unuploaded survivors go back through the uploader.
        for staged in resumed_uploads:
            self._enqueue_upload(staged, journaled=True)

    # -- checkpoint replay (restart support) ---------------------------------

    def _replay_journal(self) -> list[StagedFile]:
        """Replay the journal: seed durable chunks, collect re-uploads.

        Chunks whose staging file is durable (uploaded, or still present
        on local disk) are marked seen so a restarted client can resend
        everything and only the lost tail is re-processed.  Staging
        files that were finalized but never uploaded are returned for
        re-enqueueing — already-uploaded files are *not*, which is the
        restart guarantee: zero re-uploads of durable work.
        """
        if self.journal is None:
            return []
        for seq, chunk in sorted(self.journal.durable_chunks().items()):
            self._seen_seqs.add(seq)
            self.resumed_seqs.add(seq)
            self.chunk_records[seq] = chunk["records"]
            self.acquisition_errors.extend(
                AcquisitionError(**e) for e in chunk.get("errors", ()))
            self.resumed_chunks += 1
        self.resumed_files = len(self.journal.uploaded)
        self.obs.checkpoint_skips.labels(kind="chunk").inc(
            self.resumed_chunks)
        self.obs.checkpoint_skips.labels(kind="upload").inc(
            self.resumed_files)
        pending = []
        for rec in self.journal.pending_files():
            if not os.path.exists(rec.get("path", "")):
                continue
            pending.append(StagedFile(
                path=rec["path"], size=rec["size"],
                records=rec["records"],
                chunks=tuple(rec.get("chunks", ()))))
        if self.resumed_chunks or pending:
            log.info("resumed from checkpoint journal", extra={
                "durable_chunks": self.resumed_chunks,
                "uploaded_files": self.resumed_files,
                "requeued_files": len(pending)})
        return pending

    def _next_file_no(self, writer_no: int, resume: bool) -> int:
        """First file number a (possibly resumed) writer may use.

        Journaled staging files keep their names on restart, so new
        files must continue the numbering rather than collide with (and
        silently overwrite) durable ones.
        """
        if not resume or self.journal is None:
            return 0
        highest = -1
        for name in self.journal.staged:
            match = _PART_NAME.search(name)
            if match and int(match.group(1)) == writer_no:
                highest = max(highest, int(match.group(2)))
        return highest + 1

    def _spawn(self, target, name: str, *args) -> None:
        # Job-scoped names (``hyperq-job-<id>-converter-0``) make thread
        # dumps of a busy multi-tenant node attributable at a glance.
        prefix = (f"hyperq-job-{self.job_id}" if self.job_id
                  else "hyperq")
        thread = threading.Thread(
            target=target, args=args, daemon=True,
            name=f"{prefix}-{name}")
        thread.start()
        self._threads.append(thread)

    def _fail(self, exc: BaseException) -> None:
        with self._state:
            self._failures.append(exc)
            self._state.notify_all()

    def _check_failures(self) -> None:
        with self._state:
            failures = list(self._failures)
        if failures:
            raise PipelineFailure(
                f"acquisition pipeline failed: {failures[0]}",
                failures=failures) from failures[0]

    # -- producer side (called from session handler threads) -----------------

    def submit_chunk(self, chunk_seq: int, data: bytes,
                     span=NULL_SPAN) -> None:
        """Hand one raw client chunk to the pipeline.

        Blocks only while acquiring a credit — the back-pressure point.
        The caller sends the client's DATA_ACK right after this returns.
        ``span`` is the chunk's ``receive`` span; downstream stage spans
        nest under it as the chunk hops worker threads.

        Resubmitting an already-seen chunk sequence is a no-op (but still
        acknowledged): that makes client checkpoint/restart idempotent —
        a client whose ack was lost in a connection failure can safely
        resend the chunk, and a restarted job can resend everything
        while only the non-durable tail is re-processed.
        """
        self._check_failures()
        with self._state:
            if chunk_seq in self._seen_seqs:
                return
            self._seen_seqs.add(chunk_seq)
        acquire_span = self.obs.tracer.span(
            "credit.acquire", parent=span, chunk_seq=chunk_seq)
        started = time.perf_counter()
        try:
            credit = self.credits.acquire()
        except BaseException:
            acquire_span.end("error")
            raise
        waited = time.perf_counter() - started
        acquire_span.set_attribute("wait_s", round(waited, 6))
        acquire_span.end()
        with self._state:
            self.metrics.credit_wait_s += waited
            if waited > 0.0005:
                self.metrics.credit_waits += 1
            self._submitted += 1
        item = (credit, chunk_seq, data, span)
        if self._pool is not None:
            self._convert_lane.submit(item)
        else:
            self._converter_queue.put(item)
        if self.config.synchronous_ack:
            # The rejected design of Section 5: hold the ack until this
            # chunk's bytes are on disk.
            with self._state:
                while chunk_seq not in self.chunk_records:
                    if self._failures:
                        break
                    self._state.wait(timeout=0.5)
            self._check_failures()

    # -- workers -----------------------------------------------------------------

    def _converter_worker(self) -> None:
        while True:
            item = self._converter_queue.get()
            if item is _STOP:
                return
            self._convert_item(item)

    def _convert_item(self, item) -> None:
        """Convert one raw chunk and route it to its FileWriter."""
        credit, chunk_seq, data, rx_span = item
        convert_span = self.obs.tracer.span(
            "convert", parent=rx_span, chunk_seq=chunk_seq,
            bytes=len(data))
        try:
            with self.obs.stage_seconds.labels(
                    stage="convert").time():
                converted = self.converter.convert(chunk_seq, data)
        except BaseException as exc:
            convert_span.end("error")
            self.credits.release(credit)
            self._fail(exc)
            return
        convert_span.set_attribute("records", converted.records)
        convert_span.end()
        writer_no = chunk_seq % len(self._writers)
        payload = (credit, converted, convert_span)
        if self._pool is not None:
            self._writer_lanes[writer_no].submit(payload)
        else:
            self._writer_queues[writer_no].put(payload)

    @staticmethod
    def _manifest_entry(converted: ConvertedChunk) -> dict:
        """The chunk's checkpoint-journal manifest entry."""
        return {
            "seq": converted.chunk_seq,
            "records": converted.total_records,
            "errors": [asdict(e) for e in converted.errors],
        }

    def _filewriter_worker(self, writer_no: int) -> None:
        q = self._writer_queues[writer_no]
        while True:
            item = q.get()
            if item is _STOP:
                return
            self._write_item(writer_no, item)

    def _write_item(self, writer_no: int, item) -> None:
        """Append one converted chunk (or flush) on its FileWriter."""
        writer = self._writers[writer_no]
        if item is _FLUSH:
            try:
                staged = writer.flush()
            except BaseException as exc:
                self._fail(exc)
                staged = None
            if staged is not None:
                self._enqueue_upload(staged)
            with self._state:
                self._flushes_done += 1
                self._state.notify_all()
            return
        credit, converted, convert_span = item
        # Figure 4: the credit returns to the pool just before the
        # data is written to disk.
        self.credits.release(credit)
        write_span = self.obs.tracer.span(
            "write", parent=convert_span,
            chunk_seq=converted.chunk_seq,
            bytes=len(converted.csv_bytes))
        try:
            with self.obs.stage_seconds.labels(
                    stage="write").time():
                staged = writer.append(
                    converted.csv_bytes, converted.records,
                    chunk=self._manifest_entry(converted))
        except BaseException as exc:
            write_span.end("error")
            self._fail(exc)
            return
        write_span.end()
        if staged is not None:
            self._enqueue_upload(staged)
        with self._state:
            self.chunk_records[converted.chunk_seq] = \
                converted.total_records
            self.acquisition_errors.extend(converted.errors)
            self.metrics.records_converted += converted.records
            self.metrics.bytes_staged += len(converted.csv_bytes)
            self._written += 1
            self._state.notify_all()
        self.obs.bytes_staged.inc(len(converted.csv_bytes))

    def _enqueue_upload(self, staged: StagedFile,
                        journaled: bool = False) -> None:
        if self.journal is not None and not journaled:
            self.journal.record_staged(
                staged.name, path=staged.path, size=staged.size,
                records=staged.records, chunks=list(staged.chunks))
        with self._state:
            self._finalized_files += 1
            self.metrics.files_written += 1
        if self._pool is not None:
            self._upload_lane.submit(staged)
        else:
            self._upload_queue.put(staged)

    def _uploader_worker(self) -> None:
        while True:
            item = self._upload_queue.get()
            if item is _STOP:
                return
            self._upload_item(item)

    def _upload_item(self, staged: StagedFile) -> None:
        """Ship one finalized staging file to the cloud store."""
        upload_span = self.obs.tracer.span(
            "upload", parent=self.job_span, path=staged.path,
            bytes=staged.size, records=staged.records)
        try:
            with self.obs.stage_seconds.labels(
                    stage="upload").time():
                report = self.loader.upload_file(
                    staged.path, self.container, self.prefix,
                    span=upload_span)
            if self.journal is not None:
                self.journal.record_uploaded(staged.name)
            os.unlink(staged.path)
            hook = self.on_file_durable
            if hook is not None:
                hook(staged)
        except BaseException as exc:
            upload_span.end("error")
            self._fail(exc)
            return
        upload_span.set_attribute("uploaded_bytes",
                                  report.uploaded_bytes)
        upload_span.end()
        with self._state:
            self.metrics.bytes_uploaded += report.uploaded_bytes
            self._uploaded_files += 1
            self._state.notify_all()

    # -- drain -----------------------------------------------------------------------

    def drain(self, timeout_s: float = 300.0, copy: bool = True) -> None:
        """Wait for every submitted chunk to be staged, then COPY.

        Called when the client starts the application phase: "After data
        is completely consumed, Hyper-Q initiates an in-the-cloud COPY
        operation to move data to a staging table in the CDW".

        ``copy=False`` skips the terminal prefix-wide COPY — the
        eager-apply coordinator owns per-file copies in that mode, and a
        prefix-wide COPY here would double-load every blob it already
        moved.
        """
        if self._drained:
            return
        deadline = time.monotonic() + timeout_s

        def wait_for(predicate) -> None:
            with self._state:
                while not predicate():
                    if self._failures:
                        break
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        raise GatewayError(
                            "acquisition pipeline drain timed out")
                    self._state.wait(timeout=min(remaining, 1.0))

        wait_for(lambda: self._written >= self._submitted)
        self._check_failures()
        # Flush partial files and wait for every writer to acknowledge.
        expected_flushes = self._flushes_done + len(self._writers)
        if self._pool is not None:
            for lane in self._writer_lanes:
                lane.submit(_FLUSH)
        else:
            for q in self._writer_queues:
                q.put(_FLUSH)
        wait_for(lambda: self._flushes_done >= expected_flushes)
        wait_for(lambda: self._uploaded_files >= self._finalized_files)
        self._check_failures()
        if not copy:
            self._drained = True
            return
        if self.journal is not None and self.journal.copy_rows is not None:
            # A previous incarnation of this job already COPYed: running
            # it again would double-load every staged blob.
            self.obs.checkpoint_skips.labels(kind="copy").inc()
            self.metrics.copy_rows = self.journal.copy_rows
            self._drained = True
            return
        # The in-cloud COPY into the staging table.
        url = CloudStore.make_url(self.container, self.prefix)
        statement = (
            f"COPY INTO {self.staging_table} FROM '{url}' FORMAT csv "
            f"DELIMITER '{self.config.csv_delimiter}'")
        with self.obs.tracer.span(
                "copy", parent=self.job_span,
                staging_table=self.staging_table) as copy_span, \
                self.obs.stage_seconds.labels(stage="copy").time():
            result = self._execute_copy(statement, copy_span)
            copy_span.set_attribute("rows", result.rows_inserted)
        if self.journal is not None:
            self.journal.record_copy(result.rows_inserted)
        self.metrics.copy_rows = result.rows_inserted
        self.obs.copy_rows.inc(result.rows_inserted)
        log.debug("COPY INTO %s landed %d rows",
                  self.staging_table, result.rows_inserted)
        self._drained = True

    def _execute_copy(self, statement: str, copy_span):
        """Run COPY under the ``copy.into`` fault point + retry/breaker.

        Safe to retry: the engine's set-oriented execution is
        all-or-nothing, and the injection point fires *before* the
        statement is dispatched, so an absorbed fault never leaves a
        partial COPY behind.
        """

        def attempt():
            self.faults.fire("copy.into", staging_table=self.staging_table)
            return self.engine.execute(statement)

        op = attempt
        if self.breakers is not None:
            breaker = self.breakers.get("copy.into")
            op = lambda: breaker.call(attempt)  # noqa: E731
        if self.retry is not None:
            return self.retry.call(op, target="copy.into", obs=self.obs,
                                   parent=copy_span, job_id=self.job_id)
        return op()

    # -- teardown ----------------------------------------------------------------------

    def quiesce(self, timeout_s: float = 30.0) -> None:
        """Graceful teardown for an aborted/abandoned job.

        Lets already-submitted work finish (bounded, best-effort)
        before stopping the workers: credits travel attached to queued
        items, so a mid-queue STOP would strand them, and everything
        that stages/uploads before the stop is checkpointed work a
        ``resume`` restart can skip.  Unlike :meth:`drain` it never
        flushes partial files, never COPYs, and never raises — a
        pipeline that already failed is shut down immediately.
        """
        deadline = time.monotonic() + timeout_s
        with self._state:
            while (self._written < self._submitted
                   or self._uploaded_files < self._finalized_files):
                if self._failures:
                    break
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    break
                self._state.wait(timeout=min(remaining, 1.0))
        self.shutdown()

    def shutdown(self) -> None:
        """Stop all workers (idempotent).

        In shard-pool mode there are no dedicated threads to stop: the
        pool outlives the job, so shutdown only waits (bounded) for the
        job's already-queued lane work to finish before closing the
        journal — a mid-flight journal write after close would fail the
        write's lane task and mask the real teardown reason.
        """
        if self._pool is not None:
            deadline = time.monotonic() + 10.0
            with self._state:
                while (self._written < self._submitted
                       or self._uploaded_files < self._finalized_files):
                    if self._failures:
                        break
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        break
                    self._state.wait(timeout=min(remaining, 0.5))
        else:
            for _ in range(self.config.converters):
                self._converter_queue.put(_STOP)
            for q in self._writer_queues:
                q.put(_STOP)
            self._upload_queue.put(_STOP)
            for thread in self._threads:
                thread.join(timeout=10.0)
        if self.journal is not None:
            self.journal.close()
