"""Connection-handling front ends, split from job orchestration.

A *front end* owns everything between ``listener.accept()`` and the
per-message handler: framing, connection lifecycle, the connection cap,
and connection gauges.  The node behind it (``HyperQNode`` or the
reference ``LegacyServer``) only implements the session contract:

- ``new_conn()`` — per-connection session state (a dict);
- ``handle_message(channel, message, conn)`` — dispatch one frame,
  answering on ``channel.send(...)`` (typed errors become ERROR frames
  inside this call; a dead transport propagates ``TransportClosed``);
- ``connection_closed(conn)`` — reap whatever the connection owned;
- ``wrap_endpoint(endpoint)`` — chaos instrumentation hook.

:class:`ThreadedFrontend` here is the classic one-OS-thread-per-socket
server — simple, debuggable, and kept as the differential-testing
baseline; :class:`repro.net_async.AsyncFrontend` multiplexes the same
contract onto an asyncio reactor plus shard workers.
"""

from __future__ import annotations

import threading

from repro.errors import ConnectionLimited, ReproError
from repro.legacy.protocol import Message, MessageChannel, MessageKind
from repro.obs import NULL_OBS, get_logger

__all__ = ["ThreadedFrontend", "refuse_connection"]

log = get_logger("frontend")


def refuse_connection(endpoint, limit: int, obs=NULL_OBS) -> None:
    """Shed one over-cap connection with a typed retryable ERROR.

    The refusal frame is sent *before* any request is read: the peer's
    first ``recv`` after LOGON surfaces it as a transient
    :class:`~repro.errors.ConnectionLimited`, so a flooding scheduler
    backs off instead of treating the node as dead.  Best-effort — a
    peer that already vanished just loses the hint.
    """
    obs.connections_refused.inc()
    error = ConnectionLimited(
        f"connection limit of {limit} reached; retry later",
        limit=limit)
    try:
        endpoint.send_bytes(Message(MessageKind.ERROR, {
            "code": error.code,
            "message": str(error),
            "limit": limit,
            "retry_after_s": error.retry_after_s,
        }).to_bytes())
    except ReproError:
        pass
    finally:
        endpoint.close_both()


class ThreadedFrontend:
    """One accept-loop thread, one handler thread per connection."""

    kind = "threaded"

    def __init__(self, node, listener, *, name: str = "server",
                 max_connections: int = 0, obs=NULL_OBS):
        self.node = node
        self.listener = listener
        self.name = name
        self.max_connections = max_connections
        self.obs = obs
        self._running = False
        self._accept_thread: threading.Thread | None = None
        self._lock = threading.Lock()
        self._active = 0
        self._refused = 0

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> "ThreadedFrontend":
        """Start the accept loop; returns self for chaining."""
        self._running = True
        self._accept_thread = threading.Thread(
            target=self._accept_loop, daemon=True,
            name=f"{self.name}-accept")
        self._accept_thread.start()
        return self

    def stop(self) -> None:
        """Stop accepting; open connections drain on their own threads."""
        self._running = False
        self.listener.close()

    def close(self) -> None:
        """Second teardown phase (shard-pool parity with the async
        front end); the threaded front end has nothing left to free."""

    @property
    def connections_active(self) -> int:
        with self._lock:
            return self._active

    def snapshot(self) -> dict:
        """``stats()["gateway"]`` contribution of this front end."""
        with self._lock:
            active, refused = self._active, self._refused
        return {
            "frontend": self.kind,
            "connections_active": active,
            "connections_refused": refused,
            "max_connections": self.max_connections,
            "shards": [],
        }

    # -- accept / serve ------------------------------------------------------

    def _admit(self) -> bool:
        """Try to claim a connection slot against the cap."""
        with self._lock:
            if self.max_connections and \
                    self._active >= self.max_connections:
                self._refused += 1
                return False
            self._active += 1
        self.obs.connections_active.inc()
        return True

    def _release(self) -> None:
        with self._lock:
            self._active -= 1
        self.obs.connections_active.dec()

    def _accept_loop(self) -> None:
        while self._running:
            endpoint = self.listener.accept(timeout=0.5)
            if endpoint is None:
                continue
            if not self._admit():
                refuse_connection(endpoint, self.max_connections,
                                  obs=self.obs)
                continue
            endpoint = self.node.wrap_endpoint(endpoint)
            threading.Thread(
                target=self._serve_connection, args=(endpoint,),
                daemon=True, name=f"{self.name}-conn").start()

    def _serve_connection(self, endpoint) -> None:
        channel = MessageChannel(endpoint, timeout=None)
        conn = self.node.new_conn()
        try:
            while True:
                message = channel.recv_or_eof()
                if message is None:
                    return
                self.node.handle_message(channel, message, conn)
        except ReproError:
            pass  # connection torn down mid-message
        finally:
            channel.close()
            self._release()
            self.node.connection_closed(conn)
