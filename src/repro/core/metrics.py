"""Per-job phase timing and throughput accounting.

The paper's Figure 7 splits job time into *data acquisition* (receive +
convert + serialize + upload + COPY), *DML application*, and *other*
(startup/teardown).  :class:`JobMetrics` records exactly that split plus the
counters the other figures need.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

__all__ = ["JobMetrics", "Stopwatch"]


class Stopwatch:
    """Accumulating wall-clock stopwatch."""

    def __init__(self):
        self.elapsed = 0.0
        self._started_at: float | None = None

    def start(self) -> None:
        """Start (or resume) timing; no-op if already running."""
        if self._started_at is None:
            self._started_at = time.perf_counter()

    def stop(self) -> None:
        """Stop timing and accumulate; no-op if not running."""
        if self._started_at is not None:
            self.elapsed += time.perf_counter() - self._started_at
            self._started_at = None

    @property
    def running(self) -> bool:
        return self._started_at is not None

    def __enter__(self) -> "Stopwatch":
        """Context-manager support: starts the stopwatch."""
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        """Stop the stopwatch on context exit."""
        self.stop()


@dataclass
class JobMetrics:
    """Everything measured for one virtualized ETL job."""

    job_id: str = ""
    # -- phase durations (seconds) --
    total_s: float = 0.0
    acquisition_s: float = 0.0
    application_s: float = 0.0
    #: wall-clock seconds during which eager DML application overlapped
    #: ongoing acquisition (0.0 for two-phase jobs).
    overlap_s: float = 0.0

    # -- acquisition counters --
    chunks_received: int = 0
    bytes_received: int = 0
    records_converted: int = 0
    bytes_staged: int = 0
    files_written: int = 0
    bytes_uploaded: int = 0
    copy_rows: int = 0

    # -- application counters --
    rows_inserted: int = 0
    rows_updated: int = 0
    rows_deleted: int = 0
    et_errors: int = 0
    uv_errors: int = 0
    dml_statements: int = 0
    chunk_retries: int = 0

    # -- data-quality precheck (repro.dq) --
    dq_checked: int = 0
    dq_violations: int = 0
    dq_routed_rows: int = 0

    # -- back-pressure --
    credit_waits: int = 0
    credit_wait_s: float = 0.0

    sessions: int = 0

    # -- observability correlation --
    #: hex trace id of the job's span tree ("" when tracing is off).
    trace_id: str = ""
    #: WLM pool the job was admitted into ("" without a WLM profile).
    pool: str = ""

    @property
    def other_s(self) -> float:
        """Startup/teardown time: total minus the two measured phases."""
        return max(self.total_s - self.acquisition_s - self.application_s,
                   0.0)

    @property
    def acquisition_rate_mb_s(self) -> float:
        if self.acquisition_s <= 0:
            return 0.0
        return self.bytes_received / self.acquisition_s / (1024 * 1024)

    def as_row(self) -> dict:
        """Flat dict for bench-harness reporting (every counter)."""
        return {
            "job_id": self.job_id,
            "trace_id": self.trace_id,
            "pool": self.pool,
            "total_s": round(self.total_s, 4),
            "acquisition_s": round(self.acquisition_s, 4),
            "application_s": round(self.application_s, 4),
            "overlap_s": round(self.overlap_s, 4),
            "other_s": round(self.other_s, 4),
            "records": self.records_converted,
            "bytes_in": self.bytes_received,
            "bytes_staged": self.bytes_staged,
            "files_written": self.files_written,
            "bytes_uploaded": self.bytes_uploaded,
            "copy_rows": self.copy_rows,
            "rows_inserted": self.rows_inserted,
            "et_errors": self.et_errors,
            "uv_errors": self.uv_errors,
            "dml_statements": self.dml_statements,
            "chunk_retries": self.chunk_retries,
            "dq_checked": self.dq_checked,
            "dq_violations": self.dq_violations,
            "dq_routed_rows": self.dq_routed_rows,
            "credit_waits": self.credit_waits,
            "credit_wait_s": round(self.credit_wait_s, 4),
        }
