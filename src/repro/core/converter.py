"""DataConverter: legacy wire chunks → CDW staging-file chunks (Section 4).

One conversion turns a chunk of legacy-encoded records (VARTEXT or BINARY)
into CSV bytes the CDW's ``COPY INTO`` understands, handling exactly the
discrepancies the paper lists: binary value decoding, *null detection*
(legacy empty VARTEXT field = NULL, CDW distinguishes ``\\N`` from ``""``),
and escaping of special characters (the CSV quoting rules).

Each record receives a synthetic ``__SEQ`` value ``chunk_seq * stride +
index`` so the staging table preserves the input-file order across
out-of-order parallel conversion — the basis for the adaptive error
handler's range splitting and row-number reporting.

Records that cannot be decoded at all (wrong field count, truncated
binary) are *acquisition errors*: they are excluded from the staging data
and reported with their legacy error code so Beta can record them in the
transformation error table.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cdw import stagefile
from repro.errors import DataFormatError
from repro.legacy.datafmt import RecordFormat
from repro.obs import NULL_OBS, Observability, get_logger

__all__ = ["ConvertedChunk", "AcquisitionError", "DataConverter"]

log = get_logger("converter")


@dataclass(frozen=True)
class AcquisitionError:
    """A record rejected during conversion (before it ever reaches SQL)."""

    seq: int                  # synthetic __SEQ of the bad record
    code: int
    field: str | None
    message: str


@dataclass
class ConvertedChunk:
    """The output of one DataConverter invocation."""

    chunk_seq: int
    csv_bytes: bytes
    records: int
    errors: list[AcquisitionError] = field(default_factory=list)

    @property
    def total_records(self) -> int:
        """Input records including rejected ones (for row numbering)."""
        return self.records + len(self.errors)


class DataConverter:
    """Stateless conversion logic; instantiated once per load job.

    The pipeline runs many invocations concurrently on worker threads —
    safe because conversion only reads shared state.
    """

    def __init__(self, record_format: RecordFormat, seq_stride: int,
                 csv_delimiter: str = ",",
                 obs: Observability = NULL_OBS):
        self.record_format = record_format
        self.seq_stride = seq_stride
        self.csv_delimiter = csv_delimiter
        self.obs = obs

    def convert(self, chunk_seq: int, data: bytes) -> ConvertedChunk:
        """Convert one legacy chunk into CSV staging bytes."""
        base = chunk_seq * self.seq_stride
        out: list[str] = []
        errors: list[AcquisitionError] = []
        index = 0
        for item in self.record_format.iter_decode(data):
            if index >= self.seq_stride:
                raise DataFormatError(
                    f"chunk {chunk_seq} holds more than "
                    f"{self.seq_stride} records; raise seq_stride")
            seq = base + index
            index += 1
            if isinstance(item, DataFormatError):
                errors.append(AcquisitionError(
                    seq=seq, code=item.code, field=item.field,
                    message=str(item)))
                continue
            out.append(stagefile.encode_csv_row(
                item + (seq,), self.csv_delimiter))
        records = index - len(errors)
        self.obs.records_converted.inc(records)
        if errors:
            self.obs.acquisition_errors.inc(len(errors))
            log.debug("chunk %d: %d records rejected during conversion",
                      chunk_seq, len(errors))
        return ConvertedChunk(
            chunk_seq=chunk_seq,
            csv_bytes="".join(out).encode("utf-8"),
            records=records,
            errors=errors,
        )
